"""The ordering pipeline of Section 3.1.

Given a square sparse matrix ``A``:

1. find a maximum transversal (Duff) and permute rows so the diagonal is
   structurally zero-free;
2. compute a minimum-degree ordering of the :math:`A^T A` pattern and apply
   it *symmetrically* (to columns, and to rows as well so the zero-free
   diagonal survives);
3. hand the result to static symbolic factorization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse import CSRMatrix, aplusat_pattern, ata_pattern
from .mindeg import minimum_degree
from .transversal import maximum_transversal


@dataclass
class OrderedMatrix:
    """A matrix prepared for static symbolic factorization.

    Attributes
    ----------
    A:
        The permuted matrix ``A[row_perm, :][:, col_perm]`` with a
        structurally zero-free diagonal.
    row_perm, col_perm:
        ``row_perm[k]`` / ``col_perm[k]`` give the *original* row/column
        stored at permuted position ``k``.
    """

    A: CSRMatrix
    row_perm: np.ndarray
    col_perm: np.ndarray

    @property
    def n(self) -> int:
        return self.A.nrows


def prepare_matrix(
    A: CSRMatrix, use_mindeg: bool = True, ordering: str = None
) -> OrderedMatrix:
    """Run transversal + fill-reducing ordering; return the permuted matrix.

    ``ordering`` selects the fill-reducing strategy:

    * ``"mindeg-ata"`` (default) — minimum degree on the AᵀA pattern, the
      paper's choice;
    * ``"mindeg-aplusat"`` — minimum degree on A+Aᵀ, the alternative the
      paper notes SuperLU uses for matrices like memplus whose AᵀA is
      nearly dense;
    * ``"natural"`` — transversal only, no reordering.

    ``use_mindeg=False`` is a legacy alias for ``"natural"``.

    Raises ``ValueError`` when ``A`` is structurally singular (no full
    transversal exists), mirroring the paper's assumption of a zero-free
    diagonal.
    """
    if ordering is None:
        ordering = "mindeg-ata" if use_mindeg else "natural"
    n = A.nrows
    if A.ncols != n:
        raise ValueError("prepare_matrix requires a square matrix")
    trans_perm, matched = maximum_transversal(A)
    if matched < n:
        raise ValueError(
            f"matrix is structurally singular: transversal of size {matched} < {n}"
        )
    At = A.permute(row_perm=trans_perm)

    if ordering == "mindeg-ata":
        order = minimum_degree(ata_pattern(At)).perm
    elif ordering == "mindeg-aplusat":
        order = minimum_degree(aplusat_pattern(At)).perm
    elif ordering == "natural":
        order = np.arange(n, dtype=np.int64)
    else:
        raise ValueError(f"unknown ordering {ordering!r}")

    # Apply the column ordering symmetrically: position k holds original
    # (transversal-permuted) row/column order[k]; the diagonal stays zero-free
    # because entry (order[k], order[k]) of At is on the transversal.
    Ap = At.permute(row_perm=order, col_perm=order)
    row_perm = trans_perm[order]
    col_perm = order.copy()
    return OrderedMatrix(Ap, row_perm, col_perm)
