"""Minimum-degree ordering on an undirected graph pattern.

The paper orders columns with *multiple minimum degree* (MMD) applied to the
graph of :math:`A^T A`.  We implement a minimum-degree elimination with the
two classic MMD accelerations that matter at our scale:

* **mass elimination** — indistinguishable nodes (identical closed
  neighbourhoods) are eliminated together with their representative, and
* **multiple elimination** — at each round every node whose degree equals
  the current minimum (and which is not adjacent to a node already picked
  this round) is eliminated before degrees are recomputed.

Elimination uses the quotient-graph-free explicit-clique update: when node v
is eliminated its neighbours become a clique.  That is O(deg²) per
elimination, plenty for suite matrices of a few thousand columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse import CSRMatrix


@dataclass
class MinDegreeResult:
    """Outcome of a minimum-degree run."""

    perm: np.ndarray  # perm[k] = original index eliminated k-th
    fill_edges: int  # number of fill edges the elimination created


def minimum_degree(G: CSRMatrix, multiple: bool = True) -> MinDegreeResult:
    """Compute a minimum-degree permutation of the symmetric pattern ``G``.

    ``G`` must be structurally symmetric (e.g. the :math:`A^T A` pattern);
    the diagonal is ignored.
    """
    n = G.nrows
    adj = [set() for _ in range(n)]
    for i in range(n):
        for j in G.row_indices(i):
            if i != j:
                adj[i].add(int(j))
                adj[j].add(i)

    eliminated = np.zeros(n, dtype=bool)
    perm = []
    fill_edges = 0
    degrees = np.array([len(a) for a in adj], dtype=np.int64)

    remaining = n
    while remaining > 0:
        dmin = degrees[~eliminated].min()
        # multiple elimination: grab an independent set of min-degree nodes
        batch = []
        blocked = set()
        for v in np.flatnonzero(~eliminated):
            if degrees[v] == dmin and v not in blocked:
                batch.append(int(v))
                blocked.add(int(v))
                blocked.update(adj[v])
                if not multiple:
                    break
        for v in batch:
            # mass elimination: pull indistinguishable neighbours with v
            clique = adj[v]
            indistinct = [
                u
                for u in sorted(clique)
                if not eliminated[u] and adj[u] - {v} == clique - {u}
            ]
            # eliminate v: neighbours form a clique
            nb = [u for u in sorted(clique) if not eliminated[u]]
            for idx, a in enumerate(nb):
                for b in nb[idx + 1 :]:
                    if b not in adj[a]:
                        adj[a].add(b)
                        adj[b].add(a)
                        fill_edges += 1
            eliminated[v] = True
            perm.append(v)
            remaining -= 1
            for u in nb:
                adj[u].discard(v)
            adj[v] = set()
            for u in indistinct:
                if not eliminated[u]:
                    eliminated[u] = True
                    perm.append(u)
                    remaining -= 1
                    for w in sorted(adj[u]):
                        adj[w].discard(u)
                    adj[u] = set()
            # refresh degrees locally
            for u in nb:
                if not eliminated[u]:
                    degrees[u] = len(adj[u])
    return MinDegreeResult(np.asarray(perm, dtype=np.int64), fill_edges)
