"""Fill-reducing ordering and zero-free-diagonal preprocessing.

The paper's pipeline (Section 3.1): permute rows with a maximum transversal
(Duff's MC21 algorithm) so the matrix has a zero-free diagonal, then apply a
(multiple) minimum-degree column ordering computed on the graph of
:math:`A^T A`.
"""

from .transversal import maximum_transversal, is_structurally_nonsingular
from .mindeg import minimum_degree, MinDegreeResult
from .pipeline import prepare_matrix, OrderedMatrix

__all__ = [
    "maximum_transversal",
    "is_structurally_nonsingular",
    "minimum_degree",
    "MinDegreeResult",
    "prepare_matrix",
    "OrderedMatrix",
]
