"""Maximum transversal (Duff's MC21 algorithm).

Finds a row permutation placing a structural nonzero on every diagonal
position — the preprocessing the paper applies before static symbolic
factorization ("we also permute the rows of the matrix using a transversal
obtained from Duff's algorithm to make A have a zero-free diagonal").

The implementation is the classic augmenting-path bipartite matching with a
cheap-assignment first pass, iterative (explicit stack) so deep paths cannot
overflow Python's recursion limit.
"""

from __future__ import annotations

import numpy as np

from ..sparse import CSRMatrix


def maximum_transversal(A: CSRMatrix):
    """Match columns to rows so that ``A[row_of[j], j] != 0`` structurally.

    Returns
    -------
    row_perm : np.ndarray
        Row permutation such that ``A.permute(row_perm)[j, j]`` is
        structurally nonzero for every matched column ``j``
        (``row_perm[k] = old row index placed at new position k``).
    matched : int
        Size of the maximum transversal (== n iff structurally nonsingular).
    """
    n = A.nrows
    if A.ncols != n:
        raise ValueError("transversal requires a square matrix")
    # Column-wise adjacency: rows with a nonzero in each column.
    col_rows = [[] for _ in range(n)]
    for i in range(n):
        for j in A.row_indices(i):
            col_rows[j].append(i)

    row_of_col = np.full(n, -1, dtype=np.int64)  # matched row for column j
    col_of_row = np.full(n, -1, dtype=np.int64)

    # Cheap assignment pass.
    for j in range(n):
        for i in col_rows[j]:
            if col_of_row[i] < 0:
                row_of_col[j] = i
                col_of_row[i] = j
                break

    # Augmenting paths for unmatched columns (iterative DFS over columns).
    matched = int(np.count_nonzero(row_of_col >= 0))
    for j0 in range(n):
        if row_of_col[j0] >= 0:
            continue
        visited_col = np.zeros(n, dtype=bool)
        # stack holds (column, iterator index into its candidate rows)
        stack = [(j0, 0)]
        visited_col[j0] = True
        parent_row = {}  # column -> row edge taken to reach it
        found = False
        while stack and not found:
            j, ptr = stack[-1]
            rows = col_rows[j]
            advanced = False
            while ptr < len(rows):
                i = rows[ptr]
                ptr += 1
                stack[-1] = (j, ptr)
                nxt = col_of_row[i]
                if nxt < 0:
                    # free row: augment along the stack
                    col_of_row[i] = j
                    row_of_col[j] = i
                    # walk back the DFS stack rematching
                    k = len(stack) - 2
                    child = j
                    while k >= 0:
                        pj, _ = stack[k]
                        pi = parent_row[child]
                        row_of_col[pj] = pi
                        col_of_row[pi] = pj
                        child = pj
                        k -= 1
                    found = True
                    break
                if not visited_col[nxt]:
                    visited_col[nxt] = True
                    parent_row[nxt] = i
                    stack.append((nxt, 0))
                    advanced = True
                    break
            if found:
                break
            if not advanced:
                stack.pop()
        if found:
            matched += 1

    # Build the row permutation: new position j holds old row row_of_col[j].
    row_perm = np.full(n, -1, dtype=np.int64)
    used = np.zeros(n, dtype=bool)
    for j in range(n):
        if row_of_col[j] >= 0:
            row_perm[j] = row_of_col[j]
            used[row_of_col[j]] = True
    free_rows = iter(np.flatnonzero(~used))
    for j in range(n):
        if row_perm[j] < 0:
            row_perm[j] = next(free_rows)
    return row_perm, matched


def is_structurally_nonsingular(A: CSRMatrix) -> bool:
    """True iff a full transversal exists (no identically-singular pattern)."""
    _, matched = maximum_transversal(A)
    return matched == A.nrows
