"""Compressed sparse row (CSR) matrix.

The storage convention follows the classic three-array layout: ``indptr``
(length ``nrows + 1``), ``indices`` (column indices, row-sorted) and ``data``
(values aligned with ``indices``).  Rows are kept sorted by column index and
free of duplicates; :func:`repro.sparse.coo.coo_to_csr` performs the
canonicalisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class CSRMatrix:
    """A real ``nrows x ncols`` sparse matrix in CSR form.

    Attributes
    ----------
    nrows, ncols:
        Matrix dimensions.
    indptr:
        ``int64`` array of length ``nrows + 1``; row ``i`` occupies
        ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        Column indices, sorted within each row, no duplicates.
    data:
        ``float64`` values aligned with ``indices``.
    """

    nrows: int
    ncols: int
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        if self.data is None:
            self.data = np.ones(len(self.indices), dtype=np.float64)
        else:
            self.data = np.asarray(self.data, dtype=np.float64)
        if len(self.indptr) != self.nrows + 1:
            raise ValueError(
                f"indptr has length {len(self.indptr)}, expected {self.nrows + 1}"
            )
        if len(self.indices) != len(self.data):
            raise ValueError("indices and data length mismatch")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr does not span indices")

    # -- basic queries ----------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indptr[-1])

    @property
    def shape(self) -> tuple:
        return (self.nrows, self.ncols)

    def row(self, i: int) -> tuple:
        """Return ``(indices, data)`` views of row ``i``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def row_indices(self, i: int) -> np.ndarray:
        """Column indices of row ``i`` (a view)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def get(self, i: int, j: int) -> float:
        """Value at ``(i, j)`` (0.0 if not stored).  O(log nnz_row)."""
        cols, vals = self.row(i)
        pos = np.searchsorted(cols, j)
        if pos < len(cols) and cols[pos] == j:
            return float(vals[pos])
        return 0.0

    def has_entry(self, i: int, j: int) -> bool:
        """True when ``(i, j)`` is structurally present."""
        cols = self.row_indices(i)
        pos = np.searchsorted(cols, j)
        return bool(pos < len(cols) and cols[pos] == j)

    def diagonal(self) -> np.ndarray:
        """Dense vector of the stored diagonal (0.0 where absent)."""
        n = min(self.nrows, self.ncols)
        d = np.zeros(n)
        for i in range(n):
            d[i] = self.get(i, i)
        return d

    def has_zero_free_diagonal(self) -> bool:
        """True when every diagonal position is structurally present."""
        n = min(self.nrows, self.ncols)
        return all(self.has_entry(i, i) for i in range(n))

    # -- transformations ---------------------------------------------------

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.nrows,
            self.ncols,
            self.indptr.copy(),
            self.indices.copy(),
            self.data.copy(),
        )

    def with_values(self, data) -> "CSRMatrix":
        """Same pattern, new values — the refactorization workload shape."""
        data = np.asarray(data, dtype=np.float64)
        if data.shape != (self.nnz,):
            raise ValueError(
                f"values must have shape ({self.nnz},); got {data.shape}"
            )
        return CSRMatrix(
            self.nrows,
            self.ncols,
            self.indptr.copy(),
            self.indices.copy(),
            data.copy(),
        )

    def permute(self, row_perm=None, col_perm=None) -> "CSRMatrix":
        """Return ``A[row_perm, :][:, col_perm]`` style permutation.

        ``row_perm[k] = i`` means new row ``k`` is old row ``i``;
        ``col_perm[k] = j`` means new column ``k`` is old column ``j``.
        """
        from .coo import coo_to_csr

        rows, cols, vals = [], [], []
        if row_perm is None:
            row_perm = np.arange(self.nrows)
        if col_perm is None:
            col_perm = np.arange(self.ncols)
        row_perm = np.asarray(row_perm, dtype=np.int64)
        col_perm = np.asarray(col_perm, dtype=np.int64)
        # inverse of col_perm: old column j lands at position inv[j]
        col_inv = np.empty(self.ncols, dtype=np.int64)
        col_inv[col_perm] = np.arange(self.ncols)
        for knew, iold in enumerate(row_perm):
            c, v = self.row(iold)
            rows.append(np.full(len(c), knew, dtype=np.int64))
            cols.append(col_inv[c])
            vals.append(v)
        if rows:
            rows = np.concatenate(rows)
            cols = np.concatenate(cols)
            vals = np.concatenate(vals)
        else:
            rows = np.empty(0, dtype=np.int64)
            cols = np.empty(0, dtype=np.int64)
            vals = np.empty(0)
        return coo_to_csr(self.nrows, self.ncols, rows, cols, vals)

    def pattern_rows(self) -> list:
        """List of per-row column-index arrays (views)."""
        return [self.row_indices(i) for i in range(self.nrows)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
