"""Sparse matrix substrate built from scratch on top of numpy.

The S* pipeline never relies on :mod:`scipy.sparse`; everything the paper's
system needs — compressed sparse row/column storage, pattern algebra
(transpose, :math:`A^TA` pattern, unions), structural symmetry statistics and
a Matrix-Market-flavoured I/O layer — is implemented here.
"""

from .csr import CSRMatrix
from .coo import coo_to_csr, csr_to_coo
from .ops import (
    csr_transpose,
    pattern_transpose,
    ata_pattern,
    aplusat_pattern,
    structural_symmetry,
    csr_matvec,
    csr_to_dense,
    dense_to_csr,
)
from .io import write_matrix_market, read_matrix_market

__all__ = [
    "CSRMatrix",
    "coo_to_csr",
    "csr_to_coo",
    "csr_transpose",
    "pattern_transpose",
    "ata_pattern",
    "aplusat_pattern",
    "structural_symmetry",
    "csr_matvec",
    "csr_to_dense",
    "dense_to_csr",
    "write_matrix_market",
    "read_matrix_market",
]
