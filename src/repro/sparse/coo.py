"""COO <-> CSR conversion with canonicalisation (sort + duplicate merge)."""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix


def coo_to_csr(nrows, ncols, rows, cols, vals=None, sum_duplicates=True):
    """Build a canonical :class:`CSRMatrix` from triplets.

    Entries are sorted by (row, column); duplicates are summed (the standard
    finite-element assembly convention) unless ``sum_duplicates`` is False in
    which case the last value wins.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if vals is None:
        vals = np.ones(len(rows))
    vals = np.asarray(vals, dtype=np.float64)
    if not (len(rows) == len(cols) == len(vals)):
        raise ValueError("triplet arrays must have equal length")
    if len(rows) and (rows.min() < 0 or rows.max() >= nrows):
        raise ValueError("row index out of range")
    if len(cols) and (cols.min() < 0 or cols.max() >= ncols):
        raise ValueError("column index out of range")

    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]

    if len(rows):
        key = rows * ncols + cols
        first = np.ones(len(key), dtype=bool)
        first[1:] = key[1:] != key[:-1]
        group = np.cumsum(first) - 1
        urows = rows[first]
        ucols = cols[first]
        if sum_duplicates:
            if first.all():
                # no duplicates: keep values verbatim (bincount's +0.0
                # accumulator would drop the sign of -0.0 entries)
                uvals = vals.copy()
            else:
                uvals = np.bincount(group, weights=vals, minlength=group[-1] + 1)
        else:
            uvals = np.empty(group[-1] + 1)
            uvals[group] = vals  # later entries overwrite earlier ones
    else:
        urows = rows
        ucols = cols
        uvals = vals

    indptr = np.zeros(nrows + 1, dtype=np.int64)
    np.add.at(indptr, urows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRMatrix(nrows, ncols, indptr, ucols, uvals)


def csr_to_coo(A: CSRMatrix):
    """Return ``(rows, cols, vals)`` triplet arrays of ``A``."""
    counts = np.diff(A.indptr)
    rows = np.repeat(np.arange(A.nrows, dtype=np.int64), counts)
    return rows, A.indices.copy(), A.data.copy()
