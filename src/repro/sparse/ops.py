"""Pattern algebra and small numeric kernels on CSR matrices.

These are the structural operations the S* front-end needs: transposition,
the pattern of :math:`A^T A` (whose graph drives the fill-reducing ordering),
the pattern of :math:`A^T + A`, structural-symmetry statistics (the
``sym(A)`` column of Table 1) and dense/CSR bridges used by tests.
"""

from __future__ import annotations

import numpy as np

from .coo import coo_to_csr, csr_to_coo
from .csr import CSRMatrix


def csr_transpose(A: CSRMatrix) -> CSRMatrix:
    """Numeric transpose."""
    rows, cols, vals = csr_to_coo(A)
    return coo_to_csr(A.ncols, A.nrows, cols, rows, vals)


def pattern_transpose(A: CSRMatrix) -> CSRMatrix:
    """Structural transpose (all values set to 1)."""
    rows, cols, _ = csr_to_coo(A)
    return coo_to_csr(A.ncols, A.nrows, cols, rows, np.ones(len(rows)))


def ata_pattern(A: CSRMatrix) -> CSRMatrix:
    """Structural pattern of :math:`A^T A` for a square matrix.

    :math:`(A^T A)_{jk} \\ne 0` iff some row of ``A`` holds nonzeros in both
    columns ``j`` and ``k`` — i.e. every row of ``A`` contributes a clique on
    its column support.  We build the pattern row-by-row as a union of those
    cliques, which is how the ordering code consumes it (as an adjacency
    structure).
    """
    n = A.ncols
    neighbors = [set() for _ in range(n)]
    for i in range(A.nrows):
        cols = A.row_indices(i)
        cl = cols.tolist()
        for j in cl:
            neighbors[j].update(cl)
    rows_out = []
    cols_out = []
    for j in range(n):
        nb = sorted(neighbors[j])
        rows_out.append(np.full(len(nb), j, dtype=np.int64))
        cols_out.append(np.asarray(nb, dtype=np.int64))
    rows_out = np.concatenate(rows_out) if rows_out else np.empty(0, np.int64)
    cols_out = np.concatenate(cols_out) if cols_out else np.empty(0, np.int64)
    return coo_to_csr(n, n, rows_out, cols_out, np.ones(len(rows_out)))


def aplusat_pattern(A: CSRMatrix) -> CSRMatrix:
    """Structural pattern of :math:`A + A^T` (used by the SuperLU-style
    alternative ordering the paper mentions for ``memplus``)."""
    r1, c1, _ = csr_to_coo(A)
    return coo_to_csr(
        A.nrows,
        A.ncols,
        np.concatenate([r1, c1]),
        np.concatenate([c1, r1]),
        np.ones(2 * len(r1)),
    )


def structural_symmetry(A: CSRMatrix) -> float:
    """The paper's symmetry statistic for Table 1.

    Reported there as ``|A| / sym`` style ratio: we return
    ``nnz(A + A^T) / nnz(A)`` — 1.0 for a structurally symmetric matrix and
    approaching 2.0 for a maximally nonsymmetric one, matching the paper's
    convention that *bigger means more nonsymmetric*.
    """
    both = aplusat_pattern(A)
    return both.nnz / max(A.nnz, 1)


def csr_matvec(A: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Sparse matrix-vector product ``A @ x``."""
    x = np.asarray(x, dtype=np.float64)
    y = np.zeros(A.nrows)
    for i in range(A.nrows):
        cols, vals = A.row(i)
        if len(cols):
            y[i] = vals @ x[cols]
    return y


def csr_to_dense(A: CSRMatrix) -> np.ndarray:
    """Materialise ``A`` as a dense array (tests / small examples only)."""
    D = np.zeros(A.shape)
    for i in range(A.nrows):
        cols, vals = A.row(i)
        D[i, cols] = vals
    return D


def dense_to_csr(D, drop_tol: float = 0.0) -> CSRMatrix:
    """Build a CSR matrix from a dense array, dropping |value| <= drop_tol."""
    D = np.asarray(D, dtype=np.float64)
    rows, cols = np.nonzero(np.abs(D) > drop_tol)
    return coo_to_csr(D.shape[0], D.shape[1], rows, cols, D[rows, cols])
