"""Matrix-Market-flavoured text I/O.

The original experiments used Harwell-Boeing matrices; our synthetic
replacements can be persisted/exchanged in the ubiquitous MatrixMarket
coordinate format so they can also be inspected with external tools.
Only the subset the project needs is supported: real, general/symmetric,
coordinate.
"""

from __future__ import annotations

import numpy as np

from .coo import coo_to_csr, csr_to_coo
from .csr import CSRMatrix


def write_matrix_market(path, A: CSRMatrix, comment: str = "") -> None:
    """Write ``A`` in MatrixMarket coordinate format (1-based indices)."""
    rows, cols, vals = csr_to_coo(A)
    with open(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        for line in comment.splitlines():
            fh.write(f"% {line}\n")
        fh.write(f"{A.nrows} {A.ncols} {A.nnz}\n")
        for r, c, v in zip(rows, cols, vals):
            fh.write(f"{r + 1} {c + 1} {v:.17g}\n")


def read_matrix_market(path) -> CSRMatrix:
    """Read a real coordinate MatrixMarket file (general or symmetric)."""
    with open(path) as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError("not a MatrixMarket file")
        tokens = header.lower().split()
        if "coordinate" not in tokens or "real" not in tokens and "integer" not in tokens:
            raise ValueError(f"unsupported MatrixMarket header: {header!r}")
        symmetric = "symmetric" in tokens
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        nrows, ncols, nnz = (int(t) for t in line.split())
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz)
        for k in range(nnz):
            parts = fh.readline().split()
            rows[k] = int(parts[0]) - 1
            cols[k] = int(parts[1]) - 1
            vals[k] = float(parts[2]) if len(parts) > 2 else 1.0
    if symmetric:
        off = rows != cols
        rows, cols, vals = (
            np.concatenate([rows, cols[off]]),
            np.concatenate([cols, rows[off]]),
            np.concatenate([vals, vals[off]]),
        )
    return coo_to_csr(nrows, ncols, rows, cols, vals)
