"""repro.obs — unified tracing, metrics, and critical-path profiling.

One :class:`Tracer` threads through the simulator
(``Simulator(tracer=...)``), the solvers (``SStarSolver(trace=...)``)
and the serving layer (``SolveService(tracer=...)``), recording
virtual-time spans and matched messages.  Export with
:func:`to_chrome_trace` (Perfetto-loadable), summarize with
:func:`render_summary`, analyze with :func:`profile_trace` /
:func:`reconcile`, and count things with :class:`MetricsRegistry`.
"""

from .metrics import (
    DEFAULT_TIME_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracer import (
    BARRIER_WAIT,
    BATCH,
    CHECKPOINT,
    COMPUTE,
    JOB,
    MARK,
    PHASE,
    PIPELINE_PHASES,
    QUEUE,
    RECV_WAIT,
    RETRANSMIT,
    SEND,
    TASK,
    OffsetTracer,
    PhaseClock,
    Span,
    TraceMessage,
    Tracer,
    analyze_phase_spans,
    as_tracer,
    tag_label,
)
from .export import (
    from_chrome_trace,
    render_summary,
    to_chrome_trace,
    validate_trace,
)
from .profile import (
    PathSegment,
    RankBreakdown,
    TraceProfile,
    profile_trace,
    reconcile,
)

__all__ = [
    "BARRIER_WAIT",
    "BATCH",
    "CHECKPOINT",
    "COMPUTE",
    "Counter",
    "DEFAULT_TIME_BOUNDS",
    "Gauge",
    "Histogram",
    "JOB",
    "MARK",
    "MetricsRegistry",
    "OffsetTracer",
    "PHASE",
    "PIPELINE_PHASES",
    "PathSegment",
    "PhaseClock",
    "QUEUE",
    "RECV_WAIT",
    "RETRANSMIT",
    "RankBreakdown",
    "SEND",
    "Span",
    "TASK",
    "TraceMessage",
    "TraceProfile",
    "Tracer",
    "analyze_phase_spans",
    "as_tracer",
    "from_chrome_trace",
    "profile_trace",
    "reconcile",
    "render_summary",
    "tag_label",
    "to_chrome_trace",
    "validate_trace",
]
