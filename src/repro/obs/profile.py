"""Trace-derived profiling: busy/comm/idle, critical path, overlap.

Where :mod:`repro.taskgraph.profile` *predicts* a run's shape from the
task graph and machine model, this module *measures* it from an actual
trace, and :func:`reconcile` reports the drift between the two — the
paper's prediction-vs-measurement discussions (Figs. 16–18) as one
number.

The critical path is found by walking **backward** through the span +
message graph: start at the rank that finishes last; inside a span, time
is attributed to that span; when the walk enters a ``recv_wait`` span
whose end coincides with a message arrival that the rank actually waited
for, the walk jumps to the *sender* at its send time (the wait was caused
by the peer, not by local work).  Because the simulator's instrumentation
covers every clock advance with a span, the summed segment durations
reproduce the run's total virtual time exactly (asserted within 1e-9 in
tests and by ``repro profile``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tracer import COMM_CATS, COMPUTE, RECV_WAIT, Tracer, WAIT_CATS


@dataclass
class RankBreakdown:
    """Virtual-time attribution for one rank."""

    rank: int
    total: float = 0.0
    busy: float = 0.0  # compute spans
    comm: float = 0.0  # send + retransmit_backoff spans
    idle: float = 0.0  # recv_wait + barrier_wait spans

    def pct(self, x: float) -> float:
        return 100.0 * x / self.total if self.total > 0 else 0.0


@dataclass
class PathSegment:
    """One hop of the critical path."""

    kind: str  # "span" or "message"
    track: object
    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TraceProfile:
    """Measured profile of one traced run."""

    total_time: float
    ranks: list = field(default_factory=list)  # RankBreakdown, rank order
    critical_path: list = field(default_factory=list)  # PathSegment, fwd order
    overlap_ratio: float = 0.0  # fraction of comm time overlapped w/ compute

    @property
    def critical_path_seconds(self) -> float:
        return sum(seg.duration for seg in self.critical_path)

    def top_spans(self, k: int = 5) -> list:
        """The k longest span segments on the critical path."""
        spans = [seg for seg in self.critical_path if seg.kind == "span"]
        spans.sort(key=lambda s: (-s.duration, s.start, s.name))
        return spans[:k]

    def attribution(self) -> dict:
        """Aggregate ``{"busy", "comm", "idle"}`` fractions across all
        ranks — the communication-boundedness signal the autotuner uses
        to reject configurations early (:mod:`repro.tune`)."""
        busy = sum(rb.busy for rb in self.ranks)
        comm = sum(rb.comm for rb in self.ranks)
        idle = sum(rb.idle for rb in self.ranks)
        total = busy + comm + idle
        if total <= 0.0:
            return {"busy": 1.0, "comm": 0.0, "idle": 0.0}
        return {"busy": busy / total, "comm": comm / total,
                "idle": idle / total}

    def render(self, top: int = 5) -> str:
        lines = [f"total virtual time: {self.total_time:.6e} s"]
        lines.append(
            f"critical path:      {self.critical_path_seconds:.6e} s "
            f"({len(self.critical_path)} segments)"
        )
        lines.append(f"comm/comp overlap:  {self.overlap_ratio * 100.0:.1f}%")
        lines.append("per-rank breakdown (busy / comm / idle):")
        for rb in self.ranks:
            lines.append(
                f"  rank {rb.rank:<3d} {rb.pct(rb.busy):5.1f}% busy  "
                f"{rb.pct(rb.comm):5.1f}% comm  {rb.pct(rb.idle):5.1f}% idle"
                f"   (total {rb.total:.3e} s)"
            )
        tops = self.top_spans(top)
        if tops:
            lines.append(f"top {len(tops)} critical-path spans:")
            for seg in tops:
                lines.append(
                    f"  {seg.name:<12} rank={seg.track}  "
                    f"dur={seg.duration:.3e} s  at {seg.start:.3e} s"
                )
        return "\n".join(lines)


def _rank_spans(spans):
    """Int-track spans, excluding task/phase wrappers that *contain* the
    timing spans (task spans overlap their inner compute/send spans and
    would double-count)."""
    return [s for s in spans if isinstance(s.track, int)
            and s.cat in (COMPUTE,) + COMM_CATS + WAIT_CATS]


def profile_trace(spans, messages=(), total_time: float = None) -> TraceProfile:
    """Measure a profile from trace ``spans`` + ``messages``.

    Accepts a :class:`Tracer` in place of ``spans``.  ``total_time``
    defaults to the latest rank-span end (pass ``SimResult.total_time``
    to include a trailing barrier cost not covered by spans).
    """
    if isinstance(spans, Tracer):
        tracer = spans
        spans, messages = tracer.spans, tracer.messages
    messages = list(messages)
    timed = _rank_spans(spans)

    rank_ids = sorted({s.track for s in timed})
    if total_time is None:
        total_time = max((s.end for s in timed), default=0.0)

    ranks = []
    for r in rank_ids:
        rb = RankBreakdown(rank=r, total=total_time)
        last_end = 0.0
        for s in timed:
            if s.track != r:
                continue
            d = s.end - s.start
            if s.cat == COMPUTE:
                rb.busy += d
            elif s.cat in COMM_CATS:
                rb.comm += d
            else:
                rb.idle += d
            last_end = max(last_end, s.end)
        # spans tile [0, rank clock]; whatever remains until the run's
        # total time is trailing idle (e.g. waiting for slower ranks)
        rb.idle += max(0.0, total_time - last_end)
        ranks.append(rb)

    path = _critical_path(timed, messages, rank_ids, total_time)
    overlap = _overlap_ratio(timed, total_time)
    return TraceProfile(total_time=total_time, ranks=ranks,
                        critical_path=path, overlap_ratio=overlap)


def _critical_path(timed, messages, rank_ids, total_time) -> list:
    """Backward walk from the last-finishing rank; returns forward-ordered
    :class:`PathSegment` list whose durations sum to ``total_time``."""
    if not rank_ids or total_time <= 0:
        return []
    eps = 1e-12 * max(total_time, 1.0)
    by_rank = {r: sorted((s for s in timed if s.track == r),
                         key=lambda s: (s.start, s.end)) for r in rank_ids}
    # messages keyed by (dest rank, receive time) for the wait-jump test
    msgs_to = {r: [m for m in messages if m.dest == r] for r in rank_ids}

    # start at the rank whose spans end last
    rank = max(rank_ids, key=lambda r: (by_rank[r][-1].end if by_rank[r]
                                        else 0.0, -r))
    t = total_time
    segments = []
    budget = len(timed) + len(messages) + len(rank_ids) + 8
    while t > eps and budget > 0:
        budget -= 1
        covering = None
        for s in by_rank[rank]:
            if s.start < t - eps and s.end >= t - eps:
                if covering is None or s.start > covering.start:
                    covering = s
        if covering is None:
            # gap before the rank's first span (e.g. barrier warm-up):
            # attribute it to the rank as idle and stop
            segments.append(PathSegment("span", rank, "(untracked)", 0.0, t))
            break
        seg_end = t
        if covering.cat == RECV_WAIT:
            # did a message cause this wait to end at covering.end?
            cause = None
            for m in msgs_to[rank]:
                if abs(m.t_recv - covering.end) <= eps and (
                    m.arrival is None or m.arrival > covering.start + eps
                ):
                    if cause is None or m.t_send < cause.t_send:
                        cause = m
            if cause is not None and abs(t - covering.end) <= eps:
                # transit hop: sender's clock at send → receiver unblocked
                segments.append(PathSegment(
                    "message", f"{cause.src}->{cause.dest}",
                    f"msg {cause.tag}" if not isinstance(cause.tag, tuple)
                    else "msg " + ":".join(str(x) for x in cause.tag),
                    cause.t_send, seg_end,
                ))
                rank = cause.src
                t = cause.t_send
                continue
        start = covering.start
        segments.append(PathSegment("span", rank, covering.name, start,
                                    seg_end))
        t = start
    segments.reverse()
    return segments


def _overlap_ratio(timed, total_time) -> float:
    """Fraction of comm-active time during which at least one rank is
    computing (the paper's pipelining effectiveness in Figs. 16–18)."""
    events = []  # (time, kind, +1/-1) boundaries
    for s in timed:
        if s.end <= s.start:
            continue
        if s.cat == COMPUTE:
            kind = "comp"
        elif s.cat in COMM_CATS:
            kind = "comm"
        else:
            continue
        events.append((s.start, kind, 1))
        events.append((s.end, kind, -1))
    if not events:
        return 0.0
    events.sort(key=lambda e: (e[0], e[2]))
    comm_active = 0.0
    overlapped = 0.0
    ncomp = ncomm = 0
    prev = events[0][0]
    for t, kind, delta in events:
        if t > prev:
            if ncomm > 0:
                comm_active += t - prev
                if ncomp > 0:
                    overlapped += t - prev
            prev = t
        if kind == "comp":
            ncomp += delta
        else:
            ncomm += delta
        if t > prev:
            prev = t
    return overlapped / comm_active if comm_active > 0 else 0.0


def reconcile(profile: TraceProfile, tg, spec) -> dict:
    """Compare the measured critical path against the task-graph model's
    prediction (:meth:`TaskGraph.critical_path_seconds`).  Returns a dict
    with both numbers and the relative drift — the reportable
    prediction-vs-observation gap."""
    model_cp = float(tg.critical_path_seconds(spec))
    observed_cp = profile.critical_path_seconds
    denom = max(abs(model_cp), 1e-300)
    return {
        "model_critical_path_seconds": model_cp,
        "observed_critical_path_seconds": observed_cp,
        "observed_total_seconds": profile.total_time,
        "drift": (observed_cp - model_cp) / denom,
    }
