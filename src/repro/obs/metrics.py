"""Metrics registry: counters, gauges, and virtual-time histograms.

One deterministic registry backs every layer of the stack: the simulator
counts messages/bytes/retransmits/fault injections, the solver counts
pivot perturbations, the analysis cache counts hits/misses/evictions, and
the solve service records latency histograms in *virtual* seconds.  All
values derive from simulated quantities, so the same run always yields the
same registry contents — ``as_dict()`` output is sorted and reproducible
byte for byte.

The primitives follow the usual monitoring vocabulary:

* :class:`Counter` — monotone accumulator (``inc``);
* :class:`Gauge` — last-written value with a convenience ``track_max``;
* :class:`Histogram` — bucketed distribution over virtual-time bounds.
  Raw samples are retained (runs are bounded, workloads are small) so
  exact nearest-rank percentiles stay available alongside bucket counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: default geometric bucket bounds for virtual-time histograms: 100ns..100s
DEFAULT_TIME_BOUNDS = tuple(10.0 ** e for e in range(-7, 3))


@dataclass
class Counter:
    """Monotone counter (floats allowed for byte totals)."""

    name: str
    value: float = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


@dataclass
class Gauge:
    """Last-written value."""

    name: str
    value: float = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def track_max(self, v: float) -> None:
        """Set the gauge to ``max(current, v)`` (high-water marks)."""
        self.value = max(self.value, float(v))


class Histogram:
    """Bucketed distribution with retained samples.

    ``bounds`` are the ascending upper edges of the first ``len(bounds)``
    buckets; one overflow bucket catches everything above the last edge.
    """

    def __init__(self, name: str, bounds=DEFAULT_TIME_BOUNDS):
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly ascending")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.samples = []
        self.total = 0.0

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return self.total / len(self.samples) if self.samples else 0.0

    def observe(self, v: float) -> None:
        v = float(v)
        self.samples.append(v)
        self.total += v
        for i, edge in enumerate(self.bounds):
            if v <= edge:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def percentile(self, q: float) -> float:
        """Exact nearest-rank percentile over the retained samples."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        idx = max(0, int(math.ceil(q * len(ordered))) - 1)
        return ordered[min(idx, len(ordered) - 1)]

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "buckets": [
                {"le": edge, "count": c}
                for edge, c in zip(self.bounds, self.counts)
            ] + [{"le": None, "count": self.counts[-1]}],
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
        }


@dataclass
class MetricsRegistry:
    """Get-or-create registry of named counters/gauges/histograms."""

    _counters: dict = field(default_factory=dict)
    _gauges: dict = field(default_factory=dict)
    _histograms: dict = field(default_factory=dict)

    def _check_free(self, name: str, own: dict) -> None:
        for kind, table in (("counter", self._counters),
                            ("gauge", self._gauges),
                            ("histogram", self._histograms)):
            if table is not own and name in table:
                raise TypeError(
                    f"metric {name!r} already registered as a {kind}")

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._check_free(name, self._counters)
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._check_free(name, self._gauges)
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, bounds=DEFAULT_TIME_BOUNDS) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._check_free(name, self._histograms)
            h = self._histograms[name] = Histogram(name, bounds)
        return h

    def value(self, name: str) -> float:
        """Current value of a counter or gauge (0.0 when never touched)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return 0.0

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (campaign aggregation):
        counters add, gauges keep the max, histograms pool samples."""
        for name, c in other._counters.items():
            self.counter(name).inc(c.value)
        for name, g in other._gauges.items():
            self.gauge(name).track_max(g.value)
        for name, h in other._histograms.items():
            mine = self.histogram(name, h.bounds)
            for v in h.samples:
                mine.observe(v)

    def as_dict(self) -> dict:
        """Deterministic (name-sorted) snapshot of the whole registry."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
        }
