"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON and text summary.

The JSON document follows the Trace Event Format used by Chrome's
``about:tracing`` and Perfetto's legacy importer:

* one **process per rank** (``pid = rank``, named ``"rank N"``) so the
  per-rank timelines stack like Fig. 11's Gantt rows; string tracks such
  as ``"pipeline/main"`` or ``"svc/w0"`` become additional processes
  (``pid`` ≥ 1000, assigned in sorted order — deterministic);
* every span is a complete event (``ph: "X"``) with ``ts``/``dur`` in
  microseconds of virtual time;
* every matched send→recv pair is a flow event (``ph: "s"`` at the send,
  ``ph: "f"`` with ``bp: "e"`` at the receive) sharing an ``id``, which
  Perfetto renders as an arrow between the two rank tracks.

``from_chrome_trace`` inverts ``to_chrome_trace`` (modulo the µs float
round-trip, exact for the magnitudes the simulator produces), so traces
can be saved by ``repro trace`` and profiled later by ``repro profile
--trace``.  ``validate_trace`` is the schema check the CI job runs on
emitted files.
"""

from __future__ import annotations

from .tracer import Span, TraceMessage, Tracer, tag_label

#: pid offset for non-rank (string-track) processes
_AUX_PID_BASE = 1000


def _split_track(track):
    """(process label, thread label, sort key) for a span track."""
    if isinstance(track, int):
        return f"rank {track}", "rank", ("", track)
    track = str(track)
    if "/" in track:
        proc, thread = track.split("/", 1)
    else:
        proc, thread = track, "main"
    return proc, thread, (proc, -1)


def _pid_map(spans, messages):
    """Deterministic track → (pid, tid, process name, thread name) map."""
    tracks = []
    for s in spans:
        if s.track not in tracks:
            tracks.append(s.track)
    for m in messages:
        for t in (m.src, m.dest):
            if t not in tracks:
                tracks.append(t)
    ranks = sorted(t for t in tracks if isinstance(t, int))
    aux = sorted(str(t) for t in tracks if not isinstance(t, int))

    out = {}
    for r in ranks:
        out[r] = (int(r), 0, f"rank {r}", "rank")
    procs = []
    for t in aux:
        proc, _, _ = _split_track(t)
        if proc not in procs:
            procs.append(proc)
    procs.sort()
    threads_by_proc = {p: [] for p in procs}
    for t in aux:
        proc, thread, _ = _split_track(t)
        if thread not in threads_by_proc[proc]:
            threads_by_proc[proc].append(thread)
    for t in aux:
        proc, thread, _ = _split_track(t)
        pid = _AUX_PID_BASE + procs.index(proc)
        tid = sorted(threads_by_proc[proc]).index(thread)
        out[t] = (pid, tid, proc, thread)
    return out


def to_chrome_trace(spans, messages=(), metrics=None) -> dict:
    """Build a Chrome/Perfetto ``trace_event`` document.

    Accepts a :class:`Tracer` in place of ``spans`` for convenience.
    Times are virtual seconds converted to float microseconds (``ts``
    stays unrounded so sub-µs simulator events keep full precision).
    """
    if isinstance(spans, Tracer):
        tracer = spans
        spans, messages = tracer.spans, tracer.messages
        if metrics is None:
            metrics = tracer.metrics
    pids = _pid_map(spans, messages)

    events = []
    for pid, tid, pname, tname in sorted(set(pids.values())):
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": tid,
            "args": {"name": pname},
        })
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": tname},
        })

    for s in spans:
        pid, tid, _, _ = pids[s.track]
        ev = {
            "ph": "X", "name": s.name, "cat": s.cat,
            "pid": pid, "tid": tid,
            "ts": s.start * 1e6, "dur": (s.end - s.start) * 1e6,
        }
        if s.args:
            ev["args"] = dict(s.args)
        events.append(ev)

    for i, m in enumerate(messages):
        spid, stid, _, _ = pids[m.src]
        dpid, dtid, _, _ = pids[m.dest]
        name = f"msg {tag_label(m.tag)}"
        args = {"tag": tag_label(m.tag), "nbytes": int(m.nbytes)}
        events.append({
            "ph": "s", "name": name, "cat": "msg", "id": i,
            "pid": spid, "tid": stid, "ts": m.t_send * 1e6, "args": args,
        })
        events.append({
            "ph": "f", "bp": "e", "name": name, "cat": "msg", "id": i,
            "pid": dpid, "tid": dtid, "ts": m.t_recv * 1e6, "args": args,
        })

    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "time_unit": "virtual"},
    }
    if metrics is not None:
        doc["otherData"]["metrics"] = metrics.as_dict()
    return doc


def from_chrome_trace(doc: dict):
    """Reconstruct ``(spans, messages)`` from a trace document."""
    events = doc.get("traceEvents", [])
    proc_names = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            proc_names[ev["pid"]] = ev["args"]["name"]
    thread_names = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            thread_names[(ev["pid"], ev["tid"])] = ev["args"]["name"]

    def track_of(pid, tid):
        pname = proc_names.get(pid, f"pid{pid}")
        if pname.startswith("rank ") and pid < _AUX_PID_BASE:
            return int(pname.split()[1])
        tname = thread_names.get((pid, tid), f"tid{tid}")
        return f"{pname}/{tname}"

    spans = []
    flows = {}
    for ev in events:
        ph = ev.get("ph")
        if ph == "X":
            start = ev["ts"] / 1e6
            spans.append(Span(
                track=track_of(ev["pid"], ev["tid"]),
                name=ev["name"], cat=ev.get("cat", ""),
                start=start, end=start + ev.get("dur", 0.0) / 1e6,
                args=ev.get("args"),
            ))
        elif ph in ("s", "f"):
            flows.setdefault(ev["id"], {})[ph] = ev

    messages = []
    for fid in sorted(flows):
        pair = flows[fid]
        if "s" not in pair or "f" not in pair:
            continue
        s, f = pair["s"], pair["f"]
        args = s.get("args", {})
        messages.append(TraceMessage(
            src=track_of(s["pid"], s["tid"]),
            dest=track_of(f["pid"], f["tid"]),
            tag=args.get("tag", s.get("name", "")),
            t_send=s["ts"] / 1e6, t_recv=f["ts"] / 1e6,
            nbytes=int(args.get("nbytes", 0)),
        ))
    return spans, messages


def validate_trace(doc) -> list:
    """Schema-check a trace document; returns a list of problem strings
    (empty when the document is clean).  This is what ``repro trace
    --check`` and the CI observability job run on emitted JSON."""
    problems = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    if not events:
        problems.append("traceEvents is empty")

    named = set()
    flows = {}
    for i, ev in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M", "s", "f"):
            problems.append(f"{where}: unknown ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: {key} must be an int")
        if ph == "M":
            if ev.get("name") not in ("process_name", "thread_name"):
                problems.append(f"{where}: bad metadata name {ev.get('name')!r}")
            elif not isinstance(ev.get("args", {}).get("name"), str):
                problems.append(f"{where}: metadata args.name missing")
            elif ev["name"] == "process_name":
                named.add(ev["pid"])
            continue
        if not isinstance(ev.get("ts"), (int, float)):
            problems.append(f"{where}: ts must be a number")
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: name must be a string")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)):
                problems.append(f"{where}: X event needs numeric dur")
            elif dur < 0:
                problems.append(f"{where}: negative dur")
        else:
            if "id" not in ev:
                problems.append(f"{where}: flow event needs id")
            else:
                flows.setdefault(ev["id"], {})[ph] = ev
            if ph == "f" and ev.get("bp") != "e":
                problems.append(f"{where}: flow finish should set bp='e'")

    for pid in sorted({ev["pid"] for ev in events
                       if isinstance(ev, dict) and isinstance(ev.get("pid"), int)}):
        if pid not in named:
            problems.append(f"pid {pid} has no process_name metadata")
    for fid in sorted(flows):
        pair = flows[fid]
        if "s" not in pair:
            problems.append(f"flow {fid}: finish without start")
        elif "f" not in pair:
            problems.append(f"flow {fid}: start without finish")
        elif pair["f"]["ts"] < pair["s"]["ts"]:
            problems.append(f"flow {fid}: finish before start")
    return problems


def render_summary(spans, messages=(), metrics=None, width: int = 72) -> str:
    """Deterministic plain-text trace summary (per-track span rollup)."""
    if isinstance(spans, Tracer):
        tracer = spans
        spans, messages = tracer.spans, tracer.messages
        if metrics is None:
            metrics = tracer.metrics

    tracks = []
    for s in spans:
        if s.track not in tracks:
            tracks.append(s.track)
    tracks = (sorted(t for t in tracks if isinstance(t, int))
              + sorted(str(t) for t in tracks if not isinstance(t, int)))

    lines = ["trace summary", "=" * len("trace summary")]
    lines.append(f"spans: {len(spans)}  messages: {len(list(messages))}")
    for track in tracks:
        mine = [s for s in spans
                if s.track == track or str(s.track) == str(track)]
        by_cat = {}
        for s in mine:
            by_cat[s.cat] = by_cat.get(s.cat, 0.0) + (s.end - s.start)
        end = max((s.end for s in mine), default=0.0)
        label = f"rank {track}" if isinstance(track, int) else str(track)
        cats = "  ".join(f"{c}={by_cat[c]:.3e}s" for c in sorted(by_cat))
        lines.append(f"{label:<16} spans={len(mine):<5d} end={end:.3e}s  {cats}")
    if metrics is not None:
        snap = metrics.as_dict()
        if snap["counters"]:
            lines.append("counters:")
            for name in sorted(snap["counters"]):
                lines.append(f"  {name} = {snap['counters'][name]:g}")
    return "\n".join(lines)
