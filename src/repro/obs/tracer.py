"""Span tracer: labeled virtual-time intervals across the whole stack.

A :class:`Tracer` collects :class:`Span` records (a named interval on a
*track*) and :class:`TraceMessage` records (a matched send→recv pair), all
stamped in **virtual time** — the discrete-event clocks of the simulator
and the modeled phase costs of the sequential pipeline — so traces are
bit-reproducible across host scheduling orders (asserted by the replay
tests).

Tracks
------
* an ``int`` track is a simulator rank (exported as one Perfetto process
  per rank);
* a ``str`` track names a logical timeline, with an optional
  ``"process/thread"`` split: ``"pipeline/main"`` for the sequential
  analyze/numfact phases, ``"svc/w0"`` for a service worker lane,
  ``"svc/job3"`` for a job's queued→running lifecycle, ``"ckpt/rounds"``
  for checkpoint/restart rounds.

Zero overhead when disabled: every instrumentation site in the simulator,
solver and service is guarded by ``if tracer is not None`` — no tracer, no
object construction, no appends (``BENCH_trace_overhead.json`` measures
this).

Categories are fixed strings (``compute``, ``send``, ``recv_wait``,
``retransmit_backoff``, ``barrier_wait``, ``checkpoint``, ``task``,
``phase``, plus the service's ``queue``/``job``/``batch``) so exporters
and the profiler can classify spans without string parsing.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from .metrics import MetricsRegistry

#: slotted record classes where the runtime supports it (keeps the
#: per-span allocation cost low on the simulator hot path)
_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}

# -- span categories --------------------------------------------------------

COMPUTE = "compute"
SEND = "send"
RECV_WAIT = "recv_wait"
RETRANSMIT = "retransmit_backoff"
BARRIER_WAIT = "barrier_wait"
CHECKPOINT = "checkpoint"
TASK = "task"  # the rank programs' labeled task spans (F3, U3,5, U2D4)
PHASE = "phase"  # pipeline phases: transversal/ordering/.../trisolve
MARK = "mark"  # zero-length instants
QUEUE = "queue"  # service: job waiting in the admission queue
JOB = "job"  # service: job running on a worker lane
BATCH = "batch"  # service: one coalesced multi-RHS batch on a lane

#: the sequential pipeline's phase names, in execution order
PIPELINE_PHASES = (
    "transversal", "ordering", "symbolic", "partition", "numfact", "trisolve",
)

#: categories counted as communication by the profiler
COMM_CATS = (SEND, RETRANSMIT)
#: categories counted as waiting (idle) by the profiler
WAIT_CATS = (RECV_WAIT, BARRIER_WAIT)

#: modeled virtual seconds per work unit for the analyze-phase spans
#: (deterministic stand-ins for the pointer-chasing integer phases; their
#: sum over nnz/factor entries tracks the serving layer's analyze model)
PHASE_UNIT_SECONDS = {
    "transversal": 25e-9,  # per nonzero of A
    "ordering": 55e-9,  # per nonzero of A
    "symbolic": 30e-9,  # per factor entry
    "partition": 10e-9,  # per column
}


def tag_label(tag) -> str:
    """Compact human-readable label for a message tag tuple."""
    if isinstance(tag, tuple):
        return ":".join(str(t) for t in tag)
    return str(tag)


@dataclass(**_SLOTS)
class Span:
    """A labeled interval of virtual time on one track."""

    track: object  # int rank or "process/thread" string
    name: str
    cat: str
    start: float
    end: float
    args: dict = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def key(self) -> tuple:
        """Deterministic comparison key (used by the replay tests)."""
        return (repr(self.track), self.name, self.cat, self.start, self.end)


@dataclass(**_SLOTS)
class TraceMessage:
    """One matched send→recv transfer (rendered as a Perfetto flow arrow)."""

    src: object
    dest: object
    tag: object
    t_send: float  # sender clock when the send was issued
    t_recv: float  # receiver clock at consumption
    nbytes: int = 0
    arrival: float = None  # mailbox deposit time (== t_recv when it bound)

    def key(self) -> tuple:
        return (repr(self.src), repr(self.dest), tag_label(self.tag),
                self.t_send, self.t_recv, self.nbytes)


class Tracer:
    """Collects spans and messages; owns a :class:`MetricsRegistry`.

    Pass one tracer through ``Simulator(tracer=...)``,
    ``SStarSolver(trace=...)`` and ``SolveService(tracer=...)`` to get a
    single unified timeline; every layer appends to the same lists.
    """

    def __init__(self, metrics: MetricsRegistry = None):
        self.spans = []
        self.messages = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # -- recording -----------------------------------------------------

    def span(self, track, name, cat, start, end, args=None) -> Span:
        s = Span(track, name, cat, float(start), float(end), args)
        self.spans.append(s)
        return s

    def instant(self, track, name, cat=MARK, t=0.0, args=None) -> Span:
        return self.span(track, name, cat, t, t, args)

    def message(self, src, dest, tag, t_send, t_recv, nbytes=0,
                arrival=None) -> TraceMessage:
        m = TraceMessage(src, dest, tag, float(t_send), float(t_recv),
                         int(nbytes), arrival)
        self.messages.append(m)
        return m

    # -- queries -------------------------------------------------------

    def tracks(self) -> list:
        """All tracks with at least one span, ints first, then strings."""
        seen = []
        for s in self.spans:
            if s.track not in seen:
                seen.append(s.track)
        ints = sorted(t for t in seen if isinstance(t, int))
        strs = sorted(t for t in seen if not isinstance(t, int))
        return ints + strs

    def track_spans(self, track) -> list:
        return [s for s in self.spans if s.track == track]

    def track_end(self, track) -> float:
        """Latest span end on ``track`` (0.0 when the track is empty)."""
        return max((s.end for s in self.spans if s.track == track),
                   default=0.0)

    def offset(self, dt: float, extra_args: dict = None) -> "OffsetTracer":
        """A recording proxy that shifts every timestamp by ``dt`` —
        used by checkpoint/restart to splice per-round simulations (each
        starting at virtual 0) onto one continuous timeline."""
        return OffsetTracer(self, dt, extra_args)


class OffsetTracer:
    """Forwarding proxy: same span/message API, timestamps shifted."""

    def __init__(self, base: Tracer, dt: float, extra_args: dict = None):
        self._base = base
        self._dt = float(dt)
        self._extra = extra_args

    @property
    def metrics(self) -> MetricsRegistry:
        return self._base.metrics

    @property
    def spans(self) -> list:
        return self._base.spans

    @property
    def messages(self) -> list:
        return self._base.messages

    def _merge(self, args):
        if self._extra is None:
            return args
        out = dict(self._extra)
        if args:
            out.update(args)
        return out

    def span(self, track, name, cat, start, end, args=None) -> Span:
        return self._base.span(track, name, cat, start + self._dt,
                               end + self._dt, self._merge(args))

    def instant(self, track, name, cat=MARK, t=0.0, args=None) -> Span:
        return self._base.instant(track, name, cat, t + self._dt,
                                  self._merge(args))

    def message(self, src, dest, tag, t_send, t_recv, nbytes=0,
                arrival=None) -> TraceMessage:
        return self._base.message(
            src, dest, tag, t_send + self._dt, t_recv + self._dt, nbytes,
            None if arrival is None else arrival + self._dt,
        )

    def track_end(self, track) -> float:
        return self._base.track_end(track)

    def offset(self, dt: float, extra_args: dict = None) -> "OffsetTracer":
        merged = dict(self._extra or {})
        merged.update(extra_args or {})
        return OffsetTracer(self._base, self._dt + dt, merged or None)


def as_tracer(trace) -> Tracer:
    """Normalise a ``trace=`` option: ``True`` → fresh tracer, a tracer
    passes through, ``None``/``False`` → ``None`` (tracing off)."""
    if trace is None or trace is False:
        return None
    if trace is True:
        return Tracer()
    return trace


@dataclass
class PhaseClock:
    """Cursor for laying consecutive phase spans on one track."""

    tracer: object
    track: str = "pipeline/main"
    t: float = 0.0

    def phase(self, name: str, seconds: float, args: dict = None) -> float:
        """Append a phase span of modeled ``seconds``; returns its end."""
        t0 = self.t
        self.t = t0 + max(float(seconds), 0.0)
        self.tracer.span(self.track, name, PHASE, t0, self.t, args)
        return self.t


def analyze_phase_spans(tracer, *, nnz: int, n: int, factor_entries: int,
                        t0: float = 0.0, track: str = "pipeline/main") -> float:
    """Emit the four analyze-phase spans with modeled durations; returns
    the cursor after the last one.  Durations are deterministic functions
    of the problem size (virtual time, not wall time)."""
    clk = PhaseClock(tracer, track, t0)
    clk.phase("transversal", PHASE_UNIT_SECONDS["transversal"] * nnz,
              {"nnz": int(nnz)})
    clk.phase("ordering", PHASE_UNIT_SECONDS["ordering"] * nnz,
              {"nnz": int(nnz)})
    clk.phase("symbolic", PHASE_UNIT_SECONDS["symbolic"] * factor_entries,
              {"factor_entries": int(factor_entries)})
    clk.phase("partition", PHASE_UNIT_SECONDS["partition"] * n, {"n": int(n)})
    return clk.t
