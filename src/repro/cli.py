"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``   write a synthetic suite matrix as a MatrixMarket file
``info``       structural statistics of a matrix (order, nnz, symmetry,
               predicted fill vs dynamic fill)
``factor``     run the S* factorization and print the report
``solve``      factor and solve ``A x = b`` (random or file rhs)
``simulate``   run a parallel factorization on the simulated T3D/T3E
``trace``      run a traced factorization and write a Chrome/Perfetto
               trace_event JSON (per-rank spans + send→recv flow arrows)
``profile``    per-rank busy/comm/idle breakdown, critical path and
               model-vs-observed drift from a traced run (or a saved trace)
``validate``   run the full invariant battery on a matrix
``verify-comm`` static + dynamic + replay communication-protocol analyses
``lint``       dataflow static analysis: determinism (D1xx) and zero-copy
               aliasing (Z2xx) rules over the codebase
``serve-demo`` run a synthetic workload through the SolveService front end
``chaos``      seeded fault-injection campaign over the 1D/2D/resilient
               solvers and the service, with oracle checks and optional
               failing-schedule shrinking to a JSON repro artifact
``bench-service`` cold factor vs cached refactor vs batched-RHS timings
``tune``       model-guided autotuning: prune the block-size/grid/layout
               space with the Eq. (4) model, rank survivors with budgeted
               successive-halving simulator probes
``suite``      list the built-in suite matrices
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _load(path):
    from .sparse import read_matrix_market

    return read_matrix_market(path)


def cmd_generate(args) -> int:
    from .matrices import get_matrix, SUITE
    from .sparse import write_matrix_market

    if args.name not in SUITE:
        print(f"unknown matrix {args.name!r}; see `python -m repro suite`",
              file=sys.stderr)
        return 2
    A = get_matrix(args.name, args.scale)
    write_matrix_market(args.output, A, comment=f"repro suite {args.name} ({args.scale})")
    print(f"wrote {args.output}: n={A.nrows}, nnz={A.nnz}")
    return 0


def cmd_info(args) -> int:
    from .baselines import superlu_like_factor
    from .ordering import prepare_matrix
    from .sparse import structural_symmetry
    from .symbolic import static_symbolic_factorization

    A = _load(args.matrix)
    print(f"matrix   : {args.matrix}")
    print(f"order    : {A.nrows} x {A.ncols}")
    print(f"nnz      : {A.nnz}")
    print(f"symmetry : {structural_symmetry(A):.3f}  (1.0 = symmetric pattern)")
    om = prepare_matrix(A, ordering=args.ordering)
    sym = static_symbolic_factorization(om.A)
    print(f"static factor entries (S*)      : {sym.factor_entries}")
    if not args.skip_dynamic:
        dyn = superlu_like_factor(om.A)
        print(f"dynamic factor entries (SuperLU): {dyn.factor_entries}")
        print(f"overestimation ratio            : "
              f"{sym.factor_entries / max(dyn.factor_entries, 1):.2f}")
    return 0


def cmd_factor(args) -> int:
    from . import SStarSolver

    A = _load(args.matrix)
    solver = SStarSolver(
        block_size=args.block_size,
        amalgamation=args.amalgamation,
        pivot_threshold=args.threshold,
    ).factor(A)
    r = solver.report
    print(f"n={r.n} nnz={r.nnz} blocks={r.supernode_blocks}")
    print(f"factor entries : {r.factor_entries}")
    print(f"flops          : {r.flops:.6g}")
    print(f"dgemm fraction : {r.dgemm_fraction:.3f}")
    print(f"interchanges   : {solver.factorization.num_interchanges()}")
    return 0


def cmd_solve(args) -> int:
    from . import SStarSolver
    from .analysis import backward_error, iterative_refinement
    from .machine import FaultPlan
    from .sparse import csr_matvec

    A = _load(args.matrix)
    if args.rhs:
        b = np.loadtxt(args.rhs)
    else:
        rng = np.random.default_rng(args.seed)
        b = rng.uniform(-1, 1, A.nrows)
    faults = FaultPlan.from_json(args.faults) if args.faults else None
    method, nprocs = args.method, args.nprocs
    if faults is not None and method == "sequential":
        # fault injection needs the simulated machine
        method, nprocs = "1d-ca", max(nprocs, 4)
    solver = SStarSolver(
        pivot_threshold=args.threshold,
        nprocs=nprocs,
        method=method,
        machine=args.machine,
        perturb=args.perturb,
        # the explicit --refine path below does its own refinement; keep the
        # solver's automatic escalation out of its way
        refine="never" if args.refine else "auto",
        faults=faults,
        reliable=True if faults is not None else None,
        ckpt_interval=args.ckpt_interval,
    ).factor(A)
    if solver.report.perturbed_pivots:
        print(f"perturbed pivots  : {solver.report.perturbed_pivots} "
              f"(growth {solver.report.growth_factor:.3g})")
    if solver.report.restarts:
        print(f"crash restarts    : {solver.report.restarts} "
              f"(finished on {solver.resilient_result.nprocs_final} ranks)")
    if args.refine:
        x, history = iterative_refinement(A, solver.solve, b)
        print("refinement backward errors: "
              + " -> ".join(f"{h:.2e}" for h in history))
    else:
        x = solver.solve(b)
    resid = np.linalg.norm(csr_matvec(A, x) - b) / max(np.linalg.norm(b), 1e-300)
    print(f"relative residual : {resid:.3e}")
    print(f"backward error    : {backward_error(A, x, b):.3e}")
    if args.output:
        np.savetxt(args.output, x)
        print(f"solution written to {args.output}")
    return 0


def cmd_simulate(args) -> int:
    from . import SStarSolver
    from .machine import FaultPlan

    A = _load(args.matrix)
    solver = SStarSolver(
        nprocs=args.nprocs, method=args.method, machine=args.machine,
        faults=FaultPlan.from_json(args.faults) if args.faults else None,
        reliable=True if args.reliable else None,
        ckpt_interval=args.ckpt_interval,
    ).factor(A)
    r = solver.report
    print(f"method={args.method} machine={args.machine} P={args.nprocs}")
    print(f"modeled parallel time : {r.parallel_seconds:.6f} s")
    print(f"messages / bytes      : {r.messages} / {r.bytes_sent}")
    print(f"achieved MFLOPS (S* flops basis): "
          f"{r.flops / r.parallel_seconds / 1e6:.1f}")
    if solver.sim_result is not None and solver.sim_result.fault_stats is not None:
        fs = solver.sim_result.fault_stats
        if fs.total_injected() or fs.retransmits:
            print(f"faults injected       : {fs.dropped} dropped, "
                  f"{fs.duplicated} duplicated, {fs.delayed} delayed, "
                  f"{fs.corrupted} corrupted; {fs.retransmits} retransmits")
    if solver.resilient_result is not None:
        res = solver.resilient_result
        print(f"checkpoint rounds     : {len(res.rounds)} "
              f"({r.restarts} restarted after crashes; finished on "
              f"{res.nprocs_final} ranks)")
    return 0


#: ``repro trace``/``repro profile`` mode shorthands
_TRACE_MODES = {"1d": "1d-rapid", "2d": "2d"}


def _traced_run(args):
    """Factor (and solve once) with a fresh tracer; returns the solver."""
    from . import SStarSolver
    from .obs import Tracer

    method = _TRACE_MODES.get(args.mode, args.mode)
    A = _load(args.matrix)
    solver = SStarSolver(
        nprocs=args.nprocs, method=method, machine=args.machine,
        trace=Tracer(),
    ).factor(A)
    solver.solve(np.ones(A.nrows))  # cover the trisolve phase too
    return solver


def cmd_trace(args) -> int:
    import json

    from .obs import render_summary, to_chrome_trace, validate_trace

    solver = _traced_run(args)
    tracer = solver.tracer
    doc = to_chrome_trace(tracer)
    with open(args.out, "w") as f:
        json.dump(doc, f)
    print(f"wrote {args.out}: {len(doc['traceEvents'])} events "
          f"({len(tracer.spans)} spans, {len(tracer.messages)} messages)")
    print(render_summary(tracer))
    if args.check:
        problems = validate_trace(doc)
        if problems:
            for p in problems:
                print(f"schema: {p}", file=sys.stderr)
            return 1
        print("schema: OK")
    return 0


def cmd_profile(args) -> int:
    from .obs import from_chrome_trace, profile_trace, reconcile

    if args.trace:
        import json

        with open(args.trace) as f:
            doc = json.load(f)
        spans, messages = from_chrome_trace(doc)
        prof = profile_trace(spans, messages)
        print(f"trace    : {args.trace}")
        print(prof.render(args.top))
        return 0
    if not args.matrix:
        print("profile: give a matrix to run, or --trace FILE to load",
              file=sys.stderr)
        return 2
    solver = _traced_run(args)
    total = (
        solver.sim_result.total_time
        if solver.sim_result is not None else None
    )
    prof = profile_trace(solver.tracer, total_time=total)
    print(f"matrix   : {args.matrix}  mode={args.mode} P={args.nprocs} "
          f"machine={args.machine}")
    print(prof.render(args.top))
    if solver.sim_result is not None:
        from .taskgraph import build_task_graph

        tg = build_task_graph(solver._artifacts.bstruct)
        rec = reconcile(prof, tg, solver.spec)
        print(f"model critical path : "
              f"{rec['model_critical_path_seconds']:.6e} s")
        print(f"model-vs-observed drift: {rec['drift'] * 100.0:+.1f}%")
        err = abs(prof.critical_path_seconds - total)
        print(f"critical path vs simulator total: |diff| = {err:.3e} s")
    return 0


def cmd_validate(args) -> int:
    from .api import format_report, validate_matrix

    A = _load(args.matrix)
    results = validate_matrix(A, nprocs=args.nprocs,
                              check_parallel=not args.skip_parallel)
    print(format_report(results))
    return 0 if all(r.passed for r in results) else 1


_SEVERITY_ORDER = ("note", "warning", "error")


def _verify_comm_exit(counts, fail_on) -> int:
    """Exit code from severity counts and the ``--fail-on`` threshold."""
    if fail_on == "never":
        return 0
    thr = _SEVERITY_ORDER.index(fail_on)
    n = sum(c for s, c in counts.items() if _SEVERITY_ORDER.index(s) >= thr)
    return 1 if n else 0


def cmd_verify_comm(args) -> int:
    import json

    from .machine import T3D, T3E, GENERIC
    from .verify import (
        check_run,
        lint_file,
        lint_parallel_modules,
        replay_check,
    )

    spec = {"T3D": T3D, "T3E": T3E, "GENERIC": GENERIC}[args.machine]
    counts = {"note": 0, "warning": 0, "error": 0}
    doc = {"static": {}, "dynamic": [], "replay": [], "faults": {}}
    out = (lambda *a, **k: None) if args.json else print

    def finish() -> int:
        failures = sum(counts.values())
        code = _verify_comm_exit(counts, args.fail_on)
        if args.json:
            doc["counts"] = dict(counts)
            doc["fail_on"] = args.fail_on
            doc["ok"] = code == 0
            print(json.dumps(doc, indent=2, sort_keys=True, default=str))
        else:
            print(f"\n{'PASS' if code == 0 else 'FAIL'}: "
                  f"{failures} violation(s)")
        return code

    # -- 1. static comm-lint ----------------------------------------------
    out("== static comm-lint ==")
    if args.module:
        try:
            lint_results = {m: lint_file(m) for m in args.module}
        except OSError as e:
            print(f"cannot read module: {e}", file=sys.stderr)
            return 2
    else:
        lint_results = lint_parallel_modules()
    for path, findings in sorted(lint_results.items()):
        name = path.rsplit("/", 1)[-1]
        doc["static"][name] = [f.as_dict() for f in findings]
        if findings:
            for f in findings:
                counts[f.severity] = counts.get(f.severity, 0) + 1
            out(f"{name}: {len(findings)} finding(s)")
            for f in findings:
                out(f"  {f}")
        else:
            out(f"{name}: OK")

    if args.static_only:
        return finish()

    # -- 2+3. dynamic trace check and determinism replay -------------------
    from .matrices import random_nonsymmetric
    from .numfact import LUFactorization
    from .ordering import prepare_matrix
    from .parallel import run_1d, run_2d, run_1d_trisolve, run_2d_trisolve
    from .sparse import read_matrix_market
    from .supernodes import build_block_structure, build_partition
    from .symbolic import static_symbolic_factorization
    from .taskgraph import build_task_graph

    if args.matrix:
        A = read_matrix_market(args.matrix)
    else:
        if args.n < 10:
            print("--n must be at least 10 (need a nontrivial block "
                  "structure to exercise the protocols)", file=sys.stderr)
            return 2
        A = random_nonsymmetric(args.n, density=0.06, seed=args.seed)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=args.block_size, amalgamation=4)
    bstruct = build_block_structure(sym, part)
    tg = build_task_graph(bstruct)
    P = args.nprocs
    b = np.arange(float(om.A.nrows))

    lu_box = {}

    def runner_1d(method):
        def run(sim_opts):
            res = run_1d(om.A, part, bstruct, P, spec, method=method, tg=tg,
                         sim_opts=sim_opts)
            lu_box.setdefault(method, (res.factor, res.schedule))
            return res
        return run

    def runner_2d(sync):
        return lambda sim_opts: run_2d(om.A, part, bstruct, P, spec,
                                       synchronous=sync, sim_opts=sim_opts)

    def runner_tri1d(sim_opts):
        factor, schedule = lu_box["rapid"]
        lu = LUFactorization(factor, sym, part, bstruct, None)
        return run_1d_trisolve(lu, schedule.owner, b, P, spec, sim_opts=sim_opts)

    def runner_tri2d(sim_opts):
        factor, _ = lu_box["rapid"]
        lu = LUFactorization(factor, sym, part, bstruct, None)
        return run_2d_trisolve(lu, b, P, spec, sim_opts=sim_opts)

    targets = [
        ("1d-rapid", runner_1d("rapid"), True),
        ("1d-ca", runner_1d("ca"), True),
        ("2d", runner_2d(False), False),
        ("2d-sync", runner_2d(True), False),
        ("trisolve-1d", runner_tri1d, False),
        ("trisolve-2d", runner_tri2d, False),
    ]
    if args.codes:
        wanted = set(args.codes.split(","))
        unknown = wanted - {t[0] for t in targets}
        if unknown:
            print(f"unknown codes: {sorted(unknown)}", file=sys.stderr)
            return 2
        targets = [t for t in targets if t[0] in wanted]
    if any(t[0].startswith("trisolve") for t in targets) and not any(
        t[0] == "1d-rapid" for t in targets
    ):
        # the trisolve runners reuse the rapid factorization
        runner_1d("rapid")({"trace": False})

    out(f"\n== dynamic trace check (P={P}, {args.machine}, "
        f"n={om.A.nrows}) ==")
    runs = {}
    for name, runner, with_dag in targets:
        res = runner({"trace": True})
        runs[name] = runner
        sim = res.sim if hasattr(res, "sim") else res
        if with_dag:
            report = check_run(sim, spec=spec, tg=tg,
                               schedule=res.schedule)
        else:
            report = check_run(sim, spec=spec)
        out(f"{name:12s}: {report.summary()}")
        for v in report.violations:
            out(f"  {v}")
        counts["error"] += len(report.violations)
        doc["dynamic"].append({
            "target": name,
            "summary": report.summary(),
            "violations": [
                {"rule": v.rule, "message": v.message}
                for v in report.violations
            ],
        })

    if not args.skip_replay:
        out(f"\n== determinism replay ({args.replays} host orders) ==")
        for name, runner, _ in targets:
            rep = replay_check(runner, P, n_orders=args.replays)
            out(f"{name:12s}: {rep.summary()}")
            for m in rep.mismatches:
                out(f"  {m}")
            counts["error"] += len(rep.mismatches)
            doc["replay"].append({
                "target": name,
                "summary": rep.summary(),
                "mismatches": [str(m) for m in rep.mismatches],
            })

    # -- 4. fault injection: recovered runs must still satisfy the protocol
    if args.fault_rate > 0 or args.crash_recovery:
        from .machine import FaultPlan
        from .parallel import run_1d_resilient

        out(f"\n== fault-injection trace check "
            f"(drop rate {args.fault_rate}, seed {args.fault_seed}) ==")

        def faulty_runner(faults, sim_opts):
            opts = dict(sim_opts)
            opts.update({"faults": faults, "reliable": True})
            return run_1d(om.A, part, bstruct, P, spec, method="ca", tg=tg,
                          sim_opts=opts)

        if args.fault_rate > 0:
            plan = FaultPlan.drops(args.fault_rate, seed=args.fault_seed)
            res = faulty_runner(plan, {"trace": True})
            report = check_run(res.sim, spec=spec, tg=tg, schedule=res.schedule)
            fs = res.sim.fault_stats
            out(f"1d-ca+drops : {report.summary()} "
                f"({fs.dropped} dropped, {fs.retransmits} retransmits)")
            for v in report.violations:
                out(f"  {v}")
            counts["error"] += len(report.violations)
            doc["faults"]["drops"] = {
                "summary": report.summary(),
                "dropped": fs.dropped,
                "retransmits": fs.retransmits,
                "violations": [
                    {"rule": v.rule, "message": v.message}
                    for v in report.violations
                ],
            }
            if not args.skip_replay:
                rep = replay_check(
                    lambda so: faulty_runner(plan, so), P,
                    n_orders=args.replays,
                )
                out(f"faulty replay: {rep.summary()}")
                for m in rep.mismatches:
                    out(f"  {m}")
                counts["error"] += len(rep.mismatches)
                doc["faults"]["drops_replay"] = {
                    "summary": rep.summary(),
                    "mismatches": [str(m) for m in rep.mismatches],
                }

        if args.crash_recovery:
            # crash a rank mid-factorization, recover via checkpoint/restart
            # and require every committed round's trace to pass the checks
            base = run_1d(om.A, part, bstruct, P, spec, method="ca", tg=tg)
            plan = FaultPlan.drops(args.fault_rate, seed=args.fault_seed)
            plan = plan.with_crash(P - 1, 0.4 * base.sim.total_time)
            rres = run_1d_resilient(
                om.A, part, bstruct, P, spec, method="ca", faults=plan,
                reliable=True, sim_opts={"trace": True},
            )
            nbad = sum(1 for r in rres.rounds if not r.ok)
            out(f"crash-recovery: {len(rres.rounds)} rounds, {nbad} "
                f"restarted, finished on {rres.nprocs_final} ranks")
            crash_doc = {"rounds": len(rres.rounds), "restarted": nbad,
                         "violations": []}
            for i, sim in enumerate(rres.results):
                report = check_run(sim, spec=spec)
                if report.violations:
                    out(f"  round {i}: {report.summary()}")
                    for v in report.violations:
                        out(f"    {v}")
                counts["error"] += len(report.violations)
                crash_doc["violations"].extend(
                    {"round": i, "rule": v.rule, "message": v.message}
                    for v in report.violations
                )
            recovered_ok = (
                set(base.factor.blocks) == set(rres.factor.blocks)
                and all(
                    np.array_equal(base.factor.blocks[key],
                                   rres.factor.blocks[key])
                    for key in base.factor.blocks
                )
                and base.factor.pivot_seq == rres.factor.pivot_seq
            )
            out(f"recovered factor bit-identical to fault-free: "
                f"{'yes' if recovered_ok else 'NO'}")
            if not recovered_ok:
                counts["error"] += 1
            crash_doc["recovered_ok"] = recovered_ok
            doc["faults"]["crash_recovery"] = crash_doc

    return finish()


def cmd_lint(args) -> int:
    from pathlib import Path

    from .lint import count_at_or_above, lint_paths, render_json, render_text

    paths = args.paths or [str(Path(__file__).resolve().parent)]
    select = args.select.split(",") if args.select else None
    env_names = tuple(args.env_name) if args.env_name else ("env",)

    if args.certify is not None or args.certify_check:
        from .lint.certify import build_certificate, default_certificate_path

        cert = build_certificate(
            args.paths or None, env_names=env_names
        )
        if args.certify_check:
            path = default_certificate_path()
            try:
                from .lint.certify import ZeroCopyCertificate

                committed = ZeroCopyCertificate.load(path)
            except (OSError, ValueError):
                print(f"certificate missing or unreadable: {path}")
                return 1
            fresh = {m: (e["sha256"], e["clean"])
                     for m, e in cert.modules.items()}
            old = {m: (e.get("sha256"), e.get("clean"))
                   for m, e in committed.modules.items()}
            if fresh != old:
                stale = sorted(
                    m for m in set(fresh) | set(old)
                    if fresh.get(m) != old.get(m)
                )
                print(f"zero-copy certificate is stale ({len(stale)} "
                      f"module(s) differ): {', '.join(stale[:8])}"
                      f"{', ...' if len(stale) > 8 else ''}")
                print("regenerate with: repro lint --certify")
                return 1
            print(f"zero-copy certificate is fresh: "
                  f"{len(cert.clean_modules())} clean module(s), "
                  f"{len(cert.dirty_modules())} uncertified")
            return 0
        path = Path(args.certify) if args.certify else default_certificate_path()
        cert.write(path)
        dirty = cert.dirty_modules()
        print(f"wrote {path}: {len(cert.clean_modules())} module(s) "
              f"certified zero-copy clean, {len(dirty)} uncertified"
              + (f" ({', '.join(dirty[:6])}"
                 f"{', ...' if len(dirty) > 6 else ''})" if dirty else ""))
        return 0

    findings = lint_paths(paths, env_names=env_names, select=select)
    if args.json:
        fail_on = None if args.fail_on == "never" else args.fail_on
        print(render_json(findings, fail_on=fail_on))
    else:
        print(render_text(findings))
    if args.fail_on == "never":
        return 0
    return 1 if count_at_or_above(findings, args.fail_on) else 0


def _perturbed(A, rng, rel=0.05):
    """Same pattern as ``A``, values jittered by ``rel`` (fresh arrays)."""
    return A.with_values(A.data * (1.0 + rel * rng.uniform(-1.0, 1.0, A.nnz)))


def cmd_serve_demo(args) -> int:
    from .matrices import get_matrix
    from .service import ServiceOverloadError, SolveService
    from .sparse import csr_matvec

    rng = np.random.default_rng(args.seed)
    patterns = [get_matrix(name, "small") for name in
                ["sherman5", "jpwh991", "orsreg1"][: args.patterns]]
    svc = SolveService(
        workers=args.workers,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        inter_arrival=args.inter_arrival,
    )
    print(f"SolveService: {args.workers} workers, queue bound "
          f"{args.max_queue}, {args.patterns} distinct structure(s), "
          f"{args.jobs} jobs")
    submitted, rejected = [], 0
    j = 0
    while j < args.jobs:
        # jobs inside a burst share one system (adjacent submissions, so
        # they coalesce into one multi-RHS batch); each new burst switches
        # pattern and perturbs the values
        pat = (j // args.burst) % len(patterns)
        A = _perturbed(patterns[pat], rng)
        for _ in range(min(args.burst, args.jobs - j)):
            b = (rng.uniform(-1, 1, A.nrows) if args.nrhs == 1
                 else rng.uniform(-1, 1, (A.nrows, args.nrhs)))
            try:
                submitted.append(svc.submit(A, b))
            except ServiceOverloadError:
                # shed load, drain, then re-admit this job
                rejected += 1
                svc.drain()
                submitted.append(svc.submit(A, b))
            j += 1
    svc.drain()
    worst = 0.0
    for jid in submitted:
        job = svc.job(jid)
        X = job.x if job.x.ndim == 2 else job.x[:, None]
        B = job.b if job.b.ndim == 2 else job.b[:, None]
        for j in range(X.shape[1]):
            r = csr_matvec(job.A, X[:, j]) - B[:, j]
            worst = max(worst, float(np.max(np.abs(r))))
    m = svc.metrics()
    print(f"completed/failed   : {m.jobs_completed}/{m.jobs_failed} "
          f"({rejected} backpressured then re-admitted)")
    print(f"batches            : {m.batches} ({m.batched_jobs} jobs rode in "
          f"multi-RHS batches)")
    print(f"analysis cache     : {m.cache_hits} hits / {m.cache_misses} "
          f"misses (hit rate {m.cache_hit_rate:.0%})")
    print(f"queue depth        : max {m.max_queue_depth} (bound {args.max_queue})")
    print(f"latency p50 / p95  : {m.latency_p50:.6f} / {m.latency_p95:.6f} s "
          "(virtual)")
    print(f"throughput         : {m.throughput_jobs_per_s:.1f} jobs/s over "
          f"{m.makespan:.6f} s makespan")
    print(f"worst |Ax-b| entry : {worst:.3e}")
    return 0 if m.jobs_failed == 0 else 1


def cmd_bench_service(args) -> int:
    import time

    from .api import SStarSolver
    from .matrices import get_matrix
    from .service import AnalysisCache

    A = _load(args.matrix) if args.matrix else get_matrix(args.name, "small")
    rng = np.random.default_rng(args.seed)
    cache = AnalysisCache()
    SStarSolver(analysis_cache=cache).factor(A)  # prime the cache

    t_cold = t_warm = 0.0
    for _ in range(args.repeats):
        Ai = _perturbed(A, rng)
        t0 = time.perf_counter()
        SStarSolver().factor(Ai)
        t_cold += time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = SStarSolver(analysis_cache=cache).refactor(Ai)
        t_warm += time.perf_counter() - t0
        assert warm.report.analysis_reused
    t_cold /= args.repeats
    t_warm /= args.repeats

    solver = SStarSolver(analysis_cache=cache).refactor(_perturbed(A, rng))
    B = rng.uniform(-1, 1, (A.nrows, args.nrhs))
    t0 = time.perf_counter()
    for j in range(args.nrhs):
        solver.solve(B[:, j])
    t_seq = time.perf_counter() - t0
    t0 = time.perf_counter()
    solver.solve(B)
    t_batch = time.perf_counter() - t0

    print(f"matrix              : n={A.nrows} nnz={A.nnz} "
          f"(mean of {args.repeats} run(s))")
    print(f"cold factor         : {t_cold * 1e3:.2f} ms (full analyze phase)")
    print(f"cached refactor     : {t_warm * 1e3:.2f} ms (numeric only)")
    print(f"analyze amortization: {t_cold / t_warm:.1f}x")
    print(f"{args.nrhs} sequential solves: {t_seq * 1e3:.2f} ms")
    print(f"one ({A.nrows},{args.nrhs}) block solve : {t_batch * 1e3:.2f} ms")
    print(f"multi-RHS speedup   : {t_seq / t_batch:.1f}x")
    return 0


def cmd_tune(args) -> int:
    import json as _json

    from .machine import GENERIC, T3D, T3E
    from .matrices import SUITE, get_matrix
    from .tune import Tuner, default_plan

    specs = {"T3D": T3D, "T3E": T3E, "GENERIC": GENERIC}
    if args.matrix in SUITE:
        A = get_matrix(args.matrix, args.scale)
    else:
        A = _load(args.matrix)
    budget = args.budget
    if budget == "none":
        budget = None
    elif budget != "auto":
        budget = float(budget)
    tuner = Tuner(spec=specs[args.machine], nprocs=args.nprocs,
                  budget=budget, seed=args.seed)
    res = tuner.tune(A)

    # price the static hand-configured default for the gain headline
    base = default_plan(args.nprocs)
    state = tuner.pattern_state(A)
    base_seconds = tuner.simulate_plan(state, base)["seconds"]
    gain = (base_seconds / res.best_seconds
            if res.best_seconds else float("nan"))

    if args.json:
        out = res.as_dict()
        out["default"] = {"plan": base.as_dict(),
                          "seconds": base_seconds,
                          "speedup": gain}
        print(_json.dumps(out, indent=2, sort_keys=True))
        return 0

    by_status = {}
    for r in res.records:
        by_status[r.status] = by_status.get(r.status, 0) + 1
    print(f"pattern {res.pattern[:16]}…  machine={res.machine} "
          f"P={res.nprocs}  seed={res.seed}")
    print(f"search budget  : "
          f"{'unbounded' if res.budget is None else f'{res.budget:.6f} s'} "
          f"(spent {res.budget_spent:.6f} s virtual)")
    print("candidates     : " + ", ".join(
        f"{n} {s}" for s, n in sorted(by_status.items())))
    print(f"winner         : {res.best.describe()}  "
          f"simulated {res.best_seconds:.6f} s")
    print(f"static default : {base.describe()}  "
          f"simulated {base_seconds:.6f} s")
    print(f"tuned speedup  : {gain:.2f}x over the default configuration")
    print("search trace (model-time order):")
    for r in res.records:
        probe = (f"probe {r.last_probe_seconds:.6f} s @rung {r.rung}"
                 if r.probes else "never probed")
        print(f"  {r.status:<14} {r.plan.describe():<24} "
              f"model {r.model_seconds:.6f} s  {probe}")
    return 0


def cmd_chaos(args) -> int:
    import json as _json

    from .chaos import (
        DEFAULT_SCENARIOS,
        FAMILIES,
        Campaign,
        Scenario,
        build_context,
        replay_artifact,
        run_case,
        shrink_failure,
    )
    from .machine.faults import CORRUPT, FaultPlan, MessageFaultRule

    ctx = build_context(n=args.n)
    if args.campaign == "all":
        families = FAMILIES
    else:
        families = tuple(f.strip() for f in args.campaign.split(","))
        unknown = set(families) - set(FAMILIES)
        if unknown:
            print(f"unknown families: {sorted(unknown)} "
                  f"(known: {list(FAMILIES)})", file=sys.stderr)
            return 2
    scenarios = DEFAULT_SCENARIOS
    if args.abft:
        scenarios = tuple(s for s in DEFAULT_SCENARIOS if s.abft)
    campaign = Campaign(ctx, scenarios=scenarios, families=families,
                        budget=args.budget, seed=args.seed)
    report = campaign.run()

    shrink_info = None
    if args.shrink:
        # shrink the first shrinkable campaign failure; with an all-green
        # campaign, demonstrate on an intentionally-unprotected corruption
        target = next(
            (o for o in campaign.outcomes
             if not o.ok and o.scenario.mode in ("1d", "2d")), None)
        if target is not None:
            sr = shrink_failure(ctx, target.scenario, target.plan,
                                outcome=target)
        else:
            scn = Scenario("1d-ca-abft-bare", "1d", method="ca", nprocs=4,
                           reliable=False, checksum=False, abft=True)
            sr = None
            for s in range(args.seed, args.seed + 10):
                plan = FaultPlan(
                    rules=[MessageFaultRule(CORRUPT, rate=0.4,
                                            tag_prefix=("col",))],
                    seed=s)
                out = run_case(ctx, scn, plan)
                if out.failure_key() is not None:
                    sr = shrink_failure(ctx, scn, plan, outcome=out)
                    break
            if sr is None:
                print("could not provoke a demo failure to shrink",
                      file=sys.stderr)
                return 2
        sr.save(args.shrink)
        _, matches = replay_artifact(sr.artifact, ctx=ctx)
        shrink_info = {
            "artifact": args.shrink,
            "original_events": sr.original_events,
            "shrunk_events": sr.shrunk_events,
            "tests": sr.tests,
            "failure_key": sr.failure_key,
            "replay_matches": matches,
        }

    if args.json:
        out = report.as_dict()
        if shrink_info is not None:
            out["shrink"] = shrink_info
        print(_json.dumps(out, indent=2, sort_keys=True))
    else:
        print(report.summary())
        if shrink_info is not None:
            print(f"shrink: {shrink_info['original_events']} -> "
                  f"{shrink_info['shrunk_events']} events in "
                  f"{shrink_info['tests']} tests; artifact "
                  f"{shrink_info['artifact']} (replay "
                  f"{'matches' if shrink_info['replay_matches'] else 'DIVERGES'})")
    if shrink_info is not None and not shrink_info["replay_matches"]:
        return 1
    if args.fail_on == "failure" and not report.ok:
        return 1
    return 0


def cmd_suite(args) -> int:
    from .matrices import SUITE

    print(f"{'name':12s} {'paper n':>8s} {'paper nnz':>10s} {'class':18s}")
    for name, spec in SUITE.items():
        print(f"{name:12s} {spec.paper_order:>8d} {spec.paper_nnz:>10d} "
              f"{spec.kind:18s}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="S* sparse LU with partial pivoting (paper reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="write a suite matrix to MatrixMarket")
    g.add_argument("name")
    g.add_argument("--scale", default="small", choices=["small", "bench"])
    g.add_argument("-o", "--output", required=True)
    g.set_defaults(func=cmd_generate)

    i = sub.add_parser("info", help="structural statistics")
    i.add_argument("matrix")
    i.add_argument("--ordering", default="mindeg-ata",
                   choices=["mindeg-ata", "mindeg-aplusat", "natural"])
    i.add_argument("--skip-dynamic", action="store_true")
    i.set_defaults(func=cmd_info)

    f = sub.add_parser("factor", help="run the S* factorization")
    f.add_argument("matrix")
    f.add_argument("--block-size", type=int, default=25)
    f.add_argument("--amalgamation", type=int, default=4)
    f.add_argument("--threshold", type=float, default=1.0)
    f.set_defaults(func=cmd_factor)

    s = sub.add_parser("solve", help="factor and solve A x = b")
    s.add_argument("matrix")
    s.add_argument("--rhs", help="text file with the right-hand side")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--threshold", type=float, default=1.0)
    s.add_argument("--refine", action="store_true",
                   help="apply iterative refinement")
    s.add_argument("--nprocs", type=int, default=1)
    s.add_argument("--method", default="sequential",
                   choices=["sequential", "1d-rapid", "1d-ca", "2d", "2d-sync"])
    s.add_argument("--machine", default="T3E", choices=["T3D", "T3E", "GENERIC"])
    s.add_argument("--perturb", action="store_true",
                   help="replace tiny pivots by sqrt(eps)*||A|| instead of "
                        "failing (recover via --refine)")
    s.add_argument("--faults",
                   help="FaultPlan JSON file: inject message/crash faults "
                        "into the simulated parallel run (implies 1d-ca on "
                        "4 ranks unless --method/--nprocs are given)")
    s.add_argument("--ckpt-interval", type=int, default=None,
                   help="stages per checkpoint round (crash recovery)")
    s.add_argument("-o", "--output")
    s.set_defaults(func=cmd_solve)

    m = sub.add_parser("simulate", help="parallel run on the simulated machine")
    m.add_argument("matrix")
    m.add_argument("--nprocs", type=int, default=8)
    m.add_argument("--method", default="2d",
                   choices=["1d-rapid", "1d-ca", "2d", "2d-sync"])
    m.add_argument("--machine", default="T3E", choices=["T3D", "T3E", "GENERIC"])
    m.add_argument("--faults", help="FaultPlan JSON file to inject")
    m.add_argument("--reliable", action="store_true",
                   help="enable the ack/retry transport")
    m.add_argument("--ckpt-interval", type=int, default=None,
                   help="stages per checkpoint round (enables the "
                        "checkpoint/restart driver)")
    m.set_defaults(func=cmd_simulate)

    tr = sub.add_parser(
        "trace",
        help="traced factorization -> Chrome/Perfetto trace_event JSON",
    )
    tr.add_argument("matrix")
    tr.add_argument("--mode", default="2d",
                    choices=["1d", "2d", "1d-rapid", "1d-ca", "2d-sync"],
                    help="1d is shorthand for 1d-rapid")
    tr.add_argument("--nprocs", type=int, default=8)
    tr.add_argument("--machine", default="T3E",
                    choices=["T3D", "T3E", "GENERIC"])
    tr.add_argument("--out", default="trace.json",
                    help="output trace file (load in ui.perfetto.dev)")
    tr.add_argument("--check", action="store_true",
                    help="validate the emitted JSON against the trace "
                         "schema; nonzero exit on problems")
    tr.set_defaults(func=cmd_trace)

    pf = sub.add_parser(
        "profile",
        help="busy/comm/idle breakdown + critical path of a traced run",
    )
    pf.add_argument("matrix", nargs="?",
                    help="matrix to run (omit when loading --trace)")
    pf.add_argument("--trace", help="profile a saved trace JSON instead")
    pf.add_argument("--mode", default="2d",
                    choices=["1d", "2d", "1d-rapid", "1d-ca", "2d-sync"])
    pf.add_argument("--nprocs", type=int, default=8)
    pf.add_argument("--machine", default="T3E",
                    choices=["T3D", "T3E", "GENERIC"])
    pf.add_argument("--top", type=int, default=5,
                    help="how many longest spans to list")
    pf.set_defaults(func=cmd_profile)

    v = sub.add_parser("validate", help="run the invariant battery on a matrix")
    v.add_argument("matrix")
    v.add_argument("--nprocs", type=int, default=4)
    v.add_argument("--skip-parallel", action="store_true")
    v.set_defaults(func=cmd_validate)

    vc = sub.add_parser(
        "verify-comm",
        help="communication-protocol analyses: static lint, trace check, replay",
    )
    vc.add_argument("--matrix", help="MatrixMarket file (default: random test matrix)")
    vc.add_argument("--n", type=int, default=90,
                    help="order of the random test matrix")
    vc.add_argument("--seed", type=int, default=31)
    vc.add_argument("--block-size", type=int, default=6)
    vc.add_argument("--nprocs", type=int, default=4)
    vc.add_argument("--machine", default="T3E", choices=["T3D", "T3E", "GENERIC"])
    vc.add_argument("--codes",
                    help="comma list of SPMD codes to check dynamically "
                         "(1d-rapid,1d-ca,2d,2d-sync,trisolve-1d,trisolve-2d)")
    vc.add_argument("--all-parallel-modules", action="store_true",
                    help="lint every repro.parallel module (the default; kept "
                         "as an explicit flag for CI invocations)")
    vc.add_argument("--module", action="append",
                    help="lint this source file instead of repro.parallel")
    vc.add_argument("--static-only", action="store_true",
                    help="run only the AST lint, skip simulations")
    vc.add_argument("--skip-replay", action="store_true")
    vc.add_argument("--replays", type=int, default=3,
                    help="number of perturbed host orders per code")
    vc.add_argument("--fault-rate", type=float, default=0.0,
                    help="drop this fraction of messages (reliable retry on) "
                         "and trace-check the recovered run")
    vc.add_argument("--fault-seed", type=int, default=7)
    vc.add_argument("--crash-recovery", action="store_true",
                    help="crash a rank mid-run, recover via checkpoint/"
                         "restart and trace-check every committed round")
    vc.add_argument("--json", action="store_true",
                    help="emit a machine-readable JSON report instead of text")
    vc.add_argument("--fail-on", default="warning",
                    choices=["note", "warning", "error", "never"],
                    help="exit nonzero when a finding at or above this "
                         "severity exists (default: warning)")
    vc.set_defaults(func=cmd_verify_comm)

    ln = sub.add_parser(
        "lint",
        help="dataflow static analysis: determinism (D1xx) and zero-copy "
             "aliasing (Z2xx) rules",
    )
    ln.add_argument("paths", nargs="*",
                    help="files or directories to lint (default: the "
                         "installed repro package)")
    ln.add_argument("--fail-on", default="warning",
                    choices=["note", "warning", "error", "never"],
                    help="exit nonzero when a finding at or above this "
                         "severity exists (default: warning)")
    ln.add_argument("--json", action="store_true",
                    help="emit a machine-readable JSON report instead of text")
    ln.add_argument("--select",
                    help="comma-separated rule ids to report (e.g. D101,Z201)")
    ln.add_argument("--env-name", action="append",
                    help="SPMD env handle name(s) for the aliasing pass "
                         "(default: env)")
    ln.add_argument("--certify", nargs="?", const="", metavar="PATH",
                    default=None,
                    help="emit a zero-copy certificate (Z201/Z202 verdict + "
                         "source hash per module) consumed by "
                         "Simulator(zero_copy=True); PATH defaults to the "
                         "packaged certificate location")
    ln.add_argument("--certify-check", action="store_true",
                    help="rebuild the certificate and fail if the committed "
                         "copy is stale (CI freshness gate)")
    ln.set_defaults(func=cmd_lint)

    sd = sub.add_parser(
        "serve-demo",
        help="run a synthetic same-structure workload through SolveService",
    )
    sd.add_argument("--jobs", type=int, default=12)
    sd.add_argument("--workers", type=int, default=3)
    sd.add_argument("--patterns", type=int, default=2, choices=[1, 2, 3],
                    help="distinct matrix structures in the workload")
    sd.add_argument("--nrhs", type=int, default=1,
                    help="right-hand sides per job")
    sd.add_argument("--burst", type=int, default=3,
                    help="adjacent jobs sharing one system (batchable)")
    sd.add_argument("--max-queue", type=int, default=8)
    sd.add_argument("--max-batch", type=int, default=4)
    sd.add_argument("--inter-arrival", type=float, default=0.0,
                    help="virtual seconds between submissions")
    sd.add_argument("--seed", type=int, default=0)
    sd.set_defaults(func=cmd_serve_demo)

    bs = sub.add_parser(
        "bench-service",
        help="wall-clock: cold factor vs cached refactor vs batched-RHS solve",
    )
    bs.add_argument("--matrix", help="MatrixMarket file (default: suite matrix)")
    bs.add_argument("--name", default="sherman5",
                    help="suite matrix when no --matrix is given")
    bs.add_argument("--repeats", type=int, default=3)
    bs.add_argument("--nrhs", type=int, default=8)
    bs.add_argument("--seed", type=int, default=0)
    bs.set_defaults(func=cmd_bench_service)

    tn = sub.add_parser(
        "tune",
        help="model-guided autotuning: search block size / grid / layout "
             "for one matrix pattern",
    )
    tn.add_argument("matrix",
                    help="MatrixMarket file or a built-in suite name "
                         "(see `python -m repro suite`)")
    tn.add_argument("--scale", default="small",
                    choices=["small", "bench"],
                    help="suite-matrix scale when `matrix` is a suite name")
    tn.add_argument("--nprocs", type=int, default=8)
    tn.add_argument("--machine", default="T3E",
                    choices=["T3D", "T3E", "GENERIC"])
    tn.add_argument("--budget", default="auto",
                    help="virtual-second cap on simulator probes: a float, "
                         "'auto' (~10 factorizations) or 'none'")
    tn.add_argument("--seed", type=int, default=0,
                    help="deterministic tie-break seed (same seed+budget "
                         "=> bit-identical search)")
    tn.add_argument("--json", action="store_true",
                    help="emit the winning plan + full search trace as JSON")
    tn.set_defaults(func=cmd_tune)

    ch = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign with oracle checks and "
             "failing-schedule shrinking",
    )
    ch.add_argument("--campaign", default="all",
                    help="comma-separated fault families "
                         "(drop,dup,delay,corrupt,crash) or 'all'")
    ch.add_argument("--budget", type=int, default=60,
                    help="number of campaign runs")
    ch.add_argument("--seed", type=int, default=0)
    ch.add_argument("--n", type=int, default=60,
                    help="order of the random campaign matrix")
    ch.add_argument("--abft", action="store_true",
                    help="restrict to ABFT-enabled scenarios")
    ch.add_argument("--shrink", metavar="PATH",
                    help="shrink a failing run (or a built-in unprotected-"
                         "corruption demo) to a minimal schedule; write the "
                         "JSON repro artifact to PATH and replay-verify it")
    ch.add_argument("--json", action="store_true",
                    help="print the report as JSON")
    ch.add_argument("--fail-on", default="none", choices=["none", "failure"],
                    help="exit nonzero when any campaign run fails an oracle")
    ch.set_defaults(func=cmd_chaos)

    ls = sub.add_parser("suite", help="list built-in suite matrices")
    ls.set_defaults(func=cmd_suite)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
