"""Schedule simulation and Gantt charts (Fig. 11).

``simulate_schedule`` replays a :class:`Schedule` against the task DAG with
a simple self-timed model — each processor executes its task list in order,
starting a task as soon as its predecessors' data has arrived — and returns
per-task intervals, from which ASCII Gantt charts like the paper's Fig. 11
are rendered.

:func:`gantt_from_trace` builds the same :class:`GanttChart` from an
observability trace (:class:`repro.obs.Tracer`), so model-predicted and
simulator-measured timelines render through one code path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..taskgraph import TaskGraph, FACTOR
from .graph_schedule import Schedule


def _task_label(t) -> str:
    """Display label of an interval's task: scheduler task tuples become
    the Fig. 11 ``F<k>`` / ``U<k>,<j>`` names; strings pass through."""
    if isinstance(t, str):
        return t
    return f"F{t[1]}" if t[0] == FACTOR else f"U{t[1]},{t[2]}"


@dataclass
class GanttChart:
    """Per-task intervals of a simulated schedule."""

    nprocs: int
    intervals: list  # (proc, task, start, end)
    makespan: float

    def rows(self) -> list:
        """Per-processor sorted interval lists."""
        out = [[] for _ in range(self.nprocs)]
        for p, t, s, e in self.intervals:
            out[p].append((t, s, e))
        for r in out:
            r.sort(key=lambda x: x[1])
        return out

    def render(self, width: int = 72) -> str:
        """ASCII Gantt chart (one row per processor)."""
        scale = width / self.makespan if self.makespan > 0 else 1.0
        lines = []
        for p, row in enumerate(self.rows()):
            cells = [" "] * (width + 8)
            for t, s, e in row:
                a = int(s * scale)
                b = max(int(e * scale), a + 1)
                txt = _task_label(t)[: b - a]
                for i, ch in enumerate(txt):
                    if a + i < len(cells):
                        cells[a + i] = ch
                for i in range(a + len(txt), min(b, len(cells))):
                    cells[i] = "="
            lines.append(f"P{p}: " + "".join(cells).rstrip())
        lines.append(f"makespan = {self.makespan:.3g}")
        return "\n".join(lines)


def gantt_from_trace(spans, total_time: float = None) -> GanttChart:
    """Build a :class:`GanttChart` from observability trace spans.

    Takes a :class:`repro.obs.Tracer` or its span list and keeps the
    rank-track ``task``-category spans — the 1D/2D drivers' ``F<k>`` /
    ``U<k>,<j>`` / ``U2D<K>`` task intervals — so a *measured* simulator
    run renders through the same :meth:`GanttChart.render` as a
    model-predicted schedule."""
    from ..obs import TASK

    spans = getattr(spans, "spans", spans)
    tasks = [s for s in spans if isinstance(s.track, int) and s.cat == TASK]
    nprocs = max((s.track for s in tasks), default=-1) + 1
    intervals = [(s.track, s.name, s.start, s.end) for s in tasks]
    makespan = (
        total_time if total_time is not None
        else max((s.end for s in tasks), default=0.0)
    )
    return GanttChart(nprocs, intervals, makespan)


def simulate_schedule(
    tg: TaskGraph,
    schedule: Schedule,
    spec=None,
    unit_comp: float = None,
    unit_comm: float = None,
) -> GanttChart:
    """Self-timed replay of ``schedule`` over ``tg``.

    With ``unit_comp``/``unit_comm`` set, every task costs ``unit_comp`` and
    every cross-processor Factor->Update message ``unit_comm`` (the paper's
    Fig. 11 setting: weights 2 and 1); otherwise costs come from ``spec``.
    """
    finish = {}
    intervals = []
    proc_avail = [0.0] * schedule.nprocs
    pointer = [0] * schedule.nprocs

    def comp_time(t):
        return unit_comp if unit_comp is not None else tg.seconds(t, spec)

    def comm_time(src_task):
        if unit_comm is not None:
            return unit_comm
        return spec.message_seconds(tg.col_bytes[src_task[1]])

    remaining = sum(len(lst) for lst in schedule.proc_tasks)
    while remaining:
        progressed = False
        for p in range(schedule.nprocs):
            while pointer[p] < len(schedule.proc_tasks[p]):
                t = schedule.proc_tasks[p][pointer[p]]
                start = proc_avail[p]
                ok = True
                for pr in tg.pred.get(t, ()):
                    if pr not in finish:
                        ok = False
                        break
                    arr = finish[pr]
                    if pr[0] == FACTOR and schedule.task_owner(pr) != p:
                        arr += comm_time(pr)
                    start = max(start, arr)
                if not ok:
                    break
                end = start + comp_time(t)
                finish[t] = end
                intervals.append((p, t, start, end))
                proc_avail[p] = end
                pointer[p] += 1
                remaining -= 1
                progressed = True
        if not progressed:
            raise RuntimeError("schedule replay stalled: inconsistent ordering")
    makespan = max(f for f in finish.values()) if finish else 0.0
    return GanttChart(schedule.nprocs, intervals, makespan)


def demo_unit_weight_charts(tg: TaskGraph, nprocs: int = 2):
    """The Fig. 11 comparison: CA vs graph schedule under unit weights
    (computation 2, communication 1).  Returns (ca_chart, graph_chart)."""
    from .compute_ahead import compute_ahead_schedule
    from .graph_schedule import graph_schedule

    ca = compute_ahead_schedule(tg, nprocs)
    gs = graph_schedule(tg, nprocs, None, unit_comp=2.0, unit_comm=1.0)
    chart_ca = simulate_schedule(tg, ca, unit_comp=2.0, unit_comm=1.0)
    chart_gs = simulate_schedule(tg, gs, unit_comp=2.0, unit_comm=1.0)
    return chart_ca, chart_gs
