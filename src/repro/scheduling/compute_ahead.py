"""The compute-ahead (CA) schedule (Fig. 10).

Column blocks map cyclically (owner(j) = j mod p).  Execution proceeds
layer by layer in k; the owner of column ``k+1`` performs ``Update(k, k+1)``
and ``Factor(k+1)`` *before* its remaining ``Update(k, j)`` work so the next
pivot column is broadcast as early as possible — a one-step lookahead,
which is exactly what graph scheduling generalises away.
"""

from __future__ import annotations

import numpy as np

from ..taskgraph import TaskGraph, FACTOR, UPDATE
from .graph_schedule import Schedule


def compute_ahead_schedule(tg: TaskGraph, nprocs: int, spec=None) -> Schedule:
    """Build the CA task ordering as a :class:`Schedule` (cyclic owners)."""
    N = tg.N
    owner = np.arange(N, dtype=np.int64) % nprocs
    proc_tasks = [[] for _ in range(nprocs)]

    has_u = {(t[1], t[2]) for t in tg.tasks if t[0] == UPDATE}

    proc_tasks[int(owner[0])].append((FACTOR, 0))
    for k in range(N - 1):
        nxt = int(owner[k + 1])
        if (k, k + 1) in has_u:
            proc_tasks[nxt].append((UPDATE, k, k + 1))
        proc_tasks[nxt].append((FACTOR, k + 1))
        for j in range(k + 2, N):
            if (k, j) in has_u:
                proc_tasks[int(owner[j])].append((UPDATE, k, j))
    return Schedule(
        nprocs=nprocs, owner=owner, proc_tasks=proc_tasks, makespan_estimate=0.0
    )
