"""RAPID/PYRROS-flavoured graph scheduling of the LU task DAG.

The 1D data mapping assigns whole column blocks to processors
(owner-compute: ``Factor(j)`` and every ``Update(k, j)`` live with column
``j``), so scheduling happens at the *cluster* level: one cluster per
column block.  We schedule clusters with critical-path-priority ETF
(earliest task first):

* cluster priority = max b-level of its tasks (computed with communication
  costs on cross-cluster edges);
* clusters become ready when all producer clusters are scheduled;
* the ready cluster with the highest priority is placed on the processor
  minimising its earliest start (data-arrival from producer processors +
  processor availability).

Within each processor, tasks execute in global b-level order restricted to
DAG consistency, which is what the RAPID executor then follows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..taskgraph import TaskGraph, FACTOR


@dataclass
class Schedule:
    """A 1D mapping + per-processor task orders."""

    nprocs: int
    owner: np.ndarray  # column block -> processor
    proc_tasks: list  # processor -> ordered list of task ids
    makespan_estimate: float

    def task_owner(self, task) -> int:
        col = task[1] if task[0] == FACTOR else task[2]
        return int(self.owner[col])


def graph_schedule(
    tg: TaskGraph, nprocs: int, spec, unit_comp: float = None, unit_comm: float = None
) -> Schedule:
    """Schedule the task graph's column clusters onto ``nprocs`` processors.

    ``unit_comp``/``unit_comm`` override the machine-spec costs with uniform
    weights (used for the Fig. 11 unit-weight demonstration).
    """
    N = tg.N

    def task_cost(t):
        return unit_comp if unit_comp is not None else tg.seconds(t, spec)

    def msg_cost(k):
        if unit_comm is not None:
            return unit_comm
        return spec.message_seconds(tg.col_bytes[k])

    # bottom levels under the chosen cost model
    bl = {}
    for t in reversed(tg.tasks):
        best = 0.0
        for s in tg.succ.get(t, ()):
            c = msg_cost(t[1]) if t[0] == FACTOR else 0.0
            best = max(best, bl[s] + c)
        bl[t] = task_cost(t) + best

    # Task-level ETF with owner-compute affinity: the first task of a
    # column cluster to be scheduled fixes the cluster's processor; every
    # later task of that cluster follows it (the 1D data mapping).  Among
    # ready tasks the highest b-level goes first; processor choice
    # minimises the earliest start time given producer data arrivals.
    import heapq

    index = {t: i for i, t in enumerate(tg.tasks)}
    indeg = {t: len(tg.pred.get(t, ())) for t in tg.tasks}
    owner = np.full(N, -1, dtype=np.int64)
    proc_avail = np.zeros(nprocs)
    finish = {}
    proc_tasks = [[] for _ in range(nprocs)]

    ready = [(-bl[t], index[t], t) for t in tg.tasks if indeg[t] == 0]
    heapq.heapify(ready)
    makespan = 0.0

    while ready:
        _, _, t = heapq.heappop(ready)
        col = tg.column_of[t]
        if owner[col] >= 0:
            candidates = [int(owner[col])]
        else:
            candidates = range(nprocs)
        best_p, best_start = None, None
        for p in candidates:
            start = proc_avail[p]
            for pr in tg.pred.get(t, ()):
                arr = finish[pr]
                if pr[0] == FACTOR and int(owner[tg.column_of[pr]]) != p:
                    arr += msg_cost(pr[1])
                start = max(start, arr)
            if best_start is None or start < best_start - 1e-18:
                best_p, best_start = p, start
        owner[col] = best_p
        end = best_start + task_cost(t)
        proc_avail[best_p] = end
        finish[t] = end
        makespan = max(makespan, end)
        proc_tasks[best_p].append(t)
        for s in tg.succ.get(t, ()):
            indeg[s] -= 1
            if indeg[s] == 0:
                heapq.heappush(ready, (-bl[s], index[s], s))

    etf = Schedule(
        nprocs=nprocs,
        owner=owner,
        proc_tasks=proc_tasks,
        makespan_estimate=float(makespan),
    )
    if nprocs == 1:
        return etf

    # Candidate 2: cyclic ownership with global b-level ordering.  ETF's
    # greedy placement can load-imbalance wide graphs; evaluating both
    # under the self-timed replay and keeping the winner is what makes the
    # graph-scheduled code dominate the lookahead-1 CA code at every scale.
    cyc_owner = np.arange(N, dtype=np.int64) % nprocs
    cyc_tasks = [[] for _ in range(nprocs)]
    order = sorted(range(len(tg.tasks)), key=lambda i: (-bl[tg.tasks[i]], i))
    for i in order:
        t = tg.tasks[i]
        cyc_tasks[int(cyc_owner[tg.column_of[t]])].append(t)
    cyclic = Schedule(
        nprocs=nprocs,
        owner=cyc_owner,
        proc_tasks=cyc_tasks,
        makespan_estimate=0.0,
    )

    from .gantt import simulate_schedule

    best = etf
    best_span = simulate_schedule(
        tg, etf, spec=spec, unit_comp=unit_comp, unit_comm=unit_comm
    ).makespan
    cyc_span = simulate_schedule(
        tg, cyclic, spec=spec, unit_comp=unit_comp, unit_comm=unit_comm
    ).makespan
    if cyc_span < best_span:
        best = cyclic
        best_span = cyc_span
    best.makespan_estimate = float(best_span)
    return best
