"""Scheduling for the 1D codes: RAPID-style graph scheduling and the
compute-ahead (CA) baseline, plus Gantt-chart tooling (Section 5.1)."""

from .graph_schedule import graph_schedule, Schedule
from .compute_ahead import compute_ahead_schedule
from .gantt import (
    simulate_schedule,
    GanttChart,
    demo_unit_weight_charts,
    gantt_from_trace,
)

__all__ = [
    "graph_schedule",
    "Schedule",
    "compute_ahead_schedule",
    "simulate_schedule",
    "GanttChart",
    "gantt_from_trace",
    "demo_unit_weight_charts",
]
