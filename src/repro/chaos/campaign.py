"""The chaos campaign runner.

A campaign sweeps seeded fault-plan families (:mod:`repro.chaos.plans`)
across a set of solver **scenarios** — 1D (rapid/CA), 2D (async/sync),
their checkpoint/restart variants and the solve service — and checks
every run against the invariant oracles (:mod:`repro.chaos.oracles`).
Families are only paired with scenarios whose capabilities make their
faults recoverable, so every campaign run is *expected* green: a single
red oracle is a real robustness bug, and the failing run's realised
fault events are the shrinker's (:mod:`repro.chaos.shrink`) input.

Observability: the campaign counts ``chaos.runs`` / ``chaos.failures``
in its :class:`repro.obs.MetricsRegistry`, merges every run's own
counters (``sim.faults.*``, ``abft.*``, ...) into it, and lays each
run out as a PHASE span on a ``chaos/<scenario>`` track of its tracer,
so ``repro trace`` renders a campaign like any other run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..machine import GENERIC, ReliableDelivery
from ..matrices import random_nonsymmetric
from ..numfact import SilentCorruptionError, sstar_factor
from ..obs import PHASE, MetricsRegistry, Tracer
from ..ordering import prepare_matrix
from ..parallel import run_1d, run_1d_resilient, run_2d, run_2d_resilient
from ..supernodes import build_block_structure, build_partition
from ..symbolic import static_symbolic_factorization
from ..taskgraph import build_task_graph
from . import plans
from .oracles import evaluate


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One solver configuration the campaign exercises.

    ``mode`` is ``"1d"`` / ``"2d"`` (one Simulator run), ``"resilient-1d"``
    / ``"resilient-2d"`` (checkpoint/restart rounds) or ``"service"`` (a
    :class:`repro.service.SolveService` job).  ``method`` selects the
    variant: 1D ``rapid``/``ca``, 2D ``async``/``sync``, service solver
    method strings (``"1d-ca"``/``"2d"``).
    """

    name: str
    mode: str
    method: str = "ca"
    nprocs: int = 4
    reliable: bool = True
    checksum: bool = True
    abft: bool = False
    ckpt_interval: int = 4

    @property
    def capabilities(self) -> frozenset:
        toks = set()
        if self.reliable:
            toks.add(plans.RELIABLE)
            if self.checksum:
                toks.add(plans.CHECKSUM)
        if self.abft:
            toks.add(plans.ABFT)
        if self.mode.startswith("resilient"):
            toks.add(plans.RESILIENT)
        if self.mode == "service":
            # job-level retry replays the whole solve from scratch — the
            # service's analogue of a checkpoint restart
            toks.add(plans.RESILIENT)
        return frozenset(toks)

    def to_dict(self) -> dict:
        return {
            "name": self.name, "mode": self.mode, "method": self.method,
            "nprocs": self.nprocs, "reliable": self.reliable,
            "checksum": self.checksum, "abft": self.abft,
            "ckpt_interval": self.ckpt_interval,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Scenario":
        return cls(**d)


DEFAULT_SCENARIOS = (
    Scenario("1d-rapid", "1d", method="rapid", nprocs=3),
    Scenario("1d-ca", "1d", method="ca", nprocs=4),
    Scenario("1d-ca-abft", "1d", method="ca", nprocs=4, abft=True),
    Scenario("2d", "2d", method="async", nprocs=4),
    Scenario("2d-sync", "2d", method="sync", nprocs=4),
    Scenario("1d-resilient-abft", "resilient-1d", method="ca", nprocs=4,
             checksum=False, abft=True),
    Scenario("2d-resilient", "resilient-2d", method="async", nprocs=4),
    Scenario("service", "service", method="1d-ca", nprocs=4),
)


# ---------------------------------------------------------------------------
# shared context: one matrix pipeline + fault-free references
# ---------------------------------------------------------------------------


@dataclass
class ChaosContext:
    """The campaign's matrix pipeline and fault-free reference results."""

    A: object
    om: object
    sym: object
    part: object
    bstruct: object
    tg: object
    spec: object
    seq: object  # sequential LUFactorization — the bit-identity reference
    b: np.ndarray
    x_ref: np.ndarray
    tscale: float  # nominal fault-free 1D makespan (places crash times)
    config: dict
    _service_x: np.ndarray = field(default=None, repr=False)

    def service_x_ref(self) -> np.ndarray:
        """Fault-free solve-service solution (computed once, lazily)."""
        if self._service_x is None:
            from ..service import SolveService
            svc = SolveService(workers=1, max_queue=4,
                               solver_opts={"method": "1d-ca", "nprocs": 4})
            jid = svc.submit(self.A, self.b)
            self._service_x = svc.result(jid)
        return self._service_x


def build_context(n: int = 60, density: float = 0.08, mseed: int = 11,
                  block: int = 5, amalg: int = 3, spec=GENERIC) -> ChaosContext:
    """Build the shared pipeline for a campaign on one random matrix."""
    A = random_nonsymmetric(n, density=density, seed=mseed)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=block, amalgamation=amalg)
    bstruct = build_block_structure(sym, part)
    tg = build_task_graph(bstruct)
    seq = sstar_factor(om.A, sym=sym, part=part)
    b = np.arange(float(n))
    x_ref = seq.solve(b)
    base = run_1d(om.A, part, bstruct, 4, spec, method="ca", tg=tg)
    return ChaosContext(
        A=A, om=om, sym=sym, part=part, bstruct=bstruct, tg=tg, spec=spec,
        seq=seq, b=b, x_ref=x_ref, tscale=base.sim.total_time,
        config={"n": n, "density": density, "mseed": mseed,
                "block": block, "amalg": amalg},
    )


# ---------------------------------------------------------------------------
# one campaign run
# ---------------------------------------------------------------------------


@dataclass
class RunOutcome:
    """Everything one campaign run produced, for the oracles and shrinker."""

    scenario: Scenario
    family: str
    index: int
    plan: object
    error: Exception = None
    factor: object = None
    sim: object = None        # SimResult (direct 1D/2D runs)
    resilient: object = None  # ResilientResult
    schedule: object = None
    tracer: Tracer = None
    x: np.ndarray = None      # service runs
    seconds: float = 0.0
    injected: tuple = ()      # realised FaultEvents, canonically ordered
    crashes: tuple = ()       # realised (rank, time) crashes
    oracles: tuple = ()

    @property
    def ok(self) -> bool:
        return self.error is None and all(r.ok for r in self.oracles)

    def failure_key(self):
        """JSON-safe identity of the failure (None when the run is green).

        The shrinker preserves this key: a reduced schedule counts as
        reproducing the failure only if it fails *the same way*.
        """
        if self.error is not None:
            e = self.error
            if isinstance(e, SilentCorruptionError):
                return ["SilentCorruptionError",
                        [int(e.block[0]), int(e.block[1])],
                        e.where, float(e.error), str(e)]
            return [type(e).__name__, str(e)]
        bad = sorted(r.name for r in self.oracles if not r.ok)
        return ["oracle"] + bad if bad else None


class RecordingPlan:
    """FaultPlan proxy that records every fired decision as a FaultEvent.

    The simulator materialises realised faults in ``fault_stats.injected``,
    but when a run *raises* (the exact runs the shrinker cares about) the
    SimResult never escapes — this wrapper captures the same events on
    the way through, exception or not.
    """

    def __init__(self, plan):
        self._plan = plan
        self.fired = []

    # the attributes/methods the simulator consults
    @property
    def crashes(self):
        return self._plan.crashes

    def crash_time(self, rank):
        return self._plan.crash_time(rank)

    def message_fault(self, src, dest, tag, attempt: int = 0):
        from ..machine.faults import DELAY, FaultEvent
        hit = self._plan.message_fault(src, dest, tag, attempt)
        if hit is not None:
            self.fired.append(FaultEvent(
                hit.action, int(src), int(dest), tag, attempt=attempt,
                delay_s=hit.delay_s if hit.action == DELAY else 0.0,
            ))
        return hit


def execute_case(ctx: ChaosContext, scenario: Scenario, plan) -> RunOutcome:
    """Run one (scenario, plan) case; never raises — errors are captured."""
    out = RunOutcome(scenario=scenario, family="?", index=0, plan=plan)
    tracer = Tracer()
    out.tracer = tracer
    rel = ReliableDelivery(checksum=scenario.checksum) if scenario.reliable else None
    direct = scenario.mode in ("1d", "2d")
    use_plan = RecordingPlan(plan) if direct else plan
    try:
        if direct:
            sim_opts = {"tracer": tracer, "trace": True, "faults": use_plan}
            if rel is not None:
                sim_opts["reliable"] = rel
            if scenario.mode == "1d":
                res = run_1d(ctx.om.A, ctx.part, ctx.bstruct, scenario.nprocs,
                             ctx.spec, method=scenario.method, tg=ctx.tg,
                             sim_opts=sim_opts, abft=scenario.abft)
                out.schedule = res.schedule
            else:
                res = run_2d(ctx.om.A, ctx.part, ctx.bstruct, scenario.nprocs,
                             ctx.spec, synchronous=(scenario.method == "sync"),
                             sim_opts=sim_opts, abft=scenario.abft)
            out.sim = res.sim
            out.factor = res.factor
            out.seconds = res.sim.total_time
            out.crashes = tuple(res.sim.fault_stats.crashes)
        elif scenario.mode in ("resilient-1d", "resilient-2d"):
            runner = (run_1d_resilient if scenario.mode == "resilient-1d"
                      else run_2d_resilient)
            kwargs = {"method": scenario.method} if scenario.mode == "resilient-1d" \
                else {"synchronous": scenario.method == "sync"}
            res = runner(
                ctx.om.A, ctx.part, ctx.bstruct, scenario.nprocs, ctx.spec,
                ckpt_interval=scenario.ckpt_interval, faults=plan,
                reliable=rel, sim_opts={"tracer": tracer, "trace": True},
                abft=scenario.abft, **kwargs,
            )
            out.resilient = res
            out.factor = res.factor
            out.seconds = res.total_time
            out.crashes = tuple(res.crashes)
            fired = []
            for round_sim in res.results:
                fired.extend(round_sim.fault_stats.injected)
            out.injected = tuple(sorted(fired, key=lambda e: e.key()))
        elif scenario.mode == "service":
            from ..service import SolveService
            opts = {"method": scenario.method, "nprocs": scenario.nprocs,
                    "abft": scenario.abft}
            if plan.rules or plan.crashes or plan.events:
                opts["faults"] = plan
            if rel is not None:
                opts["reliable"] = rel
            svc = SolveService(workers=1, max_queue=4, max_retries=1,
                               solver_opts=opts)
            jid = svc.submit(ctx.A, ctx.b)
            out.x = svc.result(jid)
        else:
            raise ValueError(f"unknown scenario mode {scenario.mode!r}")
    except Exception as e:  # the oracles decide what failure means
        out.error = e
    if isinstance(use_plan, RecordingPlan):
        out.injected = tuple(sorted(use_plan.fired, key=lambda e: e.key()))
    return out


def run_case(ctx: ChaosContext, scenario: Scenario, plan,
             family: str = "?", index: int = 0) -> RunOutcome:
    """Execute one case and evaluate every applicable oracle."""
    out = execute_case(ctx, scenario, plan)
    out.family = family
    out.index = index
    out.oracles = tuple(evaluate(ctx, scenario, out))
    return out


# ---------------------------------------------------------------------------
# the campaign
# ---------------------------------------------------------------------------


@dataclass
class CampaignReport:
    """Aggregated campaign outcome."""

    runs: int
    failures: list      # dict per failing run
    coverage: dict
    virtual_seconds: float
    counters: dict

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "runs": self.runs,
            "ok": self.ok,
            "failures": self.failures,
            "coverage": self.coverage,
            "virtual_seconds": self.virtual_seconds,
            "counters": self.counters,
        }

    def summary(self) -> str:
        cov = self.coverage
        lines = [
            f"chaos campaign: {self.runs} runs, "
            f"{len(self.failures)} failing "
            f"({self.virtual_seconds:.3g} simulated seconds)",
            f"  fault coverage: {cov['total_injected']} injected events, "
            f"{len(cov['cells'])} action:tag cells, "
            f"{len(cov['pairs'])} src->dest pairs, "
            f"{cov['crashes']} crashes",
        ]
        for name, n in sorted(cov["families"].items()):
            lines.append(f"    {name:8s} {n} runs")
        for f in self.failures:
            lines.append(
                f"  FAIL {f['scenario']}/{f['family']}#{f['index']}: "
                f"{f['failure_key']}")
        return "\n".join(lines)


class Campaign:
    """Sweep fault families over scenarios, checking every oracle."""

    def __init__(self, ctx: ChaosContext = None, scenarios=None,
                 families=None, budget: int = 60, seed: int = 0,
                 tracer: Tracer = None):
        self.ctx = ctx if ctx is not None else build_context()
        self.scenarios = tuple(scenarios) if scenarios is not None \
            else DEFAULT_SCENARIOS
        self.families = tuple(families) if families is not None \
            else plans.FAMILIES
        self.budget = int(budget)
        self.seed = int(seed)
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics: MetricsRegistry = self.tracer.metrics
        self.outcomes = []

    def pairs(self) -> list:
        """The compatible (scenario, family) pairs, in sweep order."""
        out = [(s, f) for s in self.scenarios for f in self.families
               if plans.compatible(f, s.capabilities)]
        if not out:
            raise ValueError(
                "no compatible (scenario, family) pairs: every family "
                "needs a scenario providing its recovery capabilities")
        return out

    def run(self) -> CampaignReport:
        ctx = self.ctx
        pairs = self.pairs()
        failures = []
        cursor = {}  # per-scenario virtual-time cursor for the spans
        total_virtual = 0.0
        from collections import Counter
        cov_actions, cov_tags = Counter(), Counter()
        cov_cells, cov_fam, cov_scn = Counter(), Counter(), Counter()
        cov_pairs = set()
        crashes = 0
        for i in range(self.budget):
            scenario, family = pairs[i % len(pairs)]
            index = i // len(pairs)
            plan = plans.make_plan(family, index, self.seed, scenario.nprocs,
                                   tscale=ctx.tscale)
            out = run_case(ctx, scenario, plan, family=family, index=index)
            self.outcomes.append(out)
            self.metrics.counter("chaos.runs").inc()
            if out.tracer is not None:
                self.metrics.merge(out.tracer.metrics)
            t0 = cursor.get(scenario.name, 0.0)
            self.tracer.span(
                f"chaos/{scenario.name}", f"{family}#{index}", PHASE,
                t0, t0 + out.seconds,
                {"ok": out.ok, "injected": len(out.injected),
                 "crashes": len(out.crashes)},
            )
            cursor[scenario.name] = t0 + out.seconds
            total_virtual += out.seconds
            cov_fam[family] += 1
            cov_scn[scenario.name] += 1
            crashes += len(out.crashes)
            for ev in out.injected:
                kind = ev.tag[0] if isinstance(ev.tag, tuple) else str(ev.tag)
                cov_actions[ev.action] += 1
                cov_tags[str(kind)] += 1
                cov_cells[f"{ev.action}:{kind}"] += 1
                cov_pairs.add((ev.src, ev.dest))
            if not out.ok:
                self.metrics.counter("chaos.failures").inc()
                failures.append({
                    "scenario": scenario.name,
                    "family": family,
                    "index": index,
                    "failure_key": out.failure_key(),
                    "oracles": [str(r) for r in out.oracles],
                })
        coverage = {
            "actions": dict(cov_actions),
            "tags": dict(cov_tags),
            "cells": dict(cov_cells),
            "pairs": sorted([list(p) for p in cov_pairs]),
            "families": dict(cov_fam),
            "scenarios": dict(cov_scn),
            "crashes": crashes,
            "total_injected": sum(cov_actions.values()),
        }
        return CampaignReport(
            runs=self.budget,
            failures=failures,
            coverage=coverage,
            virtual_seconds=total_virtual,
            counters=self.metrics.as_dict(),
        )
