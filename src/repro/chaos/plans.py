"""Seeded fault-plan families for the chaos campaign.

A **family** is a named grid of seeded :class:`repro.machine.FaultPlan`
cases over one fault action — ``drop`` / ``dup`` / ``delay`` / ``corrupt``
/ ``crash`` — swept across source, destination, tag prefix and (for
delays and crashes) virtual time.  ``make_plan(family, index, ...)``
deterministically materialises case ``index`` of the family's grid, so a
campaign is fully replayable from ``(families, scenario list, seed,
budget)`` alone.

Each family also declares which *capabilities* a scenario must provide
for its faults to be recoverable (``requirements``): drops and
duplicates need the retry transport, corruption needs either transport
checksums or ABFT-plus-checkpointing, crashes need checkpoint/restart.
The campaign only pairs a family with scenarios that satisfy at least
one requirement set — every run of the sweep is then *expected* green,
and any oracle violation is a real bug, not a configured-to-fail case.
"""

from __future__ import annotations

from itertools import product

from ..machine.faults import (
    CORRUPT,
    DELAY,
    DROP,
    DUPLICATE,
    FaultPlan,
    MessageFaultRule,
)

#: campaign sweep order (stable: plan seeds hash the family's position)
FAMILIES = ("drop", "dup", "delay", "corrupt", "crash")

#: capability tokens a scenario can provide (see Scenario.capabilities)
RELIABLE = "reliable"    # ack/retry transport
CHECKSUM = "checksum"    # transport-level frame checksums
ABFT = "abft"            # checksum-carrying kernels + payload verification
RESILIENT = "resilient"  # checkpoint/restart rounds

#: family -> tuple of alternative capability sets, any one of which makes
#: the family's faults recoverable for the scenario
REQUIREMENTS = {
    "drop": (frozenset({RELIABLE}),),
    "dup": (frozenset({RELIABLE}),),
    "delay": (frozenset(),),  # reordering alone never loses a message
    "corrupt": (
        frozenset({RELIABLE, CHECKSUM}),  # NIC discards, transport retries
        frozenset({ABFT, RESILIENT}),     # ABFT detects, round replays
    ),
    "crash": (frozenset({RESILIENT}),),
}

# grid axes.  Tag prefixes cover the block-payload message classes of the
# 1D codes ("col") and the 2D codes ("lcol"/"urow"/"swap"); None matches
# every tag.  The corrupt family stays on the ABFT-protected block
# payloads — the 2D pivot-reduction scalars (pmax/pbest) are documented
# as unprotected, so corrupting them is a *failing* case for the
# shrinker, not a campaign case.
_RATES = (0.05, 0.12, 0.25)
_TAGS = (None, ("col",), ("lcol",), ("urow",))
_CORRUPT_TAGS = (("col",), ("lcol",), ("urow",), ("swap",))
_DELAYS = (2e-6, 2e-5, 1e-4)
_CRASH_FRACTIONS = (0.0, 0.25, 0.6)


def compatible(family: str, capabilities: frozenset) -> bool:
    """True when ``capabilities`` satisfies one of the family's
    requirement alternatives (its faults are recoverable there)."""
    return any(req <= capabilities for req in REQUIREMENTS[family])


def family_cells(family: str, nprocs: int, tscale: float = 1e-3) -> list:
    """The family's full sweep grid as a list of cell descriptors."""
    srcs = (None, 0)
    dests = (None, nprocs - 1)
    if family == "drop":
        return [("drop", r, t, s, d)
                for r, t, s, d in product(_RATES, _TAGS, srcs, dests)]
    if family == "dup":
        return [("dup", r, t, s, d)
                for r, t, s, d in product(_RATES, _TAGS, srcs, dests)]
    if family == "delay":
        return [("delay", r, t, dt)
                for r, t, dt in product(_RATES, _TAGS, _DELAYS)]
    if family == "corrupt":
        return [("corrupt", r, t, s)
                for r, t, s in product(_RATES, _CORRUPT_TAGS, srcs)]
    if family == "crash":
        return [("crash", rank, frac * tscale)
                for rank, frac in product(range(1, nprocs), _CRASH_FRACTIONS)]
    raise ValueError(f"unknown chaos family {family!r}")


def make_plan(family: str, index: int, seed: int, nprocs: int,
              tscale: float = 1e-3) -> FaultPlan:
    """Materialise case ``index`` of the family's grid as a FaultPlan.

    ``index`` wraps around the grid; the plan's hash seed folds in the
    campaign seed, the family and the index so repeated visits to the
    same cell still flip fresh (but replayable) coins.  ``tscale`` is a
    nominal fault-free makespan used to place crash times.
    """
    cells = family_cells(family, nprocs, tscale)
    cell = cells[index % len(cells)]
    plan_seed = (seed * 100003 + FAMILIES.index(family) * 7919 + index) % (2**31)
    if cell[0] == "crash":
        _, rank, at_time = cell
        return FaultPlan(seed=plan_seed).with_crash(rank, at_time)
    if cell[0] == "delay":
        _, rate, tag, delay_s = cell
        rule = MessageFaultRule(DELAY, rate=rate, tag_prefix=tag,
                                delay_s=delay_s)
        return FaultPlan(rules=[rule], seed=plan_seed)
    action = {"drop": DROP, "dup": DUPLICATE, "corrupt": CORRUPT}[cell[0]]
    if cell[0] == "corrupt":
        _, rate, tag, src = cell
        rule = MessageFaultRule(action, rate=rate, tag_prefix=tag, src=src)
    else:
        _, rate, tag, src, dest = cell
        rule = MessageFaultRule(action, rate=rate, tag_prefix=tag,
                                src=src, dest=dest)
    return FaultPlan(rules=[rule], seed=plan_seed)
