"""Delta-debugging shrinker: failing campaign run -> minimal fault schedule.

A campaign case fails under a *probabilistic* plan (rules flipping hashed
coins per message).  Shrinking proceeds in four steps:

1. **Materialise** — re-run the case recording every fired decision as an
   explicit :class:`repro.machine.FaultEvent` (the plan's decisions are
   hash-replayable, so the recorded schedule reproduces the run exactly);
   verify the events-only plan fails with the same ``failure_key``.
2. **ddmin** — classic delta debugging over the event list (plus any
   scheduled crashes): repeatedly try subsets and complements, keeping
   the smallest schedule that still fails *the same way*.
3. **Normalise** — sort the surviving events canonically and pull crash
   times to the earliest value that still reproduces the failure.
4. **Artifact** — emit a self-contained JSON repro (matrix config,
   scenario, minimal plan, expected failure key) that
   :func:`replay_artifact` re-runs and checks bit-for-bit.

The shrinker operates on single-Simulator scenarios (modes ``1d``/``2d``)
— exactly the ones whose failures are schedules of message events.  The
checkpoint/restart and service scenarios recover by design; their
failures are campaign-level bugs, reported unshrunk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..machine.faults import CrashFault, FaultEvent, FaultPlan
from .campaign import ChaosContext, Scenario, build_context, run_case


@dataclass
class ShrinkResult:
    """A minimised failing schedule and its replayable artifact."""

    scenario: Scenario
    plan: FaultPlan          # events-only minimal plan
    failure_key: list
    original_events: int
    shrunk_events: int
    tests: int               # case executions the shrink spent
    artifact: dict

    def save(self, path) -> None:
        with open(path, "w") as f:
            json.dump(self.artifact, f, indent=2, sort_keys=True)


def _plan_from_atoms(atoms, seed: int) -> FaultPlan:
    events = [a for a in atoms if isinstance(a, FaultEvent)]
    crashes = [a for a in atoms if isinstance(a, CrashFault)]
    return FaultPlan(rules=(), crashes=crashes, seed=seed, events=events)


def _ddmin(atoms: list, fails, max_tests: int) -> tuple:
    """Zeller's ddmin over ``atoms``; ``fails(subset) -> bool``.

    Returns ``(minimal_atoms, tests_used)``.  The input list must already
    fail.  Stops early (returning the best-so-far) if ``max_tests`` runs
    out — minimality is then best-effort, correctness is not affected.
    """
    tests = 0
    n = 2
    while len(atoms) >= 2 and tests < max_tests:
        size = len(atoms) // n
        chunks = [atoms[i * size: (i + 1) * size if i < n - 1 else len(atoms)]
                  for i in range(n)]
        reduced = False
        for chunk in chunks:
            if tests >= max_tests:
                return atoms, tests
            tests += 1
            if chunk and fails(chunk):
                atoms, n, reduced = chunk, 2, True
                break
        if reduced:
            continue
        if n > 2:
            for i in range(n):
                comp = [a for j, c in enumerate(chunks) if j != i for a in c]
                if tests >= max_tests:
                    return atoms, tests
                tests += 1
                if comp and fails(comp):
                    atoms, n, reduced = comp, max(n - 1, 2), True
                    break
        if reduced:
            continue
        if n >= len(atoms):
            break
        n = min(len(atoms), 2 * n)
    return atoms, tests


def shrink_failure(ctx: ChaosContext, scenario: Scenario, plan: FaultPlan,
                   outcome=None, max_tests: int = 200) -> ShrinkResult:
    """Reduce a failing (scenario, plan) case to a minimal fault schedule.

    Raises ``ValueError`` when the case does not actually fail, or when
    the materialised explicit schedule fails a different way than the
    probabilistic original (which would mean the decisions are not
    replay-safe — itself a bug worth surfacing loudly).
    """
    if scenario.mode not in ("1d", "2d"):
        raise ValueError(
            f"shrinking operates on single-simulator scenarios, "
            f"not {scenario.mode!r}")
    tests = 0
    if outcome is None:
        outcome = run_case(ctx, scenario, plan)
        tests += 1
    key = outcome.failure_key()
    if key is None:
        raise ValueError("case is green; nothing to shrink")

    # 1. materialise: explicit events-only plan must fail identically
    atoms = list(outcome.injected) + list(plan.crashes)
    if not atoms:
        raise ValueError("failing run fired no fault events to shrink")
    base = _plan_from_atoms(atoms, plan.seed)
    check = run_case(ctx, scenario, base)
    tests += 1
    if check.failure_key() != key:
        raise ValueError(
            f"materialised schedule does not reproduce the failure: "
            f"{check.failure_key()} != {key}")

    def fails(subset) -> bool:
        out = run_case(ctx, scenario, _plan_from_atoms(subset, plan.seed))
        return out.failure_key() == key

    # 2. ddmin
    minimal, dd_tests = _ddmin(atoms, fails, max_tests - tests)
    tests += dd_tests

    # 3. normalise: earliest-time crashes, canonical event order
    normalised = []
    for a in minimal:
        if isinstance(a, CrashFault) and a.at_time > 0.0 and tests < max_tests:
            early = CrashFault(a.rank, 0.0)
            tests += 1
            if fails([early if x is a else x for x in minimal]):
                a = early
        normalised.append(a)
    events = sorted((a for a in normalised if isinstance(a, FaultEvent)),
                    key=lambda e: e.key())
    crashes = sorted((a for a in normalised if isinstance(a, CrashFault)),
                     key=lambda c: (c.at_time, c.rank))
    min_plan = FaultPlan(rules=(), crashes=crashes, seed=plan.seed,
                         events=events)

    artifact = {
        "version": 1,
        "kind": "repro.chaos.repro",
        "matrix": dict(ctx.config),
        "scenario": scenario.to_dict(),
        "plan": min_plan.to_dict(),
        "failure_key": key,
        "original_events": len(atoms),
        "shrunk_events": len(events) + len(crashes),
        "tests": tests,
    }
    return ShrinkResult(
        scenario=scenario, plan=min_plan, failure_key=key,
        original_events=len(atoms), shrunk_events=len(events) + len(crashes),
        tests=tests, artifact=artifact,
    )


def replay_artifact(source, ctx: ChaosContext = None):
    """Re-run a repro artifact; returns ``(outcome, matches)``.

    ``source`` is an artifact dict, a JSON string, or a path to one.
    ``matches`` is True when the replay fails with exactly the recorded
    ``failure_key`` — the bit-for-bit reproduction check.  Pass ``ctx``
    to reuse an existing pipeline (it must match the artifact's matrix
    config); otherwise the pipeline is rebuilt from the artifact.
    """
    if isinstance(source, dict):
        art = source
    else:
        text = source
        if hasattr(source, "read"):
            text = source.read()
        elif isinstance(source, str) and not source.lstrip().startswith("{"):
            with open(source) as f:
                text = f.read()
        art = json.loads(text)
    if art.get("kind") != "repro.chaos.repro":
        raise ValueError("not a chaos repro artifact")
    cfg = art["matrix"]
    if ctx is None:
        ctx = build_context(n=cfg["n"], density=cfg["density"],
                            mseed=cfg["mseed"], block=cfg["block"],
                            amalg=cfg["amalg"])
    elif ctx.config != cfg:
        raise ValueError(
            f"context matrix {ctx.config} != artifact matrix {cfg}")
    scenario = Scenario.from_dict(art["scenario"])
    plan = FaultPlan.from_dict(art["plan"])
    outcome = run_case(ctx, scenario, plan)
    return outcome, outcome.failure_key() == art["failure_key"]
