"""repro.chaos — chaos campaign harness with failing-schedule shrinking.

Sweeps seeded fault-plan families over the 1D/2D solvers, their
checkpoint/restart variants and the solve service; checks every run
against exact invariant oracles; and shrinks any failing run to a
minimal, replayable fault schedule (a JSON repro artifact).

Quickstart::

    from repro.chaos import Campaign, build_context

    report = Campaign(build_context(), budget=100, seed=7).run()
    print(report.summary())
    assert report.ok

or from the command line: ``repro chaos --budget 100 --fail-on failure``.
"""

from .campaign import (
    Campaign,
    CampaignReport,
    ChaosContext,
    DEFAULT_SCENARIOS,
    RunOutcome,
    Scenario,
    build_context,
    execute_case,
    run_case,
)
from .oracles import OracleReport, evaluate
from .plans import FAMILIES, REQUIREMENTS, compatible, family_cells, make_plan
from .shrink import ShrinkResult, replay_artifact, shrink_failure

__all__ = [
    "Campaign",
    "CampaignReport",
    "ChaosContext",
    "DEFAULT_SCENARIOS",
    "FAMILIES",
    "OracleReport",
    "REQUIREMENTS",
    "RunOutcome",
    "Scenario",
    "ShrinkResult",
    "build_context",
    "compatible",
    "evaluate",
    "execute_case",
    "family_cells",
    "make_plan",
    "replay_artifact",
    "run_case",
    "shrink_failure",
]
