"""Invariant oracles the chaos campaign checks every run against.

Each oracle returns an :class:`OracleReport`; a run is green only when
*every* applicable oracle passes.  The oracles are deliberately exact —
the simulated machine is deterministic, so under any *recoverable* fault
plan the factorization must be **bit-identical** to the fault-free
reference, not merely close:

``completed``
    the run finished — no deadlock, no typed delivery/crash error
    escaping the recovery machinery, no unexpected exception;
``bit_identical``
    merged factor blocks and pivot sequence equal the sequential
    reference exactly;
``solve_identical``
    the solve through the recovered factor reproduces the reference
    solution bitwise;
``tracecheck``
    the message trace passes :func:`repro.verify.check_run` (uniqueness,
    no leaked messages, causality, retransmit recognition — and for 1D,
    span/DAG conformance);
``span_tiling``
    every rank's non-task tracer spans tile its timeline contiguously
    from 0 to the rank's final clock — no gaps, no overlaps, even when
    ranks crash while blocked (metrics/trace consistency, part 1);
``metrics_consistent``
    the MetricsRegistry counters agree exactly with the simulator's own
    accounting: injected-fault counters vs ``FaultStats``, message and
    byte counters vs the SimResult (metrics/trace consistency, part 2);
``recovery``
    (resilient runs) the committed checkpoint rounds cover the stage
    range ``[0, N)`` in order, i.e. restart replayed every discarded
    window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..numfact import LUFactorization
from ..obs import TASK
from ..verify import check_run


@dataclass(frozen=True)
class OracleReport:
    """Outcome of one oracle on one run."""

    name: str
    ok: bool
    detail: str = ""

    def __str__(self):
        return f"{'ok ' if self.ok else 'FAIL'} {self.name}" + (
            f": {self.detail}" if self.detail and not self.ok else ""
        )


def check_bit_identical(factor, reference) -> OracleReport:
    ref = reference.matrix if isinstance(reference, LUFactorization) else reference
    if set(factor.blocks) != set(ref.blocks):
        return OracleReport("bit_identical", False, "block set differs")
    if factor.pivot_seq != ref.pivot_seq:
        return OracleReport("bit_identical", False, "pivot sequence differs")
    for key in ref.blocks:
        if not np.array_equal(factor.blocks[key], ref.blocks[key]):
            return OracleReport("bit_identical", False, f"block {key} differs")
    return OracleReport("bit_identical", True)


def check_solve_identical(ctx, factor) -> OracleReport:
    lf = LUFactorization(factor, ctx.sym, ctx.part, ctx.bstruct, None)
    x = lf.solve(ctx.b)
    if np.array_equal(x, ctx.x_ref):
        return OracleReport("solve_identical", True)
    err = float(np.max(np.abs(x - ctx.x_ref)))
    return OracleReport("solve_identical", False, f"max |dx| = {err:.3g}")


def check_tracecheck(sim_result, spec, tg=None, schedule=None) -> OracleReport:
    report = check_run(sim_result, spec=spec, tg=tg, schedule=schedule)
    if report.ok:
        return OracleReport("tracecheck", True)
    return OracleReport("tracecheck", False, report.summary())


def check_span_tiling(tracer, sim_result) -> OracleReport:
    """Non-task spans on each rank's track must tile [0, rank_clock]."""
    for r in range(sim_result.nprocs):
        spans = sorted(
            (s for s in tracer.spans
             if s.track == r and s.cat != TASK),
            key=lambda s: (s.start, s.end),
        )
        cursor = 0.0
        for s in spans:
            if abs(s.start - cursor) > 1e-12:
                return OracleReport(
                    "span_tiling", False,
                    f"rank {r}: gap/overlap at t={cursor:.3g} "
                    f"(next span {s.name!r} starts {s.start:.3g})",
                )
            cursor = s.end
        end = sim_result.rank_clocks[r]
        if abs(cursor - end) > 1e-12:
            return OracleReport(
                "span_tiling", False,
                f"rank {r}: timeline ends at {cursor:.3g}, clock is {end:.3g}",
            )
    return OracleReport("span_tiling", True)


def check_metrics_consistent(tracer, sim_result) -> OracleReport:
    """Counters must agree exactly with the simulator's own accounting."""
    stats = sim_result.fault_stats

    def counter(name):
        return tracer.metrics.counter(name).value

    checks = [
        ("sim.faults.dropped", stats.dropped),
        ("sim.faults.duplicated", stats.duplicated),
        ("sim.faults.delayed", stats.delayed),
        ("sim.faults.corrupted", stats.corrupted),
        ("sim.retransmits", stats.retransmits),
        ("sim.messages", sim_result.messages),
        ("sim.bytes", sim_result.bytes_sent),
    ]
    for name, expect in checks:
        got = counter(name)
        if got != expect:
            return OracleReport(
                "metrics_consistent", False,
                f"{name}: counter={got}, simulator={expect}",
            )
    if len(stats.injected) != stats.total_injected():
        return OracleReport(
            "metrics_consistent", False,
            f"{len(stats.injected)} injected events vs "
            f"{stats.total_injected()} tallied faults",
        )
    return OracleReport("metrics_consistent", True)


def check_recovery(resilient_result, n_stages: int) -> OracleReport:
    """Committed rounds must cover [0, n_stages) in order."""
    k = 0
    for rnd in resilient_result.rounds:
        if not rnd.ok:
            continue
        if rnd.window[0] != k:
            return OracleReport(
                "recovery", False,
                f"committed round starts at {rnd.window[0]}, expected {k}",
            )
        k = rnd.window[1]
    if k != n_stages:
        return OracleReport(
            "recovery", False, f"rounds cover [0, {k}), need [0, {n_stages})",
        )
    if resilient_result.nprocs_final < 1:
        return OracleReport("recovery", False, "no surviving ranks")
    return OracleReport("recovery", True)


def evaluate(ctx, scenario, outcome) -> list:
    """Run every applicable oracle for this outcome; returns the reports."""
    if outcome.error is not None:
        return [OracleReport("completed", False, repr(outcome.error))]
    reports = [OracleReport("completed", True)]
    if scenario.mode == "service":
        if np.array_equal(outcome.x, ctx.service_x_ref()):
            reports.append(OracleReport("service_result", True))
        else:
            reports.append(OracleReport(
                "service_result", False, "solution differs from reference"))
        return reports
    reports.append(check_bit_identical(outcome.factor, ctx.seq))
    reports.append(check_solve_identical(ctx, outcome.factor))
    if outcome.sim is not None:  # direct single-simulator run
        tg = ctx.tg if scenario.mode == "1d" else None
        reports.append(check_tracecheck(outcome.sim, ctx.spec, tg=tg,
                                        schedule=outcome.schedule))
        reports.append(check_span_tiling(outcome.tracer, outcome.sim))
        reports.append(check_metrics_consistent(outcome.tracer, outcome.sim))
    if outcome.resilient is not None:
        reports.append(check_recovery(outcome.resilient, ctx.part.N))
        for i, round_sim in enumerate(outcome.resilient.results):
            rep = check_run(round_sim, spec=ctx.spec)
            if not rep.ok:
                reports.append(OracleReport(
                    "tracecheck", False, f"round {i}: {rep.summary()}"))
                break
        else:
            reports.append(OracleReport("tracecheck", True))
    return reports
