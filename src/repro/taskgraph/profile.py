"""Parallelism profile of the LU task DAG.

Quantifies the "irregular task parallelism" the paper exploits: total work,
critical path, average parallelism (their ratio), per-level task-count
histogram, and the task-granularity spread (the mixed granularities that
make dynamic load balancing impractical on distributed memory — Section
5.1's argument for static graph scheduling).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dag import TaskGraph


@dataclass
class ParallelismProfile:
    """Summary statistics of a task graph under a machine cost model."""

    total_seconds: float
    critical_path_seconds: float
    ntasks: int
    depth: int  # longest chain, in tasks
    max_width: int  # widest topological level
    granularity_p10: float  # 10th/90th percentile task seconds
    granularity_p90: float

    @property
    def average_parallelism(self) -> float:
        """Total work / critical path — the speedup any schedule can hope
        for (Brent's bound)."""
        if self.critical_path_seconds <= 0:
            return 1.0
        return self.total_seconds / self.critical_path_seconds

    @property
    def granularity_spread(self) -> float:
        """p90/p10 of task durations — the 'mixed granularities' factor."""
        if self.granularity_p10 <= 0:
            return float("inf")
        return self.granularity_p90 / self.granularity_p10


def parallelism_profile(tg: TaskGraph, spec) -> ParallelismProfile:
    """Compute the profile of ``tg`` under ``spec``'s cost model."""
    durations = np.array([tg.seconds(t, spec) for t in tg.tasks])
    total = float(durations.sum())
    cp = tg.critical_path_seconds(spec)

    # topological levels (ignoring communication): level = 1 + max(pred)
    level = {}
    for t in tg.tasks:  # tasks are topologically ordered
        level[t] = 1 + max((level[p] for p in tg.pred.get(t, ())), default=0)
    depth = max(level.values()) if level else 0
    widths = np.bincount([level[t] for t in tg.tasks])
    max_width = int(widths.max()) if len(widths) else 0

    pos = durations[durations > 0]
    p10 = float(np.percentile(pos, 10)) if len(pos) else 0.0
    p90 = float(np.percentile(pos, 90)) if len(pos) else 0.0
    return ParallelismProfile(
        total_seconds=total,
        critical_path_seconds=cp,
        ntasks=len(tg.tasks),
        depth=depth,
        max_width=max_width,
        granularity_p10=p10,
        granularity_p90=p90,
    )
