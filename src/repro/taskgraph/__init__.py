"""Task DAG construction for the partitioned sparse LU (Section 4.1)."""

from .dag import TaskGraph, build_task_graph, FACTOR, UPDATE
from .profile import parallelism_profile, ParallelismProfile

__all__ = [
    "TaskGraph",
    "build_task_graph",
    "FACTOR",
    "UPDATE",
    "parallelism_profile",
    "ParallelismProfile",
]
