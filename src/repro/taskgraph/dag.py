"""The sparse LU task dependence graph.

Tasks (Section 4.1):

* ``('F', k)`` — ``Factor(k)``, one per block column;
* ``('U', k, j)`` — ``Update(k, j)``, one per structurally nonzero ``U_kj``.

Dependence rules (the four necessary ones plus the serializing fifth the
paper adds to forgo commutativity, at ~6% average cost):

1. ``Factor(k) -> Update(k, j)`` for every ``U_kj != 0``;
2. ``Update(k', k) -> Factor(k)`` where ``k'`` is the *last* update into
   column ``k`` (no ``Update(t, k)`` with ``k' < t < k``);
3. ``Update(k, j) -> Update(k'', j)`` for consecutive updates of the same
   column block (``k < k''``, none between).

Computation weights come from the static block structure (panel flops for
Factor, TRSM+GEMM flops for Update) priced per kernel class; communication
weights are the bytes of the factored column block ``k`` (L blocks + pivot
sequence) that ``Update(k, j)`` needs.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..supernodes import BlockStructure

FACTOR = "F"
UPDATE = "U"


@dataclass
class TaskGraph:
    """DAG over Factor/Update tasks with per-task seconds and edge bytes."""

    N: int
    tasks: list  # task ids in a deterministic topological-friendly order
    comp: dict  # task id -> (kernel_class, flops, granularity)
    succ: dict  # task id -> list of successor ids
    pred: dict  # task id -> list of predecessor ids
    col_bytes: dict  # k -> bytes of factored column block k (the message)
    column_of: dict  # task id -> column block it modifies (owner-compute key)

    def seconds(self, task, spec) -> float:
        kernel, fl, gran = self.comp[task]
        return spec.compute_seconds(kernel, fl, gran)

    def total_flops(self) -> float:
        return sum(fl for _, fl, _ in self.comp.values())

    def updates_of_column(self, j: int) -> list:
        return [t for t in self.tasks if t[0] == UPDATE and t[2] == j]

    def b_levels(self, spec, include_comm: bool = True) -> dict:
        """Bottom levels (critical-path-to-exit lengths) per task."""
        bl = {}
        for t in reversed(self.tasks):  # self.tasks is topologically ordered
            w = self.seconds(t, spec)
            best = 0.0
            for s in self.succ.get(t, ()):
                c = 0.0
                if include_comm and t[0] == FACTOR:
                    c = spec.message_seconds(self.col_bytes[t[1]])
                best = max(best, bl[s] + c)
            bl[t] = w + best
        return bl

    def critical_path_seconds(self, spec) -> float:
        bl = self.b_levels(spec)
        entries = [t for t in self.tasks if not self.pred.get(t)]
        return max(bl[t] for t in entries) if entries else 0.0


def _factor_flops(bstruct: BlockStructure, K: int) -> float:
    """Panel factorization flops of Factor(K) (BLAS-1/2 work)."""
    part = bstruct.part
    bs = part.size(K)
    rows = bstruct.panel_rows_count(K)
    fl = 0.0
    for c in range(bs):
        r = rows - c - 1
        fl += r + 2.0 * r * max(bs - c - 1, 0)
    return fl


def _update_flops(bstruct: BlockStructure, K: int, J: int) -> float:
    """TRSM + GEMM flops of Update(K, J), restricted to dense subcolumns."""
    part = bstruct.part
    bs = part.size(K)
    cdense = len(bstruct.udense_cols[(K, J)])
    fl = float(bs) * bs * cdense  # unit-lower TRSM
    for I in bstruct.l_block_rows(K):
        if I > K:
            fl += 2.0 * bstruct.l_rows_count(I, K) * bs * cdense
    return fl


def part_size(bstruct: BlockStructure, K: int) -> int:
    """Block width of column block K (the granularity driver)."""
    return bstruct.part.size(K)


def _column_bytes(bstruct: BlockStructure, K: int) -> int:
    """Wire size of factored column block K: all L blocks + pivots."""
    part = bstruct.part
    bs = part.size(K)
    rows = sum(part.size(I) for I in bstruct.l_block_rows(K))
    return 8 * (rows * bs + 2 * bs)


def build_task_graph(bstruct: BlockStructure) -> TaskGraph:
    """Construct the DAG from a static block structure."""
    N = bstruct.N
    tasks = []
    comp = {}
    succ = {}
    pred = {}
    col_bytes = {}
    column_of = {}

    def add_edge(a, b):
        succ.setdefault(a, []).append(b)
        pred.setdefault(b, []).append(a)

    # enumerate per source column k: Factor(k) then its updates — this
    # order is topological for rules 1-3.
    updates_into = {j: [] for j in range(N)}
    for k in range(N):
        fk = (FACTOR, k)
        tasks.append(fk)
        comp[fk] = ("dgemv", _factor_flops(bstruct, k), part_size(bstruct, k))
        col_bytes[k] = _column_bytes(bstruct, k)
        column_of[fk] = k
        for j in bstruct.u_block_cols(k):
            u = (UPDATE, k, j)
            tasks.append(u)
            comp[u] = ("dgemm", _update_flops(bstruct, k, j), part_size(bstruct, k))
            column_of[u] = j
            add_edge(fk, u)  # rule 1
            updates_into[j].append(u)

    for j in range(N):
        chain = updates_into[j]
        for a, b in zip(chain, chain[1:]):
            add_edge(a, b)  # rule 3
        if chain:
            add_edge(chain[-1], (FACTOR, j))  # rule 2

    # re-sort tasks topologically (rule 2 edges point forward to Factor(j),
    # so the enumeration order F(0), U(0,*), F(1), U(1,*) ... is already
    # topological: every U(k,j) precedes F(j) because k < j).
    return TaskGraph(
        N=N,
        tasks=tasks,
        comp=comp,
        succ=succ,
        pred=pred,
        col_bytes=col_bytes,
        column_of=column_of,
    )
