"""The zero-copy aliasing pass (``Z2xx`` rules).

The simulator's ``env.send``/``env.multicast`` model RMA-style one-sided
puts: the sender must not mutate the posted payload until the receiver
has consumed it (the real machine transfers the bytes asynchronously;
the simulator's defensive deep copy at send merely *hides* violations —
``Simulator(sanitize=True)`` is the dynamic counterpart of this pass).

* ``Z201`` (error) — **write-after-send**: a buffer reachable from a
  posted payload is mutated later in the function.  Loop bodies are
  walked twice so a send in iteration *i* followed by a mutation in
  iteration *i+1* (the wrap-around case) is caught; rebinding a name to
  a fresh allocation correctly kills the alias.
* ``Z202`` (warning) — **recv-alias-retained**: a received payload is
  retained (stored into a container or attribute, or appended) *and*
  mutated in place — the mutation is visible through the retained
  reference, breaking replay of any consumer that reads it later.

Both rules ride on the interprocedural summaries: a payload built by a
helper that returns views of its argument (``_pack_row``) aliases the
caller's storage, while a helper returning ``.copy()``-fresh buffers
(``row_payload``) is clean.
"""

from __future__ import annotations

import ast

from .core import FindingCollector, Severity, register_pass, register_rule
from .summaries import AbstractEvaluator, ValueInfo, iter_code_units

register_rule(
    "Z201", Severity.ERROR, "write-after-send",
    "payload buffer mutated after being posted by a send/multicast",
)
register_rule(
    "Z202", Severity.WARNING, "recv-alias-retained",
    "received buffer mutated in place while also retained elsewhere",
)

#: Env methods that post a payload (zero-copy put semantics); the payload
#: is the third positional argument: send(dest, tag, payload) /
#: multicast(dests, tag, payload) / put(dest, tag, payload)
SEND_METHODS = frozenset({"send", "multicast", "put"})
PAYLOAD_ARG_INDEX = 2


class AliasWalker(AbstractEvaluator):
    """One code unit's walk, emitting Z2xx findings."""

    def __init__(self, fn, summaries, path, collector: FindingCollector,
                 env_names):
        super().__init__(fn, summaries, path)
        self.col = collector
        self.env_names = frozenset(env_names)
        self.sends = []            # (send Call node, payload root set)
        self.recv_mutations = []   # (recv token, mutation node)
        self.retained = set()      # recv tokens stored beyond a local name
        self._emitted = set()

    # -- recv values --------------------------------------------------------

    def eval(self, node) -> ValueInfo:
        if isinstance(node, (ast.Yield, ast.YieldFrom)) \
                and node.value is not None and self._is_recv(node.value):
            for a in node.value.args:
                super().eval(a)
            return ValueInfo({("recv", node.value.lineno)})
        return super().eval(node)

    def _is_recv(self, call) -> bool:
        return (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "recv"
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id in self.env_names)

    # -- send sites ---------------------------------------------------------

    def eval_call(self, node: ast.Call) -> ValueInfo:
        f = node.func
        if (isinstance(f, ast.Attribute) and f.attr in SEND_METHODS
                and isinstance(f.value, ast.Name)
                and f.value.id in self.env_names):
            arg_infos = [self.eval(a) for a in node.args]
            kw_infos = {k.arg: self.eval(k.value) for k in node.keywords}
            payload = None
            if len(arg_infos) > PAYLOAD_ARG_INDEX:
                payload = arg_infos[PAYLOAD_ARG_INDEX]
            elif "payload" in kw_infos:
                payload = kw_infos["payload"]
            if payload is not None and payload.roots:
                self.sends.append((node, set(payload.roots)))
            return ValueInfo.fresh()
        return super().eval_call(node)

    # -- mutation / retention events ----------------------------------------

    def note_mutation(self, roots, node):
        for send_node, sroots in self.sends:
            if sroots & roots:
                key = ("Z201", send_node.lineno, node.lineno,
                       node.col_offset)
                if key not in self._emitted:
                    self._emitted.add(key)
                    self.col.emit(
                        "Z201", node,
                        "mutates a buffer reachable from the payload "
                        f"posted at line {send_node.lineno}; under "
                        "zero-copy put semantics the receiver may observe "
                        "the mutation (send a defensive .copy())",
                    )
        for tok in roots:
            if tok[0] == "recv":
                self.recv_mutations.append((tok, node))

    def note_retention(self, container: ValueInfo, value: ValueInfo, node):
        for tok in value.roots:
            if tok[0] == "recv":
                self.retained.add(tok)

    def finish(self):
        for tok, node in self.recv_mutations:
            if tok in self.retained:
                key = ("Z202", node.lineno, node.col_offset)
                if key not in self._emitted:
                    self._emitted.add(key)
                    self.col.emit(
                        "Z202", node,
                        "mutates a received payload in place while a "
                        f"reference from the recv at line {tok[1]} is "
                        "retained elsewhere (mutate a .copy() instead)",
                    )

    # wrap-around: a send in iteration i, mutation in iteration i+1
    def loop_body(self, s):
        self.walk(s.body)
        self.walk(s.orelse)
        self.walk(s.body)


def run(module, summaries):
    col = FindingCollector(module)
    for fn, _ in iter_code_units(module.tree):
        w = AliasWalker(fn, summaries, module.path, col, module.env_names)
        w.walk(module.tree.body if fn is None else fn.body)
        w.finish()
    return col.findings


register_pass("aliasing", run)
