"""The determinism pass (``D1xx`` rules).

Replay determinism (bit-identical numerics and traces under permuted host
orders, ``repro.verify.replay``) requires that nothing feeding numerics or
message-emission order depends on a nondeterminism source.  This pass
flags the sources at the point where their nondeterminism *escapes*:

* ``D101`` — iteration over a ``set``/``frozenset`` (statement ``for`` or
  comprehension).  Consuming the same value through an order-insensitive
  reducer (``sorted``, ``min``/``max``, ``len``, ``any``/``all``,
  ``set``/``frozenset``) or a membership test is clean.
* ``D102`` — iteration over a dict keyed in nondeterministic order (keys
  drawn from an unordered iteration), where insertion order no longer
  means anything.
* ``D103`` — unseeded RNG: any module-level ``random.*`` /
  ``numpy.random.*`` call (global state), and ``default_rng()`` /
  ``RandomState()`` / ``random.Random()`` constructed without a seed.
* ``D104`` — wall-clock reads (``time.time``/``perf_counter``/...,
  ``datetime.now``): *warning* inside the simulated packages or any
  generator (rank program), *note* elsewhere (host-side benchmarking).
* ``D105`` — iteration over an ``id()``-keyed container (CPython address
  order).  Membership tests against id-keyed containers are clean.
* ``D106`` — order-sensitive float reduction over an unordered
  collection: ``sum(...)`` over a set or accumulation (``+=``/``-=``/
  ``*=``) of a value drawn from an unordered iteration.  ``math.fsum`` is
  exempt (order-insensitive by construction).
"""

from __future__ import annotations

import ast

from .core import FindingCollector, Severity, register_pass, register_rule
from .summaries import (
    AbstractEvaluator,
    ValueInfo,
    iter_code_units,
    module_name_for_path,
)

register_rule(
    "D101", Severity.WARNING, "unordered-iteration",
    "iteration over a set/frozenset: order is nondeterministic",
)
register_rule(
    "D102", Severity.WARNING, "unordered-dict-order",
    "iteration over a dict keyed in nondeterministic order",
)
register_rule(
    "D103", Severity.ERROR, "unseeded-rng",
    "global or unseeded RNG use",
)
register_rule(
    "D104", Severity.WARNING, "wall-clock",
    "wall-clock read in (or near) simulated code",
)
register_rule(
    "D105", Severity.WARNING, "id-keyed-order",
    "iteration over an id()-keyed container",
)
register_rule(
    "D106", Severity.ERROR, "unordered-reduction",
    "order-sensitive reduction over an unordered collection",
)

#: packages whose code runs under (or checks) the simulator: wall-clock
#: reads there are warnings, not notes
SIM_PACKAGES = (
    "repro.machine", "repro.parallel", "repro.service",
    "repro.scheduling", "repro.verify", "repro.numfact", "repro.taskgraph",
)

#: dotted call targets that read the wall clock
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns", "time.sleep",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: seedable RNG constructors: clean when called with a seed argument
SEEDABLE_RNG = frozenset({
    "numpy.random.default_rng", "numpy.random.RandomState",
    "numpy.random.Generator", "random.Random",
})

#: order-insensitive consumers: unordered iteration inside them is clean
SAFE_CONSUMERS = frozenset({
    "sorted", "set", "frozenset", "min", "max", "len", "any", "all",
})

_RULE_BY_REASON = {"set": "D101", "dict": "D102", "id": "D105"}

_ACCUM_OPS = (ast.Add, ast.Sub, ast.Mult)


class DeterminismWalker(AbstractEvaluator):
    """One code unit's walk, emitting D1xx findings."""

    def __init__(self, fn, summaries, path, collector: FindingCollector,
                 sim_scoped: bool):
        super().__init__(fn, summaries, path)
        self.col = collector
        self.sim_scoped = sim_scoped
        self._safe_depth = 0
        self._reduction_depth = 0

    # -- iteration points ---------------------------------------------------

    def eval_iteration(self, iter_node, ctx_node) -> ValueInfo:
        info = self.eval(iter_node)
        if info.unordered and not self._safe_depth:
            if self._reduction_depth:
                self.col.emit(
                    "D106", iter_node,
                    "float reduction over an unordered collection: "
                    "accumulation order is nondeterministic "
                    "(use math.fsum or sorted(...))",
                )
            else:
                rule = _RULE_BY_REASON.get(info.reason, "D101")
                what = {
                    "set": "a set/frozenset",
                    "dict": "a dict keyed in nondeterministic order",
                    "id": "an id()-keyed container",
                }[info.reason]
                self.col.emit(
                    rule, iter_node,
                    f"iteration over {what}: order is nondeterministic "
                    "(wrap in sorted(...) or use an ordered structure)",
                )
        return info

    # -- calls: RNG, wall clock, reductions, safe consumers -----------------

    def eval_call(self, node: ast.Call) -> ValueInfo:
        qual = self.summaries.resolve_qualname(node.func, self.path)
        has_args = bool(node.args or node.keywords)

        if qual is not None:
            if qual.startswith("random.") or qual == "random":
                if not (qual in SEEDABLE_RNG and has_args):
                    self.col.emit(
                        "D103", node,
                        f"call to {qual}: module-level RNG state is shared "
                        "and unseeded (use a seeded np.random.default_rng)",
                    )
            elif qual.startswith("numpy.random."):
                if not (qual in SEEDABLE_RNG and has_args):
                    self.col.emit(
                        "D103", node,
                        f"call to {qual}: global/unseeded RNG "
                        "(use np.random.default_rng(seed))",
                    )
            elif qual in WALL_CLOCK_CALLS:
                self.col.emit(
                    "D104", node,
                    f"wall-clock read {qual} is nondeterministic across "
                    "runs; simulated code must use virtual time",
                    severity=(Severity.WARNING if self.sim_scoped
                              else Severity.NOTE),
                )

        fname = node.func.id if isinstance(node.func, ast.Name) else None
        safe = fname in SAFE_CONSUMERS or qual == "math.fsum"
        reduction = fname == "sum"
        if reduction:
            for a in node.args:
                if isinstance(a, ast.Name):
                    info = self.env.get(a.id)
                    if info is not None and info.unordered:
                        self.col.emit(
                            "D106", node,
                            "sum() over an unordered collection: float "
                            "accumulation order is nondeterministic "
                            "(use math.fsum or sum(sorted(...)))",
                        )
        if safe:
            self._safe_depth += 1
        if reduction:
            self._reduction_depth += 1
        try:
            return super().eval_call(node)
        finally:
            if safe:
                self._safe_depth -= 1
            if reduction:
                self._reduction_depth -= 1

    # -- dict keying and accumulation ---------------------------------------

    def note_keying(self, target, key_info: ValueInfo, node) -> None:
        if not isinstance(target.value, ast.Name):
            return
        cur = self.env.get(target.value.id)
        if cur is None:
            return
        key_expr = target.slice
        if (isinstance(key_expr, ast.Call)
                and isinstance(key_expr.func, ast.Name)
                and key_expr.func.id == "id"):
            cur.unordered, cur.reason = True, "id"
        elif key_info.tainted:
            cur.unordered, cur.reason = True, "dict"

    def note_aug_assign(self, s, value_info: ValueInfo) -> None:
        if value_info.tainted and isinstance(s.op, _ACCUM_OPS):
            self.col.emit(
                "D106", s,
                "accumulation of a value drawn from an unordered "
                "iteration: reduction order is nondeterministic",
            )


def run(module, summaries):
    col = FindingCollector(module)
    modname = summaries.module_name.get(module.path) \
        or module_name_for_path(module.path)
    sim_pkg = modname.startswith(SIM_PACKAGES)
    for fn, is_gen in iter_code_units(module.tree):
        w = DeterminismWalker(fn, summaries, module.path, col,
                              sim_scoped=sim_pkg or is_gen)
        w.walk(module.tree.body if fn is None else fn.body)
    return col.findings


register_pass("determinism", run)
