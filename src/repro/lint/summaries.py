"""Interprocedural function summaries and the shared abstract evaluator.

The passes in :mod:`repro.lint.determinism` and :mod:`repro.lint.aliasing`
are per-function dataflow walks; what makes them *interprocedural* is the
summary table built here.  For every top-level function in the linted file
set we compute, to a fixed point over the call graph:

* ``returns_fresh`` — every return value is a newly allocated buffer that
  aliases no argument (e.g. ``row_payload`` returning ``seg[i].copy()``);
* ``returns_alias_of`` — the set of parameter names the return value may
  alias, tracked through subscripts, attributes, container stores and
  conditional returns (e.g. ``_pack_row`` returning a dict of row views);
* ``returns_unordered`` — the return value is an unordered collection
  (``set``/``frozenset``), so iterating it is nondeterministic;
* ``mutates_params`` — parameters whose reachable memory the function may
  write (e.g. ``update_block_column`` solving into ``m.blocks``).

Calls are resolved across modules through each file's import graph
(relative imports are resolved against the module name derived from the
file's path under ``src/``).  Unresolved calls are treated conservatively
for aliasing (result may alias every argument) and optimistically for
mutation (assumed not to mutate) — the combination that keeps the
codebase-level false-positive rate near zero.

The value lattice (:class:`ValueInfo`) tracks, per abstract value:

* ``roots`` — the memory regions the value may reach: ``("param", name)``
  for parameters, ``("free", name)`` for closure/global names,
  ``("alloc", n)`` for allocation sites (a new token per evaluation, so a
  rebound loop-local buffer is distinct from last iteration's), and
  ``("recv", line)`` for received payloads (attached by the aliasing pass);
* ``unordered`` / ``reason`` — iteration order is nondeterministic and why
  (``"set"``, ``"dict"`` for nondeterministically-keyed dicts, ``"id"``
  for ``id()``-keyed containers);
* ``element_unordered`` — an ordered container whose *elements* are
  unordered collections (``[set() for _ in ...]``: indexing yields a set);
* ``tainted`` — the value is an element drawn from an unordered iteration
  (keying a dict with it makes the dict's order nondeterministic).

Known model approximations (all biased against false positives, with the
dynamic sanitizer as the runtime backstop): ``list``/``tuple``/``dict``/
``sorted`` results are treated as fresh shallow copies of scalar
containers, and dict *keys* are assumed immutable (key expressions do not
contribute roots).
"""

from __future__ import annotations

import ast
import itertools
from dataclasses import dataclass, field

# -- call classification tables ---------------------------------------------

#: methods that mutate their receiver in place
MUTATOR_METHODS = frozenset({
    "fill", "sort", "reverse", "append", "extend", "insert", "add",
    "update", "discard", "remove", "setdefault", "pop", "popitem",
    "clear", "resize", "itemset", "put", "byteswap",
})

#: numpy module-level functions that mutate their first argument
NP_MUTATING_FUNCS = frozenset({
    "copyto", "put", "place", "putmask", "fill_diagonal",
})

#: numpy module-level functions whose result may be a view of an argument
NP_VIEW_FUNCS = frozenset({
    "asarray", "asanyarray", "ascontiguousarray", "atleast_1d",
    "atleast_2d", "ravel", "reshape", "transpose", "squeeze",
    "broadcast_to", "frombuffer", "swapaxes", "moveaxis", "split",
})

#: accessor methods: the result aliases the receiver only — key/index
#: arguments select *within* the container and do not flow into the result
ACCESSOR_METHODS = frozenset({"get", "items", "keys", "values"})

#: methods returning a fresh buffer / immutable scalar (never a view)
FRESH_METHODS = frozenset({
    "copy", "deepcopy", "tobytes", "tolist", "item", "sum", "min", "max",
    "mean", "dot", "astype", "flatten", "conj", "cumsum", "prod",
    "nbytes", "count", "index", "hexdigest", "digest", "format", "join",
})

#: builtins returning immutable scalars (never alias, never unordered)
SCALAR_BUILTINS = frozenset({
    "float", "int", "str", "bool", "bytes", "len", "abs", "round",
    "repr", "hash", "sum", "min", "max", "divmod", "pow", "ord", "chr",
    "isinstance", "issubclass", "any", "all", "id", "range",
})

#: builtins modeled as fresh shallow copies (scalar-container assumption)
SHALLOW_FRESH_BUILTINS = frozenset({"list", "tuple", "dict", "sorted"})

#: builtins yielding the argument's own elements (aliasing iterators)
ALIASING_BUILTINS = frozenset({
    "reversed", "zip", "enumerate", "iter", "next", "filter", "map",
})

#: builtins returning unordered collections
UNORDERED_BUILTINS = frozenset({"set", "frozenset"})


def flatten_dotted(expr):
    """``a.b.c`` -> ["a", "b", "c"]; None if not a pure name chain."""
    parts = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        parts.reverse()
        return parts
    return None


def module_name_for_path(path: str) -> str:
    """Dotted module name from a file path (rooted at a ``src/`` component,
    else the file stem)."""
    parts = path.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p) or "<module>"


def build_import_env(tree: ast.AST, modname: str,
                     is_package: bool = False) -> dict:
    """Map local names to dotted targets from the module's imports and
    top-level function defs.

    ``is_package`` means the tree is a package ``__init__`` whose dotted
    name already lost its ``__init__`` component, so relative imports
    resolve against the package itself (``from .tasks import f`` in
    ``repro/numfact/__init__.py`` targets ``repro.numfact.tasks.f``).
    """
    env = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    env[alias.asname] = alias.name
                else:
                    first = alias.name.split(".")[0]
                    env[first] = first
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = modname.split(".")
                drop = node.level - (1 if is_package else 0)
                base = base[: len(base) - drop] if drop else base
                base = base or [""]
                target = ".".join(base)
                if node.module:
                    target = f"{target}.{node.module}" if target else node.module
            else:
                target = node.module or ""
            for alias in node.names:
                bound = alias.asname or alias.name
                env[bound] = f"{target}.{alias.name}" if target else alias.name
    for node in tree.body if hasattr(tree, "body") else []:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            env.setdefault(node.name, f"{modname}.{node.name}")
    return env


@dataclass
class FunctionSummary:
    """Computed effect summary for one top-level function."""

    qualname: str
    params: list
    returns_fresh: bool = False
    returns_alias_of: set = field(default_factory=set)
    returns_unordered: bool = False
    mutates_params: set = field(default_factory=set)


class ProjectSummaries:
    """Summary table plus per-module call-resolution environments."""

    def __init__(self):
        self.functions = {}      # qualname -> FunctionSummary
        self.module_env = {}     # path -> {local name -> dotted target}
        self.module_name = {}    # path -> dotted module name
        self.env_by_module = {}  # dotted module name -> its import env

    def canonicalize(self, qual: str) -> str:
        """Follow package re-exports: ``repro.numfact.factor_block_column``
        resolves through ``repro/numfact/__init__.py``'s imports to the
        defining module's qualname."""
        for _ in range(5):
            if qual in self.functions:
                return qual
            if "." not in qual:
                return qual
            mod, leaf = qual.rsplit(".", 1)
            target = self.env_by_module.get(mod, {}).get(leaf)
            if target is None or target == qual:
                return qual
            qual = target
        return qual

    def resolve_qualname(self, func_expr, path: str):
        """Dotted target of a call's ``func`` expression, or None."""
        parts = flatten_dotted(func_expr)
        if not parts:
            return None
        env = self.module_env.get(path, {})
        base = env.get(parts[0])
        if base is not None:
            return self.canonicalize(".".join([base] + parts[1:]))
        if len(parts) == 1:
            return self.canonicalize(
                f"{self.module_name.get(path, '<module>')}.{parts[0]}")
        return None

    def lookup_call(self, func_expr, path: str):
        """FunctionSummary for a call target, or None if unresolved."""
        qual = self.resolve_qualname(func_expr, path)
        if qual is None:
            return None
        return self.functions.get(qual)


# -- the value lattice -------------------------------------------------------


class ValueInfo:
    """Abstract value: reachable roots plus order provenance."""

    __slots__ = ("roots", "unordered", "reason", "element_unordered",
                 "tainted")

    def __init__(self, roots=(), unordered=False, reason="set",
                 element_unordered=False, tainted=False):
        self.roots = set(roots)
        self.unordered = unordered
        self.reason = reason
        self.element_unordered = element_unordered
        self.tainted = tainted

    @staticmethod
    def fresh():
        return ValueInfo()

    def union(self, other: "ValueInfo") -> "ValueInfo":
        out = ValueInfo(self.roots | other.roots)
        out.unordered = self.unordered or other.unordered
        out.reason = other.reason if other.unordered else self.reason
        out.element_unordered = (self.element_unordered
                                 or other.element_unordered)
        out.tainted = self.tainted or other.tainted
        return out


def param_root(name):
    return ("param", name)


class AbstractEvaluator:
    """Flow-ordered abstract walk of one function (or the module body).

    Subclasses hook :meth:`note_mutation` (aliasing pass), the iteration
    points (determinism pass) and the call sites.  Branches are walked
    sequentially — a may-analysis over a linear approximation of control
    flow, which is what both passes want.
    """

    def __init__(self, fn, summaries: ProjectSummaries, path: str):
        self.fn = fn  # FunctionDef/AsyncFunctionDef or None for module body
        self.summaries = summaries
        self.path = path
        self.env = {}
        self.returns = []
        self._alloc_counter = itertools.count()
        if fn is not None:
            for a in fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs:
                self.env[a.arg] = ValueInfo({param_root(a.arg)})

    def alloc(self):
        return ("alloc", next(self._alloc_counter))

    # overridden by the aliasing pass to record event locations
    def note_mutation(self, roots, node) -> None:
        pass

    # -- expressions --------------------------------------------------------

    def eval(self, node) -> ValueInfo:
        if node is None or isinstance(node, ast.Constant):
            return ValueInfo.fresh()
        if isinstance(node, ast.Name):
            info = self.env.get(node.id)
            if info is None:
                return ValueInfo({("free", node.id)})
            return info
        if isinstance(node, ast.Attribute):
            return ValueInfo(self.eval(node.value).roots)
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value)
            self.eval(node.slice)
            out = ValueInfo(base.roots)
            if base.element_unordered:
                out.unordered, out.reason = True, base.reason
            return out
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, (ast.BinOp, ast.UnaryOp)):
            for sub in ast.iter_child_nodes(node):
                if isinstance(sub, ast.expr):
                    self.eval(sub)
            return ValueInfo({self.alloc()})  # array arithmetic allocates
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            for sub in ast.iter_child_nodes(node):
                if isinstance(sub, ast.expr):
                    self.eval(sub)
            return ValueInfo.fresh()
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body).union(self.eval(node.orelse))
        if isinstance(node, (ast.Tuple, ast.List)):
            out = ValueInfo({self.alloc()} if isinstance(node, ast.List)
                            else ())
            for e in node.elts:
                ei = self.eval(e)
                out.roots |= ei.roots
                out.element_unordered = (out.element_unordered
                                         or ei.unordered)
                out.tainted = out.tainted or ei.tainted
            return out
        if isinstance(node, ast.Set):
            out = ValueInfo({self.alloc()}, unordered=True, reason="set")
            for e in node.elts:
                out.roots |= self.eval(e).roots
            return out
        if isinstance(node, ast.Dict):
            out = ValueInfo({self.alloc()})
            for k in node.keys:
                if k is not None:
                    self.eval(k)  # keys assumed immutable: no roots taken
            for v in node.values:
                vi = self.eval(v)
                out.roots |= vi.roots
                out.element_unordered = out.element_unordered or vi.unordered
            return out
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp,
                             ast.DictComp)):
            return self.eval_comp(node)
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self.eval(node.value)
            return ValueInfo.fresh()
        if isinstance(node, ast.Await):
            return self.eval(node.value)
        if isinstance(node, ast.Lambda):
            return ValueInfo.fresh()
        if isinstance(node, ast.JoinedStr):
            for v in node.values:
                self.eval(v)
            return ValueInfo.fresh()
        if isinstance(node, ast.FormattedValue):
            self.eval(node.value)
            return ValueInfo.fresh()
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part)
            return ValueInfo.fresh()
        return ValueInfo.fresh()

    def eval_comp(self, node) -> ValueInfo:
        """Comprehensions: bind targets to iterated elements, then evaluate
        the element expression in that environment."""
        saved = dict(self.env)
        try:
            for gen in node.generators:
                it = self.eval_iteration(gen.iter, node)
                elem = ValueInfo(it.roots, tainted=it.unordered or it.tainted)
                elem.unordered = it.element_unordered
                self.bind_names(gen.target, elem)
                for cond in gen.ifs:
                    self.eval(cond)
            if isinstance(node, ast.DictComp):
                self.eval(node.key)  # keys assumed immutable
                vi = self.eval(node.value)
                out = ValueInfo({self.alloc()} | vi.roots)
                out.element_unordered = vi.unordered
            else:
                ei = self.eval(node.elt)
                out = ValueInfo({self.alloc()} | ei.roots)
                out.element_unordered = ei.unordered
                if isinstance(node, ast.SetComp):
                    out.unordered, out.reason = True, "set"
            return out
        finally:
            self.env = saved

    def eval_iteration(self, iter_node, ctx_node) -> ValueInfo:
        """Hook: evaluate the iterable of a ``for``/comprehension.  The
        determinism pass overrides this to flag unordered iteration."""
        return self.eval(iter_node)

    def eval_call(self, node: ast.Call) -> ValueInfo:
        args = [a.value if isinstance(a, ast.Starred) else a
                for a in node.args]
        arg_infos = [self.eval(a) for a in args]
        kw_infos = [self.eval(k.value) for k in node.keywords]
        all_args = ValueInfo.fresh()
        for i in arg_infos + kw_infos:
            all_args = all_args.union(i)

        func = node.func
        qual = self.summaries.resolve_qualname(func, self.path)

        # numpy / math module-level calls
        if qual and (qual.startswith("numpy.") or qual.startswith("math.")):
            leaf = qual.rsplit(".", 1)[-1]
            if leaf in NP_MUTATING_FUNCS:
                if arg_infos:
                    self.note_mutation(arg_infos[0].roots, node)
                return ValueInfo({self.alloc()})
            if leaf in NP_VIEW_FUNCS:
                return ValueInfo(all_args.roots)
            return ValueInfo({self.alloc()})

        # plain-name builtins
        if isinstance(func, ast.Name):
            if func.id in SCALAR_BUILTINS:
                return ValueInfo.fresh()
            if func.id in UNORDERED_BUILTINS:
                return ValueInfo({self.alloc()} | all_args.roots,
                                 unordered=True, reason="set")
            if func.id in SHALLOW_FRESH_BUILTINS:
                return ValueInfo({self.alloc()})
            if func.id in ALIASING_BUILTINS:
                out = ValueInfo(all_args.roots)
                out.unordered = all_args.unordered
                out.reason = all_args.reason
                out.tainted = all_args.tainted
                return out

        # method calls (receiver not resolvable to a module/function)
        if isinstance(func, ast.Attribute) and (
            qual is None or qual not in self.summaries.functions
        ):
            recv = self.eval(func.value)
            if func.attr in MUTATOR_METHODS:
                self.note_mutation(recv.roots, node)
                self.note_retention(recv, all_args, node)
                return recv.union(all_args)
            if func.attr in FRESH_METHODS:
                return ValueInfo({self.alloc()})
            if func.attr in ACCESSOR_METHODS:
                out = ValueInfo(recv.roots)
                if func.attr == "get":
                    # element access, like a subscript
                    if recv.element_unordered:
                        out.unordered, out.reason = True, recv.reason
                else:
                    # ordered container views: items()/keys()/values() of a
                    # dict iterate in insertion order; the elements they
                    # yield may still be unordered collections
                    out.element_unordered = recv.element_unordered
                out.tainted = recv.tainted
                return out
            out = recv.union(all_args)
            return out

        # project function with a computed summary
        summary = self.summaries.functions.get(qual) if qual else None
        if summary is not None:
            pos = {p: i for i, p in enumerate(summary.params)}
            for p in summary.mutates_params:
                i = pos.get(p)
                if i is not None and i < len(arg_infos):
                    self.note_mutation(arg_infos[i].roots, node)
                else:
                    for k, ki in zip(node.keywords, kw_infos):
                        if k.arg == p:
                            self.note_mutation(ki.roots, node)
            if summary.returns_fresh:
                return ValueInfo(
                    {self.alloc()},
                    unordered=summary.returns_unordered, reason="set",
                )
            roots = set()
            for p in summary.returns_alias_of:
                i = pos.get(p)
                if i is not None and i < len(arg_infos):
                    roots |= arg_infos[i].roots
                for k, ki in zip(node.keywords, kw_infos):
                    if k.arg == p:
                        roots |= ki.roots
            return ValueInfo(roots, unordered=summary.returns_unordered,
                             reason="set")

        # unresolved: may alias any argument, assumed non-mutating
        return ValueInfo(all_args.roots)

    def note_retention(self, container: ValueInfo, value: ValueInfo,
                       node) -> None:
        """Hook: ``value`` becomes reachable from ``container`` (store or
        append).  The aliasing pass uses this for recv-retention."""
        pass

    # -- statements ---------------------------------------------------------

    def bind_names(self, target, info: ValueInfo):
        """Bind plain-name targets only (no store side effects)."""
        if isinstance(target, ast.Name):
            self.env[target.id] = info
        elif isinstance(target, (ast.Tuple, ast.List)):
            for e in target.elts:
                self.bind_names(e, ValueInfo(
                    info.roots, unordered=info.unordered, reason=info.reason,
                    tainted=info.tainted))
        elif isinstance(target, ast.Starred):
            self.bind_names(target.value, info)

    def bind_target(self, target, info: ValueInfo, node):
        if isinstance(target, (ast.Name, ast.Tuple, ast.List, ast.Starred)) \
                and not isinstance(target, (ast.Subscript, ast.Attribute)):
            if isinstance(target, (ast.Tuple, ast.List)):
                for e in target.elts:
                    self.bind_target(e, ValueInfo(
                        info.roots, unordered=info.unordered,
                        reason=info.reason, tainted=info.tainted), node)
            elif isinstance(target, ast.Starred):
                self.bind_target(target.value, info, node)
            else:
                self.env[target.id] = info
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            base = self.eval(target.value)
            if isinstance(target, ast.Subscript):
                key = self.eval(target.slice)
                self.note_keying(target, key, node)
            self.note_mutation(base.roots, node)
            self.note_retention(base, info, node)
            # the container now reaches the stored value (recv tokens are
            # tracked via note_retention instead: structural mutation of a
            # cache dict does not mutate the received buffers it holds)
            if isinstance(target.value, ast.Name):
                cur = self.env.get(target.value.id)
                if cur is not None:
                    cur.roots |= {t for t in info.roots if t[0] != "recv"}

    def note_keying(self, target, key_info: ValueInfo, node) -> None:
        """Hook: a subscript store keys a container; the determinism pass
        marks dicts keyed by tainted values or ``id()``."""
        pass

    def walk(self, stmts):
        for s in stmts:
            self.stmt(s)

    def stmt(self, s):
        if isinstance(s, ast.Assign):
            info = self.eval(s.value)
            for t in s.targets:
                self.bind_target(t, info, s)
        elif isinstance(s, ast.AnnAssign):
            if s.value is not None:
                self.bind_target(s.target, self.eval(s.value), s)
        elif isinstance(s, ast.AugAssign):
            info = self.eval(s.value)
            base = self.eval(s.target)
            self.note_mutation(base.roots, s)
            self.note_aug_assign(s, info)
            # only ``+=`` can graft the RHS into the target (list extend);
            # ``-=``/``*=``/... read their RHS without retaining it
            if isinstance(s.target, ast.Name) and isinstance(s.op, ast.Add):
                cur = self.env.get(s.target.id)
                if cur is not None:
                    cur.roots |= {t for t in info.roots if t[0] != "recv"}
                else:
                    self.env[s.target.id] = ValueInfo(info.roots)
        elif isinstance(s, ast.Return):
            self.returns.append(self.eval(s.value))
        elif isinstance(s, (ast.Expr, ast.Assert)):
            self.eval(s.value if isinstance(s, ast.Expr) else s.test)
        elif isinstance(s, ast.Delete):
            pass
        elif isinstance(s, (ast.For, ast.AsyncFor)):
            it = self.eval_iteration(s.iter, s)
            elem = ValueInfo(it.roots, tainted=it.unordered or it.tainted)
            elem.unordered = it.element_unordered
            self.bind_names(s.target, elem)
            self.loop_body(s)
        elif isinstance(s, ast.While):
            self.eval(s.test)
            self.loop_body(s)
        elif isinstance(s, ast.If):
            self.eval(s.test)
            self.walk(s.body)
            self.walk(s.orelse)
        elif isinstance(s, (ast.With, ast.AsyncWith)):
            for item in s.items:
                info = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.bind_target(item.optional_vars, info, s)
            self.walk(s.body)
        elif isinstance(s, ast.Try):
            self.walk(s.body)
            for h in s.handlers:
                self.walk(h.body)
            self.walk(s.orelse)
            self.walk(s.finalbody)
        elif isinstance(s, ast.Raise):
            if s.exc is not None:
                self.eval(s.exc)
        # nested defs/classes are analyzed as their own units, not inline

    def note_aug_assign(self, s, value_info: ValueInfo) -> None:
        """Hook: the determinism pass flags order-tainted accumulation."""
        pass

    def loop_body(self, s):
        """Hook: the aliasing pass walks loop bodies twice (wrap-around)."""
        self.walk(s.body)
        self.walk(s.orelse)


class SummaryEvaluator(AbstractEvaluator):
    """Computes a :class:`FunctionSummary` for one top-level function."""

    def __init__(self, fn, summaries, path):
        super().__init__(fn, summaries, path)
        self.mutated_roots = set()

    def note_mutation(self, roots, node):
        self.mutated_roots |= roots

    def summary(self, qualname) -> FunctionSummary:
        self.walk(self.fn.body)
        params = [a.arg for a in
                  self.fn.args.posonlyargs + self.fn.args.args
                  + self.fn.args.kwonlyargs]
        alias = set()
        fresh = True
        unordered = False
        for r in self.returns:
            alias |= {n for kind, n in r.roots if kind == "param"}
            if any(kind != "alloc" for kind, _ in r.roots):
                fresh = False
            unordered = unordered or r.unordered
        mutated = {n for kind, n in self.mutated_roots if kind == "param"}
        return FunctionSummary(
            qualname, params,
            returns_fresh=fresh,
            returns_alias_of=alias,
            returns_unordered=unordered,
            mutates_params=mutated,
        )


def build_project_summaries(modules, iterations: int = 3) -> ProjectSummaries:
    """Fixed-point summary computation over all top-level functions."""
    ps = ProjectSummaries()
    funcs = []  # (qualname, fn node, path)
    for m in modules:
        name = module_name_for_path(m.path)
        ps.module_name[m.path] = name
        is_pkg = m.path.replace("\\", "/").endswith("/__init__.py")
        env = build_import_env(m.tree, name, is_package=is_pkg)
        ps.module_env[m.path] = env
        ps.env_by_module[name] = env
        top = set()
        for node in m.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                funcs.append((f"{name}.{node.name}", node, m.path))
                top.add(node.name)
        # nested functions too (helpers defined inside rank programs);
        # resolvable by the ``modname.name`` fallback, top-level names win
        for node in ast.walk(m.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name not in top \
                    and node not in m.tree.body:
                funcs.append((f"{name}.{node.name}", node, m.path))
                top.add(node.name)
    # conservative seed: return may alias every parameter
    for qual, fn, _ in funcs:
        params = [a.arg for a in
                  fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs]
        ps.functions[qual] = FunctionSummary(
            qual, params, returns_alias_of=set(params))
    for _ in range(iterations):
        for qual, fn, path in funcs:
            ps.functions[qual] = SummaryEvaluator(fn, ps, path).summary(qual)
    return ps


def iter_code_units(tree):
    """Yield ``(fn_node_or_None, is_generator)`` for the module body and
    every (arbitrarily nested) function definition."""
    yield None, False
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, _is_generator(node)


def _is_generator(fn) -> bool:
    for node in ast.walk(fn):
        if node is fn:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue  # ast.walk still descends, so filter by ownership below
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if _owner(fn, node):
                return True
    return False


def _owner(fn, node) -> bool:
    """Is ``node`` owned by ``fn`` directly (not via a nested def)?"""
    # cheap ownership test: walk fn's body skipping nested defs
    stack = list(fn.body)
    while stack:
        s = stack.pop()
        if s is node:
            return True
        if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        for child in ast.iter_child_nodes(s):
            stack.append(child)
    return False
