"""``repro.lint`` — extensible dataflow static analysis for the repro codebase.

Where :mod:`repro.verify.commlint` is a per-call AST lint of the SPMD
communication *protocol*, this package checks two deeper invariants the
S* design depends on, by tracking values through assignments and calls:

* **determinism** (``D1xx`` rules) — nothing that feeds numerics or
  message-emission order may depend on an unordered collection, global RNG
  state, wall-clock time, or object identities;
* **zero-copy aliasing** (``Z2xx`` rules) — a payload posted with
  ``env.send``/``env.multicast`` must not be mutated afterwards (RMA put
  semantics), and a received buffer must not be mutated in place while a
  reference to it is retained elsewhere.

The framework is a rule registry with per-rule severities, per-line
``# lint: disable=RULE`` suppressions, text/JSON rendering and a
``repro lint`` CLI verb; the two passes are interprocedural within the
linted file set (function summaries — "returns a fresh buffer", "returns
an alias of parameter p", "mutates parameter p", "returns an unordered
collection" — are resolved across modules via their import graph).

The dynamic counterpart is ``Simulator(sanitize=True)``
(:mod:`repro.machine.simulator`): payloads are content-hashed at send and
re-verified at consumption, raising :class:`PayloadMutationError` on a
zero-copy violation.
"""

from .core import (
    Finding,
    Severity,
    RULES,
    RuleInfo,
    lint_paths,
    lint_source,
    lint_file,
    iter_python_files,
    render_text,
    render_json,
    max_severity,
    count_at_or_above,
)
from . import determinism  # noqa: F401  (registers D1xx rules)
from . import aliasing  # noqa: F401  (registers Z2xx rules)
from .certify import (
    ZeroCopyCertificate,
    build_certificate,
    certificate_covers,
    default_certificate,
    default_certificate_path,
)

__all__ = [
    "ZeroCopyCertificate",
    "build_certificate",
    "certificate_covers",
    "default_certificate",
    "default_certificate_path",
    "Finding",
    "Severity",
    "RULES",
    "RuleInfo",
    "lint_paths",
    "lint_source",
    "lint_file",
    "iter_python_files",
    "render_text",
    "render_json",
    "max_severity",
    "count_at_or_above",
]
