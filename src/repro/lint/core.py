"""Framework core: severities, findings, the rule registry, suppressions,
the file walker and the text/JSON renderers.

A *pass* is a callable ``run(module, summaries) -> [Finding]`` registered
together with the rules it may emit.  ``lint_paths`` parses every file
once, builds the project-wide function-summary table (the interprocedural
phase, :mod:`repro.lint.summaries`) and hands each module to every pass.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path

#: severity ladder (ordering matters: ``note < warning < error``)
SEVERITY_ORDER = ("note", "warning", "error")


class Severity:
    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    @staticmethod
    def rank(sev: str) -> int:
        return SEVERITY_ORDER.index(sev)


@dataclass
class RuleInfo:
    """One registered rule: id, default severity, one-line description."""

    rule: str
    severity: str
    name: str
    description: str


#: rule id -> RuleInfo; populated by the pass modules at import time
RULES: dict = {}

#: registered passes: [(pass_name, run_callable)]
PASSES: list = []


def register_rule(rule: str, severity: str, name: str, description: str) -> None:
    if rule in RULES:
        raise ValueError(f"duplicate rule id {rule!r}")
    RULES[rule] = RuleInfo(rule, severity, name, description)


def register_pass(name: str, run) -> None:
    PASSES.append((name, run))


@dataclass
class Finding:
    """One finding of a lint rule at a source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} {self.rule} {self.message}"
        )

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


# -- suppressions -----------------------------------------------------------

_DISABLE_RE = re.compile(r"#\s*lint:\s*disable(?:=([A-Za-z0-9_,\s]+))?")


def suppressed_rules(source_line: str):
    """Rules suppressed on this physical line.

    ``# lint: disable`` suppresses everything; ``# lint: disable=D101,Z201``
    suppresses the listed rules.  Returns None (nothing suppressed), the
    string ``"all"``, or a set of rule ids.
    """
    m = _DISABLE_RE.search(source_line)
    if not m:
        return None
    if m.group(1) is None:
        return "all"
    return {r.strip() for r in m.group(1).split(",") if r.strip()}


class ModuleUnderLint:
    """One parsed file plus everything the passes need to inspect it."""

    def __init__(self, source: str, path: str, env_names=("env",)):
        self.source = source
        self.path = path
        self.env_names = tuple(env_names)
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)

    def is_suppressed(self, rule: str, line: int) -> bool:
        idx = line - 1
        if not (0 <= idx < len(self.lines)):
            return False
        sup = suppressed_rules(self.lines[idx])
        return sup == "all" or (sup is not None and rule in sup)


class FindingCollector:
    """Emit findings with suppression and registry-severity applied."""

    def __init__(self, module: ModuleUnderLint):
        self.module = module
        self.findings = []

    def emit(self, rule: str, node, message: str, severity: str = None) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.module.is_suppressed(rule, line):
            return
        sev = severity if severity is not None else RULES[rule].severity
        self.findings.append(
            Finding(rule, sev, self.module.path, line, col, message)
        )


# -- file walking and the driver --------------------------------------------


def iter_python_files(paths) -> list:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            out.append(p)
    seen, uniq = set(), []
    for p in out:
        if p not in seen:
            seen.add(p)
            uniq.append(p)
    return uniq


def lint_paths(paths, env_names=("env",), select=None) -> list:
    """Lint files/directories; returns all findings sorted by location.

    ``select`` restricts output to an iterable of rule ids.
    """
    from .summaries import build_project_summaries

    files = iter_python_files(paths)
    modules = []
    for f in files:
        try:
            modules.append(ModuleUnderLint(f.read_text(), str(f), env_names))
        except (SyntaxError, UnicodeDecodeError, OSError) as e:
            modules.append(e)  # surfaced as a PARSE finding below
    summaries = build_project_summaries(
        [m for m in modules if isinstance(m, ModuleUnderLint)]
    )
    findings = []
    for f, m in zip(files, modules):
        if not isinstance(m, ModuleUnderLint):
            findings.append(Finding(
                "PARSE", Severity.ERROR, str(f), 1, 0, f"cannot lint: {m}"
            ))
            continue
        findings.extend(_run_passes(m, summaries))
    if select is not None:
        wanted = set(select)
        findings = [f for f in findings if f.rule in wanted]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_source(source: str, path: str = "<string>", env_names=("env",),
                select=None) -> list:
    """Lint one source text (single-module summaries only)."""
    from .summaries import build_project_summaries

    m = ModuleUnderLint(source, path, env_names)
    summaries = build_project_summaries([m])
    findings = _run_passes(m, summaries)
    if select is not None:
        wanted = set(select)
        findings = [f for f in findings if f.rule in wanted]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path, env_names=("env",), select=None) -> list:
    """Lint a single file (convenience wrapper over :func:`lint_paths`)."""
    return lint_paths([path], env_names=env_names, select=select)


def _run_passes(module: ModuleUnderLint, summaries) -> list:
    out = []
    for _, run in PASSES:
        out.extend(run(module, summaries))
    return out


# -- aggregation and rendering ----------------------------------------------


def max_severity(findings) -> str:
    """Highest severity present, or None for an empty list."""
    best = None
    for f in findings:
        if best is None or Severity.rank(f.severity) > Severity.rank(best):
            best = f.severity
    return best


def count_at_or_above(findings, severity: str) -> int:
    thr = Severity.rank(severity)
    return sum(1 for f in findings if Severity.rank(f.severity) >= thr)


def render_text(findings) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [str(f) for f in findings]
    counts = {}
    for f in findings:
        counts[f.severity] = counts.get(f.severity, 0) + 1
    if findings:
        parts = ", ".join(
            f"{counts[s]} {s}" for s in reversed(SEVERITY_ORDER) if s in counts
        )
        lines.append(f"{len(findings)} finding(s): {parts}")
    else:
        lines.append("0 findings")
    return "\n".join(lines)


def render_json(findings, fail_on: str = None) -> str:
    """Machine-readable report for CI consumption."""
    doc = {
        "findings": [f.as_dict() for f in findings],
        "counts": {
            s: sum(1 for f in findings if f.severity == s)
            for s in SEVERITY_ORDER
        },
        "rules": {
            r: {"severity": info.severity, "name": info.name}
            for r, info in sorted(RULES.items())
        },
    }
    if fail_on is not None:
        doc["fail_on"] = fail_on
        doc["failures"] = count_at_or_above(findings, fail_on)
    return json.dumps(doc, indent=2, sort_keys=True)
