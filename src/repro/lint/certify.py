"""Zero-copy safety certificates.

``Simulator(zero_copy=True)`` may only skip the defensive send-time deep
copy for programs that provably never write a posted buffer (Z201) and
never mutate a retained received buffer (Z202) — the aliasing pass in
:mod:`repro.lint.aliasing` checks exactly that.  This module packages the
lint verdict as a *certificate*: a JSON document mapping each linted
module to its source hash and its Z-rule cleanliness.  The simulator
consults the certificate at construction; ``covers`` additionally
re-hashes the installed module source so a stale certificate (module
edited after certification) never authorises zero-copy delivery.

The certificate is emitted by ``repro lint --certify`` and committed at
:func:`default_certificate_path`; CI regenerates it and fails when the
committed copy is stale (``repro lint --certify-check``).
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

from .core import lint_paths, iter_python_files

#: certificate file format marker + version
CERT_FORMAT = "repro-zero-copy-certificate"
CERT_VERSION = 1

#: the aliasing rules whose absence certifies a module for zero-copy
ZC_RULES = ("Z201", "Z202")


def _sha256_file(path) -> str:
    h = hashlib.sha256()
    h.update(Path(path).read_bytes())
    return h.hexdigest()


def module_name_for_file(path):
    """Dotted module name of a source file, derived from the package tree
    (walk up while ``__init__.py`` exists).  None for non-package files."""
    p = Path(path).resolve()
    if p.name == "__init__.py":
        parts = []
        p = p.parent
    else:
        parts = [p.stem]
        p = p.parent
    while (p / "__init__.py").exists():
        parts.append(p.name)
        p = p.parent
    if not parts:
        return None
    return ".".join(reversed(parts))


def _module_source_file(module_name):
    """Source file of an importable module (via sys.modules, then the
    import system) — the file whose hash must match the certificate."""
    mod = sys.modules.get(module_name)
    f = getattr(mod, "__file__", None)
    if f:
        return f
    try:
        import importlib.util

        spec = importlib.util.find_spec(module_name)
    except (ImportError, ValueError):
        return None
    return spec.origin if spec is not None else None


class ZeroCopyCertificate:
    """Per-module zero-copy safety verdicts plus source hashes.

    ``modules`` maps a dotted module name to::

        {"path": str, "sha256": hex, "clean": bool, "findings": [str, ...]}

    ``covers(name)`` is the authorisation check the simulator uses: the
    module must be present, Z-rule clean, and its installed source must
    still hash to the certified value (verified once per process).
    """

    def __init__(self, modules, env_names=("env",)):
        self.modules = dict(modules)
        self.env_names = tuple(env_names)
        self._verified = {}  # module name -> bool (staleness check memo)

    def covers(self, module_name) -> bool:
        if module_name is None:
            return False
        cached = self._verified.get(module_name)
        if cached is not None:
            return cached
        entry = self.modules.get(module_name)
        ok = False
        if entry is not None and entry.get("clean"):
            src = _module_source_file(module_name)
            try:
                ok = src is not None and _sha256_file(src) == entry["sha256"]
            except OSError:
                ok = False
        self._verified[module_name] = ok
        return ok

    def clean_modules(self):
        return sorted(m for m, e in self.modules.items() if e.get("clean"))

    def dirty_modules(self):
        return sorted(m for m, e in self.modules.items() if not e.get("clean"))

    # -- (de)serialisation --------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": CERT_FORMAT,
            "version": CERT_VERSION,
            "rules": list(ZC_RULES),
            "env_names": list(self.env_names),
            "modules": {
                name: dict(entry)
                for name, entry in sorted(self.modules.items())
            },
        }

    def write(self, path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def from_dict(cls, doc) -> "ZeroCopyCertificate":
        if doc.get("format") != CERT_FORMAT:
            raise ValueError(f"not a zero-copy certificate: {doc.get('format')!r}")
        if doc.get("version") != CERT_VERSION:
            raise ValueError(f"unsupported certificate version {doc.get('version')!r}")
        return cls(doc.get("modules", {}), env_names=doc.get("env_names", ("env",)))

    @classmethod
    def load(cls, path) -> "ZeroCopyCertificate":
        return cls.from_dict(json.loads(Path(path).read_text()))


def build_certificate(paths=None, env_names=("env",)) -> ZeroCopyCertificate:
    """Lint ``paths`` (default: the installed ``repro`` package) under the
    Z-rules and build a certificate covering every Python file found."""
    if paths is None:
        paths = [Path(__file__).resolve().parents[1]]
    files = iter_python_files(paths)
    findings = lint_paths(paths, env_names=env_names, select=ZC_RULES)
    by_path = {}
    for f in findings:
        by_path.setdefault(str(Path(f.path).resolve()), []).append(f)
    modules = {}
    for fp in files:
        name = module_name_for_file(fp)
        if name is None:
            continue
        hits = by_path.get(str(Path(fp).resolve()), [])
        modules[name] = {
            "path": str(fp),
            "sha256": _sha256_file(fp),
            "clean": not hits,
            "findings": [
                f"{f.rule} {Path(f.path).name}:{f.line}:{f.col} {f.message}"
                for f in hits
            ],
        }
    return ZeroCopyCertificate(modules, env_names=env_names)


def default_certificate_path() -> Path:
    """The committed certificate shipped next to this module."""
    return Path(__file__).resolve().parent / "zero_copy_cert.json"


_DEFAULT_CERT = False  # sentinel: not loaded yet (None = load failed/missing)


def default_certificate():
    """The packaged certificate, loaded once per process (None if absent)."""
    global _DEFAULT_CERT
    if _DEFAULT_CERT is False:
        try:
            _DEFAULT_CERT = ZeroCopyCertificate.load(default_certificate_path())
        except (OSError, ValueError, json.JSONDecodeError):
            _DEFAULT_CERT = None
    return _DEFAULT_CERT


def certificate_covers(module_name, cert=None) -> bool:
    """Does a certificate authorise zero-copy delivery for ``module_name``?

    ``cert`` may be None (use the packaged default), a path, or a
    :class:`ZeroCopyCertificate`.  Missing/unreadable certificates simply
    decline (the simulator then keeps copying — never an error).
    """
    if cert is None:
        cert = default_certificate()
    elif isinstance(cert, (str, Path)):
        try:
            cert = ZeroCopyCertificate.load(cert)
        except (OSError, ValueError, json.JSONDecodeError):
            cert = None
    if cert is None:
        return False
    return cert.covers(module_name)
