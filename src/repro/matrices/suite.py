"""The benchmark suite: synthetic analogues of the paper's Table 1 matrices.

Each :class:`MatrixSpec` records the paper's published statistics (order,
|A|, structural-symmetry regime) and how to generate a deterministic
synthetic stand-in.  Two scales are provided:

``small``
    Orders of a few hundred — used by the unit/property tests so the whole
    suite factorizes in seconds.
``bench``
    Orders around 1-3k — used by the benchmark harness; big enough that the
    supernodal/BLAS-3 effects the paper measures are visible.

The ``paper`` columns are retained so EXPERIMENTS.md can print
paper-vs-measured tables side by side.  ``memplus`` and ``wang3`` are the
paper's two overestimation-pathology examples (119x and 4x the SuperLU
fill under the AtA ordering); they are kept out of the default Table 1-7
matrix lists, matching the paper, and exercised by the ordering ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from . import generators as g
from ..sparse import CSRMatrix


@dataclass(frozen=True)
class MatrixSpec:
    """One row of the (synthetic) Table 1 suite."""

    name: str
    paper_order: int
    paper_nnz: int
    paper_symmetry: float  # nnz(A + A^T)/nnz(A) regime reported in Table 1
    kind: str  # generator family
    small: Callable[[], CSRMatrix]
    bench: Callable[[], CSRMatrix]

    def generate(self, scale: str = "small") -> CSRMatrix:
        if scale == "small":
            return self.small()
        if scale == "bench":
            return self.bench()
        raise ValueError(f"unknown scale {scale!r} (use 'small' or 'bench')")


SUITE = {
    "sherman5": MatrixSpec(
        "sherman5", 3312, 20793, 1.26, "reservoir-3d",
        small=lambda: g.stencil_3d(4, 4, 4, ndof=3, seed=11),
        bench=lambda: g.stencil_3d(8, 8, 5, ndof=3, seed=11),
    ),
    "lnsp3937": MatrixSpec(
        "lnsp3937", 3937, 25407, 2.15, "navier-stokes-2d",
        small=lambda: g.stencil_2d(16, 16, convection=2.5, seed=21),
        bench=lambda: g.stencil_2d(40, 32, convection=2.5, seed=21),
    ),
    "lns3937": MatrixSpec(
        "lns3937", 3937, 25407, 2.15, "navier-stokes-2d",
        small=lambda: g.stencil_2d(16, 16, convection=3.5, seed=22),
        bench=lambda: g.stencil_2d(40, 32, convection=3.5, seed=22),
    ),
    "sherman3": MatrixSpec(
        "sherman3", 5005, 20033, 1.0, "reservoir-3d",
        small=lambda: g.stencil_3d(6, 6, 6, ndof=1, seed=31),
        bench=lambda: g.stencil_3d(12, 12, 9, ndof=1, seed=31),
    ),
    "jpwh991": MatrixSpec(
        "jpwh991", 991, 6027, 1.05, "circuit",
        small=lambda: g.circuit_like(220, seed=41),
        bench=lambda: g.circuit_like(991, seed=41),
    ),
    "orsreg1": MatrixSpec(
        "orsreg1", 2205, 14133, 1.0, "reservoir-3d",
        small=lambda: g.stencil_3d(5, 5, 5, ndof=1, seed=51),
        bench=lambda: g.stencil_3d(21, 21, 5, ndof=1, seed=51),
    ),
    "saylr4": MatrixSpec(
        "saylr4", 3564, 22316, 1.0, "reservoir-3d",
        small=lambda: g.stencil_3d(6, 6, 5, ndof=1, seed=61),
        bench=lambda: g.stencil_3d(12, 11, 9, ndof=1, seed=61),
    ),
    "goodwin": MatrixSpec(
        "goodwin", 7320, 324772, 1.64, "fem-fluid",
        small=lambda: g.fem_unstructured(260, avg_degree=10, nonsym=0.4, seed=71),
        bench=lambda: g.fem_unstructured(1400, avg_degree=12, nonsym=0.4, seed=71),
    ),
    "e40r0100": MatrixSpec(
        "e40r0100", 17281, 553562, 1.32, "fem-fluid",
        small=lambda: g.fem_unstructured(300, avg_degree=12, nonsym=0.25, seed=81),
        bench=lambda: g.fem_unstructured(1800, avg_degree=14, nonsym=0.25, seed=81),
    ),
    "ex11": MatrixSpec(
        "ex11", 16614, 1096948, 1.0, "fem-fluid",
        small=lambda: g.fem_unstructured(320, avg_degree=14, nonsym=0.05, seed=91),
        bench=lambda: g.fem_unstructured(2000, avg_degree=16, nonsym=0.05, seed=91),
    ),
    "raefsky4": MatrixSpec(
        "raefsky4", 19779, 1316789, 1.0, "fem-structures",
        small=lambda: g.fem_unstructured(320, avg_degree=14, nonsym=0.02, seed=101),
        bench=lambda: g.fem_unstructured(2200, avg_degree=16, nonsym=0.02, seed=101),
    ),
    "inaccura": MatrixSpec(
        "inaccura", 16146, 1015156, 1.0, "fem-structures",
        small=lambda: g.fem_unstructured(300, avg_degree=14, nonsym=0.1, seed=111),
        bench=lambda: g.fem_unstructured(2000, avg_degree=16, nonsym=0.1, seed=111),
    ),
    "af23560": MatrixSpec(
        "af23560", 23560, 460598, 1.0, "fem-fluid",
        small=lambda: g.fem_unstructured(340, avg_degree=10, nonsym=0.1, seed=121),
        bench=lambda: g.fem_unstructured(2400, avg_degree=12, nonsym=0.1, seed=121),
    ),
    "vavasis3": MatrixSpec(
        "vavasis3", 41092, 1683902, 1.0, "block-pde",
        small=lambda: g.block_structured(360, block=30, seed=131),
        bench=lambda: g.block_structured(2600, block=50, seed=131),
    ),
    "dense1000": MatrixSpec(
        "dense1000", 1000, 1000000, 1.0, "dense",
        small=lambda: g.dense_matrix(120, seed=141),
        bench=lambda: g.dense_matrix(600, seed=141),
    ),
    "memplus": MatrixSpec(
        "memplus", 17758, 99147, 1.0, "circuit-pathological",
        small=lambda: g.nearly_dense_row(200, row_fill=0.6, base_density=0.01, seed=161),
        bench=lambda: g.nearly_dense_row(1200, row_fill=0.5, base_density=0.004, seed=161),
    ),
    "wang3": MatrixSpec(
        "wang3", 26064, 177168, 1.0, "device-3d",
        small=lambda: g.stencil_3d(5, 5, 4, ndof=2, anisotropy=4.0, seed=171),
        bench=lambda: g.stencil_3d(11, 11, 9, ndof=2, anisotropy=4.0, seed=171),
    ),
    "b33_5600": MatrixSpec(
        "b33_5600", 5600, 331438, 1.0, "fem-structures",
        small=lambda: g.fem_unstructured(280, avg_degree=16, nonsym=0.02, seed=151),
        bench=lambda: g.fem_unstructured(1600, avg_degree=18, nonsym=0.02, seed=151),
    ),
}


def suite_names(include_dense: bool = True) -> list:
    """Suite matrix names in Table 1 order."""
    names = list(SUITE)
    if not include_dense:
        names = [n for n in names if SUITE[n].kind != "dense"]
    return names


def get_matrix(name: str, scale: str = "small") -> CSRMatrix:
    """Generate the synthetic analogue of ``name`` at the given scale."""
    return SUITE[name].generate(scale)
