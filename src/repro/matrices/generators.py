"""Deterministic generators for nonsymmetric sparse test matrices.

Each generator mirrors one *class* of matrix from the paper's Table 1:

=================  =============================================
generator          paper matrices in that class
=================  =============================================
:func:`stencil_3d` sherman5, sherman3, orsreg1, saylr4 (oil
                   reservoir, 3D finite differences)
:func:`stencil_2d` lnsp3937 / lns3937 (linearised Navier-Stokes)
:func:`fem_unstructured`  goodwin, e40r0100, ex11, raefsky4,
                   inaccura, af23560 (FEM fluid / structures)
:func:`circuit_like`      jpwh991 (circuit physics)
:func:`block_structured`  vavasis3 (PDE with mixed row densities)
:func:`dense_matrix`      dense1000
=================  =============================================

All generators take a ``seed`` and are fully deterministic.  Values are
chosen so matrices are numerically nonsingular and genuinely require row
interchanges (off-diagonal entries can dominate), which exercises the
partial-pivoting machinery rather than letting the diagonal always win.
"""

from __future__ import annotations

import numpy as np

from ..sparse import coo_to_csr, CSRMatrix


def _assemble(n, rows, cols, vals) -> CSRMatrix:
    return coo_to_csr(n, n, np.asarray(rows), np.asarray(cols), np.asarray(vals))


def stencil_2d(
    nx: int,
    ny: int,
    convection: float = 2.0,
    pattern_nonsym: float = 0.35,
    seed: int = 0,
) -> CSRMatrix:
    """Nonsymmetric 2D convection-diffusion operator on an ``nx x ny`` grid.

    Five-point Laplacian plus an upwinded convection term with randomly
    varying direction.  A fraction ``pattern_nonsym`` of the grid couplings
    is kept one-sided (strong upwinding drops the downwind coupling), making
    the *pattern* itself nonsymmetric — the lnsp3937/lns3937 regime, whose
    Table 1 symmetry statistic is far above 1.
    """
    rng = np.random.default_rng(seed)
    n = nx * ny
    rows, cols, vals = [], [], []

    def idx(i, j):
        return i * ny + j

    for i in range(nx):
        for j in range(ny):
            p = idx(i, j)
            rows.append(p)
            cols.append(p)
            vals.append(4.0 + rng.uniform(-0.3, 0.3))
            for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                ii, jj = i + di, j + dj
                if 0 <= ii < nx and 0 <= jj < ny:
                    # drop the downwind half of one-sided couplings
                    if (di + dj) < 0 and rng.uniform() < pattern_nonsym:
                        continue
                    c = convection * rng.uniform(0.0, 1.0)
                    sign = 1.0 if (di + dj) > 0 else -1.0
                    rows.append(p)
                    cols.append(idx(ii, jj))
                    vals.append(-1.0 + sign * c)
    return _assemble(n, rows, cols, vals)


def stencil_3d(
    nx: int,
    ny: int,
    nz: int,
    ndof: int = 1,
    anisotropy: float = 1.5,
    seed: int = 0,
) -> CSRMatrix:
    """Nonsymmetric 3D reservoir-simulation stencil.

    Seven-point finite differences with ``ndof`` unknowns per cell (black-oil
    models couple pressure/saturation unknowns — sherman5 has ``ndof > 1``
    style coupling, orsreg1/saylr4 have ``ndof = 1``).  Inter-cell couplings
    are scaled asymmetrically (upstream weighting), so values are
    nonsymmetric while the pattern is close to symmetric.
    """
    rng = np.random.default_rng(seed)
    ncell = nx * ny * nz
    n = ncell * ndof
    rows, cols, vals = [], [], []

    def cell(i, j, k):
        return (i * ny + j) * nz + k

    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                c = cell(i, j, k)
                # dense ndof x ndof diagonal coupling block
                for a in range(ndof):
                    for b in range(ndof):
                        rows.append(c * ndof + a)
                        cols.append(c * ndof + b)
                        vals.append(
                            6.0 + rng.uniform(-0.2, 0.2)
                            if a == b
                            else rng.uniform(-0.8, 0.8)
                        )
                for di, dj, dk in (
                    (-1, 0, 0),
                    (1, 0, 0),
                    (0, -1, 0),
                    (0, 1, 0),
                    (0, 0, -1),
                    (0, 0, 1),
                ):
                    ii, jj, kk = i + di, j + dj, k + dk
                    if 0 <= ii < nx and 0 <= jj < ny and 0 <= kk < nz:
                        c2 = cell(ii, jj, kk)
                        upstream = 1.0 if (di + dj + dk) > 0 else 1.0 / anisotropy
                        for a in range(ndof):
                            rows.append(c * ndof + a)
                            cols.append(c2 * ndof + a)
                            vals.append(-upstream * (1.0 + rng.uniform(0, 0.5)))
    return _assemble(n, rows, cols, vals)


def fem_unstructured(
    n: int, avg_degree: int = 8, nonsym: float = 0.3, seed: int = 0
) -> CSRMatrix:
    """Unstructured FEM-like matrix (goodwin / e40r0100 regime).

    Nodes are placed at random 2D coordinates; each node couples to its
    nearest neighbours (a proxy for a triangulation), producing the clustered
    irregular pattern of FEM fluid problems.  A fraction ``nonsym`` of the
    off-diagonal entries is dropped one-sidedly so the *pattern itself* is
    nonsymmetric, like goodwin.
    """
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0.0, 1.0, size=(n, 2))
    # grid-bucket nearest neighbours: O(n) expected
    nbuckets = max(1, int(np.sqrt(n / 4)))
    buckets = {}
    for p in range(n):
        key = (int(pts[p, 0] * nbuckets), int(pts[p, 1] * nbuckets))
        buckets.setdefault(key, []).append(p)
    rows, cols, vals = [], [], []
    k_neigh = max(2, avg_degree // 2)
    pairs = set()
    for p in range(n):
        bx = int(pts[p, 0] * nbuckets)
        by = int(pts[p, 1] * nbuckets)
        cand = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                cand.extend(buckets.get((bx + dx, by + dy), ()))
        cand = np.asarray([q for q in cand if q != p], dtype=np.int64)
        if len(cand) == 0:
            continue
        d2 = np.sum((pts[cand] - pts[p]) ** 2, axis=1)
        for q in cand[np.argsort(d2)[:k_neigh]]:
            pairs.add((min(p, int(q)), max(p, int(q))))
    # emit each mesh edge once: with probability ``nonsym`` only one
    # direction is kept (upwinded convective coupling), else both.
    for p, q in sorted(pairs):
        one_sided = rng.uniform() < nonsym
        if one_sided and rng.uniform() < 0.5:
            p, q = q, p
        rows.append(p)
        cols.append(q)
        vals.append(-1.0 - rng.uniform(0, 1.0))
        if not one_sided:
            rows.append(q)
            cols.append(p)
            vals.append(-1.0 - rng.uniform(0, 1.0))
    for p in range(n):
        rows.append(p)
        cols.append(p)
        vals.append(avg_degree + rng.uniform(0.0, 2.0))
    return _assemble(n, rows, cols, vals)


def circuit_like(n: int, fanout: int = 3, seed: int = 0) -> CSRMatrix:
    """Circuit-simulation matrix (jpwh991 regime): mostly very sparse rows
    from local device stamps, plus a few higher-degree net rows (supply
    rails), numerically nonsymmetric."""
    rng = np.random.default_rng(seed)
    rows, cols, vals = [], [], []
    for p in range(n):
        rows.append(p)
        cols.append(p)
        vals.append(2.0 + rng.uniform(0, 1.0))
        for _ in range(rng.integers(1, fanout + 1)):
            q = int(rng.integers(0, n))
            if q != p:
                rows.append(p)
                cols.append(q)
                vals.append(rng.uniform(-1.5, 1.5))
                if rng.uniform() < 0.7:
                    rows.append(q)
                    cols.append(p)
                    vals.append(rng.uniform(-1.5, 1.5))
    # a few global rails touching many nodes
    nrails = max(1, n // 200)
    for _ in range(nrails):
        rail = int(rng.integers(0, n))
        touched = rng.choice(n, size=min(n, 20), replace=False)
        for q in touched:
            if q != rail:
                rows.append(rail)
                cols.append(int(q))
                vals.append(rng.uniform(-0.5, 0.5))
    return _assemble(n, rows, cols, vals)


def block_structured(
    n: int, block: int = 40, bandwidth: int = 3, seed: int = 0
) -> CSRMatrix:
    """Block-banded PDE-style matrix with mixed dense/sparse blocks
    (vavasis3 regime)."""
    rng = np.random.default_rng(seed)
    nb = (n + block - 1) // block
    rows, cols, vals = [], [], []
    for bi in range(nb):
        r0 = bi * block
        r1 = min(n, r0 + block)
        for bj in range(max(0, bi - bandwidth), min(nb, bi + bandwidth + 1)):
            c0 = bj * block
            c1 = min(n, c0 + block)
            density = 0.9 if bi == bj else rng.uniform(0.05, 0.3)
            cnt = max(1, int(density * (r1 - r0) * (c1 - c0) / max(1, abs(bi - bj) + 1)))
            rr = rng.integers(r0, r1, size=cnt)
            cc = rng.integers(c0, c1, size=cnt)
            vv = rng.uniform(-1.0, 1.0, size=cnt)
            rows.extend(rr.tolist())
            cols.extend(cc.tolist())
            vals.extend(vv.tolist())
    for p in range(n):
        rows.append(p)
        cols.append(p)
        vals.append(block / 4.0 + rng.uniform(0, 1.0))
    return _assemble(n, rows, cols, vals)


def dense_matrix(n: int, seed: int = 0) -> CSRMatrix:
    """Fully dense nonsymmetric matrix (the paper's ``dense1000``)."""
    rng = np.random.default_rng(seed)
    D = rng.uniform(-1.0, 1.0, size=(n, n))
    D += np.diag(np.full(n, 0.5))  # keep it comfortably nonsingular
    rows, cols = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return _assemble(n, rows.ravel(), cols.ravel(), D.ravel())


def random_nonsymmetric(
    n: int, density: float = 0.02, seed: int = 0, zero_free_diagonal: bool = True
) -> CSRMatrix:
    """Uniformly random sparse nonsymmetric matrix (property-test fodder)."""
    rng = np.random.default_rng(seed)
    nnz = max(n, int(density * n * n))
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    vals = rng.uniform(-2.0, 2.0, size=nnz)
    if zero_free_diagonal:
        rows = np.concatenate([rows, np.arange(n)])
        cols = np.concatenate([cols, np.arange(n)])
        vals = np.concatenate([vals, rng.uniform(1.0, 3.0, size=n)])
    return _assemble(n, rows, cols, vals)


def nearly_dense_row(
    n: int, row_fill: float = 0.7, base_density: float = 0.01, seed: int = 0
) -> CSRMatrix:
    """A sparse matrix with one nearly dense row — the memplus pathology.

    The paper notes static symbolic factorization "could fail to be
    practical if the input matrix has a nearly dense row because it will
    lead to an almost complete fill-in of the whole matrix" (memplus
    overestimates SuperLU's fill 119x under the AtA ordering, 2.34x under
    A+At).  This generator reproduces that regime for the ordering
    ablation.
    """
    rng = np.random.default_rng(seed)
    nnz = max(n, int(base_density * n * n))
    rows = rng.integers(0, n, size=nnz).tolist()
    cols = rng.integers(0, n, size=nnz).tolist()
    vals = rng.uniform(-1.0, 1.0, size=nnz).tolist()
    dense_row = int(rng.integers(0, n))
    touched = rng.choice(n, size=int(row_fill * n), replace=False)
    for c in touched:
        rows.append(dense_row)
        cols.append(int(c))
        vals.append(rng.uniform(-1.0, 1.0))
    for p in range(n):
        rows.append(p)
        cols.append(p)
        vals.append(3.0 + rng.uniform(0, 1.0))
    return _assemble(n, rows, cols, vals)
