"""Synthetic benchmark-matrix suite.

The paper evaluates on Harwell-Boeing / Davis-collection matrices
(sherman5, lns3937, goodwin, vavasis3, ...).  Those files are not available
offline, so this package generates deterministic synthetic analogues that
match each matrix's *class* (reservoir stencil, CFD, FEM, circuit), its
structural symmetry regime, and — scaled down — its order and density.
See DESIGN.md ("Substitutions") for the fidelity argument.
"""

from .generators import (
    stencil_2d,
    stencil_3d,
    fem_unstructured,
    circuit_like,
    dense_matrix,
    random_nonsymmetric,
    block_structured,
    nearly_dense_row,
)
from .suite import SUITE, MatrixSpec, get_matrix, suite_names

__all__ = [
    "stencil_2d",
    "stencil_3d",
    "fem_unstructured",
    "circuit_like",
    "dense_matrix",
    "random_nonsymmetric",
    "block_structured",
    "nearly_dense_row",
    "SUITE",
    "MatrixSpec",
    "get_matrix",
    "suite_names",
]
