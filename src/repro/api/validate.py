"""End-to-end invariant validation for a user-supplied matrix.

``validate_matrix`` runs every theoretical guarantee the system rests on
against one concrete matrix and reports pass/fail per check — the tool a
downstream user reaches for when a new matrix class misbehaves:

1. structural nonsingularity (a maximum transversal exists);
2. George-Ng coverage: the static structure contains the dynamic fill of
   partial pivoting *and* of an adversarial random pivot sequence;
3. Theorem 1: exact-supernode U blocks contain only dense subcolumns;
4. the block structure covers every static entry;
5. numeric invariant: no value ever lands outside the static structure;
6. backward-stable solve;
7. the 1D and 2D parallel codes agree with the sequential factors bitwise;
8. the measured 2D overlap degree respects the Theorem 2 bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CheckResult:
    name: str
    passed: bool
    detail: str = ""


def validate_matrix(A, nprocs: int = 4, check_parallel: bool = True) -> list:
    """Run the validation battery; returns a list of :class:`CheckResult`."""
    from ..baselines import superlu_like_factor
    from ..machine import T3E
    from ..numfact import sstar_factor
    from ..ordering import is_structurally_nonsingular, prepare_matrix
    from ..supernodes import build_block_structure, build_partition
    from ..symbolic import static_symbolic_factorization
    from ..sparse import csr_matvec

    results = []

    def check(name, fn):
        try:
            detail = fn()
            results.append(CheckResult(name, True, detail or ""))
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            results.append(CheckResult(name, False, f"{type(exc).__name__}: {exc}"))

    # 1. structural nonsingularity
    def c_structural():
        if not is_structurally_nonsingular(A):
            raise ValueError("no full transversal")
        return "maximum transversal found"

    check("structural nonsingularity", c_structural)
    if not results[-1].passed:
        return results

    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)

    # 2. static covers dynamic
    def c_coverage():
        for rule in ("partial", "random"):
            dyn = superlu_like_factor(om.A, pivot_rule=rule)
            for k, (ls, us) in enumerate(
                zip(dyn.l_column_structures(), dyn.u_row_structures())
            ):
                if not set(map(int, ls)) <= set(map(int, sym.lcol[k])):
                    raise AssertionError(f"L column {k} not covered ({rule})")
                if not set(map(int, us)) <= set(map(int, sym.urow[k])):
                    raise AssertionError(f"U row {k} not covered ({rule})")
        return "partial + adversarial pivot sequences covered"

    check("George-Ng coverage", c_coverage)

    # 3. Theorem 1 on exact supernodes
    part0 = build_partition(sym, max_size=25, amalgamation=0)
    bs0 = build_block_structure(sym, part0)

    def c_theorem1():
        for (I, J), cols in bs0.udense_cols.items():
            for k in part0.positions(I):
                uset = set(sym.urow[k].tolist())
                for c in cols:
                    if int(c) not in uset:
                        raise AssertionError(
                            f"block ({I},{J}) subcolumn {c} missing in row {k}"
                        )
        return f"{len(bs0.udense_cols)} U blocks dense-subcolumn clean"

    check("Theorem 1 dense subcolumns", c_theorem1)

    # 4 + 5 + 6: factor with amalgamation and solve
    part = build_partition(sym, max_size=25, amalgamation=4)
    bstruct = build_block_structure(sym, part)

    def c_blocks():
        block_of = part.block_of
        for k in range(sym.n):
            J = int(block_of[k])
            for r in sym.lcol[k]:
                if not bstruct.has_block(int(block_of[r]), J):
                    raise AssertionError(f"L entry ({r},{k}) uncovered")
            for c in sym.urow[k]:
                if not bstruct.has_block(J, int(block_of[c])):
                    raise AssertionError(f"U entry ({k},{c}) uncovered")
        return f"{len(bstruct.nonzero_blocks())} blocks cover all entries"

    check("block coverage", c_blocks)

    lu = None

    def c_factor():
        nonlocal lu
        lu = sstar_factor(om.A, sym=sym, part=part)
        bad = lu.matrix.check_static_zeros(sym)
        if bad:
            raise AssertionError(f"{bad} values escaped the static structure")
        return "no dynamic fill events"

    check("static-zero invariant", c_factor)

    def c_solve():
        rng = np.random.default_rng(0)
        b = rng.uniform(-1, 1, A.nrows)
        z = lu.solve(b[om.row_perm])
        x = np.empty_like(z)
        x[om.col_perm] = z
        r = np.linalg.norm(csr_matvec(A, x) - b) / np.linalg.norm(b)
        if r > 1e-8:
            raise AssertionError(f"residual {r:.2e}")
        return f"relative residual {r:.2e}"

    check("backward-stable solve", c_solve)

    if check_parallel and lu is not None:
        from ..parallel import run_1d, run_2d

        def c_parallel():
            r1 = run_1d(om.A, part, bstruct, nprocs, T3E, method="rapid")
            r2 = run_2d(om.A, part, bstruct, nprocs, T3E)
            for key, blk in lu.matrix.blocks.items():
                if not np.array_equal(blk, r1.factor.blocks[key]):
                    raise AssertionError(f"1D block {key} differs")
                if not np.array_equal(blk, r2.factor.blocks[key]):
                    raise AssertionError(f"2D block {key} differs")
            deg = r2.overlap_degree()
            if deg > r2.grid.pc:
                raise AssertionError(
                    f"overlap degree {deg} exceeds p_c = {r2.grid.pc}"
                )
            return (
                f"1D/2D bitwise equal; overlap {deg} <= p_c {r2.grid.pc}"
            )

        check("parallel agreement + Theorem 2", c_parallel)

    return results


def format_report(results) -> str:
    lines = []
    for r in results:
        mark = "PASS" if r.passed else "FAIL"
        lines.append(f"[{mark}] {r.name}" + (f" — {r.detail}" if r.detail else ""))
    ok = sum(1 for r in results if r.passed)
    lines.append(f"{ok}/{len(results)} checks passed")
    return "\n".join(lines)
