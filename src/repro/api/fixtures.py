"""Shared fixture plumbing for the test and benchmark suites.

``tests/conftest.py`` and ``benchmarks/conftest.py`` both need a
session-scoped, memoised cache of fully prepared pipelines keyed by their
build parameters; this module holds the one implementation both import
(they previously carried drifting copies).
"""

from __future__ import annotations

import inspect


#: small suite matrices that cover every generator family
SMALL_SUITE = ["sherman5", "lnsp3937", "jpwh991", "orsreg1", "goodwin", "vavasis3"]


class MemoCache:
    """Memoise ``builder(*args, **kwargs)`` keyed by its *bound* arguments,
    so positional and keyword spellings of the same call share one entry."""

    def __init__(self, builder):
        self._builder = builder
        self._cache = {}
        self._sig = inspect.signature(builder)

    def get(self, *args, **kwargs):
        bound = self._sig.bind(*args, **kwargs)
        bound.apply_defaults()
        key = tuple(sorted(bound.arguments.items()))
        if key not in self._cache:
            self._cache[key] = self._builder(*args, **kwargs)
        return self._cache[key]

    __call__ = get


def prepare_pipeline(name, block_size=25, amalgamation=4, scale="small") -> dict:
    """Fully prepared pipeline stages for one suite matrix (the dict shape
    the test suite's ``contexts`` fixture hands out)."""
    from ..matrices import get_matrix
    from ..ordering import prepare_matrix
    from ..sparse import csr_to_dense
    from ..supernodes import build_partition, build_block_structure
    from ..symbolic import static_symbolic_factorization

    A = get_matrix(name, scale)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=block_size, amalgamation=amalgamation)
    bstruct = build_block_structure(sym, part)
    return dict(
        A=A, om=om, sym=sym, part=part, bstruct=bstruct,
        dense=csr_to_dense(om.A),
    )
