"""High-level public API."""

from .solver import SStarSolver, FactorizationReport
from .experiment import ExperimentContext
from .fixtures import MemoCache, prepare_pipeline, SMALL_SUITE
from .validate import validate_matrix, format_report, CheckResult

__all__ = [
    "SStarSolver",
    "FactorizationReport",
    "ExperimentContext",
    "MemoCache",
    "prepare_pipeline",
    "SMALL_SUITE",
    "validate_matrix",
    "format_report",
    "CheckResult",
]
