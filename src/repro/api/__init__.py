"""High-level public API."""

from .solver import SStarSolver, FactorizationReport
from .experiment import ExperimentContext
from .validate import validate_matrix, format_report, CheckResult

__all__ = [
    "SStarSolver",
    "FactorizationReport",
    "ExperimentContext",
    "validate_matrix",
    "format_report",
    "CheckResult",
]
