"""``SStarSolver`` — the one-stop user-facing interface.

Typical use::

    from repro.api import SStarSolver
    solver = SStarSolver().factor(A)          # A: repro.sparse.CSRMatrix
    x = solver.solve(b)                       # backward-stable GEPP solve

    # or run the factorization on a simulated 16-node T3E:
    report = SStarSolver(nprocs=16, machine="T3E", method="2d").factor(A).report

The solver owns the whole pipeline: maximum transversal, minimum-degree
column ordering on AᵀA, static symbolic factorization, supernode partition
with amalgamation, and the numeric factorization (sequential, 1D parallel,
or 2D parallel on the simulated machine).  Permutations are applied and
undone transparently, so ``solve`` works in the caller's coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..machine import T3D, T3E, GENERIC, MachineSpec, FaultPlan
from ..obs import PHASE, as_tracer
from ..numfact import (
    LUFactorization,
    NumericalError,
    PivotMonitor,
    matrix_maxnorm,
    sstar_factor,
)
from ..sparse import CSRMatrix, dense_to_csr

_MACHINES = {"T3D": T3D, "T3E": T3E, "GENERIC": GENERIC}


@dataclass
class FactorizationReport:
    """Statistics from a completed factorization."""

    n: int
    nnz: int
    factor_entries: int
    supernode_blocks: int
    flops: float
    dgemm_fraction: float
    parallel_seconds: Optional[float] = None  # simulated; None for sequential
    nprocs: int = 1
    messages: int = 0
    bytes_sent: int = 0
    growth_factor: Optional[float] = None  # max |pivot| / max |A_ij| (monitored runs)
    perturbed_pivots: int = 0  # tiny pivots statically perturbed
    restarts: int = 0  # crashed-and-discarded checkpoint rounds
    analysis_reused: bool = False  # refactor hit cached symbolic state


class SStarSolver:
    """Sparse LU with partial pivoting via the S* approach.

    Parameters
    ----------
    block_size:
        Maximum supernode width (the paper uses 25).
    amalgamation:
        Amalgamation factor ``r`` (0 disables; the paper finds 4-6 best).
    nprocs, machine, method:
        Optional parallel execution on the simulated machine: ``method`` in
        ``{"sequential", "1d-rapid", "1d-ca", "2d", "2d-sync"}``;
        ``machine`` in ``{"T3D", "T3E", "GENERIC"}`` or a
        :class:`repro.machine.MachineSpec`.
    grid:
        Optional :class:`repro.parallel.Grid2D` fixing the 2D process-grid
        shape (default: ``Grid2D.preferred``, the paper's ``p_c/p_r ~ 2``).
    pivot_threshold:
        Threshold-pivoting parameter ``u`` in (0, 1]; 1.0 (default) is pure
        partial pivoting, smaller values keep the diagonal when
        ``|a_kk| >= u * max`` — fewer interchanges, bounded extra growth.
    backend:
        Sequential storage backend: ``"blocks"`` (padded dense blocks, the
        default) or ``"packed"`` (the paper's packed supernode panels,
        ~half the memory; sequential method only).
    perturb:
        Enable SuperLU_DIST-style static pivot perturbation: tiny pivots
        (``< sqrt(eps) * ||A||``) are replaced instead of poisoning the
        factorization; ``solve`` then escalates to iterative refinement
        (see ``refine``).  Not supported by the ``"packed"`` backend.
    refine:
        Iterative-refinement policy for ``solve``: ``"auto"`` (default —
        refine when pivots were perturbed), ``"always"`` or ``"never"``.
        A refined solve that fails to reach ``refine_tol`` backward error
        raises :class:`repro.numfact.NumericalError`.
    faults, reliable:
        Optional :class:`repro.machine.FaultPlan` (or a path/JSON string)
        and reliable-delivery switch for the simulated parallel methods.
        A plan with crash faults routes through the checkpoint/restart
        drivers (:mod:`repro.parallel.resilience`).
    ckpt_interval:
        Stages per checkpoint round for crash recovery (default 4 when a
        crash plan forces the resilient path).
    analysis_cache:
        Optional :class:`repro.service.AnalysisCache`.  ``factor`` stores
        its analyze-phase artifacts there; ``refactor`` reuses any cached
        same-pattern artifacts and skips the analyze phase entirely.
    growth_limit:
        Pivot-growth ceiling for cache invalidation: a monitored
        factorization whose growth factor exceeds this (or that had to
        perturb pivots) drops the pattern's cache entry, forcing the next
        factorization to re-derive the analysis.
    abft:
        Algorithm-based fault tolerance against silent data corruption:
        blocks and wire payloads carry column/row checksums, verified at
        message consumption and before the triangular solves.  Detected
        corruption raises :class:`repro.numfact.SilentCorruptionError`
        (with block coordinates) or recovers automatically — by localized
        block-column recompute sequentially, or by checkpoint-window
        replay on the resilient parallel paths.  Requires the ``"blocks"``
        backend.
    tune:
        Model-guided autotuning (:mod:`repro.tune`): ``factor`` /
        ``refactor`` first resolve a :class:`repro.tune.TuningPlan` for
        the matrix's *pattern* — from the attached ``plan_cache`` when the
        pattern was tuned before, otherwise by running a
        :class:`repro.tune.Tuner` search — and execute with the plan's
        block size, layout, grid shape and pipelining instead of the
        constructor's static ``block_size``/``method``/``grid`` (which
        become the defaults the search is free to beat).  The applied
        plan is exposed as ``solver.plan`` and the last search as
        ``solver.tune_result`` (``None`` on a plan-cache hit); a tuned
        run is bit-identical to passing the same plan's configuration
        manually.
    plan_cache, tune_budget, tune_seed, tune_opts:
        The pattern-keyed :class:`repro.tune.PlanCache` shared across
        solvers (one search per pattern/machine/P), the search's
        virtual-time budget (``"auto"``, ``None`` or seconds), its
        deterministic seed, and extra :class:`repro.tune.Tuner` keyword
        arguments (e.g. ``metrics``, ``prune_ratio``, ``block_sizes``).
    trace:
        Observability: ``True`` creates a fresh :class:`repro.obs.Tracer`,
        or pass an existing tracer to share one timeline across solvers.
        Pipeline phases (transversal/ordering/symbolic/partition/numfact/
        trisolve) land on the ``pipeline/main`` track with deterministic
        modeled virtual durations; parallel methods additionally record
        per-rank simulator spans and send→recv messages.  The tracer is
        exposed as ``solver.tracer``; export it with
        :func:`repro.obs.to_chrome_trace`.
    """

    def __init__(
        self,
        block_size: int = 25,
        amalgamation: int = 4,
        nprocs: int = 1,
        machine="T3E",
        method: str = "sequential",
        grid=None,
        pivot_threshold: float = 1.0,
        backend: str = "blocks",
        perturb: bool = False,
        refine: str = "auto",
        refine_tol: float = 1e-8,
        faults=None,
        reliable=None,
        ckpt_interval: Optional[int] = None,
        analysis_cache=None,
        growth_limit: float = 1e8,
        trace=None,
        abft: bool = False,
        tune: bool = False,
        plan_cache=None,
        tune_budget="auto",
        tune_seed: int = 0,
        tune_opts: dict = None,
    ):
        self.block_size = block_size
        self.amalgamation = amalgamation
        self.nprocs = nprocs
        self.method = method
        self.grid = grid
        self.pivot_threshold = pivot_threshold
        self.backend = backend
        self.perturb = perturb
        if refine not in ("auto", "always", "never"):
            raise ValueError("refine must be 'auto', 'always' or 'never'")
        self.refine = refine
        self.refine_tol = refine_tol
        if isinstance(faults, str):
            faults = FaultPlan.from_json(faults)
        self.faults = faults
        self.reliable = reliable
        self.ckpt_interval = ckpt_interval
        self.spec = (
            machine if isinstance(machine, MachineSpec) else _MACHINES[machine.upper()]
        )
        self.analysis_cache = analysis_cache
        self.growth_limit = growth_limit
        if abft and backend != "blocks":
            raise ValueError("abft=True requires the 'blocks' backend")
        self.abft = abft
        self.tracer = as_tracer(trace)
        self.tune = tune
        self.plan_cache = plan_cache
        self.tune_budget = tune_budget
        self.tune_seed = tune_seed
        self.tune_opts = dict(tune_opts or {})
        self.plan = None  # TuningPlan applied by the last tuned factor
        self.tune_result = None  # TuneResult of the last search (None = hit)
        self._lu: LUFactorization = None
        self._om = None
        self._A: CSRMatrix = None
        self._artifacts = None  # AnalysisArtifacts of the last analyze phase
        self.monitor: PivotMonitor = None
        self.report: FactorizationReport = None
        self.sim_result = None
        self.resilient_result = None
        self.refine_history = None

    # -- pipeline ------------------------------------------------------

    def factor(self, A) -> "SStarSolver":
        """Order + symbolically and numerically factor ``A``.

        ``A`` may be a :class:`repro.sparse.CSRMatrix` or a dense ndarray.
        Always runs the full analyze phase; when an ``analysis_cache`` is
        attached the resulting artifacts are stored for later
        :meth:`refactor` calls.
        """
        return self._factor_impl(A, reuse=False)

    def refactor(self, A) -> "SStarSolver":
        """Numerically re-factor a matrix sharing a previously analyzed
        nonzero pattern, skipping the analyze phase.

        The cached transversal / min-degree ordering / symbolic
        factorization / supernode partition are pattern-only and remain
        exactly valid for any same-pattern matrix (George–Ng bounds the
        fill of every pivot sequence), so only the numeric Factor/Update
        sweep — with fresh partial pivoting on the new values — runs.
        Artifacts come from the attached ``analysis_cache`` or, failing
        that, this solver's own last analysis; an unknown pattern falls
        back to a full :meth:`factor` (and populates the cache).

        The factorization is bit-identical to a cold ``factor(A)`` of the
        same matrix: both paths derive identical permutations and block
        structure from the pattern, and the numeric sweep is deterministic.
        """
        return self._factor_impl(A, reuse=True)

    def _analyze(self, A, reuse: bool):
        """Produce (artifacts, ordered matrix, reused flag), consulting the
        cache / prior state when ``reuse`` is requested."""
        from ..service.cache import analyze, pattern_key

        key = pattern_key(A)
        cache_key = (key, self.block_size, self.amalgamation)
        if reuse:
            art = (
                self.analysis_cache.get(cache_key)
                if self.analysis_cache is not None
                else None
            )
            if art is None and self._artifacts is not None and self._artifacts.key == key:
                art = self._artifacts
            if art is not None:
                if self.tracer is not None:
                    self.tracer.instant(
                        "pipeline/main", "analysis reused",
                        t=self.tracer.track_end("pipeline/main"),
                        args={"pattern": key},
                    )
                return art, art.order(A), cache_key, True
        art, om = analyze(A, self.block_size, self.amalgamation,
                          tracer=self.tracer)
        return art, om, cache_key, False

    def _resolve_plan(self, A) -> None:
        """Look up (or search for) the pattern's tuned plan and adopt its
        configuration; one search per (pattern, machine, nprocs)."""
        from ..service.cache import pattern_key
        from ..tune import Tuner, plan_cache_key

        key = plan_cache_key(pattern_key(A), self.spec.name, self.nprocs)
        plan = self.plan_cache.get(key) if self.plan_cache is not None else None
        self.tune_result = None
        if plan is None:
            tuner = Tuner(
                spec=self.spec,
                nprocs=self.nprocs,
                budget=self.tune_budget,
                seed=self.tune_seed,
                **self.tune_opts,
            )
            self.tune_result = tuner.tune(A)
            plan = self.tune_result.best
            if self.plan_cache is not None:
                self.plan_cache.put(key, plan)
            if self.tracer is not None:
                self.tracer.instant(
                    "pipeline/main", "tuned",
                    t=self.tracer.track_end("pipeline/main"),
                    args={"plan": plan.describe(),
                          "probes": sum(len(r.probes)
                                        for r in self.tune_result.records)},
                )
        self.plan = plan
        self.block_size = plan.block_size
        self.amalgamation = plan.amalgamation
        self.method = plan.method
        self.grid = plan.grid()

    def _factor_impl(self, A, reuse: bool) -> "SStarSolver":
        if isinstance(A, np.ndarray):
            A = dense_to_csr(A)
        if not isinstance(A, CSRMatrix):
            raise TypeError("A must be a CSRMatrix or dense ndarray")
        if self.tune:
            self._resolve_plan(A)
        art, om, cache_key, reused = self._analyze(A, reuse)
        sym, part, bstruct = art.sym, art.part, art.bstruct

        monitor = None
        if self.backend == "blocks":
            monitor = PivotMonitor(matrix_maxnorm(om.A), perturb=self.perturb)
        elif self.perturb:
            raise ValueError("perturb=True requires the 'blocks' backend")
        self.monitor = monitor

        sequential = self.method == "sequential" or self.nprocs == 1
        if sequential and (self.faults is not None or self.reliable is not None):
            raise ValueError("fault injection requires a parallel method")
        sim_opts = {}
        if self.faults is not None:
            sim_opts["faults"] = self.faults
        if self.reliable is not None:
            sim_opts["reliable"] = self.reliable
        if self.tracer is not None:
            sim_opts["tracer"] = self.tracer
        has_crashes = self.faults is not None and bool(self.faults.crashes)
        resilient = not sequential and (has_crashes or self.ckpt_interval is not None)

        parallel_seconds = None
        messages = bytes_sent = 0
        restarts = 0
        if sequential:
            if self.backend == "packed":
                from ..numfact import packed_factor

                lu = packed_factor(
                    om.A, sym=sym, part=part,
                    pivot_threshold=self.pivot_threshold,
                )
            elif self.backend == "blocks":
                lu = sstar_factor(
                    om.A, sym=sym, part=part, bstruct=bstruct,
                    pivot_threshold=self.pivot_threshold,
                    monitor=monitor,
                    abft=self.abft,
                )
            else:
                raise ValueError(f"unknown backend {self.backend!r}")
            counter = lu.counter
        elif self.method in ("1d-rapid", "1d-ca", "2d", "2d-sync"):
            oned = self.method.startswith("1d")
            if resilient:
                from ..parallel import run_1d_resilient, run_2d_resilient

                kwargs = dict(
                    ckpt_interval=self.ckpt_interval or 4,
                    faults=self.faults,
                    reliable=self.reliable,
                    pivot_threshold=self.pivot_threshold,
                    monitor=monitor,
                    abft=self.abft,
                )
                if self.tracer is not None:
                    kwargs["sim_opts"] = {"tracer": self.tracer}
                if oned:
                    res = run_1d_resilient(
                        om.A, part, bstruct, self.nprocs, self.spec,
                        method=self.method.split("-")[1], **kwargs,
                    )
                else:
                    res = run_2d_resilient(
                        om.A, part, bstruct, self.nprocs, self.spec,
                        synchronous=self.method.endswith("sync"), **kwargs,
                    )
                self.resilient_result = res
                restarts = sum(1 for r in res.rounds if not r.ok)
                lu = LUFactorization(res.factor, sym, part, bstruct, res.total_counter())
            elif oned:
                from ..parallel import run_1d

                res = run_1d(
                    om.A, part, bstruct, self.nprocs, self.spec,
                    method=self.method.split("-")[1],
                    pivot_threshold=self.pivot_threshold,
                    sim_opts=sim_opts,
                    monitor=monitor,
                    abft=self.abft,
                )
                self.sim_result = res.sim
                lu = LUFactorization(res.factor, sym, part, bstruct, res.sim.total_counter())
            else:
                from ..parallel import run_2d

                res = run_2d(
                    om.A, part, bstruct, self.nprocs, self.spec,
                    synchronous=self.method.endswith("sync"),
                    grid=self.grid,
                    pivot_threshold=self.pivot_threshold,
                    sim_opts=sim_opts,
                    monitor=monitor,
                    abft=self.abft,
                )
                self.sim_result = res.sim
                lu = LUFactorization(res.factor, sym, part, bstruct, res.sim.total_counter())
            counter = lu.counter
            parallel_seconds = res.parallel_seconds
            if resilient:
                messages, bytes_sent = res.messages, res.bytes_sent
            else:
                messages, bytes_sent = res.sim.messages, res.sim.bytes_sent
        else:
            raise ValueError(f"unknown method {self.method!r}")

        if self.tracer is not None:
            # the numfact phase span: simulated makespan for parallel runs,
            # modeled kernel time for sequential ones — virtual either way
            t0 = self.tracer.track_end("pipeline/main")
            dur = (
                parallel_seconds if parallel_seconds is not None
                else self.spec.kernel_seconds(counter.by_gran)
            )
            self.tracer.span(
                "pipeline/main", "numfact", PHASE, t0, t0 + dur,
                {"method": self.method, "flops": float(counter.total),
                 "reused_analysis": bool(reused)},
            )
            if monitor is not None and monitor.perturbations:
                self.tracer.metrics.counter(
                    "numfact.pivot_perturbations"
                ).inc(len(monitor.perturbations))
            if restarts:
                self.tracer.metrics.counter("numfact.restarts").inc(restarts)

        self._lu = lu
        self._om = om
        self._A = A
        self._artifacts = art
        if self.analysis_cache is not None:
            growth = monitor.growth_factor if monitor is not None else None
            numerics_broke = monitor is not None and (
                bool(monitor.perturbations)
                or (growth is not None and growth > self.growth_limit)
            )
            if numerics_broke:
                # the static-structure assumption is doing real numerical
                # work for this pattern: force a fresh analysis next time
                self.analysis_cache.invalidate(cache_key)
            else:
                self.analysis_cache.put(cache_key, art)
        self.report = FactorizationReport(
            n=A.nrows,
            nnz=A.nnz,
            factor_entries=sym.factor_entries,
            supernode_blocks=part.N,
            flops=counter.total,
            dgemm_fraction=counter.fraction("dgemm"),
            parallel_seconds=parallel_seconds,
            nprocs=self.nprocs if self.method != "sequential" else 1,
            messages=messages,
            bytes_sent=bytes_sent,
            growth_factor=monitor.growth_factor if monitor is not None else None,
            perturbed_pivots=len(monitor.perturbations) if monitor is not None else 0,
            restarts=restarts,
            analysis_reused=reused,
        )
        return self

    def _solve_once(self, b: np.ndarray) -> np.ndarray:
        """One factored solve in the caller's original coordinates."""
        om = self._om
        z = self._lu.solve(np.asarray(b, dtype=np.float64)[om.row_perm])
        x = np.empty_like(z)
        x[om.col_perm] = z
        return x

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` in the caller's original coordinates.

        ``b`` may be a single right-hand side ``(n,)`` or a block
        ``(n, k)`` of right-hand sides (so ``(n, 1)`` is just the block
        form with one column); the returned ``x`` matches ``b``'s shape.
        Block solves run the triangular sweeps once with BLAS-3 panels,
        amortising the factorization across all ``k`` systems.

        When pivots were perturbed (``perturb=True`` met tiny pivots) or
        ``refine="always"``, the direct solve against the factorization of
        the perturbed matrix is corrected by iterative refinement on the
        *original* ``A`` (column by column for block right-hand sides); if
        the refined backward error does not reach ``refine_tol`` a
        :class:`repro.numfact.NumericalError` is raised instead of
        returning an unusable solution.
        """
        if self._lu is None:
            raise RuntimeError("call factor(A) first")
        b = np.asarray(b, dtype=np.float64)
        if b.ndim not in (1, 2) or b.shape[0] != self._lu.n:
            raise ValueError(
                f"rhs must have shape ({self._lu.n},) or ({self._lu.n}, k); "
                f"got {b.shape}"
            )
        if self.tracer is not None:
            # modeled virtual cost of the two triangular sweeps: ~4 flops
            # per factor entry per right-hand side, panel (dgemm) rate for
            # block solves, dgemv for single vectors
            k = 1 if b.ndim == 1 else int(b.shape[1])
            kernel = "dgemm" if k > 1 else "dgemv"
            flops = 4.0 * self.report.factor_entries * k
            t0 = self.tracer.track_end("pipeline/main")
            self.tracer.span(
                "pipeline/main", "trisolve", PHASE,
                t0, t0 + flops / self.spec.kernel_rate(kernel),
                {"k": k, "flops": flops},
            )
        perturbed = self.monitor is not None and bool(self.monitor.perturbations)
        want_refine = self.refine == "always" or (
            self.refine == "auto" and perturbed
        )
        if not want_refine:
            return self._solve_once(b)
        if b.ndim == 2:
            x = np.empty_like(b)
            histories = []
            for j in range(b.shape[1]):
                x[:, j] = self._refined_solve(b[:, j], histories)
            self.refine_history = histories
            return x
        histories = []
        x = self._refined_solve(b, histories)
        self.refine_history = histories[0]
        return x

    def _refined_solve(self, b: np.ndarray, histories: list) -> np.ndarray:
        from ..analysis.stability import iterative_refinement

        x, history = iterative_refinement(
            self._A, self._solve_once, b, max_iters=10, tol=self.refine_tol
        )
        berr = history[-1]
        if not np.isfinite(berr) or berr > self.refine_tol:
            raise NumericalError(
                f"iterative refinement stalled at backward error {berr:.3g} "
                f"(target {self.refine_tol:.3g}) after {len(history) - 1} "
                "iteration(s); the matrix is numerically singular",
                backward_error=float(berr),
                iterations=len(history) - 1,
            )
        histories.append(history)
        return x

    @property
    def factorization(self) -> LUFactorization:
        """The underlying factor object (permuted coordinates)."""
        return self._lu

    @property
    def ordering(self):
        """The :class:`repro.ordering.OrderedMatrix` used."""
        return self._om
