"""``SStarSolver`` — the one-stop user-facing interface.

Typical use::

    from repro.api import SStarSolver
    solver = SStarSolver().factor(A)          # A: repro.sparse.CSRMatrix
    x = solver.solve(b)                       # backward-stable GEPP solve

    # or run the factorization on a simulated 16-node T3E:
    report = SStarSolver(nprocs=16, machine="T3E", method="2d").factor(A).report

The solver owns the whole pipeline: maximum transversal, minimum-degree
column ordering on AᵀA, static symbolic factorization, supernode partition
with amalgamation, and the numeric factorization (sequential, 1D parallel,
or 2D parallel on the simulated machine).  Permutations are applied and
undone transparently, so ``solve`` works in the caller's coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine import T3D, T3E, GENERIC, MachineSpec
from ..numfact import LUFactorization, sstar_factor
from ..ordering import prepare_matrix
from ..sparse import CSRMatrix, dense_to_csr
from ..supernodes import build_partition, build_block_structure
from ..symbolic import static_symbolic_factorization

_MACHINES = {"T3D": T3D, "T3E": T3E, "GENERIC": GENERIC}


@dataclass
class FactorizationReport:
    """Statistics from a completed factorization."""

    n: int
    nnz: int
    factor_entries: int
    supernode_blocks: int
    flops: float
    dgemm_fraction: float
    parallel_seconds: float = None  # simulated; None for sequential
    nprocs: int = 1
    messages: int = 0
    bytes_sent: int = 0


class SStarSolver:
    """Sparse LU with partial pivoting via the S* approach.

    Parameters
    ----------
    block_size:
        Maximum supernode width (the paper uses 25).
    amalgamation:
        Amalgamation factor ``r`` (0 disables; the paper finds 4-6 best).
    nprocs, machine, method:
        Optional parallel execution on the simulated machine: ``method`` in
        ``{"sequential", "1d-rapid", "1d-ca", "2d", "2d-sync"}``;
        ``machine`` in ``{"T3D", "T3E", "GENERIC"}`` or a
        :class:`repro.machine.MachineSpec`.
    pivot_threshold:
        Threshold-pivoting parameter ``u`` in (0, 1]; 1.0 (default) is pure
        partial pivoting, smaller values keep the diagonal when
        ``|a_kk| >= u * max`` — fewer interchanges, bounded extra growth.
    backend:
        Sequential storage backend: ``"blocks"`` (padded dense blocks, the
        default) or ``"packed"`` (the paper's packed supernode panels,
        ~half the memory; sequential method only).
    """

    def __init__(
        self,
        block_size: int = 25,
        amalgamation: int = 4,
        nprocs: int = 1,
        machine="T3E",
        method: str = "sequential",
        pivot_threshold: float = 1.0,
        backend: str = "blocks",
    ):
        self.block_size = block_size
        self.amalgamation = amalgamation
        self.nprocs = nprocs
        self.method = method
        self.pivot_threshold = pivot_threshold
        self.backend = backend
        self.spec = (
            machine if isinstance(machine, MachineSpec) else _MACHINES[machine.upper()]
        )
        self._lu: LUFactorization = None
        self._om = None
        self.report: FactorizationReport = None
        self.sim_result = None

    # -- pipeline ------------------------------------------------------

    def factor(self, A) -> "SStarSolver":
        """Order + symbolically and numerically factor ``A``.

        ``A`` may be a :class:`repro.sparse.CSRMatrix` or a dense ndarray.
        """
        if isinstance(A, np.ndarray):
            A = dense_to_csr(A)
        if not isinstance(A, CSRMatrix):
            raise TypeError("A must be a CSRMatrix or dense ndarray")
        om = prepare_matrix(A)
        sym = static_symbolic_factorization(om.A)
        part = build_partition(
            sym, max_size=self.block_size, amalgamation=self.amalgamation
        )
        bstruct = build_block_structure(sym, part)

        parallel_seconds = None
        messages = bytes_sent = 0
        if self.method == "sequential" or self.nprocs == 1:
            if self.backend == "packed":
                from ..numfact import packed_factor

                lu = packed_factor(
                    om.A, sym=sym, part=part,
                    pivot_threshold=self.pivot_threshold,
                )
            elif self.backend == "blocks":
                lu = sstar_factor(
                    om.A, sym=sym, part=part,
                    pivot_threshold=self.pivot_threshold,
                )
            else:
                raise ValueError(f"unknown backend {self.backend!r}")
            counter = lu.counter
        elif self.method in ("1d-rapid", "1d-ca"):
            from ..parallel import run_1d

            res = run_1d(
                om.A,
                part,
                bstruct,
                self.nprocs,
                self.spec,
                method=self.method.split("-")[1],
                pivot_threshold=self.pivot_threshold,
            )
            lu = LUFactorization(res.factor, sym, part, bstruct, res.sim.total_counter())
            counter = lu.counter
            parallel_seconds = res.parallel_seconds
            messages, bytes_sent = res.sim.messages, res.sim.bytes_sent
            self.sim_result = res.sim
        elif self.method in ("2d", "2d-sync"):
            from ..parallel import run_2d

            res = run_2d(
                om.A,
                part,
                bstruct,
                self.nprocs,
                self.spec,
                synchronous=self.method.endswith("sync"),
                pivot_threshold=self.pivot_threshold,
            )
            lu = LUFactorization(res.factor, sym, part, bstruct, res.sim.total_counter())
            counter = lu.counter
            parallel_seconds = res.parallel_seconds
            messages, bytes_sent = res.sim.messages, res.sim.bytes_sent
            self.sim_result = res.sim
        else:
            raise ValueError(f"unknown method {self.method!r}")

        self._lu = lu
        self._om = om
        self.report = FactorizationReport(
            n=A.nrows,
            nnz=A.nnz,
            factor_entries=sym.factor_entries,
            supernode_blocks=part.N,
            flops=counter.total,
            dgemm_fraction=counter.fraction("dgemm"),
            parallel_seconds=parallel_seconds,
            nprocs=self.nprocs if self.method != "sequential" else 1,
            messages=messages,
            bytes_sent=bytes_sent,
        )
        return self

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` in the caller's original coordinates."""
        if self._lu is None:
            raise RuntimeError("call factor(A) first")
        om = self._om
        b = np.asarray(b, dtype=np.float64)
        z = self._lu.solve(b[om.row_perm])
        x = np.empty_like(z)
        x[om.col_perm] = z
        return x

    @property
    def factorization(self) -> LUFactorization:
        """The underlying factor object (permuted coordinates)."""
        return self._lu

    @property
    def ordering(self):
        """The :class:`repro.ordering.OrderedMatrix` used."""
        return self._om
