"""Shared experiment plumbing for the benchmark harness.

Every table/figure bench needs the same preprocessing (generate matrix,
order, static symbolic, partition, dynamic baseline); an
:class:`ExperimentContext` computes each stage lazily and caches it, so a
bench module touches exactly the stages it reports on.
"""

from __future__ import annotations

from functools import cached_property

from ..baselines import superlu_like_factor
from ..matrices import get_matrix, SUITE
from ..ordering import prepare_matrix
from ..sparse import structural_symmetry, ata_pattern
from ..supernodes import build_partition, build_block_structure
from ..symbolic import (
    static_symbolic_factorization,
    cholesky_ata_structure,
    structure_stats,
)
from ..taskgraph import build_task_graph


class ExperimentContext:
    """Lazily-computed pipeline stages for one suite matrix."""

    def __init__(
        self,
        name: str,
        scale: str = "small",
        block_size: int = 25,
        amalgamation: int = 4,
    ):
        self.name = name
        self.scale = scale
        self.block_size = block_size
        self.amalgamation = amalgamation
        self.spec = SUITE.get(name)

    @cached_property
    def A(self):
        return get_matrix(self.name, self.scale)

    @cached_property
    def ordered(self):
        return prepare_matrix(self.A)

    @cached_property
    def sym(self):
        return static_symbolic_factorization(self.ordered.A)

    @cached_property
    def part(self):
        return build_partition(
            self.sym, max_size=self.block_size, amalgamation=self.amalgamation
        )

    @cached_property
    def part_no_amalgamation(self):
        return build_partition(self.sym, max_size=self.block_size, amalgamation=0)

    @cached_property
    def bstruct(self):
        return build_block_structure(self.sym, self.part)

    @cached_property
    def bstruct_no_amalgamation(self):
        return build_block_structure(self.sym, self.part_no_amalgamation)

    @cached_property
    def taskgraph(self):
        return build_task_graph(self.bstruct)

    @cached_property
    def dynamic(self):
        """The SuperLU-like dynamic factorization of the ordered matrix."""
        return superlu_like_factor(self.ordered.A)

    @cached_property
    def superlu_flops(self) -> float:
        """The paper's MFLOPS numerator: dynamic factorization flops."""
        return self.dynamic.flops

    @cached_property
    def fill_stats(self):
        """The Table 1 row for this matrix."""
        chol = cholesky_ata_structure(ata_pattern(self.ordered.A))
        return structure_stats(
            self.name,
            self.A,
            self.sym,
            self.dynamic.l_column_structures(),
            self.dynamic.u_row_structures(),
            chol,
            structural_symmetry(self.A),
        )

    def sequential_factor(self, amalgamation: int = None):
        from ..numfact import sstar_factor

        part = self.part if amalgamation is None else build_partition(
            self.sym, max_size=self.block_size, amalgamation=amalgamation
        )
        return sstar_factor(self.ordered.A, sym=self.sym, part=part)
