"""repro.tune — model-guided autotuning of the factorization pipeline.

The paper picks block size, grid shape, 1D-vs-2D layout and sync-vs-async
pipelining by hand (Section 6, Tables 3–7); this package picks them per
matrix *pattern*: the Eq. (4)-style analytic model prunes the declared
search space (:mod:`repro.tune.space`), budgeted successive-halving
simulator probes rank the survivors, and the winning
:class:`TuningPlan` is cached pattern-keyed in a :class:`PlanCache` so
``SStarSolver(tune=True)`` and a tuning :class:`repro.service.SolveService`
pay for the search exactly once per structure.
"""

from .plan import (
    PlanCache,
    PlanCacheStats,
    TuningPlan,
    plan_cache_key,
)
from .space import (
    AMALGAMATIONS,
    BLOCK_SIZES,
    comm_estimate_1d,
    comm_estimate_2d,
    enumerate_plans,
    grid_shapes,
)
from .tuner import (
    DEFAULT_RUNGS,
    ProbeRecord,
    Tuner,
    TuneResult,
    default_plan,
)

__all__ = [
    "PlanCache",
    "PlanCacheStats",
    "TuningPlan",
    "plan_cache_key",
    "AMALGAMATIONS",
    "BLOCK_SIZES",
    "comm_estimate_1d",
    "comm_estimate_2d",
    "enumerate_plans",
    "grid_shapes",
    "DEFAULT_RUNGS",
    "ProbeRecord",
    "Tuner",
    "TuneResult",
    "default_plan",
]
