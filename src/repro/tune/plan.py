"""``TuningPlan`` — one point of the configuration space — and the
pattern-keyed ``PlanCache`` that amortises tuning across same-structure
factorizations.

The paper tunes its knobs by hand: block size 25 "in our experiments",
``p_c / p_r = 2`` "in practice", 1D RAPID "whenever memory suffices", the
asynchronous pipelined 2D code over the synchronous one (Tables 3–7).  A
:class:`TuningPlan` records one complete assignment of those knobs, and —
because every knob is a function of the *nonzero pattern* and the machine,
never of the values — a tuned plan stays exactly valid for every matrix
sharing the pattern.  :class:`PlanCache` exploits that the same way
:class:`repro.service.AnalysisCache` does for the analyze phase: key on
the pattern digest (plus machine name and processor count), pay for the
search once, reuse the winner on every refactorization.

Both classes round-trip through JSON (including the cache's LRU order and
its hit/miss/eviction counters), so a service can persist its learned
plans across restarts.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field, fields
from typing import Optional


@dataclass(frozen=True)
class TuningPlan:
    """One complete configuration of the factorization pipeline.

    ``layout`` is ``"sequential"``, ``"1d"`` or ``"2d"``; ``pipeline``
    selects the 1D scheduling flavour (``"rapid"`` graph scheduling or
    ``"ca"`` compute-ahead) and ``synchronous`` the 2D communication
    schedule; ``pr``/``pc`` fix the 2D grid shape.  ``block_size`` and
    ``amalgamation`` shape the supernode partition and therefore the
    BLAS-3 granularity.  ``ckpt_interval`` rides along for the resilient
    drivers (``None`` = not requested by the plan).
    """

    block_size: int = 25
    amalgamation: int = 4
    layout: str = "sequential"
    nprocs: int = 1
    pr: int = 1
    pc: int = 1
    pipeline: str = "rapid"  # 1D flavour: "rapid" | "ca"
    synchronous: bool = False  # 2D flavour: sync vs async pipelined
    ckpt_interval: Optional[int] = None

    def __post_init__(self):
        if self.layout not in ("sequential", "1d", "2d"):
            raise ValueError(f"unknown layout {self.layout!r}")
        if self.pipeline not in ("rapid", "ca"):
            raise ValueError(f"unknown 1D pipeline {self.pipeline!r}")
        if self.layout == "2d" and self.pr * self.pc != self.nprocs:
            raise ValueError(
                f"grid {self.pr}x{self.pc} does not match nprocs={self.nprocs}"
            )

    @property
    def method(self) -> str:
        """The :class:`repro.api.SStarSolver` ``method`` string."""
        if self.layout == "sequential" or self.nprocs == 1:
            return "sequential"
        if self.layout == "1d":
            return f"1d-{self.pipeline}"
        return "2d-sync" if self.synchronous else "2d"

    def grid(self):
        """The :class:`repro.parallel.Grid2D` for 2D plans, else ``None``."""
        if self.layout != "2d":
            return None
        from ..parallel import Grid2D

        return Grid2D(self.pr, self.pc)

    def solver_opts(self) -> dict:
        """Keyword arguments that reproduce this plan on ``SStarSolver``."""
        opts = {
            "block_size": self.block_size,
            "amalgamation": self.amalgamation,
            "method": self.method,
            "nprocs": self.nprocs if self.method != "sequential" else 1,
        }
        if self.layout == "2d":
            opts["grid"] = self.grid()
        if self.ckpt_interval is not None:
            opts["ckpt_interval"] = self.ckpt_interval
        return opts

    def describe(self) -> str:
        bits = [f"b={self.block_size}", f"r={self.amalgamation}", self.method]
        if self.layout == "2d":
            bits.append(f"grid={self.pr}x{self.pc}")
        if self.method != "sequential":
            bits.append(f"P={self.nprocs}")
        return " ".join(bits)

    # -- JSON ----------------------------------------------------------

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "TuningPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown TuningPlan fields: {sorted(unknown)}")
        return cls(**d)

    @classmethod
    def from_json(cls, s: str) -> "TuningPlan":
        return cls.from_dict(json.loads(s))


def plan_cache_key(pattern: str, machine_name: str, nprocs: int) -> tuple:
    """A plan is specific to the pattern, the machine and the processor
    budget — never to the matrix values."""
    return (pattern, machine_name, int(nprocs))


@dataclass
class PlanCacheStats:
    """Counters accumulated over a :class:`PlanCache`'s lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "entries": self.entries,
        }


@dataclass
class PlanCache:
    """LRU cache of :class:`TuningPlan` keyed by
    ``(pattern, machine, nprocs)`` (see :func:`plan_cache_key`).

    Plans are a few hundred bytes, so only an entry bound is needed.  The
    whole cache — entries in LRU order plus the stats counters — survives
    a :meth:`to_json` / :meth:`from_json` round trip bit-for-bit.
    """

    max_entries: int = 256
    #: optional repro.obs.MetricsRegistry mirroring the stats as counters
    metrics: object = None
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _stats: PlanCacheStats = field(default_factory=PlanCacheStats, repr=False)

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return tuple(key) in self._entries

    def get(self, key) -> Optional[TuningPlan]:
        """Return the cached plan for ``key`` (marking it most-recently-
        used) or ``None`` on a miss."""
        key = tuple(key)
        plan = self._entries.get(key)
        if plan is None:
            self._stats.misses += 1
            self._count("tune.plan_cache.misses")
            return None
        self._entries.move_to_end(key)
        self._stats.hits += 1
        self._count("tune.plan_cache.hits")
        return plan

    def peek(self, key) -> Optional[TuningPlan]:
        """Like :meth:`get` but with no stats or LRU side effects."""
        return self._entries.get(tuple(key))

    def put(self, key, plan: TuningPlan) -> None:
        key = tuple(key)
        self._entries[key] = plan
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._stats.evictions += 1
            self._count("tune.plan_cache.evictions")

    def invalidate(self, key) -> bool:
        key = tuple(key)
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    def clear(self) -> None:
        self._entries.clear()

    @property
    def stats(self) -> PlanCacheStats:
        self._stats.entries = len(self._entries)
        return self._stats

    # -- JSON ----------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "max_entries": self.max_entries,
                "entries": [
                    {"key": list(k), "plan": p.as_dict()}
                    for k, p in self._entries.items()  # LRU -> MRU order
                ],
                "stats": {
                    "hits": self._stats.hits,
                    "misses": self._stats.misses,
                    "evictions": self._stats.evictions,
                },
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, s: str, metrics=None) -> "PlanCache":
        d = json.loads(s)
        cache = cls(max_entries=d["max_entries"], metrics=metrics)
        for e in d["entries"]:
            cache._entries[tuple(e["key"])] = TuningPlan.from_dict(e["plan"])
        st = d["stats"]
        cache._stats = PlanCacheStats(
            hits=st["hits"], misses=st["misses"], evictions=st["evictions"]
        )
        return cache
