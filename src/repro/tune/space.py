"""The tuning search space — single source of truth for every sweep.

The knobs and their ranges live here so the tuner, the ablation benchmarks
(``benchmarks/bench_ablation_blocksize.py`` / ``bench_ablation_grid.py``)
and the CLI all enumerate exactly the same configuration space and can
never disagree on it.

Also home to the pattern-only *communication predictors* feeding
:func:`repro.analysis.plan_time_model`: predicted message counts and byte
volumes of the 1D consumer-multicast design (each factored column block
travels once per remote consumer processor, Section 5.1) and of the 2D
row/column broadcasts plus pivot reductions (Section 5.2).
"""

from __future__ import annotations

from ..taskgraph.dag import FACTOR

#: Supernode block-size caps swept by the tuner and the block-size
#: ablation bench.  The paper uses 25: "if the block size is too large,
#: the available parallelism will be reduced"; too small forfeits BLAS-3.
BLOCK_SIZES = (2, 4, 8, 16, 25, 50)

#: Amalgamation factors the paper finds best (Section 3.3, Table 4 uses
#: r=4-6).  The default space keeps the repo default to bound the search.
AMALGAMATIONS = (4,)


def grid_shapes(nprocs: int, paper_regime: bool = False) -> list:
    """All ``(pr, pc)`` factorizations of ``nprocs``, ``pr`` ascending.

    ``paper_regime=True`` keeps only shapes with ``pr <= pc + 1`` — the
    regime the paper reports "always leads to better performance"
    (Section 5.2).  The grid ablation bench sweeps the unfiltered list so
    the degenerate tall grids stay measured.
    """
    shapes = [
        (pr, nprocs // pr) for pr in range(1, nprocs + 1) if nprocs % pr == 0
    ]
    if paper_regime:
        shapes = [(pr, pc) for pr, pc in shapes if pr <= pc + 1]
    return shapes


def enumerate_plans(
    nprocs: int,
    block_sizes=BLOCK_SIZES,
    amalgamations=AMALGAMATIONS,
    paper_regime: bool = True,
) -> list:
    """The full candidate list for one (machine-independent) search.

    For ``nprocs == 1`` the space is the sequential block-size sweep; for
    parallel budgets it crosses block sizes with the 1D flavours (RAPID
    graph scheduling vs compute-ahead) and every 2D grid shape in the
    paper regime, sync and async.
    """
    from .plan import TuningPlan

    plans = []
    for r in amalgamations:
        for b in block_sizes:
            if nprocs == 1:
                plans.append(TuningPlan(block_size=b, amalgamation=r))
                continue
            for pipeline in ("rapid", "ca"):
                plans.append(
                    TuningPlan(
                        block_size=b, amalgamation=r, layout="1d",
                        nprocs=nprocs, pipeline=pipeline,
                    )
                )
            for pr, pc in grid_shapes(nprocs, paper_regime=paper_regime):
                for synchronous in (False, True):
                    plans.append(
                        TuningPlan(
                            block_size=b, amalgamation=r, layout="2d",
                            nprocs=nprocs, pr=pr, pc=pc,
                            synchronous=synchronous,
                        )
                    )
    return plans


# -- pattern-only communication predictors -----------------------------


def comm_estimate_1d(tg, nprocs: int) -> tuple:
    """Predicted ``(messages, bytes)`` of the 1D consumer multicast.

    Each factored column block ``k`` is sent once per remote consumer
    processor; without the schedule in hand we bound the consumer-
    processor count by ``min(#consumer columns, P - 1)`` — the multicast
    can never exceed either.
    """
    messages = 0
    nbytes = 0.0
    for t in tg.tasks:
        if t[0] != FACTOR:
            continue
        k = t[1]
        consumers = min(len(tg.succ.get(t, ())), max(nprocs - 1, 0))
        messages += consumers
        nbytes += consumers * tg.col_bytes.get(k, 0)
    return messages, nbytes


def comm_estimate_2d(tg, pr: int, pc: int) -> tuple:
    """Predicted ``(messages, bytes)`` of the 2D block-cyclic codes.

    Per elimination stage ``k``: the pivot search reduces along the
    owning processor column (up and down, ~``2 (pr - 1)`` small
    messages), the swapped/scaled row panel broadcasts down the column
    (``pr - 1``), and the L panel broadcasts along the ``pr`` processor
    rows (``pr (pc - 1)`` messages carrying ``1/pr`` of the column block
    each).  Bytes are dominated by the panel broadcasts.
    """
    n_stages = tg.N
    per_stage_msgs = 2 * (pr - 1) + (pr - 1) + pr * (pc - 1)
    messages = n_stages * per_stage_msgs
    col_total = float(sum(tg.col_bytes.values()))
    # L panels: each column block crosses the pc-1 remote grid columns;
    # row panels: the U part (~the same volume) crosses pr-1 grid rows
    nbytes = col_total * (pc - 1) + col_total * (pr - 1)
    return messages, nbytes
