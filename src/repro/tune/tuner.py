"""Model-guided autotuner: analytic pruning + successive-halving probes.

The search runs in two stages, both functions of the nonzero pattern and
the machine alone:

1. **Analytic pruning.**  Every candidate in the declared space
   (:mod:`repro.tune.space`) is priced by the Eq. (4)-style model
   (:func:`repro.analysis.plan_time_model`) from pattern-only inputs: the
   task graph's granularity-derated total work and critical path at the
   candidate's block size, plus the layout's predicted message traffic.
   Candidates slower than ``prune_ratio`` times the best modeled time are
   dropped without ever touching the simulator.

2. **Successive-halving simulator probes.**  Survivors run on the
   simulated machine over a *prefix* of the elimination stages (the
   cheapest fidelity rung), are ranked by measured makespan, and the best
   half advances to a longer prefix until the finalists run the full
   factorization.  Every probe is traced (:mod:`repro.obs`), its time
   attributed to compute/comm/idle, and configurations that are
   communication-bound without being in the lead are rejected early.
   Probe cost is charged in *virtual seconds* against ``budget``; when
   the budget runs dry the remaining candidates keep their latest-rung
   ranking.

Everything is deterministic for a fixed ``(seed, budget)``: the candidate
space is enumerated in a fixed order, the seed only permutes candidates
whose modeled times tie exactly, and the simulator itself is
deterministic — so the same search always returns the same plan and the
same trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..analysis.model import plan_time_model
from ..machine import MachineSpec, T3E
from ..obs import PHASE, Tracer, as_tracer, profile_trace
from ..ordering import prepare_matrix
from ..supernodes import build_block_structure, build_partition
from ..symbolic import static_symbolic_factorization
from ..taskgraph import build_task_graph
from ..taskgraph.profile import parallelism_profile
from .plan import TuningPlan, plan_cache_key
from .space import comm_estimate_1d, comm_estimate_2d, enumerate_plans

#: Successive-halving fidelity rungs: fraction of matrix columns whose
#: elimination stages the probe executes (the last rung is always full).
DEFAULT_RUNGS = (0.25, 0.5, 1.0)

#: ``budget="auto"`` caps total probe time at this multiple of the best
#: *modeled* factorization time — the search may spend about ten
#: factorizations' worth of virtual time before it must commit.
AUTO_BUDGET_FACTOR = 10.0


def default_plan(nprocs: int = 1, block_size: int = 25,
                 amalgamation: int = 4) -> TuningPlan:
    """The static configuration a hand-configured run would use: the
    paper's block size 25 and, for parallel budgets, the headline 2D
    asynchronous code on the preferred ``p_c / p_r ~ 2`` grid."""
    if nprocs <= 1:
        return TuningPlan(block_size=block_size, amalgamation=amalgamation)
    from ..parallel import Grid2D

    g = Grid2D.preferred(nprocs)
    return TuningPlan(
        block_size=block_size, amalgamation=amalgamation, layout="2d",
        nprocs=nprocs, pr=g.pr, pc=g.pc, synchronous=False,
    )


@dataclass
class ProbeRecord:
    """The search trace entry for one evaluated candidate."""

    plan: TuningPlan
    model_seconds: float
    status: str = "candidate"  # winner | probed | pruned-model |
    #                            rejected-comm | skipped-budget
    rung: int = -1  # highest fidelity rung probed (-1 = never probed)
    probes: list = field(default_factory=list)  # one dict per rung
    full_seconds: Optional[float] = None  # full-factorization makespan

    @property
    def last_probe_seconds(self) -> Optional[float]:
        return self.probes[-1]["seconds"] if self.probes else None

    def as_dict(self) -> dict:
        return {
            "plan": self.plan.as_dict(),
            "model_seconds": self.model_seconds,
            "status": self.status,
            "rung": self.rung,
            "probes": self.probes,
            "full_seconds": self.full_seconds,
        }


@dataclass
class TuneResult:
    """The winning plan plus the full, replayable search trace."""

    best: TuningPlan
    pattern: str
    machine: str
    nprocs: int
    seed: int
    budget: Optional[float]
    budget_spent: float
    records: list  # ProbeRecord, search order
    best_seconds: Optional[float] = None  # winner's full simulated time

    @property
    def cache_key(self) -> tuple:
        return plan_cache_key(self.pattern, self.machine, self.nprocs)

    def as_dict(self) -> dict:
        return {
            "best": self.best.as_dict(),
            "best_seconds": self.best_seconds,
            "pattern": self.pattern,
            "machine": self.machine,
            "nprocs": self.nprocs,
            "seed": self.seed,
            "budget": self.budget,
            "budget_spent": self.budget_spent,
            "records": [r.as_dict() for r in self.records],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


class _PatternState:
    """Per-pattern memo of the partition/task-graph pipeline the search
    shares across candidates (everything here is pattern-only)."""

    def __init__(self, A, spec: MachineSpec):
        self.A = A
        self.spec = spec
        self.om = prepare_matrix(A)
        self.sym = static_symbolic_factorization(self.om.A)
        self._by_blocking = {}

    def blocking(self, block_size: int, amalgamation: int):
        key = (block_size, amalgamation)
        got = self._by_blocking.get(key)
        if got is None:
            part = build_partition(
                self.sym, max_size=block_size, amalgamation=amalgamation
            )
            bstruct = build_block_structure(self.sym, part)
            tg = build_task_graph(bstruct)
            prof = parallelism_profile(tg, self.spec)
            got = (part, bstruct, tg, prof)
            self._by_blocking[key] = got
        return got

    def stage_cap(self, part, fraction: float) -> Optional[int]:
        """Block-column count covering ``fraction`` of the matrix columns
        (``None`` = run everything)."""
        if fraction >= 1.0:
            return None
        target = fraction * part.n
        for K in range(part.N):
            if part.bounds[K + 1] >= target:
                return max(K + 1, 1)
        return None


class Tuner:
    """Search the configuration space for one matrix pattern.

    Parameters
    ----------
    spec, nprocs:
        The simulated machine and the processor budget the plan may use.
    budget:
        Virtual-second cap on total simulator probe time: a float,
        ``None`` (unbounded), or ``"auto"`` (the default —
        :data:`AUTO_BUDGET_FACTOR` times the best modeled time, so the
        search costs about ten factorizations).  The analytic stage is
        never charged.
    seed:
        Deterministic tie-break seed: permutes only candidates whose
        modeled times tie exactly, so any fixed ``(seed, budget)`` always
        reproduces the same search bit for bit.
    prune_ratio:
        Analytic pruning slack: candidates modeled slower than
        ``prune_ratio *`` the best modeled time never reach the
        simulator.  The model-vs-simulator regression test
        (``tests/test_tune.py``) keeps this safety margin honest.
    comm_bound:
        Early-rejection threshold on a probe's non-compute fraction
        (comm + idle): a config past it that is not currently leading its
        rung is dropped as communication-bound.
    rungs:
        Successive-halving fidelity ladder (fractions of the matrix's
        columns whose elimination stages each probe executes).
    metrics, tracer:
        Optional :class:`repro.obs.MetricsRegistry` /
        :class:`repro.obs.Tracer`: probes are counted under ``tune.*``
        and recorded as spans on the ``tune/search`` track.
    """

    def __init__(
        self,
        spec: MachineSpec = T3E,
        nprocs: int = 1,
        budget="auto",
        seed: int = 0,
        prune_ratio: float = 2.0,
        comm_bound: float = 0.75,
        rungs=DEFAULT_RUNGS,
        block_sizes=None,
        amalgamations=None,
        metrics=None,
        tracer=None,
    ):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.spec = spec
        self.nprocs = nprocs
        self.budget = budget
        self.seed = seed
        self.prune_ratio = prune_ratio
        self.comm_bound = comm_bound
        self.rungs = tuple(rungs)
        if not self.rungs or self.rungs[-1] < 1.0:
            raise ValueError("the last rung must run the full factorization")
        self.block_sizes = block_sizes
        self.amalgamations = amalgamations
        self.tracer = as_tracer(tracer)
        if metrics is not None:
            self.metrics = metrics
        elif self.tracer is not None:
            self.metrics = self.tracer.metrics
        else:
            from ..obs import MetricsRegistry

            self.metrics = MetricsRegistry()

    def _count(self, name: str, n: int = 1) -> None:
        self.metrics.counter(f"tune.{name}").inc(n)

    # -- model stage ---------------------------------------------------

    def model_seconds(self, state: _PatternState, plan: TuningPlan) -> float:
        """The Eq. (4)-style pattern-only time prediction for ``plan``."""
        part, bstruct, tg, prof = state.blocking(
            plan.block_size, plan.amalgamation
        )
        if plan.method == "sequential":
            return plan_time_model(
                self.spec, total_seconds=prof.total_seconds,
                cp_seconds=prof.critical_path_seconds,
            ).total
        if plan.layout == "1d":
            msgs, nbytes = comm_estimate_1d(tg, plan.nprocs)
        else:
            msgs, nbytes = comm_estimate_2d(tg, plan.pr, plan.pc)
        return plan_time_model(
            self.spec,
            total_seconds=prof.total_seconds,
            cp_seconds=prof.critical_path_seconds,
            nprocs=plan.nprocs,
            layout=plan.layout,
            comm_messages=msgs,
            comm_bytes=nbytes,
            synchronous=plan.synchronous,
            n_stages=tg.N,
        ).total

    def pattern_state(self, A) -> "_PatternState":
        """Build (once) the shared pattern-only pipeline state for ``A``;
        pass it to :meth:`simulate_plan` / :meth:`model_seconds` to reuse
        the ordering/symbolic/partition work across many evaluations."""
        return _PatternState(A, self.spec)

    # -- probe stage ---------------------------------------------------

    def simulate_plan(self, A_or_state, plan: TuningPlan,
                      fraction: float = 1.0) -> dict:
        """One deterministic simulator probe of ``plan``.

        Returns ``{"seconds", "fraction", "busy", "comm", "idle"}`` —
        the probe's virtual makespan and its trace-attributed time
        fractions.  ``fraction < 1`` runs only the elimination-stage
        prefix covering that share of the matrix columns (the successive-
        halving fidelity knob).  Sequential plans are priced analytically
        (the static tally *is* their exact modeled time) at zero budget
        cost.
        """
        state = (
            A_or_state
            if isinstance(A_or_state, _PatternState)
            else _PatternState(A_or_state, self.spec)
        )
        part, bstruct, tg, prof = state.blocking(
            plan.block_size, plan.amalgamation
        )
        if plan.method == "sequential":
            return {
                "seconds": prof.total_seconds * min(fraction, 1.0),
                "fraction": min(fraction, 1.0),
                "busy": 1.0, "comm": 0.0, "idle": 0.0,
            }
        cap = state.stage_cap(part, fraction)
        kwargs = {"sim_opts": {"tracer": Tracer()}}
        if cap is not None:
            kwargs["stage_range"] = (0, cap)
        if plan.layout == "1d":
            from ..parallel import run_1d

            res = run_1d(
                state.om.A, part, bstruct, plan.nprocs, self.spec,
                method=plan.pipeline, tg=tg, **kwargs,
            )
        else:
            from ..parallel import run_2d

            res = run_2d(
                state.om.A, part, bstruct, plan.nprocs, self.spec,
                synchronous=plan.synchronous, grid=plan.grid(), **kwargs,
            )
        self._count("probes")
        attr = profile_trace(
            kwargs["sim_opts"]["tracer"], total_time=res.sim.total_time
        ).attribution()
        return dict(
            attr,
            seconds=res.parallel_seconds,
            fraction=fraction if cap is not None else 1.0,
        )

    # -- the search ----------------------------------------------------

    def tune(self, A) -> TuneResult:
        """Run the full search for ``A``'s pattern; returns the winning
        plan and the complete search trace."""
        from ..service.cache import pattern_key

        self._count("searches")
        state = _PatternState(A, self.spec)
        space_kwargs = {}
        if self.block_sizes is not None:
            space_kwargs["block_sizes"] = self.block_sizes
        if self.amalgamations is not None:
            space_kwargs["amalgamations"] = self.amalgamations
        plans = enumerate_plans(self.nprocs, **space_kwargs)
        records = [
            ProbeRecord(plan=p, model_seconds=self.model_seconds(state, p))
            for p in plans
        ]

        # analytic pruning: drop everything the model puts hopelessly
        # behind the best candidate
        best_model = min(r.model_seconds for r in records)
        budget = self.budget
        if budget == "auto":
            budget = AUTO_BUDGET_FACTOR * best_model
        survivors = []
        for r in records:
            if r.model_seconds > self.prune_ratio * best_model:
                r.status = "pruned-model"
                self._count("pruned")
            else:
                survivors.append(r)

        # deterministic search order: modeled time ascending; the seed
        # only permutes exact ties
        rng = np.random.default_rng(self.seed)
        jitter = {id(r): float(t) for r, t in zip(
            survivors, rng.random(len(survivors)))}
        survivors.sort(
            key=lambda r: (r.model_seconds, jitter[id(r)])
        )

        spent = 0.0
        n_probes = 0
        exhausted = False
        t_search = (
            self.tracer.track_end("tune/search")
            if self.tracer is not None else 0.0
        )
        for rung, fraction in enumerate(self.rungs):
            for i, r in enumerate(survivors):
                if budget is not None and spent >= budget \
                        and n_probes > 0:
                    exhausted = True  # always afford at least one probe
                # the final rung always validates the leading candidate at
                # full fidelity, so the winner's makespan is measured even
                # under a hard budget (overrun <= one factorization)
                validate_leader = fraction >= 1.0 and i == 0
                if exhausted and not validate_leader:
                    if r.rung < 0:
                        r.status = "skipped-budget"
                        self._count("skipped")
                    continue
                probe = self.simulate_plan(state, r.plan, fraction)
                if r.plan.method != "sequential":
                    # sequential plans are priced analytically (the static
                    # tally is exact), so they never consume probe budget
                    spent += probe["seconds"]
                n_probes += 1
                r.probes.append(dict(probe, rung=rung))
                r.rung = rung
                if r.status == "candidate":
                    r.status = "probed"
                if fraction >= 1.0:
                    r.full_seconds = probe["seconds"]
                if self.tracer is not None:
                    self.tracer.span(
                        "tune/search", f"probe {r.plan.describe()}", PHASE,
                        t_search, t_search + probe["seconds"],
                        {"rung": rung, "fraction": probe["fraction"],
                         "seconds": probe["seconds"]},
                    )
                    t_search += probe["seconds"]
            # rank within the rung: same-fidelity probes first (measured
            # makespans are only comparable at equal fractions), anything
            # the budget skipped keeps its previous-rung / model ranking
            survivors.sort(key=lambda r: (
                0 if r.rung == rung else 1,
                r.last_probe_seconds
                if r.last_probe_seconds is not None else float("inf"),
                r.model_seconds,
            ))
            if fraction >= 1.0:
                break
            keep = max(1, (len(survivors) + 1) // 2)
            nxt = []
            for i, r in enumerate(survivors):
                probe = r.probes[-1] if r.probes else None
                comm_bound = (
                    probe is not None
                    and probe["comm"] + probe["idle"] > self.comm_bound
                )
                if i < keep and not (comm_bound and i > 0):
                    nxt.append(r)
                elif comm_bound and r.status == "probed":
                    r.status = "rejected-comm"
                    self._count("rejected_comm")
            survivors = nxt

        winner = survivors[0]
        winner.status = "winner"
        return TuneResult(
            best=winner.plan,
            pattern=pattern_key(A),
            machine=self.spec.name,
            nprocs=self.nprocs,
            seed=self.seed,
            budget=budget,  # resolved: "auto" recorded as its float value
            budget_spent=spent,
            records=records,
            best_seconds=winner.full_seconds,
        )
