"""2D L/U supernode partitioning and amalgamation (Sections 3.2-3.3)."""

from .partition import (
    find_supernodes,
    BlockPartition,
    build_partition,
    supernode_stats,
)
from .amalgamate import amalgamate_supernodes
from .structure import BlockStructure, build_block_structure

__all__ = [
    "find_supernodes",
    "BlockPartition",
    "build_partition",
    "supernode_stats",
    "amalgamate_supernodes",
    "BlockStructure",
    "build_block_structure",
]
