"""Block-level nonzero structure and Theorem-1 dense-subcolumn metadata.

From the static symbolic structure and a :class:`BlockPartition` this module
derives:

* which ``(I, J)`` submatrices are nonzero (separately for L and U),
* for each nonzero U block, the set of structurally dense subcolumns
  (Theorem 1 / Corollary 3: after amalgamation they are *almost* dense),
* per-block entry counts used for FLOP accounting and buffer sizing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..symbolic import SymbolicFactorization
from .partition import BlockPartition


@dataclass
class BlockStructure:
    """Static block nonzero structure of the partitioned factor."""

    part: BlockPartition
    lblocks: dict  # J -> sorted list of block rows I >= J with L_{IJ} != 0
    ublocks: dict  # I -> sorted list of block cols J >  I with U_{IJ} != 0
    udense_cols: dict  # (I, J) -> sorted array of global dense subcolumn ids
    lrows: dict  # (I, J), I >= J -> sorted array of global structural rows
    # memoized structural counts: queried once per GEMM on the update hot
    # path, immutable once the structure is built
    _lrc: dict = field(default_factory=dict, init=False, repr=False,
                       compare=False)
    _prc: dict = field(default_factory=dict, init=False, repr=False,
                       compare=False)
    # per-panel factorization metadata (repro.numfact.tasks): position
    # tables and row offsets derived from part + lblocks, built lazily
    _fmeta: dict = field(default_factory=dict, init=False, repr=False,
                         compare=False)

    @property
    def N(self) -> int:
        return self.part.N

    def l_block_rows(self, J: int) -> list:
        """Block rows I >= J with a nonzero L block in column J."""
        return self.lblocks.get(J, [])

    def u_block_cols(self, I: int) -> list:
        """Block columns J > I with a nonzero U block in row I."""
        return self.ublocks.get(I, [])

    def has_u(self, I: int, J: int) -> bool:
        return (I, J) in self.udense_cols

    def has_l(self, I: int, J: int) -> bool:
        return (I, J) in self.lrows

    def has_block(self, I: int, J: int) -> bool:
        return self.has_l(I, J) if I >= J else self.has_u(I, J)

    def nonzero_blocks(self):
        """Iterate all nonzero (I, J) block coordinates."""
        seen = set(self.lrows)
        seen.update(self.udense_cols)
        return sorted(seen)

    def l_rows_count(self, I: int, J: int) -> int:
        """Structural rows of L block (I, J) — the rows the paper's packed
        supernode storage holds (diagonal blocks are fully dense)."""
        key = (I, J)
        c = self._lrc.get(key)
        if c is None:
            if I == J:
                c = self.part.size(I)
            else:
                rows = self.lrows.get(key)
                c = 0 if rows is None else len(rows)
            self._lrc[key] = c
        return c

    def panel_rows_count(self, K: int) -> int:
        """Structural rows of the whole L panel of column block K."""
        c = self._prc.get(K)
        if c is None:
            c = self._prc[K] = sum(
                self.l_rows_count(I, K) for I in self.l_block_rows(K)
            )
        return c

    def block_entry_count(self, I: int, J: int) -> int:
        """Structural entries inside block (I, J) (before dense padding)."""
        if I >= J:
            rows = self.lrows.get((I, J))
            if rows is None:
                return 0
            if I == J:
                # dense lower triangle of the diagonal block plus U part rows
                bs = self.part.size(I)
                return bs * (bs + 1) // 2
            return len(rows) * self.part.size(J)
        cols = self.udense_cols.get((I, J))
        if cols is None:
            return 0
        return len(cols) * self.part.size(I)

    def density_report(self) -> dict:
        """Fraction of U-block subcolumns that are structurally dense, and
        the share of fully dense U blocks — the Theorem 1 payoff."""
        total_cols = 0
        full_blocks = 0
        nblocks = 0
        for (_I, J), cols in self.udense_cols.items():
            nblocks += 1
            total_cols += len(cols)
            if len(cols) == self.part.size(J):
                full_blocks += 1
        return {
            "u_blocks": nblocks,
            "dense_subcolumns": total_cols,
            "fully_dense_u_blocks": full_blocks,
            "fully_dense_fraction": full_blocks / nblocks if nblocks else 1.0,
        }


def build_block_structure(
    sym: SymbolicFactorization, part: BlockPartition
) -> BlockStructure:
    """Project the static structure onto the 2D block grid."""
    N = part.N
    block_of = part.block_of

    lblocks = {J: set() for J in range(N)}
    ublocks = {I: set() for I in range(N)}
    udense: dict = {}
    lrows: dict = {}

    for k in range(sym.n):
        J = int(block_of[k])
        # L column k: rows >= k
        for r in sym.lcol[k]:
            I = int(block_of[r])
            lblocks[J].add(I)
            key = (I, J)
            s = lrows.get(key)
            if s is None:
                s = set()
                lrows[key] = s
            s.add(int(r))
        # U row k: columns >= k
        I = J
        for c in sym.urow[k]:
            Jc = int(block_of[c])
            if Jc == I:
                continue  # diagonal block handled via lrows
            ublocks[I].add(Jc)
            key = (I, Jc)
            s = udense.get(key)
            if s is None:
                s = set()
                udense[key] = s
            s.add(int(c))

    return BlockStructure(
        part=part,
        lblocks={J: sorted(v) for J, v in lblocks.items() if v},
        ublocks={I: sorted(v) for I, v in ublocks.items() if v},
        udense_cols={k: np.asarray(sorted(v), dtype=np.int64) for k, v in udense.items()},
        lrows={k: np.asarray(sorted(v), dtype=np.int64) for k, v in lrows.items()},
    )
