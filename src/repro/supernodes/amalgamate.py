"""Supernode amalgamation (Section 3.3).

The average supernode of the static structure is only 1.5-2 columns wide,
which makes tasks too fine-grained.  The paper's remedy merges *consecutive*
supernodes whose below-diagonal structures differ by at most ``r`` entries
(the amalgamation factor; 4-6 works best in their experiments), requiring no
row/column permutation and running in O(n).

Merging supernodes ``S1 = [a, b)`` and ``S2 = [b, c)`` admits explicit zeros
in two places: rows of ``lcol[a]`` not present below ``S2`` (they become
padded rows of the merged diagonal/L blocks) and the upper-triangular
coupling ``U[a:b, b:c]`` positions that were structurally zero.  We charge
only the L-structure difference, like the reference implementation [27].
"""

from __future__ import annotations

import numpy as np

from ..symbolic import SymbolicFactorization


def _below(arr: np.ndarray, pos: int) -> np.ndarray:
    """Entries of a sorted array strictly greater than ``pos``."""
    return arr[np.searchsorted(arr, pos, side="right"):]


def amalgamate_supernodes(
    sym: SymbolicFactorization,
    bounds: list,
    factor: int = 4,
    max_size: int = 25,
) -> list:
    """Greedily merge consecutive supernodes left-to-right.

    ``bounds`` is the exact-supernode boundary list from
    :func:`find_supernodes`; the result is a coarser boundary list.  A merge
    of the current run ``[start, b)`` with the next supernode ``[b, c)`` is
    accepted when the number of extra zero entries it pads into the L
    structure is at most ``factor`` per column and the merged width stays
    within ``max_size``.
    """
    if len(bounds) <= 2:
        return list(bounds)
    out = [bounds[0]]
    start = bounds[0]
    for idx in range(1, len(bounds) - 1):
        b = bounds[idx]
        c = bounds[idx + 1]
        if c - start > max_size:
            out.append(b)
            start = b
            continue
        # L structure of the run below position c-1 vs the next supernode's
        run_below = _below(sym.lcol[start], c - 1)
        next_below = _below(sym.lcol[b], c - 1)
        # rows the run has but the next supernode lacks (and vice versa)
        diff = len(np.setdiff1d(run_below, next_below, assume_unique=True)) + len(
            np.setdiff1d(next_below, run_below, assume_unique=True)
        )
        # the merged block's U rows also pad up to the union of the two
        # runs' U structures (Corollary 3's "almost dense" cost); charge it
        run_right = _below(sym.urow[start], c - 1)
        next_right = _below(sym.urow[b], c - 1)
        diff += len(np.setdiff1d(run_right, next_right, assume_unique=True)) + len(
            np.setdiff1d(next_right, run_right, assume_unique=True)
        )
        if diff <= factor:
            continue  # merge: do not emit boundary b
        out.append(b)
        start = b
    out.append(bounds[-1])
    return out


def amalgamation_padding(sym: SymbolicFactorization, bounds: list) -> int:
    """Count explicit-zero L entries a partition pads in (for diagnostics)."""
    pad = 0
    for s, e in zip(bounds[:-1], bounds[1:]):
        union = np.unique(np.concatenate([_below(sym.lcol[k], e - 1) for k in range(s, e)]))
        for k in range(s, e):
            pad += len(union) - len(_below(sym.lcol[k], e - 1))
    return pad
