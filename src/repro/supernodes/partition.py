"""L-supernode detection and the 2D L/U block partition (Section 3.2).

A supernode of the *static* structure is a maximal run of consecutive
columns ``k .. k+s`` whose L-column structures are nested exactly:
``lcol[k+1] == lcol[k] \\ {k}`` — i.e. identical below-diagonal structure
and a structurally dense diagonal block.  Following the paper, the column
partition is then applied to the **rows as well**, dividing the matrix into
``N x N`` submatrices; Theorem 1 guarantees every nonzero U submatrix then
consists of structurally dense subcolumns.

Supernodes larger than ``max_size`` are split (the paper uses block size 25
to balance cache reuse against lost parallelism).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..symbolic import SymbolicFactorization


def find_supernodes(sym: SymbolicFactorization, max_size: int = 25) -> list:
    """Return supernode boundaries ``[s0=0, s1, ..., n]`` from the static
    L structure, capping supernode width at ``max_size``."""
    n = sym.n
    bounds = [0]
    start = 0
    for k in range(1, n):
        prev = sym.lcol[k - 1]
        cur = sym.lcol[k]
        # same supernode iff lcol[k] == lcol[k-1] minus its diagonal entry
        same = len(cur) == len(prev) - 1 and np.array_equal(prev[1:], cur)
        if not same or k - start >= max_size:
            bounds.append(k)
            start = k
    bounds.append(n)
    return bounds


@dataclass
class BlockPartition:
    """The 2D partition: ``N`` row/column blocks with bounds ``S``.

    ``bounds[I] .. bounds[I+1]-1`` are the positions of block ``I``;
    ``block_of[p]`` maps a global position to its block.
    """

    bounds: np.ndarray

    def __post_init__(self) -> None:
        self.bounds = np.asarray(self.bounds, dtype=np.int64)
        n = int(self.bounds[-1])
        self.block_of = np.empty(n, dtype=np.int64)
        for b in range(self.N):
            self.block_of[self.bounds[b] : self.bounds[b + 1]] = b
        # plain-int views of the bounds: start()/size() sit on the hot path
        # of every Factor/Update task, and indexing a Python list is several
        # times cheaper than ndarray scalar extraction
        self._bounds_list = self.bounds.tolist()
        self._sizes_list = np.diff(self.bounds).tolist()
        self._positions = {}

    @property
    def N(self) -> int:
        """Number of blocks."""
        return len(self.bounds) - 1

    @property
    def n(self) -> int:
        return self._bounds_list[-1]

    def start(self, b: int) -> int:
        """S(b): first position of block b."""
        return self._bounds_list[b]

    def size(self, b: int) -> int:
        return self._sizes_list[b]

    def positions(self, b: int) -> np.ndarray:
        pos = self._positions.get(b)
        if pos is None:
            pos = self._positions[b] = np.arange(
                self.bounds[b], self.bounds[b + 1]
            )
        return pos

    def sizes(self) -> np.ndarray:
        return np.diff(self.bounds)

    def __repr__(self) -> str:  # pragma: no cover
        return f"BlockPartition(N={self.N}, n={self.n})"


def build_partition(
    sym: SymbolicFactorization,
    max_size: int = 25,
    amalgamation: int = 0,
) -> BlockPartition:
    """Supernode partition of the static structure, optionally relaxed by
    amalgamation factor ``amalgamation`` (0 disables; the paper finds 4-6
    best)."""
    bounds = find_supernodes(sym, max_size=max_size)
    if amalgamation > 0:
        from .amalgamate import amalgamate_supernodes

        bounds = amalgamate_supernodes(
            sym, bounds, factor=amalgamation, max_size=max_size
        )
    return BlockPartition(np.asarray(bounds, dtype=np.int64))


def supernode_stats(sym: SymbolicFactorization, max_size: int = 25) -> dict:
    """Width statistics of the exact supernode partition.

    The paper motivates amalgamation with "the average size of a supernode
    after L/U partitioning is very small, about 1.5 to two columns"; this
    reports the measured distribution for a static structure.
    """
    bounds = find_supernodes(sym, max_size=max_size)
    widths = np.diff(np.asarray(bounds))
    return {
        "count": int(len(widths)),
        "mean_width": float(widths.mean()) if len(widths) else 0.0,
        "max_width": int(widths.max()) if len(widths) else 0,
        "singletons": int(np.count_nonzero(widths == 1)),
    }
