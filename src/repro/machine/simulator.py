"""Deterministic discrete-event SPMD simulator.

Each rank is a Python **generator**: ordinary Python between yields runs the
real numerics; ``compute``/``send`` advance the rank's *virtual clock*
immediately, while ``recv`` and ``barrier`` yield control back to the
scheduler until they can be satisfied.  Message arrival times are computed
from the sender's clock with the machine spec's latency/bandwidth model, so
timing is causally correct no matter in which host order ranks execute.

Semantics (matching the shmem/RMA style the paper's codes rely on):

* ``send`` is asynchronous one-sided put: the sender pays the per-message
  overhead, the payload is deposited in the receiver's mailbox at
  ``sender_clock + latency + bytes/bandwidth``;
* ``recv(tag)`` blocks until a matching message exists and resumes at
  ``max(local_clock, arrival)``; payloads are deep-copied at send time so
  ranks never alias each other's memory — unless ``zero_copy`` delivery is
  active, in which case the lint certificate (``repro lint --certify``)
  proves the program never writes a posted buffer and the copy is skipped
  (true RMA put semantics, as on the paper's T3D);
* tags must uniquely identify a logical transfer (step/stage/source); the
  parallel codes in :mod:`repro.parallel` follow this discipline;
* ``barrier`` synchronises all ranks at ``max(clocks) + barrier cost``.

The simulator records per-rank busy time, message counts/bytes, and labeled
task spans (used for Gantt charts, load-balance factors and the Theorem 2
overlap-degree measurements).
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field

import numpy as np

from ..numfact.counter import KernelCounter
from ..obs import tracer as _obs
from .faults import (
    CORRUPT,
    DELAY,
    DROP,
    DUPLICATE,
    FaultEvent,
    FaultStats,
    ReliableDelivery,
)
from .specs import MachineSpec


class DeliveryError(RuntimeError):
    """A message could not be delivered.

    Structured attributes: ``src``, ``dest``, ``tag``, ``attempts`` (number
    of transmission attempts made before giving up).
    """

    def __init__(self, message, src=None, dest=None, tag=None, attempts=0):
        super().__init__(message)
        self.src = src
        self.dest = dest
        self.tag = tag
        self.attempts = attempts


class PayloadMutationError(RuntimeError):
    """A sender mutated a posted payload before it was consumed.

    Raised by ``Simulator(sanitize=True)``: payloads are content-hashed at
    send time and re-verified when the receiver consumes them (and at the
    end of the run for messages never received).  The simulator's defensive
    deep copy means the receiver still observed the *pre-mutation* bytes —
    but on a real zero-copy RMA machine it would not have, so the program
    is incorrect.

    Structured attributes: ``src``, ``dest``, ``tag``, ``send_clock`` (the
    sender's virtual clock when the payload was posted), and ``span`` (the
    label of the sender's task span covering the send, or None).
    """

    def __init__(self, message, src=None, dest=None, tag=None,
                 send_clock=0.0, span=None):
        super().__init__(message)
        self.src = src
        self.dest = dest
        self.tag = tag
        self.send_clock = send_clock
        self.span = span


class MessageLostError(DeliveryError):
    """A rank is blocked waiting for a message the network dropped.

    Raised instead of :class:`DeadlockError` when the scheduler can prove
    the awaited transfer was lost to fault injection (and reliable delivery
    was off, so nothing will ever retransmit it).
    """


class RankCrashedError(RuntimeError):
    """A crashed rank left the surviving ranks unable to progress.

    Structured attributes: ``ranks`` (the crashed ranks), ``crash_times``
    (``{rank: virtual clock at death}``), ``detected_at`` (the virtual time
    at which the survivors' heartbeat timeout detected the failure), and
    ``blocked`` as for :class:`DeadlockError`.
    """

    def __init__(self, message, ranks=(), crash_times=None, detected_at=0.0,
                 blocked=None):
        super().__init__(message)
        self.ranks = list(ranks)
        self.crash_times = dict(crash_times or {})
        self.detected_at = detected_at
        self.blocked = blocked or []


class Timeout:
    """Sentinel returned by ``recv(tag, timeout=...)`` when the deadline
    passes without a matching message.  Falsy, singleton (``TIMEOUT``)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self):
        return False

    def __repr__(self):
        return "TIMEOUT"


TIMEOUT = Timeout()


class DeadlockError(RuntimeError):
    """All ranks are blocked and no message can satisfy any of them.

    Structured attributes (for tooling, e.g. :mod:`repro.verify`):

    * ``blocked`` — list of ``(rank, what)`` where ``what`` is the tag the
      rank's ``recv`` is waiting on, or the string ``"barrier"``;
    * ``pending`` — ``{rank: [(tag, arrival, src), ...]}`` of messages
      sitting undelivered in each blocked rank's mailbox (the tags the
      rank *could* have received instead — usually the smoking gun of a
      tag mismatch).
    """

    def __init__(self, message, blocked=None, pending=None):
        super().__init__(message)
        self.blocked = blocked or []
        self.pending = pending or {}


@dataclass
class TaskSpan:
    """A labeled interval of work on one rank (for Gantt/overlap analysis)."""

    rank: int
    label: str
    start: float
    end: float


@dataclass
class MessageRecord:
    """One transmission attempt in a :class:`SimTrace` (send-ordered).

    ``logical`` identifies the logical transfer: retransmissions and
    fault-injected duplicates of one ``send`` share it, which is how the
    trace checker distinguishes them from genuine tag reuse.
    """

    seq: int
    src: int
    dest: int
    tag: object
    send_clock: float  # sender clock when the send was issued
    arrival: float  # when the payload lands in the destination mailbox
    nbytes: int
    recv_time: float = None  # receiver clock at consumption (None = never)
    consumed: bool = False
    logical: int = None  # logical transfer id (seq of the first attempt)
    attempt: int = 0  # 0 = first transmission, >0 = retransmit
    dropped: bool = False  # lost to fault injection (never deposited)
    duplicate: bool = False  # fault-injected extra copy
    corrupted: bool = False  # payload corrupted in flight
    mutated: bool = False  # sender wrote to the payload after posting it


@dataclass
class SimTrace:
    """Message-level trace of one simulated run (``Simulator(trace=True)``)."""

    records: list = field(default_factory=list)

    def undelivered(self) -> list:
        """Messages deposited but never received (mailbox leaks)."""
        return [r for r in self.records if not r.consumed]

    def by_src(self) -> dict:
        """Records grouped per sender, preserving each sender's send order
        (the host-scheduling-independent view used by the replay checker)."""
        out = {}
        for r in self.records:
            out.setdefault(r.src, []).append(r)
        return out


# rank scheduling states (module-level so _deposit can test for _RECV)
_READY, _RECV, _BARRIER, _DONE, _CRASHED = 0, 1, 2, 3, 4


class _RecvRequest:
    __slots__ = ("tag", "deadline")

    def __init__(self, tag, deadline=None):
        self.tag = tag
        self.deadline = deadline


class _BarrierRequest:
    __slots__ = ()


def _payload_nbytes(payload) -> int:
    """Estimate the wire size of a payload (ndarray-aware, recursive)."""
    if payload is None:
        return 8
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(payload, (tuple, list)):
        return 16 + sum(_payload_nbytes(p) for p in payload)
    if isinstance(payload, dict):
        return 16 + sum(8 + _payload_nbytes(v) for v in payload.values())
    if isinstance(payload, str):
        return len(payload)
    return 64


def _copy_payload(payload):
    """Deep-copy the ndarray parts of a payload (no aliasing across ranks)."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, tuple):
        return tuple(_copy_payload(p) for p in payload)
    if isinstance(payload, list):
        return [_copy_payload(p) for p in payload]
    if isinstance(payload, dict):
        return {k: _copy_payload(v) for k, v in payload.items()}
    return payload


def _digest_into(h, p) -> None:
    """Feed a payload's content (with type/shape markers) into a hash."""
    if p is None:
        h.update(b"N")
    elif isinstance(p, np.ndarray):
        h.update(b"A")
        h.update(str(p.dtype).encode())
        h.update(repr(p.shape).encode())
        h.update(np.ascontiguousarray(p).tobytes())
    elif isinstance(p, (bool, int, float, complex,
                        np.integer, np.floating, np.bool_)):
        h.update(b"S")
        h.update(repr(p).encode())
    elif isinstance(p, str):
        h.update(b"T")
        h.update(p.encode())
    elif isinstance(p, bytes):
        h.update(b"B")
        h.update(p)
    elif isinstance(p, (tuple, list)):
        h.update(b"L(" if isinstance(p, list) else b"U(")
        for e in p:
            _digest_into(h, e)
        h.update(b")")
    elif isinstance(p, dict):
        h.update(b"D(")
        for k in p:
            h.update(repr(k).encode())
            _digest_into(h, p[k])
        h.update(b")")
    else:
        h.update(b"O")
        h.update(repr(p).encode())


def _payload_digest(payload) -> bytes:
    """Content hash of a payload (sanitize mode's write-after-send check)."""
    h = hashlib.blake2b(digest_size=16)
    _digest_into(h, payload)
    return h.digest()


class _SanitizeGuard:
    """Send-time snapshot for one posted payload: the *original* object
    (not the simulator's defensive copy) plus its content hash.  Re-hashing
    the original later detects any write the sender made after posting."""

    __slots__ = ("payload", "digest", "src", "dest", "tag", "send_clock")

    def __init__(self, payload, src, dest, tag, send_clock):
        self.payload = payload
        self.digest = _payload_digest(payload)
        self.src = src
        self.dest = dest
        self.tag = tag
        self.send_clock = send_clock


def _corrupt_payload(payload):
    """Deterministically flip one value in a (copied) payload.

    Mutates the first numeric leaf found (depth-first) by scaling and
    shifting it — a visible, finite bit error.  Returns True on success so
    callers know whether anything was actually corruptible.
    """
    if isinstance(payload, np.ndarray):
        if payload.size:
            flat = payload.reshape(-1)
            flat[0] = flat[0] * 1.5 + 1.0
            return True
        return False
    if isinstance(payload, (list, tuple)):
        for p in payload:
            if _corrupt_payload(p):
                return True
        return False
    if isinstance(payload, dict):
        for v in payload.values():
            if _corrupt_payload(v):
                return True
        return False
    return False


class Env:
    """Per-rank handle passed to SPMD programs."""

    def __init__(self, sim: "Simulator", rank: int):
        self._sim = sim
        self.rank = rank
        self.clock = 0.0
        self.busy = 0.0
        self.counter = KernelCounter()
        self.sent_messages = 0
        self.sent_bytes = 0
        self.spans = []

    @property
    def nprocs(self) -> int:
        return self._sim.nprocs

    @property
    def spec(self) -> MachineSpec:
        return self._sim.spec

    @property
    def metrics(self):
        """The run's :class:`repro.obs.MetricsRegistry`, or None when no
        tracer is attached (rank programs use this to count protocol-level
        observations such as ABFT detections)."""
        tr = self._sim.tracer
        return tr.metrics if tr is not None else None

    # -- compute -----------------------------------------------------------

    def compute(self, kernel: str, nflops: float, gran=None) -> None:
        """Charge ``nflops`` at the spec's rate for ``kernel`` operating at
        block granularity ``gran`` (None = nominal rate)."""
        if nflops <= 0:
            return
        dt = self._sim.spec.compute_seconds(kernel, nflops, gran)
        t0 = self.clock
        self.clock += dt
        self.busy += dt
        self.counter.add(kernel, nflops, gran)
        tr = self._sim.tracer
        if tr is not None:
            tr.span(self.rank, kernel, _obs.COMPUTE, t0, self.clock,
                    {"nflops": float(nflops)})

    def compute_counted(self, counter_before: dict) -> None:
        """Charge the *difference* between the rank counter and a snapshot —
        convenient when numeric kernels already did their own accounting."""
        tr = self._sim.tracer
        for key, v in self.counter.by_gran.items():
            prev = counter_before.get(key, 0.0)
            if v > prev:
                kernel, gran = key
                dt = self._sim.spec.compute_seconds(kernel, v - prev, gran)
                t0 = self.clock
                self.clock += dt
                self.busy += dt
                if tr is not None:
                    tr.span(self.rank, kernel, _obs.COMPUTE, t0, self.clock,
                            {"nflops": float(v - prev)})

    def snapshot(self) -> dict:
        return dict(self.counter.by_gran)

    def begin_counted(self):
        """Open a counted-compute window: kernels account into the rank
        counter as usual, and :meth:`end_counted` prices exactly the keys
        touched since — O(touched) instead of the full-tally scan of
        ``snapshot``/``compute_counted``, with bit-identical clock math
        (deltas are replayed in ``by_gran`` insertion order)."""
        c = self.counter
        outer = c._touched
        t = c._touched = {}
        return (outer, t)

    def end_counted(self, window) -> None:
        """Close a :meth:`begin_counted` window and charge its deltas."""
        outer, touched = window
        c = self.counter
        c._touched = outer
        if touched:
            g = c.by_gran
            keys = (
                sorted(touched, key=c._korder.get)
                if len(touched) > 1 else touched
            )
            compute_seconds = self._sim.spec.compute_seconds
            tr = self._sim.tracer
            for key in keys:
                prev = touched[key]
                v = g[key]
                if v > prev:
                    kernel, gran = key
                    dt = compute_seconds(kernel, v - prev, gran)
                    t0 = self.clock
                    self.clock += dt
                    self.busy += dt
                    if tr is not None:
                        tr.span(self.rank, kernel, _obs.COMPUTE, t0,
                                self.clock, {"nflops": float(v - prev)})
            if outer is not None:
                # surface first-touch values to the enclosing window
                for key, prev in touched.items():
                    if key not in outer:
                        outer[key] = prev

    # -- communication -----------------------------------------------------

    def send(self, dest: int, tag, payload, nbytes: int = None) -> None:
        """One-sided put to ``dest``; sender pays the overhead.

        Under a :class:`FaultPlan` the transmission may be dropped,
        duplicated, delayed or corrupted; with :class:`ReliableDelivery`
        enabled a failed attempt is retried (ack/timeout/exponential
        backoff) up to ``max_attempts`` times, after which a typed
        :class:`DeliveryError` is raised.
        """
        sim = self._sim
        if sim._fast_send and dest != self.rank:
            # hot path: no faults, no reliable transport, no tracer, no
            # sanitize guard — same arithmetic as the general path below
            spec = sim.spec
            t_send = self.clock
            self.clock = t_send + spec.latency_s
            if nbytes is None:
                nbytes = _payload_nbytes(payload)
            arrival = self.clock + nbytes / spec.bandwidth_bps
            self.sent_messages += 1
            self.sent_bytes += nbytes
            sim._deposit(
                dest, tag, arrival, self.rank,
                payload if sim.zero_copy else _copy_payload(payload),
                nbytes=nbytes, send_clock=t_send,
            )
            return
        tr = sim.tracer
        guard = (
            _SanitizeGuard(payload, self.rank, dest, tag, self.clock)
            if sim.sanitize else None
        )
        if dest == self.rank:
            # local deposit: no network cost, no faults
            sim._deposit(
                dest, tag, self.clock, self.rank,
                payload if sim.zero_copy else _copy_payload(payload),
                nbytes=0, send_clock=self.clock, guard=guard,
            )
            return
        nbytes = _payload_nbytes(payload) if nbytes is None else nbytes
        spec = sim.spec
        plan = sim.faults
        rel = sim.reliable
        attempts = rel.max_attempts if rel is not None else 1
        logical = None
        for attempt in range(attempts):
            t_send = self.clock
            self.clock += spec.latency_s
            arrival = self.clock + nbytes / spec.bandwidth_bps
            self.sent_messages += 1
            self.sent_bytes += nbytes
            if attempt > 0:
                sim.fault_stats.retransmits += 1
            if tr is not None:
                sim._m_messages.inc()
                sim._m_bytes.inc(nbytes)
                if attempt > 0:
                    sim._m_retransmits.inc()

            rule = (
                plan.message_fault(self.rank, dest, tag, attempt)
                if plan is not None
                else None
            )
            action = rule.action if rule is not None else None
            # zero-copy delivery shares the (certified-frozen) payload; a
            # corruption fault still works on a private copy so the bit
            # flip never reaches the sender's memory
            if sim.zero_copy and action != CORRUPT:
                pay = payload
            else:
                pay = _copy_payload(payload)
            corrupted = False
            if action == CORRUPT:
                corrupted = _corrupt_payload(pay)
                if corrupted:
                    sim.fault_stats.corrupted += 1
                    if tr is not None:
                        tr.metrics.counter("sim.faults.corrupted").inc()
                else:
                    action = None  # nothing numeric to flip: no fault fired
            if action == DELAY:
                arrival += rule.delay_s
                sim.fault_stats.delayed += 1
                if tr is not None:
                    tr.metrics.counter("sim.faults.delayed").inc()
            dropped = action == DROP
            # with checksums, a corrupted frame is discarded at the
            # receiver's NIC — it behaves like a drop and gets retried
            failed = dropped or (corrupted and rel is not None and rel.checksum)
            if dropped:
                sim.fault_stats.dropped += 1
                if tr is not None:
                    tr.metrics.counter("sim.faults.dropped").inc()
            if action is not None:
                # materialise the realised fault as a replayable event
                # (the chaos shrinker minimises this list)
                sim.fault_stats.injected.append(
                    FaultEvent(
                        action, self.rank, int(dest), tag, attempt,
                        delay_s=rule.delay_s if action == DELAY else 0.0,
                    )
                )

            if not failed:
                rec = sim._deposit(
                    dest, tag, arrival, self.rank, pay,
                    nbytes=nbytes, send_clock=t_send,
                    logical=logical, attempt=attempt, corrupted=corrupted,
                    guard=guard,
                )
                if rec is not None and logical is None:
                    logical = rec.seq
                if action == DUPLICATE:
                    sim.fault_stats.duplicated += 1
                    if tr is not None:
                        tr.metrics.counter("sim.faults.duplicated").inc()
                    dup_arrival = arrival + spec.latency_s
                    sim._deposit(
                        dest, tag, dup_arrival, self.rank,
                        pay if sim.zero_copy else _copy_payload(pay),
                        nbytes=nbytes, send_clock=t_send,
                        logical=logical, attempt=attempt, duplicate=True,
                        guard=guard,
                    )
                if rel is not None:
                    # block until the ack returns
                    self.clock = max(self.clock, arrival + rel.ack(spec))
                if tr is not None:
                    tr.span(
                        self.rank, f"send {_obs.tag_label(tag)}", _obs.SEND,
                        t_send, self.clock,
                        {"dest": int(dest), "nbytes": int(nbytes),
                         "attempt": int(attempt)},
                    )
                return

            # failed attempt: record it (dropped, never deposited)
            rec = sim._record_dropped(
                dest, tag, arrival, self.rank,
                nbytes=nbytes, send_clock=t_send,
                logical=logical, attempt=attempt, corrupted=corrupted,
            )
            if rec is not None and logical is None:
                logical = rec.seq
            if tr is not None:
                tr.span(
                    self.rank, f"send {_obs.tag_label(tag)}", _obs.SEND,
                    t_send, self.clock,
                    {"dest": int(dest), "nbytes": int(nbytes),
                     "attempt": int(attempt), "lost": True},
                )
            if rel is None:
                # one-sided put: the sender never learns the message died;
                # remember the loss so a blocked receiver gets a typed
                # MessageLostError instead of a bare DeadlockError
                sim._note_lost(dest, tag, self.rank)
                return
            if attempt + 1 < attempts:
                # retransmission timeout with exponential backoff
                t_back = self.clock
                self.clock += rel.rto(spec) * (2.0 ** attempt)
                if tr is not None:
                    tr.span(
                        self.rank, f"rto {_obs.tag_label(tag)}",
                        _obs.RETRANSMIT, t_back, self.clock,
                        {"dest": int(dest), "attempt": int(attempt)},
                    )
        raise DeliveryError(
            f"rank {self.rank} -> {dest} tag {tag!r}: all {attempts} "
            "transmission attempts lost",
            src=self.rank, dest=dest, tag=tag, attempts=attempts,
        )

    def multicast(self, dests, tag, payload, nbytes: int = None) -> None:
        """Sequential puts to each destination (shmem-style multicast)."""
        if nbytes is None:
            # size the payload once, not once per destination
            nbytes = _payload_nbytes(payload)
        for d in dests:
            if d != self.rank:
                self.send(d, tag, payload, nbytes=nbytes)

    def recv(self, tag, timeout: float = None):
        """Yieldable: block until a message tagged ``tag`` is available.

        With ``timeout`` (virtual seconds) the yield resumes with the
        :data:`TIMEOUT` sentinel once the deadline passes and no matching
        message can arrive — it never raises :class:`DeadlockError`.
        """
        deadline = None if timeout is None else self.clock + float(timeout)
        return _RecvRequest(tag, deadline)

    def barrier(self):
        """Yieldable: global barrier."""
        return _BarrierRequest()

    # -- tracing -----------------------------------------------------------

    def span(self, label: str, start: float, end: float = None) -> None:
        """Record a labeled task interval ending at the current clock."""
        end = self.clock if end is None else end
        self.spans.append(TaskSpan(self.rank, label, start, end))
        tr = self._sim.tracer
        if tr is not None:
            tr.span(self.rank, label, _obs.TASK, start, end)


@dataclass
class SimResult:
    """Outcome of a simulated run."""

    total_time: float
    rank_clocks: list
    rank_busy: list
    counters: list  # per-rank KernelCounter
    spans: list  # all TaskSpans
    messages: int
    bytes_sent: int
    returns: list  # per-rank program return values
    trace: SimTrace = None  # message trace (only when Simulator(trace=True))
    crashed: list = field(default_factory=list)  # ranks dead at exit
    fault_stats: FaultStats = field(default_factory=FaultStats)

    @property
    def nprocs(self) -> int:
        return len(self.rank_clocks)

    def total_counter(self) -> KernelCounter:
        c = KernelCounter()
        for rc in self.counters:
            c.merge(rc)
        return c

    def load_balance_factor(self) -> float:
        """work_total / (P * work_max) over per-rank busy time (Fig. 18)."""
        wmax = max(self.rank_busy)
        if wmax <= 0:
            return 1.0
        return sum(self.rank_busy) / (len(self.rank_busy) * wmax)


class Simulator:
    """Run ``nprocs`` SPMD generator programs under a machine spec."""

    def __init__(
        self,
        nprocs: int,
        spec: MachineSpec,
        program,
        args=(),
        trace: bool = False,
        host_order=None,
        faults=None,
        reliable=None,
        heartbeat_s: float = None,
        sanitize: bool = False,
        tracer=None,
        zero_copy=False,
        scheduler: str = "event",
    ):
        """``program(env, *args)`` must return a generator (it may also be a
        plain function for compute-only ranks).

        ``trace=True`` records a :class:`SimTrace` of every message (attached
        to the result as ``SimResult.trace``) for the :mod:`repro.verify`
        checkers.  ``host_order`` is a permutation of ``range(nprocs)`` that
        perturbs the *host* scheduling order (which runnable rank the event
        loop advances first); simulated semantics must not depend on it —
        the replay checker asserts exactly that.

        ``faults`` is an optional :class:`repro.machine.FaultPlan`;
        ``reliable`` enables the ack/retry transport (pass ``True`` for the
        defaults or a :class:`ReliableDelivery` config).  ``heartbeat_s`` is
        the virtual-time heartbeat timeout after which survivors declare a
        silent rank dead (default: 100x the network latency).

        ``sanitize=True`` enables the zero-copy write-after-send checker:
        every payload is content-hashed when posted and re-verified when
        consumed (and at the end of the run for messages never received);
        a mismatch raises :class:`PayloadMutationError` naming the sender,
        tag and the sender's task span covering the send.  This is the
        dynamic counterpart of the ``Z201`` rule in :mod:`repro.lint`.

        ``tracer`` is an optional :class:`repro.obs.Tracer`; when set, the
        simulator emits virtual-time spans (compute/send/recv_wait/
        retransmit_backoff/barrier_wait + the programs' task spans) and
        matched send→recv messages into it.  When ``None`` (the default)
        every instrumentation site is skipped — tracing has zero cost
        when disabled.

        ``zero_copy`` skips the defensive deep copy at send time — true
        one-sided-put semantics.  That is only sound when the program never
        writes a posted buffer (Z201) and never mutates a received payload
        it retained (Z202), which is exactly what the aliasing lint proves;
        so ``zero_copy=True`` consults the packaged certificate emitted by
        ``repro lint --certify`` and only engages when ``program``'s module
        is certified clean (and its source unchanged since certification).
        Pass a path / :class:`repro.lint.certify.ZeroCopyCertificate` to use
        a different certificate, or the string ``"unchecked"`` to trust the
        caller (tests/benchmarks only).  ``sanitize=True`` always restores
        copying so the dynamic write-after-send checker keeps its
        pre-mutation reference bytes — CI cross-checks zero-copy runs
        bit-for-bit this way.

        ``scheduler`` selects the host event loop: ``"event"`` (default)
        wakes a blocked rank only when a message lands in the mailbox it
        awaits, ``"poll"`` is the legacy round-robin scan.  Both produce
        identical virtual times, span traces and results (the wake set is
        drained in host order, which reproduces the poll loop's service
        order exactly); ``"poll"`` is kept for A/B timing and the
        equivalence tests.
        """
        self.nprocs = nprocs
        self.spec = spec
        self.sanitize = bool(sanitize)
        if scheduler not in ("event", "poll"):
            raise ValueError(f"scheduler must be 'event' or 'poll', got {scheduler!r}")
        self.scheduler = scheduler
        self.tracer = tracer
        if tracer is not None:
            # pre-resolved hot-path counters (one inc per send attempt)
            self._m_messages = tracer.metrics.counter("sim.messages")
            self._m_bytes = tracer.metrics.counter("sim.bytes")
            self._m_retransmits = tracer.metrics.counter("sim.retransmits")
        self._mailboxes = {}  # (dest, tag) -> heap of (arrival, seq, payload)
        self._seq = 0
        self.faults = faults
        self.reliable = (
            ReliableDelivery() if reliable is True else (reliable or None)
        )
        self.heartbeat_s = (
            heartbeat_s if heartbeat_s is not None else 100.0 * spec.latency_s
        )
        self.fault_stats = FaultStats()
        self._lost = {}  # (dest, hashable tag) -> [src, ...] dropped, no retry
        self._crash_time = {}
        if faults is not None:
            for c in faults.crashes:
                if 0 <= c.rank < nprocs:
                    self._crash_time[c.rank] = c.at_time
        self.trace = SimTrace() if trace else None
        if host_order is None:
            self._order = list(range(nprocs))
        else:
            self._order = [int(r) for r in host_order]
            if sorted(self._order) != list(range(nprocs)):
                raise ValueError("host_order must be a permutation of ranks")
        # zero-copy delivery: requested at construction, certified against
        # the lint certificate, but only *effective* per run() — sanitize
        # mode (which the test harness may switch on after construction)
        # always restores copying so the mutation checker keeps honest
        # pre-mutation reference bytes.
        self._zc_requested = bool(zero_copy)
        self._zc_certified = False
        if zero_copy:
            if zero_copy == "unchecked":
                self._zc_certified = True
            else:
                from ..lint.certify import certificate_covers

                self._zc_certified = certificate_covers(
                    getattr(program, "__module__", None),
                    cert=None if zero_copy is True else zero_copy,
                )
        self.zero_copy = False  # effective flag, finalised at run()
        self._fast_send = False  # finalised at run()
        # event-scheduler wake set + run-state views (populated by run();
        # _deposit consults them to wake a rank blocked on the landed tag)
        self._wake = None
        self._state = None
        self._waiting_tag = None
        self.envs = [Env(self, r) for r in range(nprocs)]
        self._programs = [program(self.envs[r], *args) for r in range(nprocs)]

    # -- mailbox -----------------------------------------------------------

    def _deposit(self, dest, tag, arrival, src, payload, nbytes=0, send_clock=0.0,
                 logical=None, attempt=0, duplicate=False, corrupted=False,
                 guard=None):
        self._seq += 1
        record = None
        if self.trace is not None:
            record = MessageRecord(
                seq=self._seq, src=src, dest=dest, tag=tag,
                send_clock=send_clock, arrival=arrival, nbytes=nbytes,
                logical=self._seq if logical is None else logical,
                attempt=attempt, duplicate=duplicate, corrupted=corrupted,
            )
            self.trace.records.append(record)
        key = (dest, tag)
        entry = (arrival, self._seq, payload, src, record, guard,
                 send_clock, nbytes)
        box = self._mailboxes.get(key)
        if box is None:
            # the unique-tag discipline makes one-message boxes the
            # overwhelmingly common case: arrival order is trivially
            # maintained without touching the heap machinery
            self._mailboxes[key] = [entry]
        else:
            heapq.heappush(box, entry)
        if (
            self._wake is not None
            and self._state[dest] == _RECV
            and self._waiting_tag[dest] == tag
        ):
            # event scheduler: the landed message is exactly what the
            # destination's recv awaits — wake it
            self._wake.add(dest)
        return record

    def _record_dropped(self, dest, tag, arrival, src, nbytes=0, send_clock=0.0,
                        logical=None, attempt=0, corrupted=False):
        """Trace a transmission attempt that the network lost."""
        self._seq += 1
        record = None
        if self.trace is not None:
            record = MessageRecord(
                seq=self._seq, src=src, dest=dest, tag=tag,
                send_clock=send_clock, arrival=arrival, nbytes=nbytes,
                logical=self._seq if logical is None else logical,
                attempt=attempt, dropped=True, corrupted=corrupted,
            )
            self.trace.records.append(record)
        return record

    def _note_lost(self, dest, tag, src):
        self._lost.setdefault((dest, repr(tag)), []).append(src)

    def _try_fetch(self, dest, tag):
        box = self._mailboxes.get((dest, tag))
        if box:
            if len(box) == 1:
                (arrival, _, payload, src, record, guard,
                 send_clock, nbytes) = box[0]
                del self._mailboxes[(dest, tag)]
            else:
                (arrival, _, payload, src, record, guard,
                 send_clock, nbytes) = heapq.heappop(box)
            return arrival, payload, record, guard, src, send_clock, nbytes
        return None

    def _pending_by_rank(self) -> dict:
        """Undelivered mailbox contents, grouped per destination rank."""
        pending = {}
        for (dest, tag), box in self._mailboxes.items():
            for entry in sorted(box, key=lambda e: e[:2]):
                pending.setdefault(dest, []).append((tag, entry[0], entry[3]))
        return pending

    # -- sanitize mode -------------------------------------------------------

    def _sending_span(self, src, send_clock):
        """Label of the sender's task span covering ``send_clock``, if any."""
        label = None
        for s in self.envs[src].spans:
            if s.start <= send_clock <= s.end:
                label = s.label  # keep the last (innermost) match
        return label

    def _check_guard(self, guard, record=None, when="it was consumed"):
        """Re-verify a posted payload's content hash; raise on mutation."""
        if guard is None or _payload_digest(guard.payload) == guard.digest:
            return
        if record is not None:
            record.mutated = True
        span = self._sending_span(guard.src, guard.send_clock)
        where = f" during span {span!r}" if span is not None else ""
        raise PayloadMutationError(
            f"rank {guard.src} posted tag {guard.tag!r} to rank "
            f"{guard.dest} at t={guard.send_clock:.3g}{where}, then mutated "
            f"the payload before {when}; zero-copy put semantics forbid "
            "write-after-send (post a defensive .copy())",
            src=guard.src, dest=guard.dest, tag=guard.tag,
            send_clock=guard.send_clock, span=span,
        )

    def _deadlock_error(self, blocked, state, waiting_tag, RECV) -> DeadlockError:
        """Build a DeadlockError naming, per blocked rank, the tag it waits
        on and the undelivered messages parked in its mailbox."""
        pending = self._pending_by_rank()
        blocked_info = []
        lines = []
        for r in blocked:
            what = waiting_tag[r] if state[r] == RECV else "barrier"
            blocked_info.append((r, what))
            if state[r] == RECV:
                desc = f"rank {r} waiting on tag {waiting_tag[r]!r}"
            else:
                desc = f"rank {r} waiting on barrier"
            inbox = pending.get(r, [])
            if inbox:
                shown = ", ".join(
                    f"{tag!r} (from rank {src}, arrival {arrival:.3g})"
                    for tag, arrival, src in inbox[:4]
                )
                more = f", +{len(inbox) - 4} more" if len(inbox) > 4 else ""
                desc += f"; undelivered in its mailbox: {shown}{more}"
            else:
                desc += "; its mailbox is empty"
            lines.append(desc)
        return DeadlockError(
            "simulation deadlock:\n  " + "\n  ".join(lines),
            blocked=blocked_info,
            pending=pending,
        )

    def _crashed_error(self, crashed, blocked, state, waiting_tag, RECV):
        """Survivors' heartbeat timeout expired on a dead rank."""
        crash_times = {r: t for r, t in self.fault_stats.crashes}
        blocked_info = [
            (r, waiting_tag[r] if state[r] == RECV else "barrier")
            for r in blocked
        ]
        t_block = max((self.envs[r].clock for r in blocked), default=0.0)
        detected_at = t_block + self.heartbeat_s
        names = ", ".join(
            f"rank {r} (died at t={crash_times.get(r, 0.0):.3g})" for r in crashed
        )
        waits = "; ".join(
            f"rank {r} waiting on {what!r}" for r, what in blocked_info
        )
        return RankCrashedError(
            f"rank crash detected by heartbeat timeout at t={detected_at:.3g}: "
            f"{names}; survivors blocked: {waits}",
            ranks=crashed,
            crash_times=crash_times,
            detected_at=detected_at,
            blocked=blocked_info,
        )

    def _lost_message_error(self, blocked, state, waiting_tag, RECV):
        """A blocked receiver's awaited message was provably dropped."""
        for r in blocked:
            if state[r] != RECV:
                continue
            srcs = self._lost.get((r, repr(waiting_tag[r])))
            if srcs:
                return MessageLostError(
                    f"rank {r} waits on tag {waiting_tag[r]!r}, but the "
                    f"network dropped that message from rank {srcs[0]} and "
                    "reliable delivery is off (no retransmission will come)",
                    src=srcs[0], dest=r, tag=waiting_tag[r], attempts=1,
                )
        return None

    # -- main loop ---------------------------------------------------------

    def run(self) -> SimResult:
        READY, RECV, BARRIER, DONE, CRASHED = (
            _READY, _RECV, _BARRIER, _DONE, _CRASHED)
        state = self._state = [READY] * self.nprocs
        waiting_tag = self._waiting_tag = [None] * self.nprocs
        waiting_deadline = [None] * self.nprocs
        blocked_at = [0.0] * self.nprocs  # clock when a rank last blocked
        returns = [None] * self.nprocs
        crash_time = dict(self._crash_time)
        tr = self.tracer
        # finalise the delivery mode here, not at construction: the test
        # harness switches sanitize on after constructing the simulator,
        # and sanitize must always restore copying (the mutation checker
        # needs the receiver to hold pre-mutation bytes)
        self.zero_copy = bool(
            self._zc_requested and self._zc_certified and not self.sanitize
        )
        self._fast_send = (
            self.faults is None
            and self.reliable is None
            and self.tracer is None
            and not self.sanitize
        )
        event_mode = self.scheduler == "event"
        wake = self._wake = set() if event_mode else None
        order = self._order
        nord = len(order)
        oidx = {r: i for i, r in enumerate(order)}

        def crash(r, at=None):
            """Kill rank r at its next yield/task boundary."""
            env = self.envs[r]
            if at is not None:
                env.clock = max(env.clock, at)
            if tr is not None and env.clock > blocked_at[r]:
                # the rank died while blocked: close the open wait span so
                # its timeline still tiles [0, clock] (the chaos campaign's
                # trace-consistency oracle checks exactly this)
                if state[r] == RECV:
                    tr.span(
                        r, f"recv {_obs.tag_label(waiting_tag[r])}",
                        _obs.RECV_WAIT, blocked_at[r], env.clock,
                        {"crashed": True},
                    )
                elif state[r] == BARRIER:
                    tr.span(r, "barrier", _obs.BARRIER_WAIT,
                            blocked_at[r], env.clock, {"crashed": True})
            state[r] = CRASHED
            waiting_tag[r] = None
            waiting_deadline[r] = None
            if wake is not None:
                wake.discard(r)
            crash_time.pop(r, None)
            self.fault_stats.crashes.append((r, env.clock))
            gen = self._programs[r]
            if hasattr(gen, "close"):
                gen.close()

        def maybe_crash(r) -> bool:
            """Apply a scheduled crash once the rank's clock reaches it."""
            t = crash_time.get(r)
            if (
                t is not None
                and state[r] not in (DONE, CRASHED)
                and self.envs[r].clock >= t
            ):
                crash(r)
                return True
            return False

        # generator send methods, resolved once (plain functions have none)
        gen_sends = [getattr(g, "send", None) for g in self._programs]
        mailboxes = self._mailboxes
        envs = self.envs

        def resume(r, value=None):
            """Advance rank r's generator until it blocks or finishes."""
            snd = gen_sends[r]
            try:
                if snd is None:
                    # plain function already ran at construction
                    state[r] = DONE
                    return
                req = snd(value)
            except StopIteration as stop:
                state[r] = DONE
                returns[r] = stop.value
                return
            if isinstance(req, _RecvRequest):
                state[r] = RECV
                waiting_tag[r] = req.tag
                waiting_deadline[r] = req.deadline
                blocked_at[r] = envs[r].clock
                if wake is not None and (r, req.tag) in mailboxes:
                    # the awaited message already landed: wake immediately
                    wake.add(r)
            elif isinstance(req, _BarrierRequest):
                state[r] = BARRIER
                blocked_at[r] = envs[r].clock
            else:
                raise TypeError(
                    f"rank {r} yielded {req!r}; yield env.recv(...) or env.barrier()"
                )
            if crash_time:
                maybe_crash(r)

        def service_recv(r) -> bool:
            """Try to satisfy rank r's pending recv.  Returns True when the
            rank made progress (consumed a message, or crashed trying)."""
            tag = waiting_tag[r]
            key = (r, tag)
            box = mailboxes.get(key)
            if not box:
                return False
            env = envs[r]
            arrival = box[0][0]
            if (
                waiting_deadline[r] is not None
                and arrival > waiting_deadline[r]
            ):
                # cannot be satisfied in time; the timeout fires at
                # the quiescent point below (another sender may yet
                # deposit an earlier message)
                return False
            if crash_time:
                ct = crash_time.get(r)
                if ct is not None and max(env.clock, arrival) >= ct:
                    # the rank dies before it could process the message;
                    # leave it undelivered
                    crash(r, at=ct)
                    return True
            # fetch inline (single-entry boxes dominate; see _try_fetch)
            if len(box) == 1:
                (arrival, _, payload, src, record, guard,
                 send_clock, nbytes) = box[0]
                del mailboxes[key]
            else:
                (arrival, _, payload, src, record, guard,
                 send_clock, nbytes) = heapq.heappop(box)
            if guard is not None:
                self._check_guard(guard, record)
            if arrival > env.clock:
                env.clock = arrival
            if record is not None:
                record.consumed = True
                record.recv_time = env.clock
            if tr is not None:
                if env.clock > blocked_at[r]:
                    tr.span(
                        r, f"recv {_obs.tag_label(tag)}",
                        _obs.RECV_WAIT, blocked_at[r], env.clock,
                        {"src": int(src)},
                    )
                tr.message(src, r, tag, send_clock, env.clock,
                           nbytes, arrival)
            state[r] = READY
            waiting_tag[r] = None
            waiting_deadline[r] = None
            resume(r, payload)
            return True

        for r in self._order:
            resume(r)

        while True:
            progressed = False
            # satisfy receivers.  The event scheduler visits only woken
            # ranks (a deposit matching a blocked recv, or a recv posted
            # against a non-empty mailbox) but drains them in host order,
            # so it services the exact sequence the poll scan would —
            # virtual times and span traces are byte-identical.  While a
            # rank is blocked every input of the checks below is frozen
            # (its clock, the box head, deadline, crash time), so poll
            # re-scans between deposits are provably no-ops.
            if event_mode:
                if len(wake) == 1:
                    # overwhelmingly common: a single woken rank.  The host
                    # order scan would visit exactly it, then keep scanning —
                    # servicing may wake later-order ranks the same pass
                    # must also drain (earlier-order wakes carry over to the
                    # next pass, exactly as in the full scan).
                    r = wake.pop()
                    if state[r] == RECV and service_recv(r):
                        progressed = True
                    if wake:
                        for i in range(oidx[r] + 1, nord):
                            rr = order[i]
                            if rr not in wake:
                                continue
                            wake.discard(rr)
                            if state[rr] == RECV and service_recv(rr):
                                progressed = True
                elif wake:
                    for r in order:
                        if r not in wake:
                            continue
                        wake.discard(r)
                        if state[r] == RECV and service_recv(r):
                            progressed = True
            else:
                for r in self._order:
                    if state[r] == RECV and service_recv(r):
                        progressed = True
            if progressed:
                continue
            # barrier: everyone live must be at the barrier
            at_barrier = [r for r in self._order if state[r] == BARRIER]
            live = [r for r in range(self.nprocs) if state[r] not in (DONE, CRASHED)]
            crashed = sorted(r for r in range(self.nprocs) if state[r] == CRASHED)
            if at_barrier and len(at_barrier) == len(live):
                if crashed:
                    # a barrier can never complete once a participant died
                    raise self._crashed_error(crashed, at_barrier, state,
                                              waiting_tag, RECV)
                t = max(self.envs[r].clock for r in at_barrier)
                t += self.spec.barrier_seconds(self.nprocs)
                for r in at_barrier:
                    if tr is not None and t > blocked_at[r]:
                        tr.span(r, "barrier", _obs.BARRIER_WAIT,
                                blocked_at[r], t)
                    self.envs[r].clock = t
                    state[r] = READY
                for r in at_barrier:
                    if state[r] == READY:
                        resume(r)
                continue
            if not live:
                break
            blocked = [r for r in live if state[r] in (RECV, BARRIER)]
            if len(blocked) == len(live):
                # quiescent: no rank can advance on its own.  Fire the
                # earliest virtual-time event — a recv timeout or a
                # scheduled crash of a blocked rank — before declaring
                # failure.  The choice is a min over (time, rank): host
                # scheduling order never matters.
                events = []
                for r in blocked:
                    if state[r] == RECV and waiting_deadline[r] is not None:
                        events.append((waiting_deadline[r], 0, r))
                    if crash_time.get(r) is not None:
                        events.append((crash_time[r], 1, r))
                if events:
                    t, kind, r = min(events)
                    if kind == 1:
                        crash(r, at=t)
                    else:
                        env = self.envs[r]
                        env.clock = max(env.clock, t)
                        if tr is not None and env.clock > blocked_at[r]:
                            tr.span(
                                r, f"recv {_obs.tag_label(waiting_tag[r])}",
                                _obs.RECV_WAIT, blocked_at[r], env.clock,
                                {"timeout": True},
                            )
                        state[r] = READY
                        waiting_tag[r] = None
                        waiting_deadline[r] = None
                        resume(r, TIMEOUT)
                    continue
                if crashed:
                    raise self._crashed_error(crashed, blocked, state,
                                              waiting_tag, RECV)
                lost = self._lost_message_error(blocked, state, waiting_tag, RECV)
                if lost is not None:
                    raise lost
                raise self._deadlock_error(blocked, state, waiting_tag, RECV)
            # should not happen: READY ranks are resumed inside resume()
            raise AssertionError("scheduler invariant violated")

        if self.sanitize:
            # messages never received: still verify the sender kept its
            # hands off the posted buffers until the end of the run
            for box in self._mailboxes.values():
                for entry in box:
                    self._check_guard(entry[5], entry[4],
                                      when="the run ended")
        spans = []
        for env in self.envs:
            spans.extend(env.spans)
        return SimResult(
            trace=self.trace,
            total_time=max(env.clock for env in self.envs) if self.envs else 0.0,
            rank_clocks=[env.clock for env in self.envs],
            rank_busy=[env.busy for env in self.envs],
            counters=[env.counter for env in self.envs],
            spans=spans,
            messages=sum(env.sent_messages for env in self.envs),
            bytes_sent=sum(env.sent_bytes for env in self.envs),
            returns=returns,
            crashed=sorted(r for r in range(self.nprocs) if state[r] == CRASHED),
            fault_stats=self.fault_stats,
        )
