"""Deterministic discrete-event SPMD simulator.

Each rank is a Python **generator**: ordinary Python between yields runs the
real numerics; ``compute``/``send`` advance the rank's *virtual clock*
immediately, while ``recv`` and ``barrier`` yield control back to the
scheduler until they can be satisfied.  Message arrival times are computed
from the sender's clock with the machine spec's latency/bandwidth model, so
timing is causally correct no matter in which host order ranks execute.

Semantics (matching the shmem/RMA style the paper's codes rely on):

* ``send`` is asynchronous one-sided put: the sender pays the per-message
  overhead, the payload is deposited in the receiver's mailbox at
  ``sender_clock + latency + bytes/bandwidth``;
* ``recv(tag)`` blocks until a matching message exists and resumes at
  ``max(local_clock, arrival)``; payloads are deep-copied at send time so
  ranks never alias each other's memory;
* tags must uniquely identify a logical transfer (step/stage/source); the
  parallel codes in :mod:`repro.parallel` follow this discipline;
* ``barrier`` synchronises all ranks at ``max(clocks) + barrier cost``.

The simulator records per-rank busy time, message counts/bytes, and labeled
task spans (used for Gantt charts, load-balance factors and the Theorem 2
overlap-degree measurements).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..numfact.counter import KernelCounter
from .specs import MachineSpec


class DeadlockError(RuntimeError):
    """All ranks are blocked and no message can satisfy any of them.

    Structured attributes (for tooling, e.g. :mod:`repro.verify`):

    * ``blocked`` — list of ``(rank, what)`` where ``what`` is the tag the
      rank's ``recv`` is waiting on, or the string ``"barrier"``;
    * ``pending`` — ``{rank: [(tag, arrival, src), ...]}`` of messages
      sitting undelivered in each blocked rank's mailbox (the tags the
      rank *could* have received instead — usually the smoking gun of a
      tag mismatch).
    """

    def __init__(self, message, blocked=None, pending=None):
        super().__init__(message)
        self.blocked = blocked or []
        self.pending = pending or {}


@dataclass
class TaskSpan:
    """A labeled interval of work on one rank (for Gantt/overlap analysis)."""

    rank: int
    label: str
    start: float
    end: float


@dataclass
class MessageRecord:
    """One message in a :class:`SimTrace` (send-ordered)."""

    seq: int
    src: int
    dest: int
    tag: object
    send_clock: float  # sender clock when the send was issued
    arrival: float  # when the payload lands in the destination mailbox
    nbytes: int
    recv_time: float = None  # receiver clock at consumption (None = never)
    consumed: bool = False


@dataclass
class SimTrace:
    """Message-level trace of one simulated run (``Simulator(trace=True)``)."""

    records: list = field(default_factory=list)

    def undelivered(self) -> list:
        """Messages deposited but never received (mailbox leaks)."""
        return [r for r in self.records if not r.consumed]

    def by_src(self) -> dict:
        """Records grouped per sender, preserving each sender's send order
        (the host-scheduling-independent view used by the replay checker)."""
        out = {}
        for r in self.records:
            out.setdefault(r.src, []).append(r)
        return out


class _RecvRequest:
    __slots__ = ("tag",)

    def __init__(self, tag):
        self.tag = tag


class _BarrierRequest:
    __slots__ = ()


def _payload_nbytes(payload) -> int:
    """Estimate the wire size of a payload (ndarray-aware, recursive)."""
    if payload is None:
        return 8
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(payload, (tuple, list)):
        return 16 + sum(_payload_nbytes(p) for p in payload)
    if isinstance(payload, dict):
        return 16 + sum(8 + _payload_nbytes(v) for v in payload.values())
    if isinstance(payload, str):
        return len(payload)
    return 64


def _copy_payload(payload):
    """Deep-copy the ndarray parts of a payload (no aliasing across ranks)."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, tuple):
        return tuple(_copy_payload(p) for p in payload)
    if isinstance(payload, list):
        return [_copy_payload(p) for p in payload]
    if isinstance(payload, dict):
        return {k: _copy_payload(v) for k, v in payload.items()}
    return payload


class Env:
    """Per-rank handle passed to SPMD programs."""

    def __init__(self, sim: "Simulator", rank: int):
        self._sim = sim
        self.rank = rank
        self.clock = 0.0
        self.busy = 0.0
        self.counter = KernelCounter()
        self.sent_messages = 0
        self.sent_bytes = 0
        self.spans = []

    @property
    def nprocs(self) -> int:
        return self._sim.nprocs

    @property
    def spec(self) -> MachineSpec:
        return self._sim.spec

    # -- compute -----------------------------------------------------------

    def compute(self, kernel: str, nflops: float, gran=None) -> None:
        """Charge ``nflops`` at the spec's rate for ``kernel`` operating at
        block granularity ``gran`` (None = nominal rate)."""
        if nflops <= 0:
            return
        dt = self._sim.spec.compute_seconds(kernel, nflops, gran)
        self.clock += dt
        self.busy += dt
        self.counter.add(kernel, nflops, gran)

    def compute_counted(self, counter_before: dict) -> None:
        """Charge the *difference* between the rank counter and a snapshot —
        convenient when numeric kernels already did their own accounting."""
        for key, v in self.counter.by_gran.items():
            prev = counter_before.get(key, 0.0)
            if v > prev:
                kernel, gran = key
                dt = self._sim.spec.compute_seconds(kernel, v - prev, gran)
                self.clock += dt
                self.busy += dt

    def snapshot(self) -> dict:
        return dict(self.counter.by_gran)

    # -- communication -----------------------------------------------------

    def send(self, dest: int, tag, payload, nbytes: int = None) -> None:
        """One-sided put to ``dest``; sender pays the overhead."""
        if dest == self.rank:
            # local deposit: no network cost
            self._sim._deposit(
                dest, tag, self.clock, self.rank, _copy_payload(payload),
                nbytes=0, send_clock=self.clock,
            )
            return
        nbytes = _payload_nbytes(payload) if nbytes is None else nbytes
        spec = self._sim.spec
        t_send = self.clock
        self.clock += spec.latency_s
        arrival = self.clock + nbytes / spec.bandwidth_bps
        self.sent_messages += 1
        self.sent_bytes += nbytes
        self._sim._deposit(
            dest, tag, arrival, self.rank, _copy_payload(payload),
            nbytes=nbytes, send_clock=t_send,
        )

    def multicast(self, dests, tag, payload, nbytes: int = None) -> None:
        """Sequential puts to each destination (shmem-style multicast)."""
        for d in dests:
            if d != self.rank:
                self.send(d, tag, payload, nbytes=nbytes)

    def recv(self, tag):
        """Yieldable: block until a message tagged ``tag`` is available."""
        return _RecvRequest(tag)

    def barrier(self):
        """Yieldable: global barrier."""
        return _BarrierRequest()

    # -- tracing -----------------------------------------------------------

    def span(self, label: str, start: float, end: float = None) -> None:
        """Record a labeled task interval ending at the current clock."""
        self.spans.append(
            TaskSpan(self.rank, label, start, self.clock if end is None else end)
        )


@dataclass
class SimResult:
    """Outcome of a simulated run."""

    total_time: float
    rank_clocks: list
    rank_busy: list
    counters: list  # per-rank KernelCounter
    spans: list  # all TaskSpans
    messages: int
    bytes_sent: int
    returns: list  # per-rank program return values
    trace: SimTrace = None  # message trace (only when Simulator(trace=True))

    @property
    def nprocs(self) -> int:
        return len(self.rank_clocks)

    def total_counter(self) -> KernelCounter:
        c = KernelCounter()
        for rc in self.counters:
            c.merge(rc)
        return c

    def load_balance_factor(self) -> float:
        """work_total / (P * work_max) over per-rank busy time (Fig. 18)."""
        wmax = max(self.rank_busy)
        if wmax <= 0:
            return 1.0
        return sum(self.rank_busy) / (len(self.rank_busy) * wmax)


class Simulator:
    """Run ``nprocs`` SPMD generator programs under a machine spec."""

    def __init__(
        self,
        nprocs: int,
        spec: MachineSpec,
        program,
        args=(),
        trace: bool = False,
        host_order=None,
    ):
        """``program(env, *args)`` must return a generator (it may also be a
        plain function for compute-only ranks).

        ``trace=True`` records a :class:`SimTrace` of every message (attached
        to the result as ``SimResult.trace``) for the :mod:`repro.verify`
        checkers.  ``host_order`` is a permutation of ``range(nprocs)`` that
        perturbs the *host* scheduling order (which runnable rank the event
        loop advances first); simulated semantics must not depend on it —
        the replay checker asserts exactly that.
        """
        self.nprocs = nprocs
        self.spec = spec
        self._mailboxes = {}  # (dest, tag) -> heap of (arrival, seq, payload)
        self._seq = 0
        self.trace = SimTrace() if trace else None
        if host_order is None:
            self._order = list(range(nprocs))
        else:
            self._order = [int(r) for r in host_order]
            if sorted(self._order) != list(range(nprocs)):
                raise ValueError("host_order must be a permutation of ranks")
        self.envs = [Env(self, r) for r in range(nprocs)]
        self._programs = [program(self.envs[r], *args) for r in range(nprocs)]

    # -- mailbox -----------------------------------------------------------

    def _deposit(self, dest, tag, arrival, src, payload, nbytes=0, send_clock=0.0):
        self._seq += 1
        record = None
        if self.trace is not None:
            record = MessageRecord(
                seq=self._seq, src=src, dest=dest, tag=tag,
                send_clock=send_clock, arrival=arrival, nbytes=nbytes,
            )
            self.trace.records.append(record)
        heapq.heappush(
            self._mailboxes.setdefault((dest, tag), []),
            (arrival, self._seq, payload, src, record),
        )

    def _try_fetch(self, dest, tag):
        box = self._mailboxes.get((dest, tag))
        if box:
            arrival, _, payload, _, record = heapq.heappop(box)
            if not box:
                del self._mailboxes[(dest, tag)]
            return arrival, payload, record
        return None

    def _pending_by_rank(self) -> dict:
        """Undelivered mailbox contents, grouped per destination rank."""
        pending = {}
        for (dest, tag), box in self._mailboxes.items():
            for arrival, _, _, src, _ in sorted(box, key=lambda e: e[:2]):
                pending.setdefault(dest, []).append((tag, arrival, src))
        return pending

    def _deadlock_error(self, blocked, state, waiting_tag, RECV) -> DeadlockError:
        """Build a DeadlockError naming, per blocked rank, the tag it waits
        on and the undelivered messages parked in its mailbox."""
        pending = self._pending_by_rank()
        blocked_info = []
        lines = []
        for r in blocked:
            what = waiting_tag[r] if state[r] == RECV else "barrier"
            blocked_info.append((r, what))
            if state[r] == RECV:
                desc = f"rank {r} waiting on tag {waiting_tag[r]!r}"
            else:
                desc = f"rank {r} waiting on barrier"
            inbox = pending.get(r, [])
            if inbox:
                shown = ", ".join(
                    f"{tag!r} (from rank {src}, arrival {arrival:.3g})"
                    for tag, arrival, src in inbox[:4]
                )
                more = f", +{len(inbox) - 4} more" if len(inbox) > 4 else ""
                desc += f"; undelivered in its mailbox: {shown}{more}"
            else:
                desc += "; its mailbox is empty"
            lines.append(desc)
        return DeadlockError(
            "simulation deadlock:\n  " + "\n  ".join(lines),
            blocked=blocked_info,
            pending=pending,
        )

    # -- main loop ---------------------------------------------------------

    def run(self) -> SimResult:
        READY, RECV, BARRIER, DONE = 0, 1, 2, 3
        state = [READY] * self.nprocs
        waiting_tag = [None] * self.nprocs
        returns = [None] * self.nprocs

        def resume(r, value=None):
            """Advance rank r's generator until it blocks or finishes."""
            gen = self._programs[r]
            try:
                if not hasattr(gen, "send"):
                    # plain function already ran at construction
                    state[r] = DONE
                    return
                req = gen.send(value)
            except StopIteration as stop:
                state[r] = DONE
                returns[r] = stop.value
                return
            if isinstance(req, _RecvRequest):
                state[r] = RECV
                waiting_tag[r] = req.tag
            elif isinstance(req, _BarrierRequest):
                state[r] = BARRIER
            else:
                raise TypeError(
                    f"rank {r} yielded {req!r}; yield env.recv(...) or env.barrier()"
                )

        for r in self._order:
            resume(r)

        while True:
            progressed = False
            # satisfy receivers
            for r in self._order:
                if state[r] == RECV:
                    got = self._try_fetch(r, waiting_tag[r])
                    if got is not None:
                        arrival, payload, record = got
                        env = self.envs[r]
                        env.clock = max(env.clock, arrival)
                        if record is not None:
                            record.consumed = True
                            record.recv_time = env.clock
                        state[r] = READY
                        waiting_tag[r] = None
                        resume(r, payload)
                        progressed = True
            if progressed:
                continue
            # barrier: everyone not DONE must be at the barrier
            at_barrier = [r for r in self._order if state[r] == BARRIER]
            live = [r for r in range(self.nprocs) if state[r] != DONE]
            if at_barrier and len(at_barrier) == len(live):
                t = max(self.envs[r].clock for r in at_barrier)
                t += self.spec.barrier_seconds(self.nprocs)
                for r in at_barrier:
                    self.envs[r].clock = t
                    state[r] = READY
                for r in at_barrier:
                    resume(r)
                continue
            if not live:
                break
            blocked = [r for r in live if state[r] in (RECV, BARRIER)]
            if len(blocked) == len(live):
                raise self._deadlock_error(blocked, state, waiting_tag, RECV)
            # should not happen: READY ranks are resumed inside resume()
            raise AssertionError("scheduler invariant violated")

        spans = []
        for env in self.envs:
            spans.extend(env.spans)
        return SimResult(
            trace=self.trace,
            total_time=max(env.clock for env in self.envs) if self.envs else 0.0,
            rank_clocks=[env.clock for env in self.envs],
            rank_busy=[env.busy for env in self.envs],
            counters=[env.counter for env in self.envs],
            spans=spans,
            messages=sum(env.sent_messages for env in self.envs),
            bytes_sent=sum(env.sent_bytes for env in self.envs),
            returns=returns,
        )
