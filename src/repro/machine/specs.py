"""Machine cost models calibrated from the paper (Section 6).

Published figures used for calibration:

Cray T3D
    DGEMM 103 MFLOPS, DGEMV 85 MFLOPS (block size 25, in cache);
    shmem_put: 126 MB/s bandwidth, 2.7 us overhead.
Cray T3E
    DGEMM 388 MFLOPS, DGEMV 255 MFLOPS (block size 25);
    peak 500 MB/s inter-node bandwidth, 0.5-2 us round-trip latency
    (we use 1 us one-way).

BLAS-1 work (scaling, pivot search) is priced slightly below the DGEMV
rate, reflecting its lower cache reuse.
"""

from __future__ import annotations

from dataclasses import dataclass


#: surface-to-volume half-width per kernel class: a kernel operating on
#: blocks of width g runs at peak * (g / (g + half)) / (ref / (ref + half)),
#: normalised so the paper's published rates hold at the reference block
#: size 25.  DGEMM gains the most from wide blocks (cache reuse grows with
#: the inner dimension); DGEMV a little; BLAS-1 is streaming either way.
GRAN_HALF = {"dgemm": 8.0, "dgemv": 2.0, "blas1": 0.0}
REF_GRAN = 25.0


@dataclass(frozen=True)
class MachineSpec:
    """Per-kernel compute rates and a latency/bandwidth network model.

    Kernel rates are the paper's measured numbers at block size 25; the
    granularity-efficiency curve (``GRAN_HALF``) scales them down for
    narrower blocks, modelling the cache behaviour that makes supernode
    amalgamation pay off (Section 3.3).
    """

    name: str
    dgemm_mflops: float
    dgemv_mflops: float
    blas1_mflops: float
    latency_s: float  # per-message send overhead / latency
    bandwidth_bps: float  # bytes per second
    barrier_factor: float = 2.0  # barrier cost = factor * latency * log2(p)

    def __post_init__(self):
        # (kernel, gran) -> flops/s memo; the efficiency curve is pure, so
        # each pair is priced once per spec instance (the simulator prices
        # every compute span through here — it is a host hot path)
        object.__setattr__(self, "_rate_cache", {})

    def efficiency(self, kernel: str, gran) -> float:
        """Granularity efficiency relative to the reference block size."""
        if gran is None:
            return 1.0
        half = GRAN_HALF.get(kernel, 0.0)
        if half <= 0.0:
            return 1.0
        g = max(float(gran), 1.0)
        return (g / (g + half)) / (REF_GRAN / (REF_GRAN + half))

    def kernel_rate(self, kernel: str, gran=None) -> float:
        """Flops/second for a kernel class at block granularity ``gran``
        (None = the nominal, block-25 rate)."""
        try:
            return self._rate_cache[(kernel, gran)]
        except KeyError:
            pass
        rates = {
            "dgemm": self.dgemm_mflops,
            "dgemv": self.dgemv_mflops,
            "blas1": self.blas1_mflops,
        }
        rate = rates[kernel] * 1e6 * self.efficiency(kernel, gran)
        self._rate_cache[(kernel, gran)] = rate
        return rate

    def kernel_seconds(self, flops_by_kernel: dict) -> float:
        """Seconds to execute a tally keyed either by kernel name or by
        ``(kernel, granularity)`` pairs (KernelCounter's ``by_gran``)."""
        total = 0.0
        for key, fl in flops_by_kernel.items():
            if isinstance(key, tuple):
                kernel, gran = key
            else:
                kernel, gran = key, None
            total += fl / self.kernel_rate(kernel, gran)
        return total

    def compute_seconds(self, kernel: str, nflops: float, gran=None) -> float:
        return nflops / self.kernel_rate(kernel, gran)

    def message_seconds(self, nbytes: float) -> float:
        """In-flight time of one message."""
        return self.latency_s + nbytes / self.bandwidth_bps

    def barrier_seconds(self, nprocs: int) -> float:
        import math

        return self.barrier_factor * self.latency_s * max(1.0, math.log2(max(nprocs, 2)))


T3D = MachineSpec(
    name="T3D",
    dgemm_mflops=103.0,
    dgemv_mflops=85.0,
    blas1_mflops=60.0,
    latency_s=2.7e-6,
    bandwidth_bps=126e6,
)

T3E = MachineSpec(
    name="T3E",
    dgemm_mflops=388.0,
    dgemv_mflops=255.0,
    blas1_mflops=180.0,
    latency_s=1.0e-6,
    bandwidth_bps=500e6,
)

#: A neutral modern-ish machine for examples (not used by the paper benches).
GENERIC = MachineSpec(
    name="GENERIC",
    dgemm_mflops=2000.0,
    dgemv_mflops=600.0,
    blas1_mflops=400.0,
    latency_s=2.0e-6,
    bandwidth_bps=1e9,
)
