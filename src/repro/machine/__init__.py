"""Simulated distributed-memory machine.

The paper ran on Cray T3D and T3E.  Offline Python cannot drive real MPI
hardware at the fine message granularity the asynchronous S* codes need
(see DESIGN.md), so this package provides a deterministic **discrete-event
SPMD simulator**: ranks are Python generators that execute the *real*
numerics; compute and communication advance per-rank virtual clocks priced
by a :class:`MachineSpec` calibrated to the paper's published kernel and
network figures.

:mod:`faults` adds deterministic fault injection (message drop/duplicate/
delay/corrupt, rank crashes) and the opt-in reliable-delivery transport;
see DESIGN.md "Resilience".
"""

from .specs import MachineSpec, T3D, T3E, GENERIC
from .faults import (
    FaultPlan,
    MessageFaultRule,
    CrashFault,
    ReliableDelivery,
    FaultStats,
)
from .simulator import (
    Simulator,
    Env,
    SimResult,
    SimTrace,
    MessageRecord,
    DeadlockError,
    DeliveryError,
    MessageLostError,
    PayloadMutationError,
    RankCrashedError,
    Timeout,
    TIMEOUT,
    TaskSpan,
)

__all__ = [
    "MachineSpec",
    "T3D",
    "T3E",
    "GENERIC",
    "FaultPlan",
    "MessageFaultRule",
    "CrashFault",
    "ReliableDelivery",
    "FaultStats",
    "Simulator",
    "Env",
    "SimResult",
    "SimTrace",
    "MessageRecord",
    "DeadlockError",
    "DeliveryError",
    "MessageLostError",
    "PayloadMutationError",
    "RankCrashedError",
    "Timeout",
    "TIMEOUT",
    "TaskSpan",
]
