"""Deterministic, seedable fault injection for the SPMD simulator.

A :class:`FaultPlan` describes which messages misbehave (drop, duplicate,
delay, corrupt) and which ranks crash, in a way that is **replayable**: the
decision for a message depends only on the plan's seed and the message's
identity ``(src, dest, tag, attempt)`` — never on host scheduling order or
on how many messages happened to be sent before it.  Re-running the same
program under a permuted ``host_order`` therefore sees the *same* faults,
which keeps :mod:`repro.verify.replay` bit-identical on faulty runs.

Message rules match by source/destination rank and by tag prefix (tags in
the parallel codes are tuples like ``("col", k)`` or ``("lcol", K)``), each
with an independent per-attempt probability.  Crash faults kill one rank at
a virtual time; the simulator applies them at yield (task) boundaries.

Besides probabilistic rules a plan may carry explicit **events**
(:class:`FaultEvent`): one action pinned to one exact transmission
``(src, dest, tag, attempt)``.  Events are what the chaos shrinker
(:mod:`repro.chaos.shrink`) manipulates — a failing probabilistic run is
first *materialised* into the event list of faults that actually fired
(``FaultStats.injected``), and delta debugging then minimises that list.

Plans serialize to/from JSON so the CLI can replay a fault scenario from a
file (``repro solve --faults plan.json``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

DROP = "drop"
DUPLICATE = "duplicate"
DELAY = "delay"
CORRUPT = "corrupt"
_ACTIONS = (DROP, DUPLICATE, DELAY, CORRUPT)


def _uniform(*key) -> float:
    """Deterministic uniform in [0, 1) from a stable hash of ``key``.

    Uses sha256 (not Python's randomized ``hash``) so decisions are stable
    across processes and host scheduling orders.
    """
    h = hashlib.sha256(repr(key).encode()).digest()
    return int.from_bytes(h[:7], "big") / float(1 << 56)


@dataclass(frozen=True)
class MessageFaultRule:
    """One message-fault rule: ``action`` applied with probability ``rate``
    to messages matching the (src, dest, tag-prefix) predicates."""

    action: str
    rate: float = 1.0
    src: int = None  # None = any source rank
    dest: int = None  # None = any destination rank
    tag_prefix: tuple = None  # None = any tag; else tag[:len(prefix)] match
    delay_s: float = 0.0  # extra arrival delay for DELAY rules

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")

    def matches(self, src: int, dest: int, tag) -> bool:
        if self.src is not None and src != self.src:
            return False
        if self.dest is not None and dest != self.dest:
            return False
        if self.tag_prefix is not None:
            pre = self.tag_prefix
            if isinstance(tag, tuple):
                if tuple(tag[: len(pre)]) != tuple(pre):
                    return False
            elif len(pre) != 1 or tag != pre[0]:
                return False
        return True


def _tag_from_json(tag):
    """Tags round-trip through JSON as lists; restore the tuple form."""
    if isinstance(tag, list):
        return tuple(tag)
    return tag


@dataclass(frozen=True)
class FaultEvent:
    """One action pinned to one exact transmission attempt.

    Unlike a :class:`MessageFaultRule` (probabilistic, prefix-matched) an
    event fires deterministically on the single message identified by
    ``(src, dest, tag, attempt)`` and on nothing else — the minimal unit
    the chaos shrinker adds and removes.
    """

    action: str
    src: int
    dest: int
    tag: tuple
    attempt: int = 0
    delay_s: float = 0.0  # extra arrival delay for DELAY events

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        # lists sneak in via JSON; normalise so matching stays exact
        object.__setattr__(self, "tag", _tag_from_json(self.tag))

    def matches(self, src: int, dest: int, tag, attempt: int) -> bool:
        return (
            src == self.src
            and dest == self.dest
            and attempt == self.attempt
            and tag == self.tag
        )

    def key(self) -> tuple:
        """Canonical ordering key (shrinker output is sorted by this)."""
        return (self.src, self.dest, repr(self.tag), self.attempt, self.action)

    def to_dict(self) -> dict:
        return {
            "action": self.action,
            "src": self.src,
            "dest": self.dest,
            "tag": list(self.tag) if isinstance(self.tag, tuple) else self.tag,
            "attempt": self.attempt,
            "delay_s": self.delay_s,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultEvent":
        return cls(
            d["action"],
            src=d["src"],
            dest=d["dest"],
            tag=_tag_from_json(d["tag"]),
            attempt=d.get("attempt", 0),
            delay_s=d.get("delay_s", 0.0),
        )


@dataclass(frozen=True)
class CrashFault:
    """Rank ``rank`` dies at virtual time ``at_time`` (applied at the next
    yield/task boundary the rank reaches at or after that time)."""

    rank: int
    at_time: float


class FaultPlan:
    """A replayable set of message faults and rank crashes."""

    def __init__(self, rules=(), crashes=(), seed: int = 0, events=()):
        self.rules = list(rules)
        self.crashes = list(crashes)
        self.events = list(events)
        self.seed = int(seed)
        ranks = [c.rank for c in self.crashes]
        if len(set(ranks)) != len(ranks):
            raise ValueError("at most one crash per rank")

    # -- construction helpers ----------------------------------------------

    @classmethod
    def drops(cls, rate: float, seed: int = 0, **match) -> "FaultPlan":
        """Uniformly drop a fraction ``rate`` of matching messages."""
        return cls([MessageFaultRule(DROP, rate=rate, **match)], seed=seed)

    def with_crash(self, rank: int, at_time: float) -> "FaultPlan":
        return FaultPlan(
            self.rules, self.crashes + [CrashFault(rank, at_time)], self.seed,
            events=self.events,
        )

    # -- message decisions -------------------------------------------------

    def message_fault(self, src, dest, tag, attempt: int = 0):
        """The rule or event (or None) afflicting this transmission attempt.

        Explicit events are consulted first (exact match, deterministic);
        otherwise the probabilistic rules apply.  A rule decision hashes
        ``(seed, rule#, src, dest, tag, attempt)`` — independent per
        message and per retry attempt, so retransmissions get fresh coin
        flips and host order never changes the outcome.
        """
        for ev in self.events:
            if ev.matches(src, dest, tag, attempt):
                return ev
        for i, rule in enumerate(self.rules):
            if not rule.matches(src, dest, tag):
                continue
            if rule.rate >= 1.0 or _uniform(
                self.seed, i, src, dest, repr(tag), attempt
            ) < rule.rate:
                return rule
        return None

    # -- crash decisions ---------------------------------------------------

    def crash_time(self, rank: int):
        """Virtual crash time for ``rank`` or None."""
        for c in self.crashes:
            if c.rank == rank:
                return c.at_time
        return None

    # -- recovery-time rewrites -------------------------------------------

    def after_crash(self, rank: int, elapsed: float = 0.0) -> "FaultPlan":
        """The plan as seen by a restarted run on the surviving ranks.

        The crashed rank's entry is removed, surviving ranks above it are
        renumbered down by one (process-grid shrinking), and remaining crash
        times shift by the virtual time already ``elapsed``.
        """

        def remap(r):
            if r is None:
                return None
            return r - 1 if r > rank else r

        rules = []
        for rule in self.rules:
            if rule.src == rank or rule.dest == rank:
                continue
            rules.append(
                MessageFaultRule(
                    rule.action, rule.rate, remap(rule.src), remap(rule.dest),
                    rule.tag_prefix, rule.delay_s,
                )
            )
        crashes = [
            CrashFault(remap(c.rank), max(c.at_time - elapsed, 0.0))
            for c in self.crashes
            if c.rank != rank
        ]
        events = []
        for ev in self.events:
            if ev.src == rank or ev.dest == rank:
                continue
            events.append(
                FaultEvent(ev.action, remap(ev.src), remap(ev.dest), ev.tag,
                           ev.attempt, ev.delay_s)
            )
        return FaultPlan(rules, crashes, self.seed, events=events)

    def shifted(self, elapsed: float) -> "FaultPlan":
        """The plan with crash times advanced by ``elapsed`` virtual seconds
        (for drivers that split one logical run into several simulations).
        A crash whose time already passed fires immediately (time 0)."""
        crashes = [
            CrashFault(c.rank, max(c.at_time - elapsed, 0.0))
            for c in self.crashes
        ]
        return FaultPlan(self.rules, crashes, self.seed, events=self.events)

    def without_corrupt(self) -> "FaultPlan":
        """The plan minus every CORRUPT rule and event.

        Recovery drivers re-run a window after ABFT flags silent
        corruption; the transient-SDC model (matching the clean-network
        retry in :mod:`repro.service`) says the same bits do not flip again
        on the retry, so the corrupting faults are stripped."""
        return FaultPlan(
            [r for r in self.rules if r.action != CORRUPT],
            self.crashes,
            self.seed,
            events=[e for e in self.events if e.action != CORRUPT],
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rules": [
                {
                    "action": r.action,
                    "rate": r.rate,
                    "src": r.src,
                    "dest": r.dest,
                    "tag_prefix": list(r.tag_prefix) if r.tag_prefix else None,
                    "delay_s": r.delay_s,
                }
                for r in self.rules
            ],
            "crashes": [
                {"rank": c.rank, "at_time": c.at_time} for c in self.crashes
            ],
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        rules = [
            MessageFaultRule(
                r["action"],
                rate=r.get("rate", 1.0),
                src=r.get("src"),
                dest=r.get("dest"),
                tag_prefix=tuple(r["tag_prefix"]) if r.get("tag_prefix") else None,
                delay_s=r.get("delay_s", 0.0),
            )
            for r in d.get("rules", ())
        ]
        crashes = [
            CrashFault(c["rank"], c["at_time"]) for c in d.get("crashes", ())
        ]
        events = [FaultEvent.from_dict(e) for e in d.get("events", ())]
        return cls(rules, crashes, seed=d.get("seed", 0), events=events)

    def to_json(self, path=None) -> str:
        text = json.dumps(self.to_dict(), indent=2)
        if path is not None:
            with open(path, "w") as f:
                f.write(text + "\n")
        return text

    @classmethod
    def from_json(cls, source) -> "FaultPlan":
        """Parse a plan from a JSON string or a file path."""
        if "\n" not in source and "{" not in source:
            with open(source) as f:
                source = f.read()
        return cls.from_dict(json.loads(source))

    def __repr__(self):
        return (
            f"FaultPlan(rules={len(self.rules)}, crashes={len(self.crashes)}, "
            f"events={len(self.events)}, seed={self.seed})"
        )


@dataclass(frozen=True)
class ReliableDelivery:
    """Opt-in ack/timeout/retry transport for :class:`repro.machine.Env`.

    Each logical send is attempted up to ``max_attempts`` times.  A failed
    attempt (dropped, or corrupted when ``checksum`` is on) costs the sender
    the retransmission timeout ``rto_s * 2**attempt`` of virtual time before
    the next try; a successful attempt blocks the sender until the ack
    returns (``ack_s`` after arrival).  ``rto_s``/``ack_s`` default to
    4x / 1x the machine latency.  All attempts share one logical sequence
    number so the trace checker can tell retransmits from tag reuse.
    """

    max_attempts: int = 5
    rto_s: float = None
    ack_s: float = None
    checksum: bool = True

    def rto(self, spec) -> float:
        return self.rto_s if self.rto_s is not None else 4.0 * spec.latency_s

    def ack(self, spec) -> float:
        return self.ack_s if self.ack_s is not None else spec.latency_s


@dataclass
class FaultStats:
    """Per-run tally of injected faults and protocol activity."""

    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    corrupted: int = 0
    retransmits: int = 0
    crashes: list = field(default_factory=list)  # (rank, at_clock)
    #: every message fault that actually fired, as replayable
    #: :class:`FaultEvent` records — the raw material the chaos shrinker
    #: turns a probabilistic failing run into an explicit schedule from
    injected: list = field(default_factory=list)

    def total_injected(self) -> int:
        return self.dropped + self.duplicated + self.delayed + self.corrupted

    def injected_events(self) -> list:
        """The realised faults as a canonically ordered event list."""
        return sorted(self.injected, key=lambda e: e.key())
