"""Algorithm-based fault tolerance: checksum-carrying blocks and payloads.

The S* design makes ABFT unusually cheap: static symbolic factorization
fixes every block's shape and placement before numerics start, so each
dense block can carry a column-sum/row-sum checksum pair that is

* **anchored** when ``Factor(K)`` finishes a panel (the panel kernels are
  elementwise; their output is re-summed at BLAS-2 cost),
* **carried** through every ``Update(K, J)`` — the GEMM and triangular
  solve identities in :mod:`repro.numfact.kernels` advance the checksums
  predictively without touching the O(b^3) data path, and
* **verified** wherever data crosses a trust boundary: at message
  consumption in the parallel codes (:func:`verify_payload`) and before
  the triangular solves (:meth:`AbftLedger.verify_matrix`).

A mismatch means the block's bytes no longer are what the factorization
computed — a delivered-but-corrupted payload or a silent bit error in a
kernel's output — and raises :class:`repro.numfact.SilentCorruptionError`
with the block's coordinates.  Recovery is localized when the corrupted
block's inputs are still live: :func:`recover_block_column` replays the
affected block column bit-identically from the pristine matrix column and
the (verified) earlier factored columns.  When inputs are gone (e.g. a
corrupted message on a remote rank) callers fall back to checkpoint
restart (:mod:`repro.parallel.resilience`).
"""

from __future__ import annotations

import numpy as np

from .counter import BLAS1
from .kernels import block_checksums, checksum_carry_gemm, checksum_carry_solve
from .robust import SilentCorruptionError

#: relative tolerance for checksum comparison.  Carried checksums drift
#: from recomputed ones by O(eps) per carried kernel; injected corruptions
#: (a scaled-and-shifted element) sit many orders of magnitude above this.
ABFT_RTOL = 1e-8


def _tolerance(scale: float) -> float:
    return ABFT_RTOL * (1.0 + float(scale))


def _check_vectors(pred_cs, pred_rs, blk):
    """Worst discrepancy of a block against predicted checksums, and the
    comparison tolerance for that block's magnitude."""
    cs, rs = block_checksums(blk)
    err_cs = float(np.max(np.abs(pred_cs - cs))) if cs.size else 0.0
    err_rs = float(np.max(np.abs(pred_rs - rs))) if rs.size else 0.0
    scale = float(np.abs(blk).sum()) if blk.size else 0.0
    return max(err_cs, err_rs), _tolerance(scale)


class AbftLedger:
    """Checksum ledger for one :class:`repro.numfact.BlockLUMatrix`.

    Attach with :meth:`attach`; the Factor/Update kernels in
    :mod:`repro.numfact.tasks` and the pivot swaps in
    :mod:`repro.numfact.blocks` then keep the ledger current through the
    factorization.  ``detected``/``recovered`` tally verification failures
    and successful localized recoveries for the chaos counters.
    """

    def __init__(self, counter=None):
        self.sums = {}  # (I, J) -> [colsum ndarray, rowsum ndarray]
        self.counter = counter
        self.detected = 0
        self.recovered = 0
        self._rs_pred = {}  # (K, J) in-flight row-sum prediction for solves

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def attach(cls, m, counter=None) -> "AbftLedger":
        """Create a ledger anchored on ``m``'s current blocks and install
        it as ``m.abft`` so the numeric kernels maintain it."""
        led = cls(counter=counter)
        for key, blk in m.blocks.items():
            led.anchor(key[0], key[1], blk)
        m.abft = led
        return led

    def anchor(self, I, J, blk) -> None:
        """(Re-)anchor a block's checksums from its current contents."""
        cs, rs = block_checksums(blk)
        self.sums[(I, J)] = [cs, rs]
        if self.counter is not None:
            self.counter.add(BLAS1, float(2 * blk.size))

    def anchor_column(self, m, K) -> None:
        """Re-anchor the whole factored panel of block column ``K`` (the
        panel kernels are elementwise; carrying through them costs more
        than re-summing their output)."""
        for I in m.bstruct.l_block_rows(K):
            self.anchor(I, K, m.blocks[(I, K)])

    # -- carries (called by the numeric kernels) -----------------------

    def on_swap(self, I1, o1, b1, I2, o2, b2, J) -> None:
        """Carry a pivot row interchange: called *before* the swap of row
        ``o1`` of block ``(I1, J)`` with row ``o2`` of block ``(I2, J)``."""
        e1 = self.sums.get((I1, J))
        e2 = self.sums.get((I2, J))
        if e1 is None or e2 is None:
            return
        if I1 == I2:
            e1[1][o1], e1[1][o2] = e1[1][o2], e1[1][o1]
            return
        delta = b2[o2] - b1[o1]
        e1[0] += delta
        e2[0] -= delta
        e1[1][o1], e2[1][o2] = e2[1][o2], e1[1][o1]

    def pre_solve(self, K, J, diag) -> None:
        """Predict ``rs(L^{-1} U_KJ)`` before the in-place solve runs."""
        entry = self.sums.get((K, J))
        if entry is None:
            return
        self._rs_pred[(K, J)] = checksum_carry_solve(
            diag, entry[1].copy(), counter=self.counter
        )

    def post_solve(self, K, J, ukj) -> None:
        """Install the solve-carried row sums; re-anchor column sums (no
        cheap carry exists for them through a left solve)."""
        rs = self._rs_pred.pop((K, J), None)
        if rs is None:
            return
        cs, _ = block_checksums(ukj)
        self.sums[(K, J)] = [cs, rs]
        if self.counter is not None:
            self.counter.add(BLAS1, float(ukj.size))

    def carry_gemm(self, I, J, lik, ukj, K=None) -> None:
        """Carry ``target -= lik @ ukj`` on block ``(I, J)``'s checksums.

        When ``K`` (the source column) is given and the ledger tracks the
        operands, their own checksums — ``cs`` of the anchored L block
        and the solve-carried ``rs`` of the U block — stand in for the
        operand reductions, halving the carry's O(b^2) cost."""
        entry = self.sums.get((I, J))
        if entry is None:
            return
        cs_a = rs_b = None
        if K is not None:
            a = self.sums.get((I, K))
            b = self.sums.get((K, J))
            cs_a = a[0] if a is not None else None
            rs_b = b[1] if b is not None else None
        checksum_carry_gemm(entry[0], entry[1], lik, ukj,
                            cs_a=cs_a, rs_b=rs_b, counter=self.counter)

    # -- verification --------------------------------------------------

    def check_block(self, I, J, blk):
        """Discrepancy of a block vs. its ledger entry, or None if clean
        (or untracked)."""
        entry = self.sums.get((I, J))
        if entry is None:
            return None
        err, tol = _check_vectors(entry[0], entry[1], blk)
        if err > tol:
            return err
        return None

    def verify_block(self, I, J, blk, where="ledger") -> None:
        err = self.check_block(I, J, blk)
        if err is not None:
            self.detected += 1
            raise SilentCorruptionError(
                f"checksum mismatch on block ({I},{J}) at {where}: "
                f"|error| = {err:.6g}",
                block=(I, J), where=where, error=err,
            )

    def corrupted_blocks(self, m) -> list:
        """All blocks whose contents disagree with the ledger."""
        bad = []
        for (I, J), blk in m.blocks.items():
            if self.check_block(I, J, blk) is not None:
                bad.append((I, J))
        return sorted(bad)

    def verify_matrix(self, m, where="ledger") -> None:
        """Verify every tracked block; raise on the first corrupted one
        (deterministic block order)."""
        for I, J in self.corrupted_blocks(m):
            self.verify_block(I, J, m.blocks[(I, J)], where=where)


# -- localized recovery ------------------------------------------------------


def recover_block_column(m, J, pristine, monitor_factory=None) -> None:
    """Recompute block column ``J`` of a factored matrix bit-identically.

    The replay needs the column's *inputs*: the pristine (unfactored)
    blocks of column ``J`` and the already-factored columns ``K < J`` of
    ``m`` — all live in the sequential and 1D-owner settings.  It resets
    column ``J`` from ``pristine``, replays every ``Update(K, J)`` using
    the (verified) factored columns, and re-runs ``Factor(J)``; because
    the kernels are deterministic the result is bit-for-bit the value an
    uncorrupted factorization computed, and the ledger's carried checksums
    then match again.

    ``monitor_factory`` recreates the pivot monitor used by the original
    factorization (same anorm/perturb/threshold) so pivot decisions replay
    identically; its records are discarded.
    """
    from .tasks import factor_block_column, factored_column_of, update_block_column

    for I in m.bstruct.l_block_rows(J):
        src = pristine.blocks.get((I, J))
        m.blocks[(I, J)][:, :] = 0.0 if src is None else src
        if m.abft is not None:
            m.abft.anchor(I, J, m.blocks[(I, J)])
    for K in range(J):
        if J in m.bstruct.u_block_cols(K):
            src = pristine.blocks.get((K, J))
            m.blocks[(K, J)][:, :] = 0.0 if src is None else src
            if m.abft is not None:
                m.abft.anchor(K, J, m.blocks[(K, J)])
    monitor = monitor_factory() if monitor_factory is not None else None
    for K in range(J):
        if J in m.bstruct.u_block_cols(K):
            update_block_column(m, factored_column_of(m, K), J)
    if m.pivot_seq[J] is not None:
        factor_block_column(m, J, monitor=monitor)


# -- wire payload checksums --------------------------------------------------


def payload_checksums(payload):
    """Mirror-structure checksum record for a message payload.

    Each ndarray leaf becomes its ``(colsum, rowsum)`` pair (1-D arrays
    contribute their total), scalars are echoed, and containers recurse —
    so *any* single-leaf corruption of the payload breaks the mirror."""
    if isinstance(payload, np.ndarray):
        if payload.ndim >= 2:
            cs, rs = block_checksums(payload)
            return {"cs": cs, "rs": rs}
        return {"cs": np.asarray([payload.sum()]), "rs": None}
    if isinstance(payload, dict):
        return {k: payload_checksums(v) for k, v in payload.items()}
    if isinstance(payload, (list, tuple)):
        return [payload_checksums(v) for v in payload]
    return payload


def _find_mismatch(payload, record, path):
    if isinstance(payload, np.ndarray):
        if payload.ndim >= 2:
            err, tol = _check_vectors(record["cs"], record["rs"], payload)
        else:
            err = float(np.abs(record["cs"][0] - payload.sum()))
            tol = _tolerance(float(np.abs(payload).sum()))
        if err > tol:
            return path, err
        return None
    if isinstance(payload, dict):
        for k in payload:
            hit = _find_mismatch(payload[k], record[k], path + (k,))
            if hit is not None:
                return hit
        return None
    if isinstance(payload, (list, tuple)):
        for i, v in enumerate(payload):
            hit = _find_mismatch(v, record[i], path + (i,))
            if hit is not None:
                return hit
        return None
    if payload != record:
        return path, float("nan")
    return None


def _blame_block(path, column):
    """Best-effort block coordinates for a payload mismatch path."""
    if column is None:
        return None
    for i, part in enumerate(path):
        if part == "diag":
            return (column, column)
        if part == "lblocks" and i + 1 < len(path):
            return (path[i + 1], column)
    # urow payloads map column index J -> scaled U_KJ block
    if path and isinstance(path[0], int):
        return (column, path[0])
    return (column, column)


def verify_payload(payload, where, column=None, metrics=None):
    """Verify a payload dict carrying an ``"abft"`` checksum record.

    No-op when the record is absent (ABFT off at the sender).  On a
    mismatch, increments ``abft.detected`` (when a metrics registry is
    given) and raises :class:`SilentCorruptionError` naming the block.
    """
    if not isinstance(payload, dict):
        return payload
    record = payload.get("abft")
    if record is None:
        return payload
    data = {k: v for k, v in payload.items() if k != "abft"}
    hit = _find_mismatch(data, record, ())
    if hit is not None:
        path, err = hit
        if metrics is not None:
            metrics.counter("abft.detected").inc()
        block = _blame_block(path, column)
        raise SilentCorruptionError(
            f"payload checksum mismatch at {where} "
            f"(leaf {'/'.join(str(p) for p in path)}, |error| = {err:.6g})",
            block=block, where=where, error=err,
        )
    return payload
