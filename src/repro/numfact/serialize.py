"""Persist and reload factorizations (``.npz``).

A production user factors once and reuses the factors across runs
(the reservoir-simulation pattern); this module round-trips the complete
:class:`LUFactorization` state — blocks, pivot sequences, partition,
block structure and the static symbolic structure — through a single
compressed ``.npz`` archive.
"""

from __future__ import annotations

import numpy as np

from ..supernodes import BlockPartition, build_block_structure
from ..symbolic import SymbolicFactorization
from .blocks import BlockLUMatrix
from .counter import KernelCounter
from .sequential import LUFactorization


def save_factorization(path, lu: LUFactorization) -> None:
    """Write a factorization to ``path`` (npz)."""
    payload = {
        "bounds": lu.part.bounds,
        "n": np.asarray([lu.n]),
    }
    keys = []
    for (I, J), blk in lu.matrix.blocks.items():
        keys.append((I, J))
        payload[f"blk_{I}_{J}"] = blk
    payload["block_keys"] = np.asarray(keys, dtype=np.int64).reshape(-1, 2)
    piv = []
    for K, seq in enumerate(lu.matrix.pivot_seq):
        for m, t in seq or []:
            piv.append((K, m, t))
    payload["pivots"] = np.asarray(piv, dtype=np.int64).reshape(-1, 3)
    # static structure (ragged -> concatenated + offsets)
    for name, lists in (("lcol", lu.sym.lcol), ("urow", lu.sym.urow)):
        offs = np.zeros(len(lists) + 1, dtype=np.int64)
        for i, arr in enumerate(lists):
            offs[i + 1] = offs[i] + len(arr)
        payload[f"{name}_offs"] = offs
        payload[f"{name}_data"] = (
            np.concatenate(lists) if lists else np.empty(0, np.int64)
        )
    np.savez_compressed(path, **payload)


def load_factorization(path) -> LUFactorization:
    """Reload a factorization written by :func:`save_factorization`."""
    z = np.load(path)
    n = int(z["n"][0])
    part = BlockPartition(z["bounds"])

    def unragged(name):
        offs = z[f"{name}_offs"]
        data = z[f"{name}_data"]
        return [data[offs[i] : offs[i + 1]] for i in range(len(offs) - 1)]

    sym = SymbolicFactorization(n, unragged("lcol"), unragged("urow"))
    bstruct = build_block_structure(sym, part)
    m = BlockLUMatrix(part, bstruct)
    for I, J in z["block_keys"]:
        m.blocks[(int(I), int(J))] = z[f"blk_{I}_{J}"].copy()
    seqs = [[] for _ in range(part.N)]
    for K, a, b in z["pivots"]:
        seqs[int(K)].append((int(a), int(b)))
    m.pivot_seq = seqs
    return LUFactorization(m, sym, part, bstruct, KernelCounter())
