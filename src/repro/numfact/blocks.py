"""Statically-allocated dense-block storage for the partitioned factor.

Every structurally nonzero submatrix of the 2D L/U partition is allocated
once, up front, as a dense ``bs_I x bs_J`` array — the embodiment of the
paper's "static data structures never change during numerical
factorization".  Structurally-zero positions inside a block hold exact 0.0
and *stay* exactly 0.0 throughout elimination (products with exact zeros are
exact zeros), which the test suite asserts; any operation that would touch a
block outside the static structure raises :class:`StructureViolation`.
"""

from __future__ import annotations

import numpy as np

from ..sparse import CSRMatrix
from ..supernodes import BlockPartition, BlockStructure


class StructureViolation(RuntimeError):
    """An operation tried to move a nonzero outside the static structure —
    per George-Ng this cannot happen; raising loudly guards the invariant."""


class SingularMatrixError(RuntimeError):
    """No structural candidate with a usable value exists for some pivot.

    ``pivot_index`` is the offending global column (elimination index),
    when known.
    """

    def __init__(self, message, pivot_index: int = None):
        super().__init__(message)
        self.pivot_index = pivot_index


class BlockLUMatrix:
    """The working LU storage: a dict of dense blocks over a 2D partition.

    Parameters
    ----------
    part, bstruct:
        The supernode partition and its static block structure.
    blocks:
        Mapping ``(I, J) -> ndarray``; missing keys are structural zeros.
    """

    def __init__(self, part: BlockPartition, bstruct: BlockStructure, blocks=None):
        self.part = part
        self.bstruct = bstruct
        self.blocks = {} if blocks is None else blocks
        self.n = part.n
        self.pivot_seq = [None] * part.N  # per block column: list of (m, t)
        self.abft = None  # optional repro.numfact.abft.AbftLedger

    # -- construction ------------------------------------------------------

    @classmethod
    def from_csr(
        cls, A: CSRMatrix, part: BlockPartition, bstruct: BlockStructure
    ) -> "BlockLUMatrix":
        """Allocate the full static block structure and scatter ``A``."""
        m = cls(part, bstruct)
        for (I, J) in bstruct.nonzero_blocks():
            m.blocks[(I, J)] = np.zeros((part.size(I), part.size(J)))
        block_of = part.block_of
        bounds = part.bounds
        # vectorised scatter: map every entry to its block and local offset,
        # then assign one fancy-indexed run per nonzero block
        nnz = len(A.indices)
        if nnz == 0:
            return m
        rows = np.repeat(np.arange(A.nrows, dtype=np.int64),
                         np.diff(A.indptr))
        cols = A.indices
        BI = block_of[rows]
        BJ = block_of[cols]
        li = rows - bounds[BI]
        lj = cols - bounds[BJ]
        N = part.N
        key = BI * N + BJ
        order = np.argsort(key, kind="stable")
        key = key[order]
        run_starts = np.flatnonzero(np.r_[True, key[1:] != key[:-1]])
        run_ends = np.r_[run_starts[1:], nnz]
        for s, e in zip(run_starts.tolist(), run_ends.tolist()):
            idx = order[s:e]
            I = int(BI[idx[0]])
            J = int(BJ[idx[0]])
            blk = m.blocks.get((I, J))
            if blk is None:
                i = int(rows[idx[0]])
                c = int(cols[idx[0]])
                raise StructureViolation(
                    f"matrix entry ({i},{c}) falls outside the static "
                    f"block structure at block ({I},{J})"
                )
            blk[li[idx], lj[idx]] = A.data[idx]
        return m

    # -- queries -----------------------------------------------------------

    def block(self, I: int, J: int):
        """The dense block (I, J), or None when structurally zero."""
        return self.blocks.get((I, J))

    def to_dense(self) -> np.ndarray:
        """Materialise the full storage (tests only)."""
        D = np.zeros((self.n, self.n))
        b = self.part.bounds
        for (I, J), blk in self.blocks.items():
            D[b[I] : b[I + 1], b[J] : b[J + 1]] = blk
        return D

    # -- row swapping ------------------------------------------------------

    def swap_rows_in_block_column(self, J: int, r1: int, r2: int) -> None:
        """Exchange the contents of global rows ``r1`` and ``r2`` inside
        block column ``J`` (used to replay a pivot sequence).

        If one of the two rows lies in an absent (structurally zero) block,
        the other row's content must already be zero — otherwise the swap
        would create fill outside the static structure.
        """
        if r1 == r2:
            return
        part = self.part
        I1 = int(part.block_of[r1])
        I2 = int(part.block_of[r2])
        b1 = self.blocks.get((I1, J))
        b2 = self.blocks.get((I2, J))
        o1 = r1 - part.start(I1)
        o2 = r2 - part.start(I2)
        if b1 is not None and b2 is not None:
            if self.abft is not None:
                self.abft.on_swap(I1, o1, b1, I2, o2, b2, J)
            tmp = b1[o1].copy()
            b1[o1] = b2[o2]
            b2[o2] = tmp
        elif b1 is None and b2 is None:
            return
        elif b1 is None:
            if np.any(b2[o2]):
                raise StructureViolation(
                    f"pivot swap would move nonzeros of row {r2} into absent "
                    f"block ({I1},{J})"
                )
        else:
            if np.any(b1[o1]):
                raise StructureViolation(
                    f"pivot swap would move nonzeros of row {r1} into absent "
                    f"block ({I2},{J})"
                )

    # -- verification helpers ---------------------------------------------

    def check_static_zeros(self, sym) -> int:
        """Count stored nonzeros lying outside the static entry structure.

        Should be 0 before *and* after factorization (module invariant).
        Note: row swaps permute L-part rows within a column, so the check
        covers the U part and the block-level structure only.
        """
        bad = 0
        b = self.part.bounds
        for (I, J), blk in self.blocks.items():
            if I < J:
                cols = self.bstruct.udense_cols[(I, J)] - b[J]
                mask = np.ones(blk.shape[1], dtype=bool)
                mask[cols] = False
                bad += int(np.count_nonzero(blk[:, mask]))
        return bad
