"""The sequential S* factorization driver (Fig. 6) and the factor object.

``sstar_factor`` runs the whole front-end + numeric pipeline on an already
ordered matrix (see :func:`repro.ordering.prepare_matrix`):

    static symbolic factorization -> supernode partition (+ amalgamation)
    -> block structure -> Factor(K) / Update(K, J) sweep

and returns an :class:`LUFactorization` that can solve linear systems and
report kernel statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse import CSRMatrix
from ..supernodes import build_partition, build_block_structure, BlockPartition, BlockStructure
from ..symbolic import static_symbolic_factorization, SymbolicFactorization
from .abft import AbftLedger, recover_block_column
from .blocks import BlockLUMatrix
from .counter import KernelCounter
from .kernels import unit_lower_solve, upper_solve
from .robust import PivotMonitor, SilentCorruptionError
from .tasks import factor_block_column, update_block_column


@dataclass
class LUFactorization:
    """A completed S* factorization (in the permuted coordinate system)."""

    matrix: BlockLUMatrix
    sym: SymbolicFactorization
    part: BlockPartition
    bstruct: BlockStructure
    counter: KernelCounter
    #: when ABFT is on: the pristine (unfactored) block matrix recovery
    #: replays from, and the pivot-monitor settings to replay with
    pristine: BlockLUMatrix = None
    monitor_cfg: tuple = None

    @property
    def n(self) -> int:
        return self.matrix.n

    @property
    def abft(self) -> AbftLedger:
        return self.matrix.abft

    def _monitor_factory(self):
        if self.monitor_cfg is None:
            return None
        anorm, perturb, threshold = self.monitor_cfg
        return lambda: PivotMonitor(anorm, perturb, threshold)

    def verify_abft(self, recover: bool = True, metrics=None) -> int:
        """Check every block against the ABFT ledger; recover corrupted
        block columns by localized replay from the pristine matrix.

        Returns the number of block columns recovered (0 when clean).
        Raises :class:`SilentCorruptionError` when corruption is found and
        ``recover`` is off, no pristine copy is held, or the replay itself
        fails verification.  No-op when ABFT was not enabled.
        """
        m = self.matrix
        led = m.abft
        if led is None:
            return 0
        bad = led.corrupted_blocks(m)
        if not bad:
            return 0
        if not recover or self.pristine is None:
            I, J = bad[0]
            led.verify_block(I, J, m.blocks[(I, J)], where="pre-solve")
        led.detected += len(bad)
        if metrics is not None:
            metrics.counter("abft.detected").inc(len(bad))
        cols = sorted({J for (_I, J) in bad})
        mf = self._monitor_factory()
        for J in cols:
            recover_block_column(m, J, self.pristine, monitor_factory=mf)
        still = led.corrupted_blocks(m)
        if still:
            I, J = still[0]
            led.verify_block(I, J, m.blocks[(I, J)], where="recovery")
        led.recovered += len(cols)
        if metrics is not None:
            metrics.counter("abft.recovered").inc(len(cols))
        return len(cols)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` for the *permuted* matrix this was built from.

        Forward substitution interleaves each block's delayed pivot sequence
        (LINPACK/ipiv semantics), then back substitution runs over U.
        ``b`` may be a vector or an ``(n, k)`` block of right-hand sides.
        """
        self.verify_abft()
        m = self.matrix
        part = self.part
        x = np.asarray(b, dtype=np.float64).copy()
        if x.shape[0] != self.n or x.ndim > 2:
            raise ValueError(f"rhs must have shape ({self.n},) or ({self.n}, k)")
        N = part.N
        bounds = part.bounds
        for K in range(N):
            for r1, r2 in m.pivot_seq[K]:
                if r1 != r2:
                    tmp = x[r1].copy() if x.ndim == 2 else x[r1]
                    x[r1] = x[r2]
                    x[r2] = tmp
            xk = x[bounds[K] : bounds[K + 1]]
            unit_lower_solve(m.blocks[(K, K)], xk)
            for I in self.bstruct.l_block_rows(K):
                if I > K:
                    x[bounds[I] : bounds[I + 1]] -= m.blocks[(I, K)] @ xk
        for K in range(N - 1, -1, -1):
            xk = x[bounds[K] : bounds[K + 1]]
            for J in self.bstruct.u_block_cols(K):
                xk -= m.blocks[(K, J)] @ x[bounds[J] : bounds[J + 1]]
            upper_solve(m.blocks[(K, K)], xk)
        return x

    def solve_transpose(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A^T x = b`` for the permuted matrix.

        The factorization acts as ``A = (P_0^T M_0) (P_1^T M_1) ... U``
        stage-wise (each ``M_K`` is the unit-lower elimination of block
        column K), so ``A^T x = b`` is solved by ``U^T y = b`` (a forward
        substitution on the lower-triangular ``U^T``) followed by applying
        ``M_K^{-T}`` and the *reversed* pivot swaps for K descending.
        """
        self.verify_abft()
        m = self.matrix
        part = self.part
        x = np.asarray(b, dtype=np.float64).copy()
        if x.shape[0] != self.n or x.ndim > 2:
            raise ValueError(f"rhs must have shape ({self.n},) or ({self.n}, k)")
        N = part.N
        bounds = part.bounds
        # U^T y = b: forward over block rows
        for K in range(N):
            xk = x[bounds[K] : bounds[K + 1]]
            ukk = m.blocks[(K, K)]
            bs = part.size(K)
            for i in range(bs):
                if i > 0:
                    xk[i] -= ukk[:i, i] @ xk[:i]
                xk[i] /= ukk[i, i]
            for J in self.bstruct.u_block_cols(K):
                x[bounds[J] : bounds[J + 1]] -= m.blocks[(K, J)].T @ xk
        # M_K^{-T} and reversed swaps, K descending
        for K in range(N - 1, -1, -1):
            xk = x[bounds[K] : bounds[K + 1]]
            for I in self.bstruct.l_block_rows(K):
                if I > K:
                    xk -= m.blocks[(I, K)].T @ x[bounds[I] : bounds[I + 1]]
            lkk = m.blocks[(K, K)]
            bs = part.size(K)
            for i in range(bs - 1, -1, -1):
                if i + 1 < bs:
                    xk[i] -= lkk[i + 1 :, i] @ xk[i + 1 :]
            for r1, r2 in reversed(m.pivot_seq[K]):
                if r1 != r2:
                    tmp = x[r1].copy() if x.ndim == 2 else x[r1]
                    x[r1] = x[r2]
                    x[r2] = tmp
        return x

    def num_interchanges(self) -> int:
        """Number of off-diagonal row interchanges the pivoting performed."""
        return sum(
            1
            for seq in self.matrix.pivot_seq
            for (a, b) in (seq or [])
            if a != b
        )

    def pivot_rows(self) -> list:
        """Flat pivot sequence [(m, t), ...] over all block columns."""
        out = []
        for seq in self.matrix.pivot_seq:
            out.extend(seq or [])
        return out


def sstar_factor(
    A: CSRMatrix,
    block_size: int = 25,
    amalgamation: int = 4,
    sym: SymbolicFactorization = None,
    part: BlockPartition = None,
    bstruct: BlockStructure = None,
    counter: KernelCounter = None,
    pivot_threshold: float = 1.0,
    monitor=None,
    abft: bool = False,
) -> LUFactorization:
    """Factor an ordered, zero-free-diagonal matrix with the S* algorithm.

    Precomputed ``sym``/``part``/``bstruct`` may be passed to amortise the
    front-end across repeated factorizations (the benchmark harness and the
    structure cache in :mod:`repro.service` do this).  ``monitor`` (a
    :class:`repro.numfact.PivotMonitor`) enables pivot growth tracking and
    tiny-pivot perturbation.

    ``abft=True`` attaches an :class:`repro.numfact.abft.AbftLedger`: every
    block carries column/row checksums through the Factor/Update sweep,
    panels are verified when ``Factor(K)`` consumes them, and a pristine
    copy of the scattered matrix is retained so a corrupted block column
    can be recomputed in place (during the sweep here, or later via
    :meth:`LUFactorization.verify_abft` before the triangular solves).
    """
    if sym is None:
        sym = static_symbolic_factorization(A)
    if part is None:
        part = build_partition(sym, max_size=block_size, amalgamation=amalgamation)
    if bstruct is None:
        bstruct = build_block_structure(sym, part)
    m = BlockLUMatrix.from_csr(A, part, bstruct)
    counter = counter if counter is not None else KernelCounter()

    pristine = None
    monitor_cfg = None
    monitor_factory = None
    if abft:
        pristine = BlockLUMatrix(
            part, bstruct,
            blocks={key: blk.copy() for key, blk in m.blocks.items()},
        )
        AbftLedger.attach(m, counter=counter)
        if monitor is not None:
            monitor_cfg = (monitor.anorm, monitor.perturb, monitor.threshold)

            def monitor_factory():
                return PivotMonitor(*monitor_cfg)

    N = part.N
    for K in range(N):
        try:
            fc = factor_block_column(
                m, K, counter=counter, pivot_threshold=pivot_threshold,
                monitor=monitor,
            )
        except SilentCorruptionError:
            if pristine is None:
                raise
            # corrupted panel caught at consumption: replay the column's
            # updates from pristine inputs, then retry the factorization
            recover_block_column(m, K, pristine,
                                 monitor_factory=monitor_factory)
            m.abft.recovered += 1
            fc = factor_block_column(
                m, K, counter=counter, pivot_threshold=pivot_threshold,
                monitor=monitor,
            )
        for J in bstruct.u_block_cols(K):
            update_block_column(m, fc, J, counter=counter)
    return LUFactorization(m, sym, part, bstruct, counter,
                           pristine=pristine, monitor_cfg=monitor_cfg)


def sstar_refactor(
    A: CSRMatrix,
    previous: LUFactorization,
    counter: KernelCounter = None,
    pivot_threshold: float = 1.0,
    monitor=None,
    abft: bool = False,
) -> LUFactorization:
    """Numerically re-factor a matrix with the *same nonzero pattern* as a
    previous factorization, reusing its symbolic state.

    George–Ng static symbolic factorization depends only on the pattern and
    upper-bounds the fill of any pivot sequence, so ``previous.sym``,
    ``previous.part`` and ``previous.bstruct`` remain exactly valid for any
    ``A`` sharing the pattern — the whole analyze phase is skipped and the
    call goes straight to the Factor/Update sweep.  The caller is
    responsible for the pattern actually matching (the structure cache in
    :mod:`repro.service` verifies it by hash).
    """
    return sstar_factor(
        A,
        sym=previous.sym,
        part=previous.part,
        bstruct=previous.bstruct,
        counter=counter,
        pivot_threshold=pivot_threshold,
        monitor=monitor,
        abft=abft,
    )
