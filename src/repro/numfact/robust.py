"""Numerical robustness: pivot-growth monitoring and static perturbation.

GEPP on a structurally nonsingular but numerically (near-)singular matrix
meets a pivot column whose largest candidate is zero or tiny; dividing by
it overflows and the NaNs silently poison every later column.  Following
SuperLU_DIST's static-pivoting recovery, a :class:`PivotMonitor` watches
every pivot the elimination commits and — when perturbation is enabled —
replaces any pivot smaller than ``sqrt(eps) * ||A||`` by
``±sqrt(eps) * ||A||`` (sign preserved), recording each replacement in a
perturbation log.  The factorization then completes as an *exact*
factorization of a nearby matrix ``A + E`` with ``||E||`` tiny, and
iterative refinement (:func:`repro.analysis.stability.iterative_refinement`)
recovers the solution of the original system; when refinement fails to
converge the solver raises a typed :class:`NumericalError` instead of
returning garbage.

The monitor also tracks the element-growth statistic
``max |pivot| / max |A_ij|`` so reports can flag runs where pivoting was
numerically stressed even without perturbation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


class NumericalError(RuntimeError):
    """The computed solution is numerically unusable (refinement failed to
    converge, or the backward error is non-finite)."""

    def __init__(self, message, backward_error: float = None, iterations: int = None):
        super().__init__(message)
        self.backward_error = backward_error
        self.iterations = iterations


class SilentCorruptionError(RuntimeError):
    """ABFT checksums caught silently corrupted data.

    A block whose contents disagree with its carried column/row checksums
    (or a wire payload whose checksum record no longer matches) was about
    to be consumed — a delivered-but-corrupted message, or a bit error in
    a compute kernel's output, that no protocol-level check would see.

    Structured attributes: ``block`` (the ``(I, J)`` block coordinates, or
    None when the corruption is not attributable to one block), ``where``
    (the verification site, e.g. ``"payload:col"``, ``"ledger"``) and
    ``error`` (the worst absolute checksum discrepancy observed).
    """

    def __init__(self, message, block=None, where: str = None,
                 error: float = None):
        super().__init__(message)
        self.block = tuple(block) if block is not None else None
        self.where = where
        self.error = error

    def signature(self) -> tuple:
        """Replay-comparison key: two detections of the same corruption
        (e.g. original run vs. shrunk-schedule replay) have equal
        signatures, including the exact float discrepancy."""
        return (self.block, self.where, self.error, str(self))


@dataclass(frozen=True)
class PerturbationRecord:
    """One tiny-pivot replacement: global ``column``, the pivot value the
    elimination produced, and the value substituted for it."""

    column: int
    old: float
    new: float


@dataclass
class PivotMonitor:
    """Watches committed pivots; optionally perturbs tiny ones.

    Parameters
    ----------
    anorm:
        ``max |A_ij|`` of the matrix being factored (its max-norm).
    perturb:
        When True (default), a pivot with ``|p| < threshold`` is replaced
        by ``sign(p) * threshold``; when False the monitor only records
        statistics and the factorization kernels raise
        :class:`repro.numfact.SingularMatrixError` on zero pivots.
    threshold:
        Replacement magnitude; defaults to ``sqrt(eps) * anorm``.
    """

    anorm: float
    perturb: bool = True
    threshold: float = None
    max_pivot: float = 0.0
    min_pivot: float = math.inf
    perturbations: list = field(default_factory=list)

    def __post_init__(self):
        if self.threshold is None:
            eps = float(np.finfo(np.float64).eps)
            self.threshold = math.sqrt(eps) * max(self.anorm, 1e-300)

    def consider(self, column: int, value: float) -> float:
        """Record the pivot committed for global ``column`` and return the
        value the elimination should divide by (perturbed if tiny)."""
        a = abs(value)
        if a < self.threshold and self.perturb:
            new = self.threshold if value >= 0.0 else -self.threshold
            self.perturbations.append(PerturbationRecord(column, value, new))
            value, a = new, abs(new)
        self.max_pivot = max(self.max_pivot, a)
        if a > 0.0:
            self.min_pivot = min(self.min_pivot, a)
        return value

    @property
    def growth_factor(self) -> float:
        """Element growth proxy ``max |pivot| / max |A_ij|``."""
        if self.anorm <= 0.0:
            return 0.0
        return self.max_pivot / self.anorm

    def summary(self) -> dict:
        return {
            "growth_factor": self.growth_factor,
            "max_pivot": self.max_pivot,
            "min_pivot": None if math.isinf(self.min_pivot) else self.min_pivot,
            "threshold": self.threshold,
            "perturbed_pivots": len(self.perturbations),
        }


def matrix_maxnorm(A) -> float:
    """``max |A_ij|`` of a :class:`repro.sparse.CSRMatrix` (0 if empty)."""
    if len(A.data) == 0:
        return 0.0
    return float(np.max(np.abs(A.data)))
