"""Packed supernode-panel storage — the paper's production data structure.

The dense-block backend (:mod:`blocks`) allocates every nonzero submatrix
fully, padding structurally-zero positions with exact zeros; that is simple
and provably safe but stores and multiplies padding.  The real S* code packs
each panel the way Section 3.2 describes:

* an **L segment** of block ``(I, J)`` stores only the structural rows
  ``lrows(I, J)`` as a dense ``len(rows) x bs_J`` array (supernode
  nestedness makes those rows common to all columns; amalgamation padding
  rows are included — they are the "almost dense" cost);
* a **U segment** of block ``(K, J)`` stores only the Theorem-1 dense
  subcolumns ``udense(K, J)`` as a dense ``bs_K x len(cols)`` array;
* the diagonal block is dense.

Updates become GEMM + **scatter-add** (the packed contribution's rows and
columns are guaranteed by George-Ng to be subsets of the target segment's),
exactly the supernodal scatter phase of production sparse codes.  The
backend produces the same pivot sequence as the dense-block backend and
solutions agreeing to machine precision (BLAS may round differently for
different operand shapes, so bitwise equality is not guaranteed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse import CSRMatrix
from ..supernodes import BlockPartition, BlockStructure, build_partition, build_block_structure
from ..symbolic import static_symbolic_factorization, SymbolicFactorization
from .blocks import SingularMatrixError, StructureViolation
from .counter import KernelCounter, DGEMM, DGEMV, BLAS1
from .kernels import unit_lower_solve, upper_solve


@dataclass
class _USegment:
    cols: np.ndarray  # global column ids of the dense subcolumns
    data: np.ndarray  # (bs_I, len(cols))


@dataclass
class _LSegment:
    rows: np.ndarray  # global row positions stored
    data: np.ndarray  # (len(rows), bs_J)


class PackedLUMatrix:
    """Column-block packed storage of the static structure."""

    def __init__(self, part: BlockPartition, bstruct: BlockStructure):
        self.part = part
        self.bstruct = bstruct
        self.n = part.n
        self.pivot_seq = [None] * part.N
        # per block column J:
        self.diag = {}      # J -> (bs, bs) dense
        self.lsegs = {}     # (I, J), I > J -> _LSegment
        self.usegs = {}     # (I, J), I < J -> _USegment

    # -- construction ----------------------------------------------------

    @classmethod
    def from_csr(
        cls, A: CSRMatrix, part: BlockPartition, bstruct: BlockStructure
    ) -> "PackedLUMatrix":
        m = cls(part, bstruct)
        for J in range(part.N):
            m.diag[J] = np.zeros((part.size(J), part.size(J)))
        for (I, J), rows in bstruct.lrows.items():
            if I > J:
                m.lsegs[(I, J)] = _LSegment(
                    rows=rows, data=np.zeros((len(rows), part.size(J)))
                )
        for (I, J), cols in bstruct.udense_cols.items():
            m.usegs[(I, J)] = _USegment(
                cols=cols, data=np.zeros((part.size(I), len(cols)))
            )
        block_of = part.block_of
        bounds = part.bounds
        for i in range(A.nrows):
            cidx, vals = A.row(i)
            I = int(block_of[i])
            for c, v in zip(cidx, vals):
                J = int(block_of[c])
                if I == J:
                    m.diag[I][i - bounds[I], c - bounds[J]] = v
                elif I > J:
                    seg = m.lsegs.get((I, J))
                    pos = None
                    if seg is not None:
                        p = np.searchsorted(seg.rows, i)
                        if p < len(seg.rows) and seg.rows[p] == i:
                            pos = p
                    if pos is None:
                        raise StructureViolation(
                            f"entry ({i},{c}) outside packed L structure"
                        )
                    seg.data[pos, c - bounds[J]] = v
                else:
                    seg = m.usegs.get((I, J))
                    pos = None
                    if seg is not None:
                        p = np.searchsorted(seg.cols, c)
                        if p < len(seg.cols) and seg.cols[p] == c:
                            pos = p
                    if pos is None:
                        raise StructureViolation(
                            f"entry ({i},{c}) outside packed U structure"
                        )
                    seg.data[i - bounds[I], pos] = v
        return m

    # -- memory ----------------------------------------------------------

    def storage_bytes(self) -> int:
        total = sum(d.nbytes for d in self.diag.values())
        total += sum(s.data.nbytes for s in self.lsegs.values())
        total += sum(s.data.nbytes for s in self.usegs.values())
        return total

    # -- row access for pivot swaps ---------------------------------------

    def _row_handle(self, J: int, pos: int):
        """Locate the packed row of block column ``J`` at global position
        ``pos``: returns ``(view, local_cols)`` where ``local_cols`` is None
        for full-width rows (diag/L segments) or the stored local column
        ids for a subcolumn-packed U segment; ``(None, None)`` when the row
        is structurally zero."""
        part = self.part
        I = int(part.block_of[pos])
        o = pos - part.start(I)
        if I == J:
            return self.diag[J][o], None
        if I > J:
            seg = self.lsegs.get((I, J))
            if seg is None:
                return None, None
            p = np.searchsorted(seg.rows, pos)
            if p < len(seg.rows) and seg.rows[p] == pos:
                return seg.data[p], None
            return None, None
        seg = self.usegs.get((I, J))
        if seg is None:
            return None, None
        return seg.data[o], seg.cols - part.start(J)

    def _expand(self, J: int, view, cols):
        """Full-width copy of a packed row."""
        if view is None:
            return np.zeros(self.part.size(J))
        if cols is None:
            return view.copy()
        full = np.zeros(self.part.size(J))
        full[cols] = view
        return full

    def _store(self, J: int, pos: int, view, cols, full) -> None:
        """Write a full-width row back into packed form; anything nonzero
        outside the stored columns violates the static structure."""
        if view is None:
            if np.any(full):
                raise StructureViolation(
                    f"packed swap would fill structurally zero row {pos} "
                    f"of column {J}"
                )
            return
        if cols is None:
            view[:] = full
            return
        view[:] = full[cols]
        mask = np.ones(len(full), dtype=bool)
        mask[cols] = False
        if np.any(full[mask]):
            raise StructureViolation(
                f"packed swap would fill undense subcolumns of row {pos} "
                f"in column {J}"
            )

    def swap_rows(self, J: int, r1: int, r2: int) -> None:
        """Exchange two rows of block column J (delayed pivoting), with
        column-aligned scatter between differently packed segments."""
        v1, c1 = self._row_handle(J, r1)
        v2, c2 = self._row_handle(J, r2)
        if v1 is None and v2 is None:
            return
        f1 = self._expand(J, v1, c1)
        f2 = self._expand(J, v2, c2)
        self._store(J, r1, v1, c1, f2)
        self._store(J, r2, v2, c2, f1)


def _map_ids(src_ids, target_ids):
    """Map sorted ``src_ids`` into positions within sorted ``target_ids``.

    Returns ``(positions, covered_mask)``.  Ids outside the target are
    legal only when the corresponding contribution slice is exactly zero
    (amalgamation-padding rows/subcolumns) — checked by the caller.
    """
    pos = np.searchsorted(target_ids, src_ids)
    pos_c = np.minimum(pos, max(len(target_ids) - 1, 0))
    covered = (
        (pos < len(target_ids)) & (target_ids[pos_c] == src_ids)
        if len(target_ids)
        else np.zeros(len(src_ids), dtype=bool)
    )
    return pos_c, covered


def _assert_zero(contrib, K, J, I):
    if np.any(contrib):
        raise StructureViolation(
            f"packed update ({K},{J}) hits absent target block ({I},{J})"
        )


def _scatter_sub(target, contrib, ridx, rmask, cidx, cmask, K, J, I):
    """``target[ridx, cidx] -= contrib`` with padding-aware coverage:
    uncovered rows/columns must carry exactly-zero contributions
    (George-Ng guarantees genuine fill lands inside the target)."""
    if rmask is not None and not np.all(rmask):
        if np.any(contrib[~rmask, :]):
            raise StructureViolation(
                f"packed update ({K},{J}) -> ({I},{J}): nonzero contribution "
                "at a row outside the target's structural rows"
            )
        contrib = contrib[rmask, :]
        ridx = ridx[rmask]
    if cmask is not None and not np.all(cmask):
        if np.any(contrib[:, ~cmask]):
            raise StructureViolation(
                f"packed update ({K},{J}) -> ({I},{J}): nonzero contribution "
                "at a column outside the target's dense subcolumns"
            )
        contrib = contrib[:, cmask]
        cidx = cidx[cmask]
    target[np.ix_(ridx, cidx)] -= contrib


def packed_factor(
    A: CSRMatrix,
    block_size: int = 25,
    amalgamation: int = 4,
    sym: SymbolicFactorization = None,
    part: BlockPartition = None,
    counter: KernelCounter = None,
    pivot_threshold: float = 1.0,
):
    """Sequential S* factorization on packed storage.

    Returns a :class:`PackedFactorization` mirroring
    :class:`repro.numfact.LUFactorization`'s interface (``solve``,
    ``counter``, ``pivot_seq``).
    """
    if sym is None:
        sym = static_symbolic_factorization(A)
    if part is None:
        part = build_partition(sym, max_size=block_size, amalgamation=amalgamation)
    bstruct = build_block_structure(sym, part)
    m = PackedLUMatrix.from_csr(A, part, bstruct)
    counter = counter if counter is not None else KernelCounter()
    if not 0.0 < pivot_threshold <= 1.0:
        raise ValueError("pivot_threshold must be in (0, 1]")

    N = part.N
    bounds = part.bounds
    for K in range(N):
        bs = part.size(K)
        below = [
            (I, m.lsegs[(I, K)])
            for I in bstruct.l_block_rows(K)
            if I > K and (I, K) in m.lsegs
        ]
        panel = np.vstack([m.diag[K]] + [seg.data for _, seg in below])
        positions = np.concatenate(
            [part.positions(K)] + [seg.rows for _, seg in below]
        )
        pivots = []
        for c in range(bs):
            col = panel[c:, c]
            t = int(np.argmax(np.abs(col))) + c
            if panel[t, c] == 0.0:
                raise SingularMatrixError(
                    f"no nonzero pivot for global column {bounds[K] + c}"
                )
            if (
                pivot_threshold < 1.0
                and abs(panel[c, c]) >= pivot_threshold * abs(panel[t, c])
                and panel[c, c] != 0.0
            ):
                t = c
            pivots.append((int(positions[c]), int(positions[t])))
            if t != c:
                panel[[c, t], :] = panel[[t, c], :]
            piv = panel[c, c]
            if c + 1 < panel.shape[0]:
                panel[c + 1 :, c] /= piv
                counter.add(BLAS1, panel.shape[0] - c - 1)
            if c + 1 < bs:
                panel[c + 1 :, c + 1 : bs] -= np.outer(
                    panel[c + 1 :, c], panel[c, c + 1 : bs]
                )
                counter.add(
                    DGEMV, 2.0 * (panel.shape[0] - c - 1) * (bs - c - 1), gran=bs
                )
        # scatter panel back
        m.diag[K][:, :] = panel[:bs]
        off = bs
        for _, seg in below:
            seg.data[:, :] = panel[off : off + len(seg.rows)]
            off += len(seg.rows)
        m.pivot_seq[K] = pivots

        # updates
        for J in bstruct.u_block_cols(K):
            for r1, r2 in pivots:
                if r1 != r2:
                    m.swap_rows(J, r1, r2)
            useg = m.usegs.get((K, J))
            if useg is None:
                continue
            ukj = useg.data  # (bs, cdense)
            ncols = ukj.shape[1]
            unit_lower_solve(m.diag[K], ukj, counter=counter, ncols_structural=ncols)
            ucols_local = useg.cols - bounds[J]
            for I, lseg in below:
                contrib = lseg.data @ ukj  # (len(rows), cdense)
                kernel = DGEMM if ncols >= 2 and len(lseg.rows) >= 2 else DGEMV
                counter.add(
                    kernel, 2.0 * len(lseg.rows) * bs * ncols, gran=min(bs, ncols)
                )
                if I > J:
                    tseg = m.lsegs.get((I, J))
                    if tseg is None:
                        _assert_zero(contrib, K, J, I)
                        continue
                    ridx, rmask = _map_ids(lseg.rows, tseg.rows)
                    _scatter_sub(
                        tseg.data, contrib, ridx, rmask,
                        np.asarray(ucols_local), None, K, J, I,
                    )
                elif I == J:
                    ridx = lseg.rows - bounds[J]
                    m.diag[J][np.ix_(ridx, ucols_local)] -= contrib
                else:
                    tseg = m.usegs.get((I, J))
                    if tseg is None:
                        _assert_zero(contrib, K, J, I)
                        continue
                    cidx, cmask = _map_ids(useg.cols, tseg.cols)
                    ridx = lseg.rows - bounds[I]
                    _scatter_sub(
                        tseg.data, contrib, ridx, None, cidx, cmask, K, J, I
                    )
    return PackedFactorization(m, sym, part, bstruct, counter)


@dataclass
class PackedFactorization:
    """Factorization over packed storage (solve-compatible)."""

    matrix: PackedLUMatrix
    sym: SymbolicFactorization
    part: BlockPartition
    bstruct: BlockStructure
    counter: KernelCounter

    @property
    def n(self) -> int:
        return self.matrix.n

    def num_interchanges(self) -> int:
        return sum(
            1
            for seq in self.matrix.pivot_seq
            for (a, b) in (seq or [])
            if a != b
        )

    def solve(self, b: np.ndarray) -> np.ndarray:
        m = self.matrix
        part = self.part
        bounds = part.bounds
        x = np.asarray(b, dtype=np.float64).copy()
        if x.shape != (self.n,):
            raise ValueError(f"rhs must have shape ({self.n},)")
        N = part.N
        for K in range(N):
            for r1, r2 in m.pivot_seq[K]:
                if r1 != r2:
                    x[r1], x[r2] = x[r2], x[r1]
            xk = x[bounds[K] : bounds[K + 1]]
            unit_lower_solve(m.diag[K], xk)
            for I in self.bstruct.l_block_rows(K):
                if I > K and (I, K) in m.lsegs:
                    seg = m.lsegs[(I, K)]
                    x[seg.rows] -= seg.data @ xk
        for K in range(N - 1, -1, -1):
            xk = x[bounds[K] : bounds[K + 1]]
            for J in self.bstruct.u_block_cols(K):
                seg = m.usegs.get((K, J))
                if seg is not None:
                    xk -= seg.data @ x[seg.cols]
            upper_solve(m.diag[K], xk)
        return x

    def storage_bytes(self) -> int:
        return self.matrix.storage_bytes()
