"""FLOP accounting by BLAS kernel class and block granularity.

The paper's central performance argument is *which kernel class executes the
flops*: S* routes most update flops through BLAS-3 ``DGEMM`` while SuperLU is
BLAS-2 ``DGEMV``-bound.  Every numeric kernel in this package reports its
flops to a :class:`KernelCounter` tagged with a kernel class and, where it
matters, the block width it operated at; a
:class:`repro.machine.MachineSpec` then converts the tally into modeled
seconds at the published per-kernel rates, derated for narrow blocks (the
cache effect that makes supernode amalgamation profitable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Kernel classes
DGEMM = "dgemm"  # BLAS-3 matrix-matrix
DGEMV = "dgemv"  # BLAS-2 matrix-vector / rank-1
BLAS1 = "blas1"  # scaling, axpy, pivot search


@dataclass
class KernelCounter:
    """Tally of floating-point operations per kernel class.

    ``flops`` aggregates per kernel name (for the DGEMM-fraction statistics);
    ``by_gran`` keeps the ``(kernel, granularity)`` breakdown used for
    time modeling.
    """

    flops: dict = field(default_factory=dict)
    by_gran: dict = field(default_factory=dict)
    # open accounting window (``Env.begin_counted``): first-touch snapshot
    # values of the ``by_gran`` keys mutated since the window opened, so the
    # time model can price exactly the delta without scanning the whole
    # tally.  ``_korder`` records each key's global insertion index so the
    # window replays deltas in ``by_gran`` order (bit-identical clock math
    # to the full-scan ``compute_counted``).
    _touched: dict = field(default=None, init=False, repr=False, compare=False)
    _korder: dict = field(default_factory=dict, init=False, repr=False,
                          compare=False)

    def add(self, kernel: str, nflops: float, gran=None) -> None:
        nflops = float(nflops)
        f = self.flops
        f[kernel] = f.get(kernel, 0.0) + nflops
        key = (kernel, gran)
        g = self.by_gran
        prev = g.get(key)
        if prev is None:
            self._korder[key] = len(self._korder)
            prev = 0.0
        t = self._touched
        if t is not None and key not in t:
            t[key] = prev
        g[key] = prev + nflops

    @property
    def total(self) -> float:
        return sum(self.flops.values())

    def fraction(self, kernel: str) -> float:
        """Fraction of all flops executed by ``kernel`` (the paper's
        ">64 percent of numerical updates ... by DGEMM" statistic)."""
        t = self.total
        return self.flops.get(kernel, 0.0) / t if t else 0.0

    def merge(self, other: "KernelCounter") -> None:
        for k, v in other.flops.items():
            self.flops[k] = self.flops.get(k, 0.0) + v
        for k, v in other.by_gran.items():
            if k not in self.by_gran:
                self._korder[k] = len(self._korder)
            self.by_gran[k] = self.by_gran.get(k, 0.0) + v

    def copy(self) -> "KernelCounter":
        c = KernelCounter()
        c.flops = dict(self.flops)
        c.by_gran = dict(self.by_gran)
        c._korder = dict(self._korder)
        return c

    def modeled_seconds(self, spec) -> float:
        """Convert the tally to seconds using a machine spec's kernel rates
        (granularity-aware)."""
        return spec.kernel_seconds(self.by_gran)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v:.3g}" for k, v in sorted(self.flops.items()))
        return f"KernelCounter({parts})"
