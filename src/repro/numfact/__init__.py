"""Numerical factorization: block storage, kernels, Factor/Update tasks,
the sequential S* driver and triangular solvers (Section 4, Figs. 6-8)."""

from .counter import KernelCounter
from .kernels import (
    unit_lower_solve,
    upper_solve,
    FLOP_GEMM,
    FLOP_TRSM,
)
from .blocks import BlockLUMatrix, StructureViolation, SingularMatrixError
from .tasks import (
    factor_block_column,
    update_block_column,
    apply_pivots_to_column,
    factored_column_of,
    FactoredColumn,
    batched_updates,
    batched_updates_enabled,
)
from .sequential import sstar_factor, sstar_refactor, LUFactorization
from .serialize import save_factorization, load_factorization
from .packed import packed_factor, PackedLUMatrix, PackedFactorization
from .robust import (
    NumericalError,
    PerturbationRecord,
    PivotMonitor,
    SilentCorruptionError,
    matrix_maxnorm,
)
from .abft import (
    AbftLedger,
    payload_checksums,
    recover_block_column,
    verify_payload,
)

__all__ = [
    "KernelCounter",
    "unit_lower_solve",
    "upper_solve",
    "FLOP_GEMM",
    "FLOP_TRSM",
    "BlockLUMatrix",
    "StructureViolation",
    "SingularMatrixError",
    "factor_block_column",
    "update_block_column",
    "apply_pivots_to_column",
    "factored_column_of",
    "FactoredColumn",
    "batched_updates",
    "batched_updates_enabled",
    "sstar_factor",
    "sstar_refactor",
    "LUFactorization",
    "save_factorization",
    "load_factorization",
    "packed_factor",
    "PackedLUMatrix",
    "PackedFactorization",
    "NumericalError",
    "PerturbationRecord",
    "PivotMonitor",
    "SilentCorruptionError",
    "matrix_maxnorm",
    "AbftLedger",
    "payload_checksums",
    "recover_block_column",
    "verify_payload",
]
