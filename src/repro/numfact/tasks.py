"""The two task kinds of the partitioned algorithm (Figs. 7 and 8).

``Factor(K)``
    Panel factorization of block column ``K`` with partial pivoting: the
    pivot for each column is searched over *all* rows of the stacked L panel
    (diagonal block plus every nonzero block below), rows are interchanged
    inside the panel immediately (BLAS-1/2 work), and the resulting pivot
    sequence is recorded for **delayed** application to the rest of the
    matrix — the paper's message-aggregating delayed-pivoting technique.

``Update(K, J)``
    Replays block ``K``'s pivot sequence on block column ``J``, computes
    ``U_KJ <- L_KK^{-1} U_KJ`` and then ``A_IJ -= L_IK U_KJ`` for every
    nonzero ``L_IK`` — the BLAS-3 DGEMM payload that Theorem 1's dense
    subcolumns make possible.

Updates consume a :class:`FactoredColumn` — the self-contained result of
``Factor(K)`` (pivot sequence, diagonal block, L blocks).  In the parallel
codes this object *is* the message the owner of column ``K`` multicasts;
sequentially it is just a set of views into the same storage.

Pivot bookkeeping is LINPACK-style: interchanges are applied to block
columns ``>= K`` only (never retroactively to already-factored columns),
and the triangular solvers replay them in order.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from .blocks import BlockLUMatrix, SingularMatrixError, StructureViolation
from .counter import KernelCounter, DGEMM, DGEMV, BLAS1
from .kernels import FLOP_GEMM, gemm_update, scratch_buffer, unit_lower_solve

#: batched supernode updates: fuse the per-(I, J) GEMMs of an elimination
#: stage into one sweep over the destination panel sharing a single
#: preallocated product scratch (``np.matmul(..., out=)`` + in-place
#: subtract — bit-identical to the per-block path, since each block keeps
#: its own BLAS call shape; see DESIGN.md "Host performance" for why true
#: operand stacking is *not* bit-stable on modern BLAS).  The legacy
#: per-block path is kept for A/B timing and the equivalence tests.
_BATCHED_UPDATES = True


def batched_updates_enabled() -> bool:
    """Is the batched update sweep the current default?"""
    return _BATCHED_UPDATES


@contextmanager
def batched_updates(enabled: bool):
    """Temporarily force the batched (or legacy per-block) update path."""
    global _BATCHED_UPDATES
    prev = _BATCHED_UPDATES
    _BATCHED_UPDATES = bool(enabled)
    try:
        yield
    finally:
        _BATCHED_UPDATES = prev


@dataclass
class FactoredColumn:
    """Everything ``Update(*, J)`` needs from a factored block column K."""

    K: int
    pivots: list  # [(m_pos, t_pos), ...] global position pairs, in order
    diag: np.ndarray  # the bs x bs diagonal block (unit-lower L + upper U)
    lblocks: dict  # block row I (> K) -> dense L block

    # update-sweep memo: sorted (I, block) pairs + the tallest block, built
    # once and reused by every Update(K, J) consuming this column
    _lsorted: list = field(default=None, init=False, repr=False, compare=False)
    _lmaxrows: int = field(default=0, init=False, repr=False, compare=False)
    # batched-sweep memo: (I, lik, structural_rows, lik.shape[1]) tuples in
    # ascending I, built on the first Update and shared by all later ones
    _sweep: list = field(default=None, init=False, repr=False, compare=False)

    def sorted_lblocks(self) -> list:
        """``sorted(lblocks.items())``, computed once per column."""
        if self._lsorted is None:
            self._lsorted = sorted(self.lblocks.items())
            self._lmaxrows = max(
                (b.shape[0] for _, b in self._lsorted), default=0
            )
        return self._lsorted

    def max_lrows(self) -> int:
        """Row count of the tallest L block (product-scratch height)."""
        self.sorted_lblocks()
        return self._lmaxrows

    def update_sweep(self, bstruct) -> list:
        """``(I, lik, structural_rows, lik.shape[1])`` tuples in ascending
        I, resolved once against ``bstruct`` and shared by every
        ``Update(K, *)`` consuming this column."""
        sweep = self._sweep
        if sweep is None:
            K = self.K
            sweep = self._sweep = [
                (I, lik, bstruct.l_rows_count(I, K), lik.shape[1])
                for I, lik in self.sorted_lblocks()
            ]
        return sweep

    def nbytes(self) -> int:
        b = self.diag.nbytes + 16 * len(self.pivots)
        for blk in self.lblocks.values():
            b += blk.nbytes
        return b


def factor_block_column(
    m: BlockLUMatrix,
    K: int,
    counter: KernelCounter = None,
    pivot_threshold: float = 1.0,
    monitor=None,
) -> FactoredColumn:
    """Run ``Factor(K)`` (Fig. 7); records the pivot sequence on ``m`` and
    returns the :class:`FactoredColumn` for downstream updates.

    ``pivot_threshold`` is the classical threshold-pivoting parameter
    ``u``: the diagonal is kept whenever ``|a_cc| >= u * max_i |a_ic|``.
    ``u = 1.0`` is pure partial pivoting (the paper's setting); smaller
    values trade a bounded growth-factor increase for fewer interchanges
    (and fewer swap messages in the parallel codes).

    ``monitor`` is an optional :class:`repro.numfact.PivotMonitor`: it
    tracks pivot growth and, when enabled, replaces tiny pivots by
    ``±sqrt(eps)*||A||`` (SuperLU_DIST-style static perturbation) instead
    of letting the elimination divide by them."""
    part = m.part
    bs = part.size(K)
    if m.abft is not None:
        # verify the panel at consumption: a silently corrupted input
        # block must be caught before its poison spreads into the factors
        for I in m.bstruct.l_block_rows(K):
            m.abft.verify_block(I, K, m.blocks[(I, K)], where=f"factor({K})")
    # panel metadata (block list, position table, packed row count) depends
    # only on the static structure: build once per K, reuse across ranks,
    # refactorizations and restarts
    meta = m.bstruct._fmeta.get(K)
    if meta is None:
        below = [I for I in m.bstruct.l_block_rows(K) if I > K]
        positions = np.concatenate(
            [part.positions(K)] + [part.positions(I) for I in below]
        ).tolist()
        srows = m.bstruct.panel_rows_count(K)  # packed rows (accounting)
        meta = m.bstruct._fmeta[K] = (below, positions, srows)
    else:
        below, positions, srows = meta
    panel_blocks = [(K, m.blocks[(K, K)])] + [(I, m.blocks[(I, K)]) for I in below]
    nrows = 0
    for _I, blk in panel_blocks:
        nrows += blk.shape[0]
    panel = scratch_buffer("factor-panel", nrows, bs)
    off = 0
    for _I, blk in panel_blocks:
        rows = blk.shape[0]
        panel[off : off + rows, :] = blk
        off += rows

    if not 0.0 < pivot_threshold <= 1.0:
        raise ValueError("pivot_threshold must be in (0, 1]")
    pivots = []
    start_K = part.start(K)
    cadd = counter.add if counter is not None else None
    scratch = scratch_buffer("factor-outer", nrows, bs)  # rank-1 + row swaps
    abs_col = scratch_buffer("factor-abs", nrows)
    for c in range(bs):
        gcol = start_K + c
        col = panel[c:, c]
        ab = abs_col[: nrows - c]
        np.abs(col, out=ab)
        t = int(np.argmax(ab)) + c
        if not np.isfinite(panel[t, c]):
            raise SingularMatrixError(
                f"non-finite pivot candidate for global column {gcol} "
                "(earlier tiny pivot overflowed; enable perturbation or "
                "loosen pivot_threshold)",
                pivot_index=gcol,
            )
        if panel[t, c] == 0.0:
            if monitor is None or not monitor.perturb:
                raise SingularMatrixError(
                    f"no nonzero pivot for global column {gcol}",
                    pivot_index=gcol,
                )
            t = c  # numerically dead column: perturb the diagonal below
        if (
            pivot_threshold < 1.0
            and abs(panel[c, c]) >= pivot_threshold * abs(panel[t, c])
            and panel[c, c] != 0.0
        ):
            t = c  # keep the diagonal: threshold pivoting
        pivots.append((positions[c], positions[t]))
        if t != c:
            tmp = scratch[0, :]
            tmp[:] = panel[c, :]
            panel[c, :] = panel[t, :]
            panel[t, :] = tmp
        if monitor is not None:
            panel[c, c] = monitor.consider(gcol, float(panel[c, c]))
        piv = panel[c, c]
        if c + 1 < nrows:
            panel[c + 1 :, c] /= piv
            if cadd is not None:
                cadd(BLAS1, max(srows - c - 1, 0))
        if c + 1 < bs:
            sub = panel[c + 1 :, c + 1 : bs]
            x = panel[c + 1 :, c]
            outer = scratch[1 : nrows - c, 1 : bs - c]
            np.multiply(x[:, None], panel[c, c + 1 : bs], out=outer)
            np.subtract(sub, outer, out=sub)
            if cadd is not None:
                cadd(DGEMV, 2.0 * max(srows - c - 1, 0) * (bs - c - 1), gran=bs)

    if not np.all(np.isfinite(panel)):
        bad = int(np.argwhere(~np.isfinite(panel))[0, 1])
        gcol = part.start(K) + min(bad, bs - 1)
        raise SingularMatrixError(
            f"non-finite entries in factored panel {K} "
            f"(first in global column {gcol}); matrix is numerically "
            "singular for this pivoting policy",
            pivot_index=gcol,
        )

    # scatter the panel back into the blocks
    off = 0
    for _I, blk in panel_blocks:
        rows = blk.shape[0]
        blk[:, :] = panel[off : off + rows, :]
        off += rows

    m.pivot_seq[K] = pivots
    if m.abft is not None:
        # the panel kernels are elementwise; re-anchor rather than carry
        m.abft.anchor_column(m, K)
    return FactoredColumn(
        K=K,
        pivots=pivots,
        diag=m.blocks[(K, K)],
        lblocks={I: m.blocks[(I, K)] for I in below},
    )


def factored_column_of(m: BlockLUMatrix, K: int) -> FactoredColumn:
    """Re-wrap an already factored local column (views, no copies)."""
    if m.pivot_seq[K] is None:
        raise RuntimeError(f"Factor({K}) has not run yet")
    below = [I for I in m.bstruct.l_block_rows(K) if I > K]
    return FactoredColumn(
        K=K,
        pivots=m.pivot_seq[K],
        diag=m.blocks[(K, K)],
        lblocks={I: m.blocks[(I, K)] for I in below},
    )


def apply_pivots_to_column(m: BlockLUMatrix, pivots, J: int) -> None:
    """Replay a pivot sequence (delayed row interchanges) on block column J."""
    for r1, r2 in pivots:
        m.swap_rows_in_block_column(J, r1, r2)


def update_block_column(
    m: BlockLUMatrix,
    fc: FactoredColumn,
    J: int,
    counter: KernelCounter = None,
    apply_pivots: bool = True,
    batched: bool = None,
) -> None:
    """Run ``Update(K, J)`` for ``J > K`` (Fig. 8) against local storage ``m``
    using the factored column ``fc`` (local views or a received message).

    ``batched=None`` follows the module default (:func:`batched_updates`);
    both paths produce bit-identical factors and identical KernelCounter
    tallies — the batched sweep only fuses dispatch and shares one product
    scratch across the panel's GEMMs.
    """
    K = fc.K
    if J <= K:
        raise ValueError("Update(K, J) requires J > K")
    if apply_pivots:
        apply_pivots_to_column(m, fc.pivots, J)

    ukj = m.blocks.get((K, J))
    if ukj is None:
        return  # structurally zero: nothing to scale or propagate

    # structural subcolumn count, for paper-faithful FLOP accounting
    ncols_structural = len(m.bstruct.udense_cols[(K, J)])

    if m.abft is not None:
        m.abft.pre_solve(K, J, fc.diag)
    unit_lower_solve(fc.diag, ukj, counter=counter, ncols_structural=ncols_structural)
    if m.abft is not None:
        m.abft.post_solve(K, J, ukj)

    if batched is None:
        batched = _BATCHED_UPDATES

    if not batched:
        lbs = fc.sorted_lblocks()
        # legacy per-block path (kept for A/B timing + equivalence tests)
        for I, lik in lbs:
            target = m.blocks.get((I, J))
            if target is None:
                # per George-Ng this contribution must vanish; verify cheaply
                if np.any(lik @ ukj):
                    raise StructureViolation(
                        f"update ({K},{J}) touches absent block ({I},{J})"
                    )
                continue
            if m.abft is not None:
                m.abft.carry_gemm(I, J, lik, ukj, K=K)
            gemm_update(
                target,
                lik,
                ukj,
                counter=counter,
                ncols_structural=ncols_structural,
                nrows_structural=m.bstruct.l_rows_count(I, K),
            )
        return

    # batched sweep: one contiguous product scratch for the whole panel,
    # hoisted lookups and a per-column metadata memo (structural row counts
    # resolved once, not once per consuming Update), zero per-block
    # allocation beyond the scratch.  Per-block BLAS shapes (and therefore
    # bits) are preserved — see module-level note.
    sweep = fc.update_sweep(m.bstruct)
    if not sweep:
        return
    scratch = scratch_buffer("update-prod", fc._lmaxrows, ukj.shape[1])
    blocks_get = m.blocks.get
    abft = m.abft
    matmul = np.matmul
    subtract = np.subtract
    cadd = counter.add if counter is not None else None
    wide = ncols_structural >= 2
    for I, lik, nrows, lk in sweep:
        prod = scratch[: lik.shape[0]]
        matmul(lik, ukj, out=prod)
        target = blocks_get((I, J))
        if target is None:
            # per George-Ng this contribution must vanish; verify cheaply
            if np.any(prod):
                raise StructureViolation(
                    f"update ({K},{J}) touches absent block ({I},{J})"
                )
            continue
        if abft is not None:
            abft.carry_gemm(I, J, lik, ukj, K=K)
        subtract(target, prod, out=target)
        if cadd is not None:
            fl = 2.0 * nrows * lk * ncols_structural
            if wide and nrows >= 2:
                cadd(DGEMM, fl, gran=lk if lk < ncols_structural else ncols_structural)
            else:
                cadd(DGEMV, fl, gran=lk)
