"""The two task kinds of the partitioned algorithm (Figs. 7 and 8).

``Factor(K)``
    Panel factorization of block column ``K`` with partial pivoting: the
    pivot for each column is searched over *all* rows of the stacked L panel
    (diagonal block plus every nonzero block below), rows are interchanged
    inside the panel immediately (BLAS-1/2 work), and the resulting pivot
    sequence is recorded for **delayed** application to the rest of the
    matrix — the paper's message-aggregating delayed-pivoting technique.

``Update(K, J)``
    Replays block ``K``'s pivot sequence on block column ``J``, computes
    ``U_KJ <- L_KK^{-1} U_KJ`` and then ``A_IJ -= L_IK U_KJ`` for every
    nonzero ``L_IK`` — the BLAS-3 DGEMM payload that Theorem 1's dense
    subcolumns make possible.

Updates consume a :class:`FactoredColumn` — the self-contained result of
``Factor(K)`` (pivot sequence, diagonal block, L blocks).  In the parallel
codes this object *is* the message the owner of column ``K`` multicasts;
sequentially it is just a set of views into the same storage.

Pivot bookkeeping is LINPACK-style: interchanges are applied to block
columns ``>= K`` only (never retroactively to already-factored columns),
and the triangular solvers replay them in order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .blocks import BlockLUMatrix, SingularMatrixError, StructureViolation
from .counter import KernelCounter, DGEMV, BLAS1
from .kernels import gemm_update, unit_lower_solve


@dataclass
class FactoredColumn:
    """Everything ``Update(*, J)`` needs from a factored block column K."""

    K: int
    pivots: list  # [(m_pos, t_pos), ...] global position pairs, in order
    diag: np.ndarray  # the bs x bs diagonal block (unit-lower L + upper U)
    lblocks: dict  # block row I (> K) -> dense L block

    def nbytes(self) -> int:
        b = self.diag.nbytes + 16 * len(self.pivots)
        for blk in self.lblocks.values():
            b += blk.nbytes
        return b


def factor_block_column(
    m: BlockLUMatrix,
    K: int,
    counter: KernelCounter = None,
    pivot_threshold: float = 1.0,
    monitor=None,
) -> FactoredColumn:
    """Run ``Factor(K)`` (Fig. 7); records the pivot sequence on ``m`` and
    returns the :class:`FactoredColumn` for downstream updates.

    ``pivot_threshold`` is the classical threshold-pivoting parameter
    ``u``: the diagonal is kept whenever ``|a_cc| >= u * max_i |a_ic|``.
    ``u = 1.0`` is pure partial pivoting (the paper's setting); smaller
    values trade a bounded growth-factor increase for fewer interchanges
    (and fewer swap messages in the parallel codes).

    ``monitor`` is an optional :class:`repro.numfact.PivotMonitor`: it
    tracks pivot growth and, when enabled, replaces tiny pivots by
    ``±sqrt(eps)*||A||`` (SuperLU_DIST-style static perturbation) instead
    of letting the elimination divide by them."""
    part = m.part
    bs = part.size(K)
    if m.abft is not None:
        # verify the panel at consumption: a silently corrupted input
        # block must be caught before its poison spreads into the factors
        for I in m.bstruct.l_block_rows(K):
            m.abft.verify_block(I, K, m.blocks[(I, K)], where=f"factor({K})")
    below = [I for I in m.bstruct.l_block_rows(K) if I > K]
    panel_blocks = [(K, m.blocks[(K, K)])] + [(I, m.blocks[(I, K)]) for I in below]
    panel = np.vstack([b for _, b in panel_blocks])
    positions = np.concatenate([part.positions(I) for I, _ in panel_blocks])
    srows = m.bstruct.panel_rows_count(K)  # packed-storage rows (accounting)

    if not 0.0 < pivot_threshold <= 1.0:
        raise ValueError("pivot_threshold must be in (0, 1]")
    pivots = []
    for c in range(bs):
        gcol = part.start(K) + c
        col = panel[c:, c]
        t = int(np.argmax(np.abs(col))) + c
        if not np.isfinite(panel[t, c]):
            raise SingularMatrixError(
                f"non-finite pivot candidate for global column {gcol} "
                "(earlier tiny pivot overflowed; enable perturbation or "
                "loosen pivot_threshold)",
                pivot_index=gcol,
            )
        if panel[t, c] == 0.0:
            if monitor is None or not monitor.perturb:
                raise SingularMatrixError(
                    f"no nonzero pivot for global column {gcol}",
                    pivot_index=gcol,
                )
            t = c  # numerically dead column: perturb the diagonal below
        if (
            pivot_threshold < 1.0
            and abs(panel[c, c]) >= pivot_threshold * abs(panel[t, c])
            and panel[c, c] != 0.0
        ):
            t = c  # keep the diagonal: threshold pivoting
        pivots.append((int(positions[c]), int(positions[t])))
        if t != c:
            panel[[c, t], :] = panel[[t, c], :]
        if monitor is not None:
            panel[c, c] = monitor.consider(gcol, float(panel[c, c]))
        piv = panel[c, c]
        if c + 1 < panel.shape[0]:
            panel[c + 1 :, c] /= piv
            if counter is not None:
                counter.add(BLAS1, max(srows - c - 1, 0))
        if c + 1 < bs:
            sub = panel[c + 1 :, c + 1 : bs]
            sub -= np.outer(panel[c + 1 :, c], panel[c, c + 1 : bs])
            if counter is not None:
                counter.add(DGEMV, 2.0 * max(srows - c - 1, 0) * (bs - c - 1), gran=bs)

    if not np.all(np.isfinite(panel)):
        bad = int(np.argwhere(~np.isfinite(panel))[0, 1])
        gcol = part.start(K) + min(bad, bs - 1)
        raise SingularMatrixError(
            f"non-finite entries in factored panel {K} "
            f"(first in global column {gcol}); matrix is numerically "
            "singular for this pivoting policy",
            pivot_index=gcol,
        )

    # scatter the panel back into the blocks
    off = 0
    for _I, blk in panel_blocks:
        rows = blk.shape[0]
        blk[:, :] = panel[off : off + rows, :]
        off += rows

    m.pivot_seq[K] = pivots
    if m.abft is not None:
        # the panel kernels are elementwise; re-anchor rather than carry
        m.abft.anchor_column(m, K)
    return FactoredColumn(
        K=K,
        pivots=pivots,
        diag=m.blocks[(K, K)],
        lblocks={I: m.blocks[(I, K)] for I in below},
    )


def factored_column_of(m: BlockLUMatrix, K: int) -> FactoredColumn:
    """Re-wrap an already factored local column (views, no copies)."""
    if m.pivot_seq[K] is None:
        raise RuntimeError(f"Factor({K}) has not run yet")
    below = [I for I in m.bstruct.l_block_rows(K) if I > K]
    return FactoredColumn(
        K=K,
        pivots=m.pivot_seq[K],
        diag=m.blocks[(K, K)],
        lblocks={I: m.blocks[(I, K)] for I in below},
    )


def apply_pivots_to_column(m: BlockLUMatrix, pivots, J: int) -> None:
    """Replay a pivot sequence (delayed row interchanges) on block column J."""
    for r1, r2 in pivots:
        m.swap_rows_in_block_column(J, r1, r2)


def update_block_column(
    m: BlockLUMatrix,
    fc: FactoredColumn,
    J: int,
    counter: KernelCounter = None,
    apply_pivots: bool = True,
) -> None:
    """Run ``Update(K, J)`` for ``J > K`` (Fig. 8) against local storage ``m``
    using the factored column ``fc`` (local views or a received message)."""
    K = fc.K
    if J <= K:
        raise ValueError("Update(K, J) requires J > K")
    if apply_pivots:
        apply_pivots_to_column(m, fc.pivots, J)

    ukj = m.blocks.get((K, J))
    if ukj is None:
        return  # structurally zero: nothing to scale or propagate

    # structural subcolumn count, for paper-faithful FLOP accounting
    ncols_structural = len(m.bstruct.udense_cols[(K, J)])

    if m.abft is not None:
        m.abft.pre_solve(K, J, fc.diag)
    unit_lower_solve(fc.diag, ukj, counter=counter, ncols_structural=ncols_structural)
    if m.abft is not None:
        m.abft.post_solve(K, J, ukj)

    for I, lik in sorted(fc.lblocks.items()):
        target = m.blocks.get((I, J))
        if target is None:
            # per George-Ng this contribution must vanish; verify cheaply
            if np.any(lik @ ukj):
                raise StructureViolation(
                    f"update ({K},{J}) touches absent block ({I},{J})"
                )
            continue
        if m.abft is not None:
            m.abft.carry_gemm(I, J, lik, ukj, K=K)
        gemm_update(
            target,
            lik,
            ukj,
            counter=counter,
            ncols_structural=ncols_structural,
            nrows_structural=m.bstruct.l_rows_count(I, K),
        )
