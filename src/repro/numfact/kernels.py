"""Dense micro-kernels with FLOP accounting.

All heavy arithmetic funnels through numpy (which dispatches to the host
BLAS); what matters for the reproduction is the *accounting*: each call
reports its flops and kernel class so the machine model can price it at
T3D/T3E rates.
"""

from __future__ import annotations

import numpy as np

from .counter import KernelCounter, DGEMM, DGEMV, BLAS1


#: process-wide scratch buffers, keyed by use site.  The simulator runs
#: every rank cooperatively on one host thread, and each use site fully
#: writes its scratch before reading it inside a single yield-free window,
#: so reusing (even clobbering) a slot across calls and ranks is safe.
#: Growing in place (never shrinking) keeps the hot paths free of large
#: per-call ``np.empty`` allocations, whose mmap + first-touch page faults
#: dominate at bench scale.
_SCRATCH_POOL: dict = {}


def scratch_buffer(slot: str, nrows: int, ncols: int = None) -> np.ndarray:
    """An uninitialised float64 scratch of the requested shape, recycled
    per ``slot`` (see :data:`_SCRATCH_POOL` for the safety argument)."""
    need = nrows if ncols is None else nrows * ncols
    buf = _SCRATCH_POOL.get(slot)
    if buf is None or buf.size < need:
        size = need if buf is None else max(need, 2 * buf.size)
        buf = _SCRATCH_POOL[slot] = np.empty(size)
    flat = buf[:need]
    return flat if ncols is None else flat.reshape(nrows, ncols)


def FLOP_GEMM(m: int, k: int, n: int) -> float:
    """Flops of an ``m x k`` times ``k x n`` multiply-accumulate."""
    return 2.0 * m * k * n


def FLOP_TRSM(k: int, n: int) -> float:
    """Flops of a triangular solve with ``k x k`` triangle and ``n`` rhs."""
    return float(k) * k * n


def as_gemm_operand(X):
    """A C-contiguous view of a GEMM operand — the identity on the packed
    path (dense blocks are allocated contiguous), an explicit
    ``ascontiguousarray`` otherwise.

    BLAS silently copies a strided operand into a hidden temporary on every
    call; making the copy explicit here means the hot paths can assert it
    never happens (``as_gemm_operand(b) is b`` for packed blocks).
    """
    return X if X.flags.c_contiguous else np.ascontiguousarray(X)


def gemm_update(
    C,
    A,
    B,
    counter: KernelCounter = None,
    ncols_structural=None,
    nrows_structural=None,
    out=None,
):
    """``C -= A @ B`` with DGEMM/DGEMV accounting.

    ``ncols_structural`` / ``nrows_structural`` — the paper's packed
    supernode storage holds only the structurally dense subcolumns of ``B``
    (Fig. 8 lines 12-16) and the structural rows of ``A``; pass their counts
    so the *accounted* flops match what that implementation executes, even
    though our numerics safely run on the padded full blocks (structurally
    zero positions are exact zeros — see DESIGN.md invariants).

    ``out`` is an optional preallocated product scratch with exactly
    ``B.shape[1]`` columns and at least ``A.shape[0]`` rows: the product is
    formed with ``np.matmul(..., out=)`` (bit-identical to ``A @ B`` — same
    BLAS call, same shapes) and subtracted in place, so the update allocates
    nothing.  Batched panel sweeps share one such scratch across all their
    GEMMs (see :func:`repro.numfact.tasks.update_block_column`).
    """
    A = as_gemm_operand(A)
    B = as_gemm_operand(B)
    if out is None:
        C -= A @ B
    else:
        prod = out[: A.shape[0]]
        np.matmul(A, B, out=prod)
        np.subtract(C, prod, out=C)
    if counter is not None:
        ncols = B.shape[1] if ncols_structural is None else ncols_structural
        nrows = A.shape[0] if nrows_structural is None else nrows_structural
        fl = FLOP_GEMM(nrows, A.shape[1], ncols)
        kernel = DGEMM if ncols >= 2 and nrows >= 2 else DGEMV
        counter.add(kernel, fl, gran=min(A.shape[1], ncols) if kernel == DGEMM else A.shape[1])
    return C


def unit_lower_solve(L, B, counter: KernelCounter = None, ncols_structural=None):
    """In-place solve ``L X = B`` with ``L`` unit lower triangular
    (only the strictly-lower part of ``L`` is referenced)."""
    k = L.shape[0]
    if B.ndim == 1:
        for i in range(1, k):
            B[i] -= L[i, :i] @ B[:i]
    else:
        for i in range(1, k):
            B[i, :] -= L[i, :i] @ B[:i, :]
    if counter is not None:
        ncols = (1 if B.ndim == 1 else B.shape[1]) if ncols_structural is None else ncols_structural
        kernel = DGEMM if ncols >= 2 else DGEMV
        counter.add(kernel, FLOP_TRSM(k, ncols), gran=min(k, ncols) if kernel == DGEMM else k)
    return B


def upper_solve(U, B, counter: KernelCounter = None):
    """In-place solve ``U X = B`` with ``U`` upper triangular
    (diagonal included, referenced from the upper part of ``U``)."""
    k = U.shape[0]
    if B.ndim == 1:
        for i in range(k - 1, -1, -1):
            if i + 1 < k:
                B[i] -= U[i, i + 1 :] @ B[i + 1 :]
            B[i] /= U[i, i]
    else:
        for i in range(k - 1, -1, -1):
            if i + 1 < k:
                B[i, :] -= U[i, i + 1 :] @ B[i + 1 :, :]
            B[i, :] /= U[i, i]
    if counter is not None:
        ncols = 1 if B.ndim == 1 else B.shape[1]
        counter.add(DGEMM if ncols >= 2 else DGEMV, FLOP_TRSM(k, ncols) + k * ncols)
    return B


def rank1_update(A, x, y, counter: KernelCounter = None):
    """``A -= outer(x, y)`` (the BLAS-2 kernel inside panel factorization)."""
    A -= np.outer(x, y)
    if counter is not None:
        counter.add(DGEMV, 2.0 * len(x) * len(y))
    return A


def scale_vector(x, alpha, counter: KernelCounter = None):
    """``x /= alpha`` (BLAS-1)."""
    x /= alpha
    if counter is not None:
        counter.add(BLAS1, float(len(x)))
    return x


# -- ABFT checksum kernels ---------------------------------------------------
#
# A block ``B`` carries two checksum vectors: its column sums ``ones @ B``
# and its row sums ``B @ ones``.  The point of keeping both is that they
# propagate through the factorization's BLAS-3 kernels at BLAS-2 cost:
#
# * ``C -= A @ B``  =>  cs(C) -= cs(A) @ B   and  rs(C) -= A @ rs(B)
# * ``L X = B``     =>  rs(X) = L^{-1} rs(B)
#
# so a ``b x b`` GEMM (2b^3 flops) costs only ~4b^2 extra flops to protect
# — the <15% ABFT overhead budget (BENCH_abft_overhead.json) follows from
# this ratio at the paper's block size.


def block_checksums(B):
    """Fresh (column-sum, row-sum) checksum pair of a dense block."""
    B = np.asarray(B)
    return B.sum(axis=0), B.sum(axis=1)


def checksum_carry_gemm(cs, rs, A, B, cs_a=None, rs_b=None,
                        counter: KernelCounter = None):
    """Advance ``(cs, rs)`` of a target block across ``C -= A @ B``.

    In place on the checksum vectors; ``A``/``B`` are the operands of the
    GEMM that just ran (or is about to — the carry is independent of C).
    When the caller already holds the operands' own checksums — the
    ledger anchors ``cs(A)`` at Factor time and carries ``rs(B)`` through
    the triangular solve — pass them as ``cs_a``/``rs_b`` to skip the
    two O(b^2) reductions and leave only the border products.

    Accounting: with the operand checksums in hand this is exactly the
    Huang-Abraham augmented multiply ``[A; cs_a] @ [B, rs_b]`` — the
    checksum rows/columns ride as the border of a single DGEMM call — so
    the border flops are priced at DGEMM rate at the protected GEMM's
    granularity.  Only the fallback reductions (operand not in the
    caller's ledger, e.g. a remote L block) are BLAS-2.
    """
    m, k = A.shape
    n = B.shape[1]
    extra = 0.0
    if cs_a is None:
        cs_a = A.sum(axis=0)
        extra += m * k
    if rs_b is None:
        rs_b = B.sum(axis=1)
        extra += k * n
    cs -= cs_a @ B
    rs -= A @ rs_b
    if counter is not None:
        counter.add(DGEMM, float(2 * k * n + 2 * m * k), gran=min(k, n))
        if extra:
            counter.add(DGEMV, float(extra))
    return cs, rs


def checksum_carry_solve(L, rs, counter: KernelCounter = None):
    """Advance a row-sum checksum across ``X = L^{-1} B`` (unit lower L).

    Returns the predicted ``rs(X)`` given ``rs = rs(B)``; in place."""
    unit_lower_solve(L, rs)
    if counter is not None:
        counter.add(DGEMV, FLOP_TRSM(L.shape[0], 1))
    return rs
