"""The paper's sequential performance model, Eqs. (1)-(4) of Section 6.1.

With BLAS-2 speed ``w2`` (seconds/flop), BLAS-3 speed ``w3``, dynamic flop
count ``C`` (SuperLU), static flop count ``C~`` (S*), DGEMM fraction ``r``
and symbolic/numeric time ratio ``h``::

    T_SuperLU = (1 + h) * w2 * C                      (1, 3)
    T_S*      = ((1 - r) * w2 + r * w3) * C~          (2)
    T_S*/T_SuperLU = ((1-r) w2 + r w3) / ((1+h) w2) * (C~/C)   (4)

The paper measures h < 0.82, r ~ 0.65 and mean C~/C ~ 3.98, yielding
predicted ratios ~0.65 on T3D and ~0.80 on T3E (0.48 / 0.42 for dense).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine import MachineSpec


@dataclass
class SequentialModel:
    """Evaluated Eq. (1)-(4) for one matrix on one machine."""

    t_superlu: float
    t_sstar: float
    h: float
    r: float
    flop_ratio: float

    @property
    def time_ratio(self) -> float:
        """T_S* / T_SuperLU (Eq. 4)."""
        return self.t_sstar / self.t_superlu if self.t_superlu > 0 else float("inf")


def sequential_time_model(
    spec: MachineSpec,
    superlu_flops: float,
    sstar_flops: float,
    dgemm_fraction: float,
    h: float = 0.5,
) -> SequentialModel:
    """Evaluate the model with measured quantities.

    ``h`` is the SuperLU symbolic/numeric time ratio; the paper bounds it by
    0.82 for its matrices, and our SuperLU-like code reports a proxy
    (DFS edge traversals vs flops) that callers can substitute.
    """
    w2 = 1.0 / spec.kernel_rate("dgemv")
    w3 = 1.0 / spec.kernel_rate("dgemm")
    t_superlu = (1.0 + h) * w2 * superlu_flops
    t_sstar = ((1.0 - dgemm_fraction) * w2 + dgemm_fraction * w3) * sstar_flops
    return SequentialModel(
        t_superlu=t_superlu,
        t_sstar=t_sstar,
        h=h,
        r=dgemm_fraction,
        flop_ratio=sstar_flops / superlu_flops if superlu_flops else float("inf"),
    )
