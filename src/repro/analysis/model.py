"""The paper's sequential performance model, Eqs. (1)-(4) of Section 6.1,
and its parallel generalization used by the autotuner.

With BLAS-2 speed ``w2`` (seconds/flop), BLAS-3 speed ``w3``, dynamic flop
count ``C`` (SuperLU), static flop count ``C~`` (S*), DGEMM fraction ``r``
and symbolic/numeric time ratio ``h``::

    T_SuperLU = (1 + h) * w2 * C                      (1, 3)
    T_S*      = ((1 - r) * w2 + r * w3) * C~          (2)
    T_S*/T_SuperLU = ((1-r) w2 + r w3) / ((1+h) w2) * (C~/C)   (4)

The paper measures h < 0.82, r ~ 0.65 and mean C~/C ~ 3.98, yielding
predicted ratios ~0.65 on T3D and ~0.80 on T3E (0.48 / 0.42 for dense).

:func:`plan_time_model` extends the same flop-pricing idea to the parallel
codes: the Eq. (2) compute term is divided across ``P`` processors (capped
by Brent's bound through the task-graph critical path and derated by the
layout's measured load-balance regime, Fig. 18), and a latency/bandwidth
communication term is added from the predicted message traffic of the
layout (Section 5's consumer multicast for 1D, row/column broadcasts plus
pivot reductions for 2D; the synchronous 2D variant pays its per-stage
round barriers, Table 7).  The result is a *cheap, pattern-only* time
estimate — exact enough to rank configurations and prune the hopeless
ones, with the simulator reserved for the survivors (``repro.tune``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..machine import MachineSpec

#: Load-balance derating per layout (Fig. 18): the 2D block-cyclic mapping
#: balances update work better than the 1D column mapping on most matrices.
LOAD_BALANCE = {"sequential": 1.0, "1d": 1.30, "2d": 1.10}

#: Fraction of communication the asynchronous pipelined codes overlap with
#: compute (Section 5.2); the synchronous variant exposes everything.
ASYNC_COMM_HIDDEN = 0.5


@dataclass
class SequentialModel:
    """Evaluated Eq. (1)-(4) for one matrix on one machine."""

    t_superlu: float
    t_sstar: float
    h: float
    r: float
    flop_ratio: float

    @property
    def time_ratio(self) -> float:
        """T_S* / T_SuperLU (Eq. 4)."""
        return self.t_sstar / self.t_superlu if self.t_superlu > 0 else float("inf")


def sequential_time_model(
    spec: MachineSpec,
    superlu_flops: float,
    sstar_flops: float,
    dgemm_fraction: float,
    h: float = 0.5,
) -> SequentialModel:
    """Evaluate the model with measured quantities.

    ``h`` is the SuperLU symbolic/numeric time ratio; the paper bounds it by
    0.82 for its matrices, and our SuperLU-like code reports a proxy
    (DFS edge traversals vs flops) that callers can substitute.
    """
    w2 = 1.0 / spec.kernel_rate("dgemv")
    w3 = 1.0 / spec.kernel_rate("dgemm")
    t_superlu = (1.0 + h) * w2 * superlu_flops
    t_sstar = ((1.0 - dgemm_fraction) * w2 + dgemm_fraction * w3) * sstar_flops
    return SequentialModel(
        t_superlu=t_superlu,
        t_sstar=t_sstar,
        h=h,
        r=dgemm_fraction,
        flop_ratio=sstar_flops / superlu_flops if superlu_flops else float("inf"),
    )


@dataclass
class PlanTimeModel:
    """Predicted factorization time of one tuning configuration.

    ``t_compute`` is the Eq. (2)-priced flop time divided across the
    processors (load-balance derated, critical-path capped); ``t_comm`` is
    the exposed latency + bandwidth time of the layout's predicted message
    traffic; ``t_sync`` is the synchronous 2D variant's per-stage barrier
    cost (zero for async and 1D).
    """

    t_compute: float
    t_comm: float
    t_sync: float = 0.0

    @property
    def total(self) -> float:
        return self.t_compute + self.t_comm + self.t_sync


def plan_time_model(
    spec: MachineSpec,
    *,
    total_seconds: float,
    cp_seconds: float,
    nprocs: int = 1,
    layout: str = "sequential",
    comm_messages: float = 0.0,
    comm_bytes: float = 0.0,
    synchronous: bool = False,
    n_stages: int = 0,
) -> PlanTimeModel:
    """Predict the parallel factorization time of one configuration.

    ``total_seconds`` and ``cp_seconds`` are the task graph's total work
    and critical path priced by ``spec`` (granularity-derated, so the
    block-size dependence of the BLAS-3 rates is already in them);
    ``comm_messages`` / ``comm_bytes`` are the layout's predicted traffic
    (see :mod:`repro.tune.space`).  All inputs are pattern-only — no
    numeric factorization and no simulation happens here.
    """
    if nprocs <= 1 or layout == "sequential":
        return PlanTimeModel(t_compute=total_seconds, t_comm=0.0)
    balance = LOAD_BALANCE.get(layout, 1.0)
    t_compute = max(total_seconds * balance / nprocs, cp_seconds)
    # per-processor share of the wire time; async pipelining hides part of it
    t_wire = (
        comm_messages * spec.latency_s + comm_bytes / spec.bandwidth_bps
    ) / nprocs
    hidden = 0.0 if synchronous else ASYNC_COMM_HIDDEN
    t_comm = t_wire * (1.0 - hidden)
    t_sync = 0.0
    if synchronous and n_stages:
        # every elimination stage ends with a grid-wide rendezvous: a
        # log-depth latency chain, the Table 7 sync-vs-async gap
        t_sync = n_stages * spec.latency_s * max(1.0, math.log2(nprocs))
    return PlanTimeModel(t_compute=t_compute, t_comm=t_comm, t_sync=t_sync)
