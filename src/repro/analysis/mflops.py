"""MFLOPS reporting, paper convention (Section 6).

The paper's achieved-MFLOPS formula deliberately excludes the extra
operations introduced by overestimation::

    Achieved MFLOPS = (operation count obtained from SuperLU)
                      / (parallel time of our algorithm)

so the numerator is the *dynamic* factorization's flop count and the
denominator is S*'s (simulated) runtime.
"""

from __future__ import annotations

from ..baselines import DynamicLU


def operation_count(dyn: DynamicLU) -> float:
    """The SuperLU-style operation count for a matrix (the numerator)."""
    return dyn.flops


def achieved_mflops(superlu_flops: float, parallel_seconds: float) -> float:
    """Achieved MFLOPS per the paper's formula."""
    if parallel_seconds <= 0:
        return float("inf")
    return superlu_flops / parallel_seconds / 1e6
