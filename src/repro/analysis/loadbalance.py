"""Load-balance factor (Fig. 18): ``work_total / (P * work_max)``.

Following the paper, only the *updating* work is counted — it dominates the
computation — so the factor isolates how evenly the mapping spreads the
GEMM payload, independent of pipeline stalls.
"""

from __future__ import annotations


def load_balance_factor(per_rank_update_flops) -> float:
    """``work_total / (P * work_max)`` over per-rank update-work tallies."""
    work = list(per_rank_update_flops)
    wmax = max(work) if work else 0.0
    if wmax <= 0:
        return 1.0
    return sum(work) / (len(work) * wmax)


def update_work_by_rank(sim_result, kernels=("dgemm",)) -> list:
    """Extract per-rank update flops (DGEMM class) from a simulation."""
    return [
        sum(c.flops.get(k, 0.0) for k in kernels) for c in sim_result.counters
    ]
