"""ASCII timelines of simulated parallel runs.

Turns the :class:`repro.machine.TaskSpan` trace of a simulation into a
Gantt-style per-rank chart — the execution-time counterpart of the
schedule-replay charts in :mod:`repro.scheduling.gantt` (Fig. 11), useful
for *seeing* the 2D pipeline overlap that Table 7 measures.
"""

from __future__ import annotations


def render_timeline(spans, nprocs: int, width: int = 72, max_label: int = 6) -> str:
    """Render task spans (from ``SimResult.spans``) as one row per rank."""
    if not spans:
        return "(no spans recorded)"
    t_end = max(s.end for s in spans)
    if t_end <= 0:
        return "(empty timeline)"
    scale = width / t_end
    rows = []
    for r in range(nprocs):
        cells = [" "] * (width + max_label + 2)
        for s in (x for x in spans if x.rank == r):
            a = int(s.start * scale)
            b = max(int(s.end * scale), a + 1)
            txt = s.label[: min(b - a, max_label)]
            for i, ch in enumerate(txt):
                if a + i < len(cells):
                    cells[a + i] = ch
            for i in range(a + len(txt), min(b, len(cells))):
                cells[i] = "="
        rows.append(f"P{r:<3d}|" + "".join(cells).rstrip())
    rows.append(f"total = {t_end:.4g} s")
    return "\n".join(rows)


def overlap_profile(spans, nprocs: int, samples: int = 200) -> list:
    """Number of concurrently busy ranks sampled across the run —
    integrates to the parallel efficiency."""
    if not spans:
        return []
    t_end = max(s.end for s in spans)
    out = []
    for i in range(samples):
        t = (i + 0.5) * t_end / samples
        busy = len({s.rank for s in spans if s.start <= t < s.end})
        out.append(busy)
    return out


def export_chrome_trace(spans, path) -> None:
    """Write task spans as a Chrome-tracing JSON file (load in
    ``chrome://tracing`` or Perfetto) — microsecond timestamps, one
    simulated rank per tracing thread."""
    import json

    events = []
    for s in spans:
        events.append(
            {
                "name": s.label,
                "ph": "X",
                "ts": s.start * 1e6,
                "dur": max((s.end - s.start) * 1e6, 0.01),
                "pid": 0,
                "tid": s.rank,
                "cat": "task",
            }
        )
    with open(path, "w") as fh:
        json.dump({"traceEvents": events}, fh)
