"""Numerical-stability diagnostics for GEPP factorizations.

Partial pivoting is the whole point of the paper — nonsymmetric systems
need row interchanges for backward stability.  This module quantifies that:

* **element growth factor** ``max|U| / max|A|`` — the classical GEPP
  stability measure (bounded by 2^(n-1) in theory, small in practice);
* **componentwise backward error** of a computed solution
  (Oettli-Prager): ``max_i |Ax - b|_i / (|A||x| + |b|)_i``;
* **iterative refinement** that drives the backward error to roundoff in a
  few extra triangular solves, reusing the factorization.
"""

from __future__ import annotations

import numpy as np

from ..sparse import CSRMatrix, csr_matvec


def growth_factor(A: CSRMatrix, lu_dense_max: float) -> float:
    """Element growth ``max |U| / max |A|`` given the factor's max element."""
    amax = float(np.max(np.abs(A.data))) if A.nnz else 0.0
    if amax == 0.0:
        return float("inf")
    return lu_dense_max / amax


def factor_max_element(lu) -> float:
    """Largest magnitude stored in a BlockLUMatrix-backed factorization."""
    best = 0.0
    for blk in lu.matrix.blocks.values():
        if blk.size:
            best = max(best, float(np.max(np.abs(blk))))
    return best


def backward_error(A: CSRMatrix, x: np.ndarray, b: np.ndarray) -> float:
    """Oettli-Prager componentwise relative backward error."""
    r = csr_matvec(A, x) - b
    absA = CSRMatrix(A.nrows, A.ncols, A.indptr, A.indices, np.abs(A.data))
    denom = csr_matvec(absA, np.abs(x)) + np.abs(b)
    mask = denom > 0
    if not np.any(mask):
        return 0.0
    return float(np.max(np.abs(r[mask]) / denom[mask]))


def iterative_refinement(
    A: CSRMatrix,
    solve,
    b: np.ndarray,
    max_iters: int = 5,
    tol: float = 1e-14,
):
    """Refine ``x = solve(b)`` with residual corrections.

    ``solve`` is any function mapping a right-hand side to a solution using
    the (fixed) factorization, e.g. ``SStarSolver.solve``.  Returns
    ``(x, history)`` where ``history`` is the backward error per iteration.
    """
    x = solve(b)
    history = [backward_error(A, x, b)]
    for _ in range(max_iters):
        if history[-1] <= tol:
            break
        r = b - csr_matvec(A, x)
        x = x + solve(r)
        history.append(backward_error(A, x, b))
    return x, history
