"""Performance analysis: MFLOPS reporting, load balance, the Eq. (1)-(4)
sequential model, and Theorem 2 overlap checks."""

from .mflops import achieved_mflops, operation_count
from .loadbalance import load_balance_factor
from .model import (
    PlanTimeModel,
    SequentialModel,
    plan_time_model,
    sequential_time_model,
)
from .memory import (
    MemoryFootprint,
    footprint_1d,
    footprint_2d,
    sequential_storage_bytes,
)
from .stability import (
    backward_error,
    factor_max_element,
    growth_factor,
    iterative_refinement,
)
from .condest import condest, onenorm, onenormest_inverse
from .timeline import render_timeline, overlap_profile, export_chrome_trace
from .comm import CommReport, comm_report_from_envs, predicted_1d_volume

__all__ = [
    "achieved_mflops",
    "operation_count",
    "load_balance_factor",
    "sequential_time_model",
    "SequentialModel",
    "plan_time_model",
    "PlanTimeModel",
    "MemoryFootprint",
    "footprint_1d",
    "footprint_2d",
    "sequential_storage_bytes",
    "backward_error",
    "factor_max_element",
    "growth_factor",
    "iterative_refinement",
    "condest",
    "onenorm",
    "onenormest_inverse",
    "render_timeline",
    "overlap_profile",
    "export_chrome_trace",
    "CommReport",
    "comm_report_from_envs",
    "predicted_1d_volume",
]
