"""1-norm condition estimation (Hager's algorithm).

With the factorization in hand, ``||A^{-1}||_1`` can be estimated from a
handful of solves with A and Aᵀ (Hager 1984 / Higham's CONEST).  Combined
with ``||A||_1`` this gives the classical ``cond_1(A)`` estimate a library
user checks before trusting a solution.
"""

from __future__ import annotations

import numpy as np

from ..sparse import CSRMatrix


def onenorm(A: CSRMatrix) -> float:
    """Exact 1-norm (max absolute column sum) of a sparse matrix."""
    sums = np.zeros(A.ncols)
    np.add.at(sums, A.indices, np.abs(A.data))
    return float(sums.max()) if A.ncols else 0.0


def onenormest_inverse(solve, solve_transpose, n: int, maxiter: int = 8) -> float:
    """Estimate ``||A^{-1}||_1`` from solve oracles (Hager's iteration).

    ``solve(b)`` must return ``A^{-1} b`` and ``solve_transpose(b)``
    ``A^{-T} b``.  The estimate is a lower bound, almost always within a
    small factor of the truth.
    """
    x = np.full(n, 1.0 / n)
    best = 0.0
    for _ in range(maxiter):
        y = solve(x)
        est = float(np.abs(y).sum())
        best = max(best, est)
        xi = np.sign(y)
        xi[xi == 0] = 1.0
        z = solve_transpose(xi)
        j = int(np.argmax(np.abs(z)))
        if np.abs(z[j]) <= z @ x:
            break  # converged
        x = np.zeros(n)
        x[j] = 1.0
    # final refinement with the classic alternating-signs probe
    v = np.array([(-1.0) ** i * (1.0 + i / max(n - 1, 1)) for i in range(n)])
    est2 = 2.0 * float(np.abs(solve(v)).sum()) / (3.0 * n)
    return max(best, est2)


def condest(A: CSRMatrix, solve, solve_transpose) -> float:
    """Estimated 1-norm condition number ``||A||_1 * est(||A^{-1}||_1)``."""
    return onenorm(A) * onenormest_inverse(solve, solve_transpose, A.nrows)
