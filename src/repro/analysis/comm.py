"""Communication-volume analysis of simulated runs.

Summarises a run's message traffic — counts, bytes, per-rank fan-out and a
log2 size histogram — and computes the *predicted* 1D communication volume
from the task graph (each factored column travels once per consumer
processor), which the paper's delayed-pivoting/message-aggregation design
minimises.
"""

from __future__ import annotations

from dataclasses import dataclass



@dataclass
class CommReport:
    """Aggregate message statistics of one simulated run."""

    messages: int
    bytes_total: int
    per_rank_messages: list
    per_rank_bytes: list

    @property
    def mean_message_bytes(self) -> float:
        return self.bytes_total / self.messages if self.messages else 0.0

    def imbalance(self) -> float:
        """max/mean per-rank byte volume (1.0 = perfectly even)."""
        if not self.per_rank_bytes or sum(self.per_rank_bytes) == 0:
            return 1.0
        mean = sum(self.per_rank_bytes) / len(self.per_rank_bytes)
        return max(self.per_rank_bytes) / mean if mean else 1.0


def comm_report(sim_result) -> CommReport:
    """Build a :class:`CommReport` from a ``SimResult``."""
    return CommReport(
        messages=sim_result.messages,
        bytes_total=sim_result.bytes_sent,
        per_rank_messages=[0] * sim_result.nprocs,  # refined below if envs kept
        per_rank_bytes=[0] * sim_result.nprocs,
    )


def comm_report_from_envs(envs) -> CommReport:
    """Per-rank-resolved report straight from the simulator's Env objects."""
    return CommReport(
        messages=sum(e.sent_messages for e in envs),
        bytes_total=sum(e.sent_bytes for e in envs),
        per_rank_messages=[e.sent_messages for e in envs],
        per_rank_bytes=[e.sent_bytes for e in envs],
    )


def predicted_1d_volume(tg, schedule) -> int:
    """Bytes the 1D consumer-multicast design must move: each factored
    column block once per remote consumer processor."""
    total = 0
    for k in range(tg.N):
        consumers = {
            int(schedule.owner[t[2]])
            for t in tg.succ.get(("F", k), ())
            if t[0] == "U"
        } - {int(schedule.owner[k])}
        total += tg.col_bytes[k] * len(consumers)
    return total
