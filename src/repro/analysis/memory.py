"""Per-processor memory modeling — the paper's 1D-vs-2D memory argument.

Section 5.2: a 1D code needs up to O(S1) bytes *per processor* (a processor
must buffer whole pivot column blocks from many concurrent stages, and with
graph scheduling may hold large parts of the matrix), so "1D codes cannot
solve the last six matrices of Table 6 due to memory constraint".  The 2D
code distributes blocks evenly and needs only ``S1/p + O(buffers)`` where
the Theorem 2 buffer total is a small multiple of one panel.

This module computes those footprints for concrete runs:

* data bytes actually owned per rank under each mapping,
* 1D: the measured high-water mark of received-column buffers,
* 2D: the Theorem 2 buffer provisioning,

and evaluates whether a problem *fits* a given per-node memory budget —
reproducing the paper's "dash" entries (matrices the 1D code could not run).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.buffers import buffer_requirements
from ..parallel.mapping import Grid2D
from ..supernodes import BlockStructure


def sequential_storage_bytes(bstruct: BlockStructure) -> int:
    """S1: bytes of the dense-block factor storage (the whole matrix)."""
    part = bstruct.part
    return 8 * sum(
        part.size(I) * part.size(J) for (I, J) in bstruct.nonzero_blocks()
    )


def owned_bytes_1d(bstruct: BlockStructure, owner) -> list:
    """Per-rank bytes of owned block columns under a 1D mapping."""
    part = bstruct.part
    nprocs = int(max(owner)) + 1 if len(owner) else 1
    out = [0] * nprocs
    for (I, J) in bstruct.nonzero_blocks():
        out[int(owner[J])] += 8 * part.size(I) * part.size(J)
    return out


def owned_bytes_2d(bstruct: BlockStructure, grid: Grid2D) -> list:
    """Per-rank bytes of owned blocks under the 2D block-cyclic mapping."""
    part = bstruct.part
    out = [0] * grid.nprocs
    for (I, J) in bstruct.nonzero_blocks():
        out[grid.owner_of_block(I, J)] += 8 * part.size(I) * part.size(J)
    return out


@dataclass
class MemoryFootprint:
    """Peak per-rank memory of one mapping for one problem."""

    mapping: str
    nprocs: int
    data_peak: int  # bytes of owned matrix data on the fullest rank
    buffer_peak: int  # communication buffer high-water / provisioning
    sequential_bytes: int

    @property
    def peak(self) -> int:
        return self.data_peak + self.buffer_peak

    @property
    def fraction_of_s1(self) -> float:
        """Peak per-rank footprint relative to the sequential storage."""
        return self.peak / max(self.sequential_bytes, 1)

    def fits(self, node_bytes: float) -> bool:
        """Does the fullest rank fit in ``node_bytes`` of memory?"""
        return self.peak <= node_bytes


def footprint_1d(bstruct: BlockStructure, owner, buffer_high_water) -> MemoryFootprint:
    """Footprint of a 1D run (measured receive-buffer high water)."""
    owned = owned_bytes_1d(bstruct, owner)
    return MemoryFootprint(
        mapping="1d",
        nprocs=len(owned),
        data_peak=max(owned),
        buffer_peak=max(buffer_high_water) if buffer_high_water else 0,
        sequential_bytes=sequential_storage_bytes(bstruct),
    )


def footprint_2d(bstruct: BlockStructure, grid: Grid2D) -> MemoryFootprint:
    """Footprint of the 2D mapping (Theorem 2 buffer provisioning)."""
    owned = owned_bytes_2d(bstruct, grid)
    rep = buffer_requirements(bstruct, grid)
    return MemoryFootprint(
        mapping="2d",
        nprocs=grid.nprocs,
        data_peak=max(owned),
        buffer_peak=rep.total,
        sequential_bytes=sequential_storage_bytes(bstruct),
    )
