"""Left-looking sparse LU with partial pivoting and dynamic symbolic fill.

This is the Gilbert-Peierls / SuperLU computational pattern the paper uses
as its sequential comparator: for each column, a symbolic depth-first search
finds the reachable set in the current L structure, a sparse triangular
solve produces the column, and the pivot is chosen by magnitude.  Symbolic
work happens *on the fly* — exactly the part S* moves to a static
preprocessing phase — and most numeric flops are BLAS-2-shaped (column
updates), which is why the machine model prices them at the DGEMV rate.

Outputs include the *dynamic* L/U structures (the "SuperLU" fill columns of
Table 1) and a flop count (the denominator of the paper's MFLOPS formula).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse import CSRMatrix, csr_transpose


@dataclass
class DynamicLU:
    """Factors produced by :func:`superlu_like_factor`.

    L is stored by columns over *original row ids*; ``perm_r`` maps an
    original row to its pivot position.  U is stored by columns over pivot
    positions.
    """

    n: int
    lcols_rows: list  # column j -> np.ndarray of original row ids (below diag)
    lcols_vals: list
    ucols_pos: list  # column j -> np.ndarray of pivot positions (< j)
    ucols_vals: list
    udiag: np.ndarray  # diagonal of U per column
    perm_r: np.ndarray  # original row id -> pivot position
    flops: float = 0.0
    symbolic_steps: int = 0  # DFS edge traversals: proxy for symbolic cost

    @property
    def factor_entries(self) -> int:
        """Entries of L + U with the diagonal counted once (L unit diag)."""
        return sum(len(c) for c in self.lcols_rows) + sum(
            len(c) for c in self.ucols_pos
        ) + self.n

    def l_column_structures(self, space: str = "swapped") -> list:
        """L structure per column, diagonal included.

        ``space="swapped"`` (default) reports the storage positions under
        LAPACK swap semantics — at each step the pivot row is interchanged
        into the diagonal position — which is the coordinate system the
        George-Ng static prediction models (and what the S* block code
        physically does).  ``space="original"`` reports original row ids
        (GP never moves rows physically).
        """
        inv = np.empty(self.n, dtype=np.int64)
        inv[self.perm_r] = np.arange(self.n)  # pivot position -> original row
        if space == "original":
            return [
                np.sort(np.concatenate([[inv[j]], self.lcols_rows[j]]))
                for j in range(self.n)
            ]
        if space != "swapped":
            raise ValueError(f"unknown space {space!r}")
        pos_of = np.arange(self.n, dtype=np.int64)  # original row -> position
        occupant = np.arange(self.n, dtype=np.int64)  # position -> original row
        out = []
        for j in range(self.n):
            pr = inv[j]  # original pivot row of step j
            pj = pos_of[pr]
            other = occupant[j]
            occupant[j], occupant[pj] = pr, other
            pos_of[pr], pos_of[other] = j, pj
            out.append(
                np.sort(
                    np.concatenate(
                        [[j], pos_of[self.lcols_rows[j]]]
                    ).astype(np.int64)
                )
            )
        return out

    def u_row_structures(self) -> list:
        """U structure per row (columns >= the diagonal), comparable with the
        static ``urow``."""
        rows = [[k] for k in range(self.n)]
        for j in range(self.n):
            for k in self.ucols_pos[j]:
                rows[int(k)].append(j)
        return [np.asarray(sorted(set(r)), dtype=np.int64) for r in rows]

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` using the stored factors."""
        n = self.n
        # y in pivot-position space: y = L^{-1} P b
        y = np.empty(n)
        pos_of = self.perm_r
        borig = np.asarray(b, dtype=np.float64)
        y[pos_of] = borig  # permute
        for j in range(n):
            yj = y[j]
            if len(self.lcols_rows[j]):
                y[pos_of[self.lcols_rows[j]]] -= self.lcols_vals[j] * yj
        # back solve U x = y (U stored by columns over positions)
        x = y
        for j in range(n - 1, -1, -1):
            x[j] /= self.udiag[j]
            if len(self.ucols_pos[j]):
                x[self.ucols_pos[j]] -= self.ucols_vals[j] * x[j]
        return x


def superlu_like_factor(A: CSRMatrix, pivot_rule: str = "partial") -> DynamicLU:
    """Factor ``A`` (square) left-looking with dynamic symbolic fill.

    ``pivot_rule``:

    * ``"partial"`` — largest magnitude (the paper's GEPP);
    * ``"random"``  — any structurally valid nonzero candidate, chosen by a
      deterministic hash; used by the property tests to check that the
      *static* structure bounds the dynamic one for arbitrary pivot
      sequences.
    """
    n = A.nrows
    if A.ncols != n:
        raise ValueError("square matrix required")
    Acsc = csr_transpose(A)  # rows of Acsc are columns of A

    lcols_rows, lcols_vals = [], []
    ucols_pos, ucols_vals = [], []
    udiag = np.zeros(n)
    perm_r = np.full(n, -1, dtype=np.int64)  # original row -> pivot position
    row_of_pos = np.full(n, -1, dtype=np.int64)

    # L adjacency for the symbolic DFS, in pivot-position space:
    # lstruct[k] = original rows with a nonzero multiplier in L column k
    lstruct = [None] * n

    x = np.zeros(n)  # dense accumulator over original row ids
    flops = 0.0
    symbolic_steps = 0

    for j in range(n):
        cols, vals = Acsc.row(j)  # column j of A: original rows, values
        # ---- symbolic: find reach of the pivoted rows in column j's pattern
        visited = set()
        topo = []  # pivot positions in reverse topological order

        def dfs(k):
            nonlocal symbolic_steps
            stack = [(k, 0)]
            visited.add(k)
            while stack:
                node, ptr = stack[-1]
                rows = lstruct[node]
                pushed = False
                while ptr < len(rows):
                    r = int(rows[ptr])
                    ptr += 1
                    symbolic_steps += 1
                    kk = perm_r[r]
                    if kk >= 0 and kk not in visited:
                        visited.add(int(kk))
                        stack[-1] = (node, ptr)
                        stack.append((int(kk), 0))
                        pushed = True
                        break
                if not pushed:
                    stack.pop()
                    topo.append(node)

        for r in cols:
            k = perm_r[int(r)]
            if k >= 0 and int(k) not in visited:
                dfs(int(k))

        # ---- numeric: sparse lower solve along topological order
        x[cols] = vals
        nonzero_rows = set(int(r) for r in cols)
        for k in reversed(topo):  # topological order
            rk = row_of_pos[k]
            xk = x[rk]
            if xk != 0.0:
                rows = lstruct[k]
                lv = lcols_vals[k]
                x[rows] -= lv * xk
                flops += 2.0 * len(rows)
            nonzero_rows.add(int(rk))
            nonzero_rows.update(int(r) for r in lstruct[k])

        # ---- split into U part (pivoted rows) and candidate rows
        upos, uvals_j = [], []
        cand_rows, cand_vals = [], []
        for r in sorted(nonzero_rows):
            k = perm_r[r]
            if k >= 0:
                upos.append(int(k))
                uvals_j.append(x[r])
            else:
                cand_rows.append(r)
                cand_vals.append(x[r])

        if not cand_rows:
            raise np.linalg.LinAlgError(f"structurally singular at column {j}")
        cand_vals = np.asarray(cand_vals)
        if pivot_rule == "partial":
            pick = int(np.argmax(np.abs(cand_vals)))
        elif pivot_rule == "random":
            nz = np.flatnonzero(cand_vals)
            pool = nz if len(nz) else np.arange(len(cand_vals))
            pick = int(pool[(j * 2654435761 + len(pool)) % len(pool)])
        else:
            raise ValueError(f"unknown pivot rule {pivot_rule!r}")
        piv_row = cand_rows[pick]
        piv_val = cand_vals[pick]
        if piv_val == 0.0:
            raise np.linalg.LinAlgError(f"numerically singular at column {j}")

        perm_r[piv_row] = j
        row_of_pos[j] = piv_row
        udiag[j] = piv_val

        below_rows = np.asarray(
            [r for i, r in enumerate(cand_rows) if i != pick], dtype=np.int64
        )
        below_vals = np.asarray(
            [v for i, v in enumerate(cand_vals) if i != pick]
        )
        below_vals = below_vals / piv_val
        flops += float(len(below_vals))

        order = np.argsort(upos) if upos else []
        ucols_pos.append(np.asarray(upos, dtype=np.int64)[order] if upos else np.empty(0, np.int64))
        ucols_vals.append(np.asarray(uvals_j)[order] if upos else np.empty(0))
        lcols_rows.append(below_rows)
        lcols_vals.append(below_vals)
        lstruct[j] = below_rows

        # reset accumulator
        for r in sorted(nonzero_rows):
            x[r] = 0.0

    return DynamicLU(
        n,
        lcols_rows,
        lcols_vals,
        ucols_pos,
        ucols_vals,
        udiag,
        perm_r,
        flops=flops,
        symbolic_steps=symbolic_steps,
    )
