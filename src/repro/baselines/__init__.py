"""Reference factorizations the paper compares against.

* :mod:`gepp` — scalar Gaussian elimination with partial pivoting (Fig. 1),
  the correctness oracle for everything else.
* :mod:`superlu_like` — a left-looking column LU with partial pivoting and
  on-the-fly symbolic fill (the Gilbert-Peierls / SuperLU computational
  pattern), providing the dynamic fill and op counts for Tables 1-2.
"""

from .gepp import dense_gepp, gepp_solve
from .superlu_like import superlu_like_factor, DynamicLU

__all__ = ["dense_gepp", "gepp_solve", "superlu_like_factor", "DynamicLU"]
