"""Scalar Gaussian elimination with partial pivoting (Fig. 1 of the paper).

This is the algorithm every other code in the repository must agree with.
It runs dense (the matrices used for oracle checks are small), returns the
combined LU storage and the pivot vector, and provides a solver.
"""

from __future__ import annotations

import numpy as np


def dense_gepp(A):
    """Factor a dense matrix with partial pivoting.

    Returns ``(lu, ipiv)`` where ``lu`` holds L (strictly lower, unit
    diagonal implicit) and U (upper), and ``ipiv[k]`` is the row swapped
    with row ``k`` at step ``k`` (LAPACK getrf convention).

    Raises ``np.linalg.LinAlgError`` on an exactly-singular pivot.
    """
    lu = np.array(A, dtype=np.float64, copy=True)
    n = lu.shape[0]
    if lu.shape != (n, n):
        raise ValueError("square matrix required")
    ipiv = np.empty(n, dtype=np.int64)
    for k in range(n):
        t = k + int(np.argmax(np.abs(lu[k:, k])))
        if lu[t, k] == 0.0:
            raise np.linalg.LinAlgError(f"singular at column {k}")
        ipiv[k] = t
        if t != k:
            lu[[k, t], :] = lu[[t, k], :]
        lu[k + 1 :, k] /= lu[k, k]
        if k + 1 < n:
            lu[k + 1 :, k + 1 :] -= np.outer(lu[k + 1 :, k], lu[k, k + 1 :])
    return lu, ipiv


def gepp_solve(lu, ipiv, b):
    """Solve with factors from :func:`dense_gepp`.

    ``dense_gepp`` swaps rows LAPACK-style (multipliers move retroactively
    with their rows), so all interchanges must be applied to ``b`` *before*
    the forward substitution — interleaving them would be wrong.
    """
    n = lu.shape[0]
    x = np.asarray(b, dtype=np.float64).copy()
    for k in range(n):
        t = ipiv[k]
        if t != k:
            x[k], x[t] = x[t], x[k]
    for k in range(n):
        x[k + 1 :] -= lu[k + 1 :, k] * x[k]
    for k in range(n - 1, -1, -1):
        if k + 1 < n:
            x[k] -= lu[k, k + 1 :] @ x[k + 1 :]
        x[k] /= lu[k, k]
    return x
