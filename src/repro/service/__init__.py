"""The serving layer: structure-cached analysis, numeric refactorization
and a deterministic solve-service front end.

* :mod:`cache` — pattern-keyed LRU cache of analyze-phase artifacts
  (transversal/ordering/symbolic/partition), enabling
  :meth:`repro.api.SStarSolver.refactor`'s numeric-only fast path;
* :mod:`service` — :class:`SolveService`, a bounded-queue job front end
  with virtual-time worker lanes, multi-RHS batching, retry on delivery
  failures and a metrics snapshot.

See DESIGN.md "Serving layer" for cache keying, invalidation rules and
backpressure semantics.
"""

from .cache import (
    AnalysisArtifacts,
    AnalysisCache,
    CacheStats,
    analyze,
    pattern_key,
    values_key,
)
from .service import (
    MetricsSnapshot,
    ServiceOverloadError,
    SolveJob,
    SolveService,
)

__all__ = [
    "AnalysisArtifacts",
    "AnalysisCache",
    "CacheStats",
    "analyze",
    "pattern_key",
    "values_key",
    "MetricsSnapshot",
    "ServiceOverloadError",
    "SolveJob",
    "SolveService",
]
