"""``SolveService`` — a deterministic job-queue front end over the solver.

The serving layer the ROADMAP asks for: clients ``submit`` linear systems
(same- or mixed-pattern), a pool of virtual workers multiplexes the jobs,
and the structure cache turns repeated same-pattern factorizations into
numeric-only refactorizations.  Everything is deterministic: the *real*
numerics run synchronously during ``step``/``drain`` in submission order,
while latency/throughput accounting advances per-worker **virtual clocks**
priced by the machine spec — the same discrete-event philosophy as
:mod:`repro.machine.simulator`, so the same job set always yields the same
results and the same metrics snapshot.

Mechanics:

* **admission control** — the queue is bounded; ``submit`` beyond
  ``max_queue`` raises :class:`ServiceOverloadError` (shed load at the
  door, never deadlock behind it);
* **multi-RHS batching** — adjacent queued jobs with identical matrices
  and compatible options are coalesced into one ``(n, k)`` block solve, so
  one factorization and one triangular sweep serve many requests;
* **structure caching** — every factorization goes through
  :meth:`repro.api.SStarSolver.refactor` against the shared
  :class:`AnalysisCache`, skipping the analyze phase for known patterns;
* **retry** — a job whose simulated transport gives up
  (:class:`repro.machine.DeliveryError`, from the PR-2 resilience layer)
  is retried on a clean network up to ``max_retries`` times before being
  marked failed;
* **metrics** — a :class:`MetricsSnapshot` reports cache hit rate, queue
  depth, p50/p95 latency and throughput in virtual seconds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..machine import DeliveryError, MachineSpec
from ..numfact import SilentCorruptionError
from ..obs import BATCH, JOB, QUEUE, MetricsRegistry, as_tracer
from .cache import AnalysisCache, values_key

#: modeled cost of the analyze phase per structural entry (transversal +
#: min-degree + symbolic + partition are pointer-chasing integer work, far
#: slower per entry than the BLAS-3 numeric sweep)
ANALYZE_SECONDS_PER_ENTRY = 120e-9

PENDING = "pending"
DONE = "done"
FAILED = "failed"


class ServiceOverloadError(RuntimeError):
    """Admission control rejected a submit: the bounded queue is full.

    Structured attributes: ``queue_depth`` (jobs already waiting) and
    ``max_queue`` (the configured bound).
    """

    def __init__(self, message, queue_depth=0, max_queue=0):
        super().__init__(message)
        self.queue_depth = queue_depth
        self.max_queue = max_queue


@dataclass
class SolveJob:
    """One submitted system ``A x = b`` and its lifecycle state."""

    job_id: int
    A: object  # CSRMatrix
    b: np.ndarray
    opts_key: tuple
    arrival: float
    status: str = PENDING
    x: Optional[np.ndarray] = None
    error: Optional[Exception] = None
    attempts: int = 0
    start: Optional[float] = None
    finish: Optional[float] = None
    cache_hit: Optional[bool] = None
    batch_size: int = 1  # jobs coalesced into the solve that served this one
    _opts: dict = field(default=None, repr=False)

    @property
    def latency(self) -> Optional[float]:
        return None if self.finish is None else self.finish - self.arrival

    @property
    def ncols(self) -> int:
        return 1 if self.b.ndim == 1 else self.b.shape[1]


@dataclass
class MetricsSnapshot:
    """Point-in-time service statistics (virtual-time units)."""

    jobs_submitted: int
    jobs_completed: int
    jobs_failed: int
    jobs_rejected: int
    batches: int
    batched_jobs: int
    retries: int
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    queue_depth: int
    max_queue_depth: int
    latency_p50: float
    latency_p95: float
    makespan: float
    throughput_jobs_per_s: float

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class SolveService:
    """Deterministic solve service: submit / poll / result / drain.

    Parameters
    ----------
    workers:
        Virtual worker lanes; jobs are assigned FIFO to the earliest-free
        lane (ties to the lowest id), which models pool parallelism in the
        latency metrics while the numerics stay deterministic.
    max_queue:
        Bounded-queue admission limit; exceeding it raises
        :class:`ServiceOverloadError` at ``submit`` time.
    max_batch:
        Most right-hand-side columns one coalesced block solve may carry.
    max_retries:
        Clean-network retries after a :class:`DeliveryError` failure.
    inter_arrival:
        Virtual seconds between successive submissions (workload shaping
        for the latency metrics; 0 = all jobs arrive at once).
    solver_opts:
        Keyword arguments forwarded to every :class:`SStarSolver` (e.g.
        ``method``, ``nprocs``, ``machine``, ``faults``, ``reliable``).
    cache:
        Shared :class:`AnalysisCache` (one is created if not given).
    tune, plan_cache, tune_budget, tune_seed, tune_opts:
        Autotuning (:mod:`repro.tune`): with ``tune=True`` every
        factorization resolves a pattern-keyed :class:`TuningPlan` from
        the shared ``plan_cache`` (one is created if not given), running
        the model-guided search only on the *first* job of each new
        pattern — repeated-pattern traffic is served with zero additional
        tuning probes (the ``tune.probes`` counter and the plan cache's
        hit statistics make that assertable).  ``tune_budget`` /
        ``tune_seed`` / ``tune_opts`` are forwarded to the solver's
        tuner; the service's metrics registry is always injected so all
        ``tune.*`` counters land in :meth:`metrics`' registry.
    tracer:
        Observability: ``True`` or a :class:`repro.obs.Tracer` records the
        job lifecycle as spans — ``queued`` on ``svc/job<N>`` from arrival
        to dispatch, ``solve`` from dispatch to finish (annotated with
        cache hit/miss, batch size and status), and one ``batch`` span per
        coalesced block solve on the worker lane's ``svc/w<N>`` track.
    metrics:
        A :class:`repro.obs.MetricsRegistry` backing all service counters
        (one is created — shared with ``tracer`` if given).  All
        :class:`MetricsSnapshot` fields derive from it.
    """

    def __init__(
        self,
        workers: int = 2,
        max_queue: int = 16,
        max_batch: int = 8,
        max_retries: int = 1,
        inter_arrival: float = 0.0,
        solver_opts: dict = None,
        cache: AnalysisCache = None,
        tune: bool = False,
        plan_cache=None,
        tune_budget="auto",
        tune_seed: int = 0,
        tune_opts: dict = None,
        tracer=None,
        metrics: MetricsRegistry = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.workers = workers
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.max_retries = max_retries
        self.inter_arrival = inter_arrival
        self.solver_opts = dict(solver_opts or {})
        self.cache = cache if cache is not None else AnalysisCache()
        self.tracer = as_tracer(tracer)
        if metrics is not None:
            self.metrics_registry = metrics
        elif self.tracer is not None:
            self.metrics_registry = self.tracer.metrics
        else:
            self.metrics_registry = MetricsRegistry()
        if self.cache.metrics is None:
            self.cache.metrics = self.metrics_registry
        self.tune = tune
        self.tune_budget = tune_budget
        self.tune_seed = tune_seed
        self.tune_opts = dict(tune_opts or {})
        if tune:
            from ..tune import PlanCache

            self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
            if self.plan_cache.metrics is None:
                self.plan_cache.metrics = self.metrics_registry
        else:
            self.plan_cache = plan_cache
        self._queue: deque = deque()
        self._jobs: dict = {}
        self._worker_clock = [0.0] * workers
        self._next_id = 0
        self._first_arrival: Optional[float] = None
        self._last_finish = 0.0

    def _counter(self, name: str):
        return self.metrics_registry.counter(f"service.{name}")

    # -- client API ----------------------------------------------------

    def submit(self, A, b, solver_opts: dict = None) -> int:
        """Enqueue ``A x = b``; returns the job id.

        ``b`` may be ``(n,)`` or ``(n, k)``.  ``solver_opts`` override the
        service-level solver options for this job only.  Raises
        :class:`ServiceOverloadError` when the bounded queue is full.
        """
        if len(self._queue) >= self.max_queue:
            self._counter("jobs.rejected").inc()
            raise ServiceOverloadError(
                f"queue full: {len(self._queue)} waiting jobs "
                f"(max_queue={self.max_queue}); drain before submitting more",
                queue_depth=len(self._queue),
                max_queue=self.max_queue,
            )
        b = np.asarray(b, dtype=np.float64)
        if b.ndim not in (1, 2) or b.shape[0] != A.nrows:
            raise ValueError(
                f"rhs must have shape ({A.nrows},) or ({A.nrows}, k); "
                f"got {b.shape}"
            )
        opts = dict(self.solver_opts)
        opts.update(solver_opts or {})
        opts_key = tuple(sorted((k, repr(v)) for k, v in opts.items()))
        submitted = self._counter("jobs.submitted")
        job = SolveJob(
            job_id=self._next_id,
            A=A,
            b=b,
            opts_key=opts_key,
            arrival=submitted.value * self.inter_arrival,
            _opts=opts,
        )
        self._next_id += 1
        submitted.inc()
        if self._first_arrival is None:
            self._first_arrival = job.arrival
        self._jobs[job.job_id] = job
        self._queue.append(job)
        depth = self.metrics_registry.gauge("service.queue.depth")
        depth.set(len(self._queue))
        self.metrics_registry.gauge("service.queue.max_depth").track_max(
            len(self._queue))
        return job.job_id

    def poll(self, job_id: int) -> str:
        """Non-blocking status query: ``pending`` / ``done`` / ``failed``."""
        return self._jobs[job_id].status

    def result(self, job_id: int) -> np.ndarray:
        """Return the solution for ``job_id``, processing queued work as
        needed (jobs complete in submission order).  Raises the job's
        recorded error if it ultimately failed."""
        job = self._jobs[job_id]
        while job.status == PENDING:
            self.step()
        if job.status == FAILED:
            raise job.error
        return job.x

    def job(self, job_id: int) -> SolveJob:
        return self._jobs[job_id]

    def drain(self) -> list:
        """Process every queued job; returns the drained :class:`SolveJob`
        records in completion order."""
        done = []
        while self._queue:
            done.extend(self.step())
        return done

    # -- execution -----------------------------------------------------

    def _take_batch(self) -> list:
        """Pop the head job plus any adjacent coalescable followers:
        identical matrix values, identical solver options, within the
        ``max_batch`` column budget."""
        head = self._queue.popleft()
        batch = [head]
        cols = head.ncols
        head_vk = values_key(head.A)
        while self._queue:
            nxt = self._queue[0]
            if (
                nxt.opts_key != head.opts_key
                or cols + nxt.ncols > self.max_batch
                or values_key(nxt.A) != head_vk
            ):
                break
            batch.append(self._queue.popleft())
            cols += nxt.ncols
        return batch

    def _run_solver(self, A, opts, strip_faults: bool):
        from ..api.solver import SStarSolver

        if strip_faults:
            opts = dict(opts)
            opts.pop("faults", None)
        if self.tune:
            opts = dict(opts)
            opts.setdefault("tune", True)
            opts.setdefault("plan_cache", self.plan_cache)
            opts.setdefault("tune_budget", self.tune_budget)
            opts.setdefault("tune_seed", self.tune_seed)
            tune_opts = dict(self.tune_opts)
            # every tune.* counter (searches, probes, pruned) lands in the
            # service's registry so metrics() sees the whole story
            tune_opts.setdefault("metrics", self.metrics_registry)
            opts.setdefault("tune_opts", tune_opts)
        solver = SStarSolver(analysis_cache=self.cache, **opts)
        return solver.refactor(A)

    def _modeled_seconds(self, solver, nrhs: int) -> float:
        """Virtual service time of one factor+solve on a worker lane."""
        rep = solver.report
        if rep.parallel_seconds is not None:
            factor_s = rep.parallel_seconds
            spec = solver.spec
        else:
            spec: MachineSpec = solver.spec
            factor_s = spec.kernel_seconds(solver.factorization.counter.by_gran)
        analyze_s = 0.0
        if not rep.analysis_reused:
            analyze_s = ANALYZE_SECONDS_PER_ENTRY * (rep.nnz + rep.factor_entries)
        solve_flops = 4.0 * rep.factor_entries * nrhs
        solve_kernel = "dgemm" if nrhs >= 2 else "dgemv"
        solve_s = solve_flops / spec.kernel_rate(solve_kernel)
        # a tuning search that actually ran charges its probe time to the
        # job that triggered it; plan-cache hits charge nothing
        tune_s = (
            solver.tune_result.budget_spent
            if getattr(solver, "tune_result", None) is not None
            else 0.0
        )
        return analyze_s + factor_s + solve_s + tune_s

    def step(self) -> list:
        """Serve one batch on the earliest-free worker lane; returns the
        jobs it completed (or failed)."""
        if not self._queue:
            return []
        batch = self._take_batch()
        head = batch[0]
        opts = head._opts
        B = np.column_stack(
            [j.b if j.b.ndim == 2 else j.b[:, None] for j in batch]
        )
        nrhs = B.shape[1]

        worker = min(range(self.workers), key=lambda w: self._worker_clock[w])
        start = max(self._worker_clock[worker], head.arrival)

        solver = None
        error = None
        attempts = 0
        corruption_retry = False
        while True:
            attempts += 1
            try:
                solver = self._run_solver(head.A, opts, strip_faults=attempts > 1)
                break
            except DeliveryError as e:
                error = e
                if attempts > self.max_retries:
                    break
                self._counter("retries").inc()
            except SilentCorruptionError as e:
                # ABFT caught a corrupted-but-delivered payload: same
                # transient-fault retry policy as a transport give-up
                error = e
                if attempts > self.max_retries:
                    break
                self._counter("retries").inc()
                corruption_retry = True
        if solver is not None and corruption_retry:
            self.metrics_registry.counter("abft.recovered").inc()

        if solver is not None:
            X = solver.solve(B)
            finish = start + self._modeled_seconds(solver, nrhs)
        else:
            # the failed attempts still occupied the lane; charge a latency
            # penalty proportional to the attempts made
            finish = start + attempts * ANALYZE_SECONDS_PER_ENTRY * head.A.nnz

        latency_hist = self.metrics_registry.histogram("service.latency")
        col = 0
        for job in batch:
            job.start = start
            job.finish = finish
            job.attempts = attempts
            job.batch_size = len(batch)
            if solver is not None:
                job.cache_hit = solver.report.analysis_reused
                job.x = (
                    X[:, col]
                    if job.b.ndim == 1
                    else X[:, col : col + job.ncols]
                )
                job.status = DONE
                latency_hist.observe(job.latency)
            else:
                job.error = error
                job.status = FAILED
                self._counter("jobs.failed").inc()
            col += job.ncols
            if self.tracer is not None:
                track = f"svc/job{job.job_id}"
                if start > job.arrival:
                    self.tracer.span(track, "queued", QUEUE,
                                     job.arrival, start)
                self.tracer.span(
                    track, "solve", JOB, start, finish,
                    {"status": job.status, "cache_hit": job.cache_hit,
                     "batch": len(batch), "attempts": attempts,
                     "worker": worker},
                )
        self._worker_clock[worker] = finish
        self._last_finish = max(self._last_finish, finish)
        self._counter("batches").inc()
        if len(batch) > 1:
            self._counter("batched_jobs").inc(len(batch))
        if self.tracer is not None:
            self.tracer.span(
                f"svc/w{worker}", f"batch j{head.job_id}", BATCH,
                start, finish,
                {"jobs": len(batch), "nrhs": int(nrhs),
                 "status": batch[0].status},
            )
        self.metrics_registry.gauge("service.queue.depth").set(
            len(self._queue))
        return batch

    # -- metrics -------------------------------------------------------

    def metrics(self) -> MetricsSnapshot:
        """Deterministic statistics snapshot (same job set → same numbers).

        Every field is a view over the shared
        :class:`repro.obs.MetricsRegistry` (``metrics_registry``), which
        additionally holds the raw counters/histograms — including
        whatever the cache and any traced simulations recorded."""
        reg = self.metrics_registry
        hist = reg.histogram("service.latency")
        completed = hist.count
        makespan = (
            self._last_finish - self._first_arrival
            if completed and self._first_arrival is not None
            else 0.0
        )
        cs = self.cache.stats
        return MetricsSnapshot(
            jobs_submitted=int(reg.value("service.jobs.submitted")),
            jobs_completed=completed,
            jobs_failed=int(reg.value("service.jobs.failed")),
            jobs_rejected=int(reg.value("service.jobs.rejected")),
            batches=int(reg.value("service.batches")),
            batched_jobs=int(reg.value("service.batched_jobs")),
            retries=int(reg.value("service.retries")),
            cache_hits=cs.hits,
            cache_misses=cs.misses,
            cache_hit_rate=cs.hit_rate,
            queue_depth=len(self._queue),
            max_queue_depth=int(reg.value("service.queue.max_depth")),
            latency_p50=hist.percentile(0.50),
            latency_p95=hist.percentile(0.95),
            makespan=makespan,
            throughput_jobs_per_s=(completed / makespan if makespan > 0 else 0.0),
        )
