"""Structure-keyed analysis cache.

The paper's static approach (Section 3) makes the entire analyze phase —
maximum transversal, minimum-degree ordering on AᵀA, George–Ng symbolic
factorization, supernode partition and amalgamation — a function of the
*nonzero pattern alone*: the symbolic structure upper-bounds the fill of
any pivot sequence, so it stays exactly valid for every matrix sharing the
pattern, whatever its values pivot to.  Workloads dominated by repeated
same-structure solves (Newton loops, circuit transient simulation) can
therefore pay for the analysis once and re-run only the numeric
Factor/Update sweep.

This module provides the cache that makes that split operational:

* :func:`pattern_key` — a stable hash of the CSR pattern (shape + indptr +
  indices, values excluded);
* :class:`AnalysisArtifacts` — the pattern-only products of the analyze
  phase (permutations, symbolic structure, partition, block structure)
  plus the machinery to re-apply them to a new same-pattern matrix;
* :class:`AnalysisCache` — an LRU cache with entry- and byte-bounded
  capacity and hit/miss/eviction/invalidation accounting.

Invalidation: the cached structure never becomes *structurally* wrong, but
a numeric factorization that had to perturb tiny pivots or saw runaway
element growth signals that the static-structure assumption is doing real
numerical work for this pattern; :meth:`repro.api.SStarSolver.refactor`
then drops the entry so the next factorization re-derives (and re-verifies)
the analysis from scratch.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np


def pattern_key(A) -> str:
    """Stable hex digest of a CSR matrix's nonzero *pattern*.

    Hashes shape, ``indptr`` and ``indices`` — not values — so any two
    matrices with identical structure collide deliberately.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(np.int64([A.nrows, A.ncols]).tobytes())
    h.update(np.ascontiguousarray(A.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(A.indices, dtype=np.int64).tobytes())
    return h.hexdigest()


def values_key(A) -> str:
    """Hex digest of pattern *and* values (used to batch identical systems)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(pattern_key(A).encode())
    h.update(np.ascontiguousarray(A.data, dtype=np.float64).tobytes())
    return h.hexdigest()


def _nbytes(obj, _seen=None) -> int:
    """Approximate deep byte count of the numpy payload of an object tree."""
    if _seen is None:
        _seen = set()
    if id(obj) in _seen:
        return 0
    _seen.add(id(obj))
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(_nbytes(o, _seen) for o in obj)
    if isinstance(obj, dict):
        return sum(_nbytes(k, _seen) + _nbytes(v, _seen) for k, v in obj.items())
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, (str, bytes)):
        return len(obj)
    if hasattr(obj, "__dict__"):
        return _nbytes(vars(obj), _seen)
    return 0


@dataclass
class AnalysisArtifacts:
    """Everything the analyze phase produced that depends only on the
    nonzero pattern: the row/column permutations (transversal + symmetric
    min-degree), the static symbolic factorization, the supernode partition
    and the block structure."""

    key: str
    row_perm: np.ndarray
    col_perm: np.ndarray
    sym: object  # SymbolicFactorization
    part: object  # BlockPartition
    bstruct: object  # BlockStructure
    nbytes: int = 0

    def __post_init__(self):
        if not self.nbytes:
            self.nbytes = (
                self.row_perm.nbytes
                + self.col_perm.nbytes
                + _nbytes(self.sym)
                + _nbytes(self.part)
                + _nbytes(self.bstruct)
            )

    def order(self, A):
        """Apply the cached permutations to a new same-pattern matrix,
        reproducing exactly what :func:`repro.ordering.prepare_matrix`
        would return for it (values included, bit for bit)."""
        from ..ordering.pipeline import OrderedMatrix

        Ap = A.permute(row_perm=self.row_perm, col_perm=self.col_perm)
        return OrderedMatrix(Ap, self.row_perm, self.col_perm)


def analyze(A, block_size: int = 25, amalgamation: int = 4, tracer=None):
    """Run the full analyze phase; return ``(artifacts, ordered_matrix)``.

    This is the slow path the cache amortises: transversal + min-degree
    ordering, George–Ng symbolic factorization, supernode partition with
    amalgamation, and the block structure.

    ``tracer`` (a :class:`repro.obs.Tracer`) records the four analyze
    phases as spans on the ``pipeline/main`` track with deterministic
    *modeled* virtual durations, appended after whatever that track
    already holds.
    """
    from ..ordering import prepare_matrix
    from ..supernodes import build_block_structure, build_partition
    from ..symbolic import static_symbolic_factorization

    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=block_size, amalgamation=amalgamation)
    bstruct = build_block_structure(sym, part)
    art = AnalysisArtifacts(
        key=pattern_key(A),
        row_perm=om.row_perm,
        col_perm=om.col_perm,
        sym=sym,
        part=part,
        bstruct=bstruct,
    )
    if tracer is not None:
        from ..obs import analyze_phase_spans

        analyze_phase_spans(
            tracer, nnz=A.nnz, n=A.nrows,
            factor_entries=sym.factor_entries,
            t0=tracer.track_end("pipeline/main"),
        )
    return art, om


@dataclass
class CacheStats:
    """Counters accumulated over an :class:`AnalysisCache`'s lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    entries: int = 0
    bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": self.entries,
            "bytes": self.bytes,
        }


@dataclass
class AnalysisCache:
    """LRU cache of :class:`AnalysisArtifacts` keyed by pattern (plus any
    parameters the caller folds into the key, e.g. block size).

    Capacity is bounded both by entry count (``max_entries``) and by the
    artifacts' accounted byte size (``max_bytes``, ``None`` = unbounded);
    either bound evicts least-recently-used entries.
    """

    max_entries: int = 32
    max_bytes: int = None
    #: optional repro.obs.MetricsRegistry mirroring the stats as counters
    metrics: object = None
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _stats: CacheStats = field(default_factory=CacheStats, repr=False)

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self._entries.values())

    def get(self, key):
        """Return the cached artifacts for ``key`` (marking it
        most-recently-used) or ``None`` on a miss."""
        art = self._entries.get(key)
        if art is None:
            self._stats.misses += 1
            self._count("cache.misses")
            return None
        self._entries.move_to_end(key)
        self._stats.hits += 1
        self._count("cache.hits")
        return art

    def peek(self, key):
        """Like :meth:`get` but with no stats or LRU side effects."""
        return self._entries.get(key)

    def put(self, key, artifacts: AnalysisArtifacts) -> None:
        """Insert (or refresh) an entry, then evict LRU entries until both
        capacity bounds hold again."""
        self._entries[key] = artifacts
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries or (
            self.max_bytes is not None
            and self.nbytes > self.max_bytes
            and len(self._entries) > 1
        ):
            self._entries.popitem(last=False)
            self._stats.evictions += 1
            self._count("cache.evictions")

    def invalidate(self, key) -> bool:
        """Drop ``key`` if present; returns whether an entry was removed."""
        if key in self._entries:
            del self._entries[key]
            self._stats.invalidations += 1
            self._count("cache.invalidations")
            return True
        return False

    def clear(self) -> None:
        self._entries.clear()

    @property
    def stats(self) -> CacheStats:
        self._stats.entries = len(self._entries)
        self._stats.bytes = self.nbytes
        return self._stats
