"""George-Ng static symbolic factorization.

Implements the structure-prediction scheme of Section 3.1 (originally George
& Ng, *Symbolic factorization for sparse Gaussian elimination with partial
pivoting*): at elimination step ``k`` every **candidate pivot row** —
``P_k = { i >= k : a_ik structurally nonzero }`` — has its trailing structure
replaced by the union of the trailing structures of all candidates.  The
resulting structure accommodates the fill of *any* pivot sequence partial
pivoting could choose.

Outputs, per step ``k``:

* ``lcol[k]`` — the candidate set ``P_k`` itself: the static structure of
  column ``k`` of L (row indices, diagonal included), because whichever row
  is chosen as pivot, the multipliers land exactly at the candidate rows.
* ``urow[k]`` — the unioned trailing structure: the static structure of row
  ``k`` of U (column indices ``>= k``, diagonal included).

Implementation note — the key observation making this fast is that after
step ``k`` all candidate rows share *one identical* trailing structure, so
rows are kept in **groups** holding a single shared sorted index array.
Each step unions the candidate groups (O(size) with numpy), merges them into
one group, and retires row ``k``.  Membership tests are one binary search
per *group*, not per row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse import CSRMatrix


@dataclass
class SymbolicFactorization:
    """Static L/U structure produced by :func:`static_symbolic_factorization`.

    Attributes
    ----------
    n:
        Matrix order.
    lcol:
        ``lcol[k]`` — sorted row indices of column ``k`` of L (includes the
        diagonal ``k``); equals the candidate pivot set ``P_k``.
    urow:
        ``urow[k]`` — sorted column indices of row ``k`` of U (includes the
        diagonal ``k``).
    """

    n: int
    lcol: list
    urow: list

    @property
    def factor_entries(self) -> int:
        """Total predicted entries of L + U (diagonal counted once)."""
        return sum(len(l) + len(u) - 1 for l, u in zip(self.lcol, self.urow))

    def row_structure(self, i: int) -> np.ndarray:
        """Full structure of row ``i`` of the filled matrix F = L + U.

        The U part is ``urow[i]``; the L part collects every column ``j < i``
        whose candidate set contains ``i``.  O(n log) — intended for tests
        and small examples.
        """
        lpart = [j for j in range(i) if _contains(self.lcol[j], i)]
        return np.concatenate(
            [np.asarray(lpart, dtype=np.int64), self.urow[i]]
        )

    def filled_pattern_dense(self) -> np.ndarray:
        """Dense boolean F = L + U pattern (tests / figures only)."""
        F = np.zeros((self.n, self.n), dtype=bool)
        for k in range(self.n):
            F[self.lcol[k], k] = True
            F[k, self.urow[k]] = True
        return F


def _contains(sorted_arr: np.ndarray, x: int) -> bool:
    pos = np.searchsorted(sorted_arr, x)
    return bool(pos < len(sorted_arr) and sorted_arr[pos] == x)


def static_symbolic_factorization(A: CSRMatrix) -> SymbolicFactorization:
    """Run the George-Ng scheme on ``A`` (which must have a zero-free
    structural diagonal — run :func:`repro.ordering.prepare_matrix` first).
    """
    n = A.nrows
    if A.ncols != n:
        raise ValueError("square matrix required")

    # groups: gid -> (sorted structure array, set of member rows)
    structs = {}
    members = {}
    for i in range(n):
        cols = np.array(A.row_indices(i), dtype=np.int64)
        if not _contains(cols, i):
            raise ValueError(
                f"zero on the structural diagonal at position {i}; "
                "apply a maximum transversal first"
            )
        structs[i] = cols
        members[i] = {i}

    lcol = [None] * n
    urow = [None] * n

    for k in range(n):
        # find candidate groups: structure contains k, with live members
        cand_gids = [g for g, s in structs.items() if _contains(s, k)]
        # candidate rows (all live members of candidate groups are >= k
        # because retired rows are removed from their groups)
        cand_rows = []
        for g in cand_gids:
            cand_rows.extend(members[g])
        cand_rows = np.asarray(sorted(cand_rows), dtype=np.int64)
        if len(cand_rows) == 0 or cand_rows[0] != k:
            raise AssertionError(
                f"step {k}: pivot row {k} not among candidates — diagonal "
                "not zero-free or internal error"
            )
        lcol[k] = cand_rows

        # union of trailing structures (columns >= k)
        pieces = []
        for g in cand_gids:
            s = structs[g]
            pieces.append(s[np.searchsorted(s, k):])
        union = pieces[0] if len(pieces) == 1 else np.unique(np.concatenate(pieces))
        urow[k] = union

        # merge candidate groups into one; retire row k
        keep = cand_gids[0]
        merged = set()
        for g in cand_gids:
            merged |= members[g]
            if g != keep:
                del structs[g]
                del members[g]
        merged.discard(k)
        if merged:
            structs[keep] = union[1:] if len(union) and union[0] == k else union
            members[keep] = merged
        else:
            del structs[keep]
            del members[keep]

    return SymbolicFactorization(n, lcol, urow)
