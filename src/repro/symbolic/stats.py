"""Fill and operation statistics (the derived columns of Table 1).

``elementwise_ops`` counts the floating-point operations a scalar
right-looking elimination would execute on a given L/U structure:

.. math::

    ops = \\sum_k \\big( |L_k^-| + 2\\,|L_k^-|\\,|U_k^-| \\big)

where :math:`L_k^-` / :math:`U_k^-` are the below/right-of-diagonal parts of
column ``k`` of L / row ``k`` of U — one division per multiplier plus a
multiply-add per outer-product entry.  Applying the same formula to the
static (S*) and dynamic (SuperLU-like) structures gives the paper's
``ops S*/SuperLU`` ratio.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class FillStats:
    """Summary statistics for one matrix (one Table 1 row)."""

    name: str
    order: int
    nnz: int
    symmetry: float
    entries_static: int
    entries_dynamic: int
    entries_cholesky_ata: int
    ops_static: float
    ops_dynamic: float

    @property
    def entry_ratio(self) -> float:
        """S* factor entries / SuperLU-like factor entries."""
        return self.entries_static / max(self.entries_dynamic, 1)

    @property
    def cholesky_ratio(self) -> float:
        """Cholesky(AᵀA) entries / SuperLU-like factor entries."""
        return self.entries_cholesky_ata / max(self.entries_dynamic, 1)

    @property
    def ops_ratio(self) -> float:
        """S* elementwise ops / SuperLU-like elementwise ops."""
        return self.ops_static / max(self.ops_dynamic, 1.0)


def elementwise_ops(lcol: list, urow: list) -> float:
    """Scalar-elimination FLOP count for an L/U structure (see module doc)."""
    total = 0.0
    for lk, uk in zip(lcol, urow):
        nl = len(lk) - 1  # below diagonal
        nu = len(uk) - 1  # right of diagonal
        total += nl + 2.0 * nl * nu
    return total


def structure_stats(
    name,
    A,
    static_sym,
    dynamic_lcol,
    dynamic_urow,
    cholesky_lcol,
    symmetry,
) -> FillStats:
    """Assemble a :class:`FillStats` row from the three structure predictions."""
    from .cholesky_bound import cholesky_factor_entries

    entries_dynamic = sum(
        len(l) + len(u) - 1 for l, u in zip(dynamic_lcol, dynamic_urow)
    )
    return FillStats(
        name=name,
        order=A.nrows,
        nnz=A.nnz,
        symmetry=symmetry,
        entries_static=static_sym.factor_entries,
        entries_dynamic=entries_dynamic,
        entries_cholesky_ata=cholesky_factor_entries(cholesky_lcol),
        ops_static=elementwise_ops(static_sym.lcol, static_sym.urow),
        ops_dynamic=elementwise_ops(dynamic_lcol, dynamic_urow),
    )
