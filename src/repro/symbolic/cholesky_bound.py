"""The classical (looser) structure bound: Cholesky of :math:`A^T A`.

Table 1 compares three structure predictions; this module provides the
``A^T A`` column — the symbolic Cholesky factor :math:`L_c` of the
:math:`A^T A` pattern, whose structure upper-bounds L and U for any pivot
sequence (George & Ng) but usually overshoots badly.

Implementation: the standard column-merge symbolic Cholesky driven by the
elimination tree — column ``j``'s structure is its own lower pattern merged
into its etree parent, giving O(|L_c|) total work.
"""

from __future__ import annotations

import numpy as np

from ..sparse import CSRMatrix


def elimination_tree(pattern: CSRMatrix) -> np.ndarray:
    """Elimination tree of a symmetric pattern (diagonal assumed present).

    Returns ``parent`` with ``parent[j] = -1`` for roots.  Uses the Liu
    path-compression algorithm on the lower triangle.
    """
    n = pattern.nrows
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    for j in range(n):
        for i in pattern.row_indices(j):
            # traverse from each below-diagonal entry of column j: symmetric
            # pattern means row j's entries < j are column j's entries < j.
            i = int(i)
            if i >= j:
                continue
            # climb from i to the root of its current subtree
            while True:
                a = ancestor[i]
                ancestor[i] = j  # path compression
                if a == -1:
                    if parent[i] == -1 and i != j:
                        parent[i] = j
                    break
                if a == j:
                    break
                i = a
    return parent


def cholesky_ata_structure(pattern: CSRMatrix) -> list:
    """Symbolic Cholesky of a symmetric ``pattern`` (e.g. from
    :func:`repro.sparse.ata_pattern`).

    Returns ``lcol`` where ``lcol[j]`` is the sorted row structure of column
    ``j`` of the Cholesky factor (diagonal included).
    """
    n = pattern.nrows
    colsets = []
    for j in range(n):
        rows = pattern.row_indices(j)  # symmetric: row j's support
        colsets.append(set(int(i) for i in rows if i >= j) | {j})
    for j in range(n):
        below = [i for i in colsets[j] if i > j]
        if below:
            p = min(below)  # etree parent
            colsets[p] |= {i for i in colsets[j] if i > j}
    return [np.asarray(sorted(s), dtype=np.int64) for s in colsets]


def cholesky_factor_entries(lcol: list) -> int:
    """Entries of :math:`L_c + L_c^T` with the diagonal counted once —
    directly comparable with ``SymbolicFactorization.factor_entries``."""
    return sum(2 * len(c) - 1 for c in lcol)
