"""Static structure prediction (Section 3.1 of the paper).

* :mod:`george_ng` — the static symbolic factorization that upper-bounds the
  L/U structure of *every* possible partial-pivoting sequence.
* :mod:`cholesky_bound` — the looser classical bound: the structure of the
  Cholesky factor of :math:`A^T A`.
* :mod:`stats` — factor-entry and operation counts for the Table 1 columns.
"""

from .george_ng import static_symbolic_factorization, SymbolicFactorization
from .cholesky_bound import cholesky_ata_structure, elimination_tree
from .stats import structure_stats, elementwise_ops, FillStats

__all__ = [
    "static_symbolic_factorization",
    "SymbolicFactorization",
    "cholesky_ata_structure",
    "elimination_tree",
    "structure_stats",
    "elementwise_ops",
    "FillStats",
]
