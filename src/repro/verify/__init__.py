"""Communication-protocol verification for the SPMD simulator programs.

The simulator's contract (see :mod:`repro.machine.simulator`) is easy to
state and easy to violate silently: tags must uniquely identify a logical
transfer, every ``recv``/``barrier`` must be ``yield``-ed, and every
deposited message must eventually be consumed.  This package machine-checks
that discipline with three cooperating analyses:

* :mod:`commlint` — **static** AST lint of the SPMD sources: un-yielded
  ``recv``/``barrier`` calls, tag tuples missing loop discriminators
  (collision risk), and send/recv tag-shape mismatches across a module;
* :mod:`tracecheck` — **dynamic** checks over a recorded message trace
  (``Simulator(trace=True)``): per-``(dest, tag)`` uniqueness, no leaked
  (never-received) messages, causal delivery, and — for the 1D codes —
  that the executed span order is a linearization of the
  :class:`repro.taskgraph.TaskGraph` dependence edges;
* :mod:`replay` — **determinism** check: re-run a simulation under
  perturbed host scheduling orders and require bit-identical numerics,
  clocks, spans and traces.

``python -m repro verify-comm`` wires all three together;
:mod:`pytest_support` patches trace checking into existing simulator tests.
"""

from .commlint import (
    LintFinding,
    lint_source,
    lint_file,
    lint_parallel_modules,
    parallel_module_paths,
)
from .tracecheck import (
    Violation,
    TraceCheckReport,
    ProtocolViolationError,
    check_messages,
    check_spans_against_dag,
    check_run,
    parse_span_label,
)
from .replay import ReplayReport, host_orders, replay_check

__all__ = [
    "LintFinding",
    "lint_source",
    "lint_file",
    "lint_parallel_modules",
    "parallel_module_paths",
    "Violation",
    "TraceCheckReport",
    "ProtocolViolationError",
    "check_messages",
    "check_spans_against_dag",
    "check_run",
    "parse_span_label",
    "ReplayReport",
    "host_orders",
    "replay_check",
]
