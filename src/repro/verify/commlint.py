"""Static AST lint for SPMD communication protocol discipline.

Operates on the *source* of SPMD program modules (the codes under
:mod:`repro.parallel`) and flags the bug classes that the simulator cannot
diagnose at runtime — or diagnoses only as an opaque deadlock:

* **Y01** — a ``recv``/``barrier`` call that is not the direct operand of a
  ``yield``.  ``env.recv(tag)`` merely *builds* a request object; without
  ``yield`` it is a silent no-op and the matching message leaks.
* **T01** — a tag kind whose send-side and recv-side tuple arities differ
  (the two sides can never match, guaranteeing a deadlock or a leak).
* **T02** — a tag kind that is only ever sent, or only ever received,
  within the module (an unconsumed multicast or an unsatisfiable wait).
* **T03** — a comm call lexically inside a ``for`` loop whose tag does not
  vary with that loop (no name derived from the loop target appears in the
  tag expression): successive iterations would reuse one ``(dest, tag)``
  pair, violating the tags-identify-a-logical-transfer discipline.

The lint is deliberately conservative about receivers: only attribute calls
on the conventional SPMD handle names (``env`` by default) are considered
communication sites.  A finding can be suppressed by putting the marker
``commlint: ok`` in a comment on the offending line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

#: methods of the Env handle that constitute communication sites
SEND_OPS = ("send", "multicast")
YIELD_OPS = ("recv", "barrier")

#: severity per rule: Y01/T01 are certain protocol bugs; T02/T03 are
#: module-local heuristics (a matching site may live in another module)
RULE_SEVERITY = {
    "Y01": "error",
    "T01": "error",
    "T02": "warning",
    "T03": "warning",
}


@dataclass
class LintFinding:
    """One protocol-discipline violation found in source."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "warning"

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} {self.rule} {self.message}"
        )

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class _CommSite:
    """A send/multicast/recv call site with its extracted tag info."""

    op: str
    line: int
    col: int
    tag_kind: object  # leading literal of the tag tuple (or scalar tag)
    tag_arity: int  # number of elements after the kind; -1 = not literal


class _LoopCtx:
    """One enclosing ``for`` loop: its line and the set of names whose
    values derive from the loop target (the taint set)."""

    __slots__ = ("line", "desc", "tainted")

    def __init__(self, line, desc, tainted):
        self.line = line
        self.desc = desc
        self.tainted = tainted


def _names_in(node) -> set:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _target_names(target) -> set:
    out = set()
    for n in ast.walk(target):
        if isinstance(n, ast.Name):
            out.add(n.id)
    return out


def _tag_expr(call: ast.Call, op: str):
    """The tag argument of a comm call (positional or ``tag=`` keyword)."""
    idx = 0 if op == "recv" else 1
    for kw in call.keywords:
        if kw.arg == "tag":
            return kw.value
    if len(call.args) > idx:
        return call.args[idx]
    return None


def _tag_shape(tag):
    """(kind, arity) of a tag expression; kind None when undecidable."""
    if isinstance(tag, ast.Constant):
        return tag.value, 0
    if isinstance(tag, ast.Tuple) and tag.elts:
        head = tag.elts[0]
        if isinstance(head, ast.Constant):
            return head.value, len(tag.elts) - 1
        return None, len(tag.elts) - 1
    return None, -1


class _Linter:
    def __init__(self, source: str, path: str, env_names):
        self.path = path
        self.env_names = set(env_names)
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.findings = []
        self.sites = []
        # calls appearing directly as the operand of a yield
        self.yielded = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Yield) and isinstance(node.value, ast.Call):
                self.yielded.add(id(node.value))

    # -- helpers -----------------------------------------------------------

    def _suppressed(self, line: int) -> bool:
        idx = line - 1
        return 0 <= idx < len(self.lines) and (
            "commlint: ok" in self.lines[idx] or "commlint: skip" in self.lines[idx]
        )

    def _emit(self, rule, node, message):
        if not self._suppressed(node.lineno):
            self.findings.append(
                LintFinding(rule, self.path, node.lineno, node.col_offset,
                            message, RULE_SEVERITY.get(rule, "warning"))
            )

    def _comm_op(self, call: ast.Call):
        f = call.func
        if (
            isinstance(f, ast.Attribute)
            and isinstance(f.value, ast.Name)
            and f.value.id in self.env_names
            and f.attr in SEND_OPS + YIELD_OPS
        ):
            return f.attr
        return None

    # -- traversal ---------------------------------------------------------

    def run(self):
        self._walk_body(self.tree.body, loops=())
        self._check_pairing()
        return self.findings

    def _walk_body(self, body, loops):
        for stmt in body:
            self._walk_stmt(stmt, loops)

    def _walk_stmt(self, stmt, loops):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a nested SPMD (sub)program: its parameters are external
            # discriminators, loop tracking restarts inside it
            self._walk_body(stmt.body, loops=())
            return
        if isinstance(stmt, ast.For):
            ctx = _LoopCtx(
                stmt.lineno,
                f"for loop at line {stmt.lineno}",
                _target_names(stmt.target),
            )
            self._scan_exprs(stmt.iter, loops)
            self._walk_body(stmt.body, loops + (ctx,))
            self._walk_body(stmt.orelse, loops)
            return
        if isinstance(stmt, ast.While):
            # no taint can be established for a while loop; comm calls in
            # its body are checked against the loops *outside* it only
            self._scan_exprs(stmt.test, loops)
            self._walk_body(stmt.body, loops)
            self._walk_body(stmt.orelse, loops)
            return
        if isinstance(stmt, (ast.If,)):
            self._scan_exprs(stmt.test, loops)
            self._walk_body(stmt.body, loops)
            self._walk_body(stmt.orelse, loops)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_exprs(item.context_expr, loops)
            self._walk_body(stmt.body, loops)
            return
        if isinstance(stmt, ast.Try):
            self._walk_body(stmt.body, loops)
            for h in stmt.handlers:
                self._walk_body(h.body, loops)
            self._walk_body(stmt.orelse, loops)
            self._walk_body(stmt.finalbody, loops)
            return
        # propagate taint through straight-line assignments
        if isinstance(stmt, ast.Assign):
            self._propagate_taint(stmt.targets, stmt.value, loops)
            self._scan_exprs(stmt.value, loops)
            return
        if isinstance(stmt, ast.AugAssign):
            self._propagate_taint([stmt.target], stmt.value, loops)
            self._scan_exprs(stmt.value, loops)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._propagate_taint([stmt.target], stmt.value, loops)
            self._scan_exprs(stmt.value, loops)
            return
        # generic statement: scan contained expressions for comm calls
        self._scan_exprs(stmt, loops)

    def _propagate_taint(self, targets, value, loops):
        value_names = _names_in(value)
        for ctx in loops:
            if value_names & ctx.tainted:
                for t in targets:
                    ctx.tainted |= _target_names(t)

    def _scan_exprs(self, node, loops):
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                op = self._comm_op(sub)
                if op:
                    self._check_site(sub, op, loops)

    # -- per-site checks ---------------------------------------------------

    def _check_site(self, call: ast.Call, op: str, loops):
        if op in YIELD_OPS and id(call) not in self.yielded:
            self._emit(
                "Y01",
                call,
                f"`{op}` is not yielded — `env.{op}(...)` only builds a "
                "request; without `yield` it is a silent no-op",
            )
        if op == "barrier":
            return
        tag = _tag_expr(call, op)
        if tag is None:
            return
        kind, arity = _tag_shape(tag)
        self.sites.append(_CommSite(op, call.lineno, call.col_offset, kind, arity))
        tag_names = _names_in(tag)
        for ctx in loops:
            if not (tag_names & ctx.tainted):
                self._emit(
                    "T03",
                    call,
                    f"tag of `{op}` does not vary with the enclosing "
                    f"{ctx.desc} (loop names: {sorted(ctx.tainted)}) — "
                    "iterations reuse one (dest, tag) pair",
                )

    # -- module-level pairing ----------------------------------------------

    def _check_pairing(self):
        kinds = {}
        for s in self.sites:
            if s.tag_kind is None:
                continue
            kinds.setdefault(s.tag_kind, []).append(s)
        for kind, sites in sorted(kinds.items(), key=lambda kv: repr(kv[0])):
            sends = [s for s in sites if s.op in SEND_OPS]
            recvs = [s for s in sites if s.op == "recv"]
            first = sites[0]
            node = ast.Constant(value=0)
            node.lineno, node.col_offset = first.line, first.col
            if sends and not recvs:
                self._emit(
                    "T02", node,
                    f"tag kind {kind!r} is sent (line"
                    f" {', '.join(str(s.line) for s in sends)}) but never "
                    "received in this module — messages would leak",
                )
            elif recvs and not sends:
                self._emit(
                    "T02", node,
                    f"tag kind {kind!r} is received (line"
                    f" {', '.join(str(s.line) for s in recvs)}) but never "
                    "sent in this module — the wait cannot be satisfied",
                )
            elif sends and recvs:
                sa = {s.tag_arity for s in sends}
                ra = {s.tag_arity for s in recvs}
                if sa != ra:
                    self._emit(
                        "T01", node,
                        f"tag kind {kind!r}: send-side arities {sorted(sa)} "
                        f"!= recv-side arities {sorted(ra)} — the tag "
                        "tuples can never match",
                    )


def lint_source(source: str, path: str = "<string>", env_names=("env",)) -> list:
    """Lint SPMD program source text; returns a list of LintFindings."""
    return _Linter(source, path, env_names).run()


def lint_file(path, env_names=("env",)) -> list:
    """Lint one SPMD module file."""
    p = Path(path)
    return lint_source(p.read_text(), str(p), env_names)


def parallel_module_paths() -> list:
    """All module files of :mod:`repro.parallel` (the SPMD codes)."""
    import repro.parallel as pkg

    root = Path(pkg.__file__).parent
    return sorted(p for p in root.glob("*.py") if p.name != "__init__.py")


def lint_parallel_modules(env_names=("env",)) -> dict:
    """Lint every :mod:`repro.parallel` module; ``{path: [findings]}``."""
    return {str(p): lint_file(p, env_names) for p in parallel_module_paths()}
