"""Determinism/replay checking of simulated SPMD runs.

The discrete-event simulator promises that simulated semantics — numerics,
virtual clocks, message traffic — do not depend on the *host* order in
which runnable ranks are advanced.  That promise is exactly what makes the
asynchronous codes debuggable; a program that breaks it (e.g. by mutating
state shared across rank generators) is racy even though every individual
run looks plausible.

This module re-runs a simulation under perturbed ready-queue tie-breaking
orders (``Simulator(host_order=...)``) and requires the outcomes to be
**bit-identical**: per-rank clocks, busy times, returned numerics (ndarray
payloads compared by bytes), task spans, and the per-sender message
sequences of the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def host_orders(nprocs: int, n_orders: int = 3, seed: int = 12345) -> list:
    """Distinct host scheduling orders: natural, reversed, then seeded
    shuffles.  The first order is the baseline the others compare against."""
    orders = [list(range(nprocs)), list(reversed(range(nprocs)))]
    rng = np.random.default_rng(seed)
    while len(orders) < n_orders:
        perm = list(rng.permutation(nprocs))
        perm = [int(p) for p in perm]
        if perm not in orders or nprocs == 1:
            orders.append(perm)
        if nprocs == 1:
            break
    return orders[:max(n_orders, 1)]


@dataclass
class ReplayReport:
    """Outcome of a determinism replay."""

    runs: int = 0
    mismatches: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        if self.ok:
            return f"OK ({self.runs} host orders, bit-identical)"
        return f"{len(self.mismatches)} mismatch(es) across {self.runs} host orders"


def _equal(a, b) -> bool:
    """Recursive bit-exact equality (ndarrays compared by raw bytes)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)):
            return False
        return (
            a.dtype == b.dtype
            and a.shape == b.shape
            and a.tobytes() == b.tobytes()
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (a != a and b != b)  # NaN-tolerant exact compare
    return a == b


def _trace_key(trace):
    """Host-order-independent view of a trace: per-sender send sequences."""
    if trace is None:
        return None
    return {
        src: [
            (r.dest, repr(r.tag), r.send_clock, r.arrival, r.nbytes,
             r.recv_time, r.consumed)
            for r in records
        ]
        for src, records in trace.by_src().items()
    }


def _compare(base, other, label: str) -> list:
    mismatches = []

    def chk(name, a, b):
        if not _equal(a, b):
            mismatches.append(
                f"{label}: {name} differs from baseline ({a!r} != {b!r})"
                if name in ("total_time", "messages", "bytes_sent")
                else f"{label}: {name} differs from baseline"
            )

    chk("total_time", base.total_time, other.total_time)
    chk("rank_clocks", base.rank_clocks, other.rank_clocks)
    chk("rank_busy", base.rank_busy, other.rank_busy)
    chk("messages", base.messages, other.messages)
    chk("bytes_sent", base.bytes_sent, other.bytes_sent)
    chk("returns", base.returns, other.returns)
    chk("spans", [(s.rank, s.label, s.start, s.end) for s in base.spans],
        [(s.rank, s.label, s.start, s.end) for s in other.spans])
    chk("trace", _trace_key(base.trace), _trace_key(other.trace))
    return mismatches


def _as_sim_result(outcome):
    return outcome.sim if hasattr(outcome, "sim") else outcome


def replay_check(runner, nprocs: int, n_orders: int = 3, seed: int = 12345):
    """Run ``runner(sim_opts)`` once per host order and compare outcomes.

    ``runner`` must build a **fresh** simulation each call (state mutated by
    a previous run must not leak into the next) and forward ``sim_opts`` as
    keyword arguments to :class:`repro.machine.Simulator` — the ``run_*``
    entry points in :mod:`repro.parallel` all accept ``sim_opts=``.  It may
    return either a ``SimResult`` or any object with a ``.sim`` attribute.
    """
    report = ReplayReport()
    base = None
    for order in host_orders(nprocs, n_orders, seed):
        outcome = _as_sim_result(runner({"trace": True, "host_order": order}))
        report.runs += 1
        if base is None:
            base = outcome
        else:
            report.mismatches.extend(
                _compare(base, outcome, f"host order {order}")
            )
    return report
