"""Dynamic trace checking of simulated SPMD runs.

Consumes the message trace a ``Simulator(trace=True)`` run records (see
:class:`repro.machine.SimTrace`) and verifies the protocol discipline the
simulator documents but cannot enforce cheaply during execution:

* **UNIQUE** — a ``(dest, tag)`` pair identifies at most one logical
  transfer per run (tag collisions silently reorder payloads);
* **LEAK** — every deposited message is eventually received (an
  unconsumed mailbox entry means a lost multicast or a dropped ``yield``);
* **CAUSAL** — every arrival respects the latency/bandwidth model and no
  receiver resumes before its message arrived;
* **MUTATE** — no sender wrote to a posted payload before it was consumed
  (records flagged by ``Simulator(sanitize=True)``, the dynamic
  counterpart of the ``Z201`` lint rule);
* **DAG** (1D codes) — the executed task spans, parsed from their labels
  (``F{k}`` / ``U{k},{j}``), cover the :class:`repro.taskgraph.TaskGraph`
  exactly once each, on the scheduled owner rank, in an order that
  linearizes dependence rules 1-3 plus the serializing edge.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..taskgraph import FACTOR, UPDATE


@dataclass
class Violation:
    """One protocol violation detected in a trace."""

    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.rule}: {self.message}"


class ProtocolViolationError(AssertionError):
    """Raised by strict checking modes when a trace violates the protocol."""

    def __init__(self, violations):
        self.violations = list(violations)
        lines = "\n  ".join(str(v) for v in self.violations)
        super().__init__(
            f"{len(self.violations)} communication-protocol violation(s):\n  {lines}"
        )


@dataclass
class TraceCheckReport:
    """Outcome of checking one simulated run."""

    violations: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_failed(self):
        if self.violations:
            raise ProtocolViolationError(self.violations)

    def summary(self) -> str:
        s = self.stats
        parts = [f"{s.get('messages', 0)} messages"]
        if s.get("spans") is not None:
            parts.append(f"{s['spans']} spans")
        if s.get("dag_edges") is not None:
            parts.append(f"{s['dag_edges']} DAG edges")
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return f"{status} ({', '.join(parts)})"


# -- message-level checks ---------------------------------------------------


def _logical_id(record):
    """Logical transfer id: retransmissions and fault-injected duplicates of
    one ``send`` share it.  Legacy records (``logical=None``) fall back to
    their seq, i.e. every record is its own logical transfer."""
    logical = getattr(record, "logical", None)
    return record.seq if logical is None else logical


def check_messages(trace, spec=None, crashed=()) -> list:
    """UNIQUE / LEAK / CAUSAL checks over a :class:`SimTrace`.

    Fault-injection aware: records of the *same* logical transfer (the
    retry protocol's retransmits, or a fault-injected duplicate) do not
    trip the tag-uniqueness rule, but two distinct logical transfers on one
    ``(dest, tag)`` still do.  Dropped transmissions, unconsumed duplicate
    copies, and messages addressed to a rank in ``crashed`` are not leaks.
    """
    violations = []
    crashed = set(crashed)
    seen = {}  # (dest, tag) -> first record
    for r in trace.records:
        key = (r.dest, _hashable(r.tag))
        if key in seen:
            first = seen[key]
            if _logical_id(first) == _logical_id(r):
                continue  # retransmit or duplicated copy of the same send
            violations.append(Violation(
                "UNIQUE",
                f"tag collision on (dest={r.dest}, tag={r.tag!r}): sent by "
                f"rank {first.src} at t={first.send_clock:.3g} and again by "
                f"rank {r.src} at t={r.send_clock:.3g}",
            ))
        else:
            seen[key] = r
    for r in trace.undelivered():
        if getattr(r, "dropped", False) or getattr(r, "duplicate", False):
            continue  # never deposited / extra copy the receiver ignores
        if r.dest in crashed:
            continue  # the receiver died; nobody is left to consume it
        violations.append(Violation(
            "LEAK",
            f"message (dest={r.dest}, tag={r.tag!r}) from rank {r.src} "
            f"(arrival t={r.arrival:.3g}, {r.nbytes} bytes) was never "
            "received",
        ))
    for r in trace.records:
        eps = 1e-12 * max(1.0, abs(r.arrival))
        if r.src != r.dest and spec is not None:
            floor = r.send_clock + spec.latency_s + r.nbytes / spec.bandwidth_bps
            if r.arrival < floor - eps:
                violations.append(Violation(
                    "CAUSAL",
                    f"message (dest={r.dest}, tag={r.tag!r}) arrived at "
                    f"t={r.arrival:.6g} before the model floor {floor:.6g}",
                ))
        if r.consumed and r.recv_time is not None and r.recv_time < r.arrival - eps:
            violations.append(Violation(
                "CAUSAL",
                f"rank {r.dest} consumed tag {r.tag!r} at t={r.recv_time:.6g} "
                f"before its arrival t={r.arrival:.6g}",
            ))
        if getattr(r, "mutated", False):
            violations.append(Violation(
                "MUTATE",
                f"rank {r.src} mutated the payload of tag {r.tag!r} "
                f"(posted to rank {r.dest} at t={r.send_clock:.3g}) after "
                "sending it: write-after-send under zero-copy put semantics",
            ))
    return violations


def _hashable(tag):
    if isinstance(tag, (list,)):
        return tuple(_hashable(t) for t in tag)
    if isinstance(tag, tuple):
        return tuple(_hashable(t) for t in tag)
    return tag


# -- DAG linearization (1D codes) -------------------------------------------

_SPAN_RE = re.compile(r"^(?:F(\d+)|U(\d+),(\d+))$")


def parse_span_label(label: str):
    """``"F3"`` -> ``('F', 3)``; ``"U3,7"`` -> ``('U', 3, 7)``; else None."""
    m = _SPAN_RE.match(label)
    if not m:
        return None
    if m.group(1) is not None:
        return (FACTOR, int(m.group(1)))
    return (UPDATE, int(m.group(2)), int(m.group(3)))


def check_spans_against_dag(spans, tg, schedule=None, parse=parse_span_label) -> list:
    """Verify executed spans cover and linearize the task graph.

    ``spans`` are :class:`repro.machine.TaskSpan` records (per-rank
    execution order is their recorded order).  A span whose label ``parse``
    cannot interpret is ignored, so auxiliary spans coexist with the check.
    """
    violations = []
    where = {}  # task -> (rank, per-rank index, start, end)
    per_rank_idx = {}
    for s in spans:
        task = parse(s.label)
        if task is None:
            continue
        idx = per_rank_idx.get(s.rank, 0)
        per_rank_idx[s.rank] = idx + 1
        if task in where:
            violations.append(Violation(
                "DAG",
                f"task {task!r} executed twice: on rank {where[task][0]} "
                f"and rank {s.rank}",
            ))
            continue
        where[task] = (s.rank, idx, s.start, s.end)

    known = set(tg.tasks)
    for task in tg.tasks:
        if task not in where:
            violations.append(Violation(
                "DAG", f"task {task!r} has no executed span on any rank"
            ))
    for task in where:
        if task not in known:
            violations.append(Violation(
                "DAG", f"executed span {task!r} is not a task of the graph"
            ))
    if schedule is not None:
        for task, (rank, _, _, _) in where.items():
            if task in known and schedule.task_owner(task) != rank:
                violations.append(Violation(
                    "DAG",
                    f"task {task!r} ran on rank {rank}, scheduled owner is "
                    f"rank {schedule.task_owner(task)}",
                ))

    max_end = max((w[3] for w in where.values()), default=0.0)
    eps = 1e-9 * max(1.0, max_end)
    checked = 0
    for a, succs in tg.succ.items():
        wa = where.get(a)
        if wa is None:
            continue
        for b in succs:
            wb = where.get(b)
            if wb is None:
                continue
            checked += 1
            if wa[0] == wb[0]:
                # same rank: strict execution-order precedence
                if wa[1] >= wb[1]:
                    violations.append(Violation(
                        "DAG",
                        f"rank {wa[0]} executed {b!r} (index {wb[1]}) before "
                        f"its dependence {a!r} (index {wa[1]})",
                    ))
            elif wa[3] > wb[3] + eps:
                # cross-rank: producer must complete no later than consumer
                violations.append(Violation(
                    "DAG",
                    f"{b!r} completed at t={wb[3]:.6g} on rank {wb[0]} "
                    f"before its dependence {a!r} completed at "
                    f"t={wa[3]:.6g} on rank {wa[0]}",
                ))
    return violations, checked


def check_run(result, spec=None, tg=None, schedule=None) -> TraceCheckReport:
    """Full dynamic check of one ``SimResult`` (with trace attached)."""
    report = TraceCheckReport()
    if result.trace is None:
        report.violations.append(Violation(
            "TRACE", "run has no message trace; pass trace=True to Simulator"
        ))
        return report
    report.stats["messages"] = len(result.trace.records)
    report.violations.extend(check_messages(
        result.trace, spec=spec, crashed=getattr(result, "crashed", ())
    ))
    if tg is not None:
        vs, checked = check_spans_against_dag(result.spans, tg, schedule=schedule)
        report.violations.extend(vs)
        report.stats["spans"] = sum(
            1 for s in result.spans if parse_span_label(s.label) is not None
        )
        report.stats["dag_edges"] = checked
    return report
