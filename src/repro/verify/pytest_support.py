"""Plugin-style pytest support: trace-check every simulation for free.

``trace_checked_simulations()`` patches :meth:`repro.machine.Simulator.run`
so that *every* simulation inside the context records a message trace and
is checked against the tag-uniqueness / no-leak / causality rules as soon
as it finishes; a violation raises :class:`ProtocolViolationError` (an
``AssertionError``, so pytest reports it as a plain test failure at the
offending call site).

The test suite activates it per module from ``tests/conftest.py``::

    @pytest.fixture(scope="module", autouse=True)
    def _comm_trace_check(request):
        with trace_checked_simulations():
            yield

so existing simulator-driven tests (1D, 2D, trisolve) double as protocol
regression tests without changing a line of them.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..machine.simulator import SimTrace, Simulator
from .tracecheck import check_messages, ProtocolViolationError


@contextmanager
def trace_checked_simulations(check_leaks: bool = True, sanitize: bool = True):
    """Patch ``Simulator.run`` to verify the message protocol of each run.

    ``sanitize=True`` (the default) additionally turns on the simulator's
    zero-copy write-after-send checker for every run in the context, so a
    rank program that mutates a posted payload fails the test with a typed
    :class:`repro.machine.PayloadMutationError` even though the simulator's
    defensive copy would have hidden the bug.
    """
    orig_run = Simulator.run

    def checked_run(self):
        if self.trace is None:
            self.trace = SimTrace()
        if sanitize:
            self.sanitize = True
        result = orig_run(self)
        violations = check_messages(
            self.trace, spec=self.spec, crashed=getattr(result, "crashed", ())
        )
        if not check_leaks:
            violations = [v for v in violations if v.rule != "LEAK"]
        if violations:
            raise ProtocolViolationError(violations)
        return result

    Simulator.run = checked_run
    try:
        yield
    finally:
        Simulator.run = orig_run
