"""Data mappings: 1D block-cyclic columns and the 2D processor grid.

The 2D mapping is the paper's standard function: submatrix ``A_IJ`` lives on
processor ``(I mod p_r, J mod p_c)``.  The paper observes ``p_c ~ 2 p_r``
performs best; :func:`Grid2D.preferred` picks that shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np


def cyclic_owner(N: int, nprocs: int) -> np.ndarray:
    """1D block-cyclic column ownership."""
    return np.arange(N, dtype=np.int64) % nprocs


@dataclass(frozen=True)
class Grid2D:
    """A ``p_r x p_c`` processor grid with row-major rank numbering."""

    pr: int
    pc: int

    @property
    def nprocs(self) -> int:
        return self.pr * self.pc

    def rank(self, r: int, c: int) -> int:
        return r * self.pc + c

    def coords(self, rank: int) -> tuple:
        return rank // self.pc, rank % self.pc

    def owner_of_block(self, I: int, J: int) -> int:
        return self.rank(I % self.pr, J % self.pc)

    @lru_cache(maxsize=None)
    def row_ranks(self, r: int) -> list:
        """All ranks in processor row r (shared list: callers only iterate)."""
        return [self.rank(r, c) for c in range(self.pc)]

    @lru_cache(maxsize=None)
    def col_ranks(self, c: int) -> list:
        """All ranks in processor column c (shared list: callers only iterate)."""
        return [self.rank(r, c) for r in range(self.pr)]

    @classmethod
    def preferred(cls, nprocs: int) -> "Grid2D":
        """The paper's preferred shape: ``p_c / p_r ~ 2`` (e.g. 8 -> 2x4)."""
        best = None
        for pr in range(1, nprocs + 1):
            if nprocs % pr:
                continue
            pc = nprocs // pr
            if pc < pr:
                continue
            score = abs(pc / pr - 2.0)
            if best is None or score < best[0]:
                best = (score, pr, pc)
        return cls(best[1], best[2])
