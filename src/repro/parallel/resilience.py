"""Checkpoint/restart for the parallel factorizations.

The paper's S* codes assume every PE survives the whole factorization.
This driver removes that assumption with a classic round-based scheme:

* the elimination is cut into **rounds** of ``ckpt_interval`` stages; each
  round runs as its own :class:`repro.machine.Simulator` execution over a
  *copy* of the last checkpoint, restricted to the stage window
  ``[k0, k1)`` via the rank programs' ``stage_range`` support;
* when a round completes, its merged state *is* the next checkpoint — a
  consistent partial factorization (every stage ``< k1`` fully applied),
  exactly the state a single uninterrupted run would have passed through;
* when a rank crashes mid-round (:class:`repro.machine.RankCrashedError`,
  detected by the simulator's heartbeat-timeout model), the round's
  (possibly tainted) state is **discarded**, the process grid shrinks by
  the dead rank (:meth:`repro.machine.FaultPlan.after_crash` renumbers the
  survivors), the data is redistributed from the checkpoint, and the
  window re-runs on the survivors.

Because a round replays the same Factor/Update kernels in the same
per-element order as an uninterrupted run, the recovered factorization is
numerically identical to the fault-free one up to the process count's
(nonexistent) influence on the numerics — the tests assert bit-identity.

Virtual-time accounting: the reported ``total_time`` sums every round's
simulated makespan, including the heartbeat detection latency and the
wasted work of rounds that crashed — the price of the recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine import FaultPlan, RankCrashedError
from ..numfact import BlockLUMatrix, SilentCorruptionError
from ..obs import CHECKPOINT
from ..taskgraph import build_task_graph
from .mapping import Grid2D
from .oned import run_1d
from .twod import run_2d


@dataclass
class RoundInfo:
    """One executed round (successful or crashed-and-discarded)."""

    window: tuple  # (k0, k1) stage window
    nprocs: int
    ok: bool
    crashed: tuple = ()
    seconds: float = 0.0
    corrupted: tuple = None  # block coords when ABFT aborted the round


@dataclass
class ResilientResult:
    """Outcome of a checkpoint/restart factorization."""

    factor: BlockLUMatrix
    rounds: list = field(default_factory=list)
    results: list = field(default_factory=list)  # SimResult per good round
    total_time: float = 0.0
    nprocs_final: int = 0

    @property
    def parallel_seconds(self) -> float:
        return self.total_time

    @property
    def crashes(self) -> list:
        out = []
        for r in self.rounds:
            out.extend(r.crashed)
        return out

    @property
    def messages(self) -> int:
        return sum(r.messages for r in self.results)

    @property
    def bytes_sent(self) -> int:
        return sum(r.bytes_sent for r in self.results)

    def total_counter(self):
        """Kernel counter summed over the *successful* rounds (the work the
        surviving factorization actually consists of)."""
        agg = None
        for res in self.results:
            c = res.total_counter()
            if agg is None:
                agg = c
            else:
                agg.merge(c)
        return agg


def _copy_state(m: BlockLUMatrix) -> BlockLUMatrix:
    """Deep-copy a checkpoint so a crashed round cannot taint it."""
    out = BlockLUMatrix(m.part, m.bstruct)
    for key, blk in m.blocks.items():
        out.blocks[key] = blk.copy()
    out.pivot_seq = list(m.pivot_seq)
    return out


def _run_resilient(runner, A, part, bstruct, nprocs, spec, *,
                   ckpt_interval, faults, reliable, sim_opts,
                   max_restarts, runner_kwargs):
    N = part.N
    plan = faults if faults is not None else FaultPlan()
    # each round's Simulator restarts virtual time at 0; an offset proxy
    # splices the rounds onto the caller's one continuous trace timeline
    tracer = (sim_opts or {}).get("tracer")

    def note_round(window, t0, ok, crashed, seconds, np_round):
        if tracer is None:
            return
        tracer.span(
            "ckpt/rounds", f"round {window[0]}:{window[1]}", CHECKPOINT,
            t0, t0 + seconds,
            {"ok": bool(ok), "nprocs": int(np_round),
             "crashed": [int(c) for c in crashed]},
        )
        tracer.metrics.counter("ckpt.rounds").inc()
        if not ok:
            tracer.metrics.counter("ckpt.restarts").inc()

    checkpoint = None  # None = start from A itself
    out = ResilientResult(factor=None, nprocs_final=nprocs)
    restarts = 0
    k = 0
    while k < N:
        window = (k, min(k + int(ckpt_interval), N))
        round_start = out.total_time
        base_opts = dict(sim_opts or {})
        base_opts["faults"] = plan
        if reliable is not None:
            base_opts["reliable"] = reliable
        if tracer is not None:
            base_opts["tracer"] = tracer.offset(round_start)
        start = _copy_state(checkpoint) if checkpoint is not None else None
        try:
            res = runner(
                A, part, bstruct, nprocs, spec,
                sim_opts=base_opts,
                stage_range=window,
                start_from=start,
                **runner_kwargs,
            )
        except SilentCorruptionError as e:
            # ABFT caught a silently corrupted payload inside the round.
            # The corrupted message is gone (its inputs live only on the
            # sender), so localized recompute is impossible here: fall back
            # to checkpoint restart of the window.  Transient-SDC model:
            # the corrupting event will not repeat, so the replay runs on
            # the plan with CORRUPT rules/events stripped.
            restarts += 1
            if restarts > max_restarts:
                raise
            out.rounds.append(RoundInfo(
                window, nprocs, ok=False, corrupted=e.block,
            ))
            note_round(window, round_start, False, (), 0.0, nprocs)
            if tracer is not None:
                tracer.metrics.counter("abft.recovered").inc()
            plan = plan.without_corrupt()
            continue  # re-run the same window from the checkpoint
        except RankCrashedError as e:
            restarts += 1
            if restarts > max_restarts:
                raise
            out.rounds.append(RoundInfo(
                window, nprocs, ok=False, crashed=tuple(e.ranks),
                seconds=e.detected_at,
            ))
            note_round(window, round_start, False, e.ranks, e.detected_at,
                       nprocs)
            out.total_time += e.detected_at
            # shrink the grid: drop the dead ranks (highest first so the
            # renumbering in after_crash stays consistent; the elapsed
            # shift applies once, not per dead rank)
            elapsed = e.detected_at
            for dead in sorted(e.ranks, reverse=True):
                plan = plan.after_crash(dead, elapsed)
                elapsed = 0.0
                nprocs -= 1
            if nprocs < 1:
                raise
            continue  # re-run the same window on the survivors
        if res.sim.crashed:
            # the round "completed" for the survivors but a rank died with
            # work outstanding: its in-window tasks may be missing, so the
            # round state is not a checkpoint.  Discard and re-run.
            restarts += 1
            if restarts > max_restarts:
                raise RankCrashedError(
                    "rank(s) crashed and restart budget is exhausted",
                    ranks=list(res.sim.crashed),
                    crash_times=[t for _, t in res.sim.fault_stats.crashes],
                    detected_at=res.sim.total_time,
                    blocked={},
                )
            out.rounds.append(RoundInfo(
                window, nprocs, ok=False, crashed=tuple(res.sim.crashed),
                seconds=res.sim.total_time,
            ))
            note_round(window, round_start, False, res.sim.crashed,
                       res.sim.total_time, nprocs)
            out.total_time += res.sim.total_time
            elapsed = res.sim.total_time
            for dead in sorted(res.sim.crashed, reverse=True):
                plan = plan.after_crash(dead, elapsed)
                elapsed = 0.0
                nprocs -= 1
            if nprocs < 1:
                raise RankCrashedError(
                    "all ranks crashed", ranks=list(res.sim.crashed),
                    crash_times=[], detected_at=res.sim.total_time, blocked={},
                )
            continue
        # the round committed: its merged state is the new checkpoint
        checkpoint = res.factor
        out.rounds.append(RoundInfo(
            window, nprocs, ok=True, seconds=res.sim.total_time,
        ))
        note_round(window, round_start, True, (), res.sim.total_time, nprocs)
        out.results.append(res.sim)
        out.total_time += res.sim.total_time
        plan = plan.shifted(res.sim.total_time)
        k = window[1]
    out.factor = checkpoint
    out.nprocs_final = nprocs
    return out


def run_1d_resilient(
    A, part, bstruct, nprocs, spec,
    method: str = "ca",
    ckpt_interval: int = 4,
    faults: FaultPlan = None,
    reliable=True,
    sim_opts: dict = None,
    max_restarts: int = None,
    pivot_threshold: float = 1.0,
    monitor=None,
    abft: bool = False,
) -> ResilientResult:
    """1D factorization with panel-boundary checkpoints and crash restart.

    ``abft=True`` additionally checksums multicast payloads; a detected
    silent corruption discards the round and replays the window from the
    checkpoint (counted in ``abft.recovered``)."""
    return _run_resilient(
        run_1d, A, part, bstruct, nprocs, spec,
        ckpt_interval=ckpt_interval, faults=faults, reliable=reliable,
        sim_opts=sim_opts,
        max_restarts=max_restarts if max_restarts is not None else nprocs,
        runner_kwargs={
            "method": method,
            "pivot_threshold": pivot_threshold,
            "monitor": monitor,
            "abft": abft,
            # the task graph depends only on the static structure: build it
            # once here instead of once per restart round
            "tg": build_task_graph(bstruct),
        },
    )


def _run_2d_round(A, part, bstruct, nprocs, spec, **kw):
    # re-pick the grid shape for the current (possibly shrunk) rank count
    return run_2d(A, part, bstruct, nprocs, spec,
                  grid=Grid2D.preferred(nprocs), **kw)


def run_2d_resilient(
    A, part, bstruct, nprocs, spec,
    synchronous: bool = False,
    ckpt_interval: int = 4,
    faults: FaultPlan = None,
    reliable=True,
    sim_opts: dict = None,
    max_restarts: int = None,
    pivot_threshold: float = 1.0,
    monitor=None,
    abft: bool = False,
) -> ResilientResult:
    """2D factorization with panel-boundary checkpoints and crash restart.

    On a crash the grid is re-shaped for the surviving rank count
    (``Grid2D.preferred``) and the blocks are redistributed from the
    checkpoint — the 2D analogue of shrinking the process grid.  ``abft``
    behaves as in :func:`run_1d_resilient`.
    """
    return _run_resilient(
        _run_2d_round, A, part, bstruct, nprocs, spec,
        ckpt_interval=ckpt_interval, faults=faults, reliable=reliable,
        sim_opts=sim_opts,
        max_restarts=max_restarts if max_restarts is not None else nprocs,
        runner_kwargs={
            "synchronous": synchronous,
            "pivot_threshold": pivot_threshold,
            "monitor": monitor,
            "abft": abft,
        },
    )
