"""The 1D column-block parallel codes (Section 5.1).

One generic schedule-driven executor realises both 1D variants:

* **RAPID-style**: tasks ordered by the graph scheduler; a factored column
  is *multicast only to consumer processors* (RAPID's RMA put);
* **compute-ahead (CA)**: cyclic mapping, Fig. 10 ordering, and the paper's
  broadcast of each factored column block to every processor.

Each rank holds the blocks of the column blocks it owns; ``Factor`` and
``Update`` reuse the sequential kernels, so the parallel numerics are
bit-identical to the sequential ones (asserted in tests).  Received columns
are cached in per-rank buffers; the high-water mark of that cache is the
extra-memory statistic behind the paper's 1D-memory-pressure discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine import Simulator, MachineSpec
from ..numfact import (
    BlockLUMatrix,
    factor_block_column,
    factored_column_of,
    update_block_column,
)
from ..numfact.abft import AbftLedger, payload_checksums, verify_payload
from ..numfact.tasks import FactoredColumn
from ..scheduling import Schedule, graph_schedule, compute_ahead_schedule
from ..supernodes import BlockPartition, BlockStructure
from ..taskgraph import TaskGraph, build_task_graph, FACTOR, UPDATE
from ..sparse import CSRMatrix


@dataclass
class OneDResult:
    """Outcome of a 1D parallel factorization run."""

    sim: object  # SimResult
    schedule: Schedule
    factor: object  # merged LUFactorization-compatible storage
    buffer_high_water: list  # per-rank peak bytes of cached remote columns

    @property
    def parallel_seconds(self) -> float:
        return self.sim.total_time


def _distribute_1d(
    A: CSRMatrix, part: BlockPartition, bstruct: BlockStructure, owner, nprocs: int,
    full: BlockLUMatrix = None,
):
    """Build per-rank BlockLUMatrix holding only owned block columns.

    ``full`` lets checkpoint/restart redistribute an existing (partially
    factored) matrix instead of the original ``A``.
    """
    if full is None:
        full = BlockLUMatrix.from_csr(A, part, bstruct)
    locals_ = []
    for _ in range(nprocs):
        m = BlockLUMatrix(part, bstruct)
        locals_.append(m)
    for (I, J), blk in full.blocks.items():
        locals_[int(owner[J])].blocks[(I, J)] = blk
    for K, seq in enumerate(full.pivot_seq):
        if seq is not None:
            locals_[int(owner[K])].pivot_seq[K] = seq
    return locals_


def _consumers(tg: TaskGraph, schedule: Schedule, k: int) -> list:
    """Processors owning a column updated by column k (excluding owner(k))."""
    me = int(schedule.owner[k])
    out = sorted(
        {
            int(schedule.owner[t[2]])
            for t in tg.succ.get((FACTOR, k), ())
            if t[0] == UPDATE
        }
        - {me}
    )
    return out


def _rank_program(env, ctx):
    """Generic 1D SPMD rank: execute my scheduled task list in order."""
    schedule: Schedule = ctx["schedule"]
    tg: TaskGraph = ctx["tg"]
    m: BlockLUMatrix = ctx["locals"][env.rank]
    broadcast = ctx["broadcast"]
    # checkpoint/restart runs a window of elimination stages [k0, k1) per
    # round; a task's stage is its source column k (task[1])
    k0, k1 = ctx.get("stage_range", (0, len(schedule.owner)))
    received = {}
    seen = set()  # every column ever received (incl. later-freed buffers)
    local_fc = {}  # my own factored columns, re-wrapped once per k
    buffer_bytes = 0
    high_water = 0

    my_tasks = [t for t in schedule.proc_tasks[env.rank] if k0 <= t[1] < k1]
    # index of the last Update consuming each remote column k, so the
    # receive buffer frees exactly when its final local consumer ran
    last_use = {}
    for idx, t in enumerate(my_tasks):
        if t[0] == UPDATE:
            last_use[t[1]] = idx
    for idx, task in enumerate(my_tasks):
        t0 = env.clock
        if task[0] == FACTOR:
            k = task[1]
            win = env.begin_counted()
            fc = factor_block_column(
                m, k, counter=env.counter,
                pivot_threshold=ctx["pivot_threshold"],
                monitor=ctx.get("monitor"),
            )
            env.end_counted(win)
            env.span(f"F{k}", t0)
            # pack a fresh send buffer: fc holds views into the local
            # storage ``m``, which later Factor/Update tasks keep mutating
            # while the posted payload is still in flight (Z201)
            payload = {
                "K": int(k),
                "pivots": list(fc.pivots),
                "diag": fc.diag.copy(),
                "lblocks": {I: b.copy() for I, b in fc.lblocks.items()},
            }
            if ctx.get("abft"):
                payload["abft"] = payload_checksums(payload)
            if broadcast:
                dests = [p for p in range(env.nprocs) if p != env.rank]
            else:
                dests = _consumers(tg, schedule, k)
            env.multicast(dests, ("col", k), payload, nbytes=fc.nbytes())
        else:
            _, k, j = task
            if int(schedule.owner[k]) == env.rank:
                fc = local_fc.get(k)
                if fc is None:
                    fc = local_fc[k] = factored_column_of(m, k)
            elif k in received:
                fc = received[k]
            else:
                payload = yield env.recv(("col", k))
                if ctx.get("abft"):
                    verify_payload(payload, where=f"payload:col({k})",
                                   column=k, metrics=env.metrics)
                fc = FactoredColumn(
                    K=payload["K"],
                    pivots=payload["pivots"],
                    diag=payload["diag"],
                    lblocks=payload["lblocks"],
                )
                received[k] = fc
                seen.add(k)
                buffer_bytes += fc.nbytes()
                high_water = max(high_water, buffer_bytes)
            win = env.begin_counted()
            update_block_column(m, fc, j, counter=env.counter)
            env.end_counted(win)
            env.span(f"U{k},{j}", t0)
            # free the buffer once the last local consumer ran
            if (
                int(schedule.owner[k]) != env.rank
                and idx == last_use[k]
                and k in received
            ):
                buffer_bytes -= received.pop(k).nbytes()
    if broadcast:
        # CA broadcasts *every* factored column to every processor; drain
        # the ones this rank never consumed (the Cbuffer free of the real
        # code) so no message is left undelivered at exit
        for k in range(k0, k1):
            if int(schedule.owner[k]) != env.rank and k not in seen:
                payload = yield env.recv(("col", k))
                if ctx.get("abft"):
                    verify_payload(payload, where=f"payload:col({k})",
                                   column=k, metrics=env.metrics)
    return {"pivot_seq": m.pivot_seq, "high_water": high_water}


def run_1d(
    A: CSRMatrix,
    part: BlockPartition,
    bstruct: BlockStructure,
    nprocs: int,
    spec: MachineSpec,
    method: str = "rapid",
    tg: TaskGraph = None,
    pivot_threshold: float = 1.0,
    sim_opts: dict = None,
    stage_range: tuple = None,
    start_from: BlockLUMatrix = None,
    monitor=None,
    abft: bool = False,
) -> OneDResult:
    """Run the 1D parallel factorization of an ordered matrix ``A``.

    ``method`` is ``"rapid"`` (graph scheduling + consumer multicast) or
    ``"ca"`` (cyclic mapping, Fig. 10 order, broadcast).  ``sim_opts`` are
    forwarded to :class:`repro.machine.Simulator` (e.g. ``trace=True``,
    ``host_order=...``, ``faults=...`` or ``reliable=...``).

    Checkpoint/restart (:mod:`repro.parallel.resilience`) passes
    ``stage_range=(k0, k1)`` to execute only elimination stages in the
    window and ``start_from`` (a partially factored merged matrix) to
    resume from a checkpoint instead of the original ``A``.  ``monitor``
    is an optional :class:`repro.numfact.PivotMonitor` shared by all
    ranks for pivot-growth tracking and tiny-pivot perturbation.

    ``abft=True`` turns on algorithm-based fault tolerance: every rank's
    local blocks carry checksums through the kernels
    (:class:`repro.numfact.AbftLedger`), multicast column payloads carry a
    mirror checksum record, and receivers verify payloads at consumption —
    a delivered-but-corrupted message raises
    :class:`repro.numfact.SilentCorruptionError` instead of silently
    poisoning the factorization.
    """
    if tg is None:
        # the task graph is a pure function of the static block structure:
        # memoise it there so repeated runs (benchmark sweeps, restart
        # rounds, refactorizations) don't re-derive it
        tg = getattr(bstruct, "_tg_cache", None)
        if tg is None:
            tg = bstruct._tg_cache = build_task_graph(bstruct)
    if method == "rapid":
        broadcast = False
    elif method == "ca":
        broadcast = True
    else:
        raise ValueError(f"unknown 1D method {method!r}")
    # schedules are pure functions of (tg, method, nprocs, spec): memoise on
    # the graph so restart rounds and repeated runs don't re-derive them
    cache = getattr(tg, "_sched_cache", None)
    if cache is None:
        cache = tg._sched_cache = {}
    skey = (method, nprocs, spec)
    schedule = cache.get(skey)
    if schedule is None:
        schedule = (
            graph_schedule(tg, nprocs, spec)
            if method == "rapid"
            else compute_ahead_schedule(tg, nprocs, spec)
        )
        cache[skey] = schedule

    locals_ = _distribute_1d(A, part, bstruct, schedule.owner, nprocs, full=start_from)
    if abft:
        for m in locals_:
            AbftLedger.attach(m)
    ctx = {
        "schedule": schedule,
        "tg": tg,
        "locals": locals_,
        "broadcast": broadcast,
        "pivot_threshold": pivot_threshold,
        "monitor": monitor,
        "abft": abft,
    }
    if stage_range is not None:
        ctx["stage_range"] = stage_range
    opts = dict(sim_opts or {})
    # zero-copy delivery by default: this module is Z-rule certified
    # (repro lint --certify); the simulator falls back to copying if the
    # certificate is stale/absent or sanitize mode is on
    opts.setdefault("zero_copy", True)
    sim = Simulator(nprocs, spec, _rank_program, args=(ctx,), **opts).run()

    # merge the distributed factor back into one BlockLUMatrix for solving
    merged = BlockLUMatrix(part, bstruct)
    for m in locals_:
        merged.blocks.update(m.blocks)
    for ret in sim.returns:
        if ret is None:  # rank crashed; its state is on the restart path
            continue
        for K, seq in enumerate(ret["pivot_seq"]):
            if seq is not None:
                merged.pivot_seq[K] = seq
    high = [ret["high_water"] if ret is not None else 0 for ret in sim.returns]
    return OneDResult(sim=sim, schedule=schedule, factor=merged, buffer_high_water=high)
