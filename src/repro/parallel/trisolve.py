"""Distributed triangular solves over a 1D-mapped factorization.

The paper factors in parallel and then solves ``L y = P b`` and ``U x = y``
("the triangular solvers are much less time consuming than the Gaussian
elimination process").  This module implements those solvers as SPMD
programs over the same 1D column-block distribution the factorization used:

* the solution vector is distributed by block, co-located with the block
  column's owner;
* **forward**: at stage ``K`` the owner applies block ``K``'s pivot swaps
  (scalar exchanges with the owners of the target rows), solves with the
  unit-lower diagonal block, computes every ``L_IK x_K`` product *locally*
  (it owns column ``K``) and ships the contribution vectors to the owners
  of the target segments;
* **backward**: at stage ``K`` (descending) the owner of each column ``J``
  holding ``U_KJ`` ships ``U_KJ x_J`` to the owner of segment ``K``, which
  applies contributions in ascending-``J`` order so the floating-point
  sums match the sequential solver **bitwise**.

The right-hand side may be a vector ``(n,)`` or a block ``(n, k)`` of
``k`` right-hand sides; block solves run the same protocol once, with every
product a ``trsm``/``gemm``-shaped BLAS-3 call on ``(bs, k)`` panels, so one
factorization (and one message per logical transfer) amortises across all
``k`` solutions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine import Simulator, MachineSpec
from ..numfact import LUFactorization
from ..numfact.kernels import unit_lower_solve, upper_solve


@dataclass
class TriSolveResult:
    """Outcome of a distributed triangular solve."""

    x: np.ndarray
    sim: object  # SimResult

    @property
    def parallel_seconds(self) -> float:
        return self.sim.total_time


def _solve_program(env, ctx):
    lu: LUFactorization = ctx["lu"]
    owner = ctx["owner"]
    b = ctx["b"]
    part = lu.part
    bstruct = lu.bstruct
    blocks = lu.matrix.blocks
    bounds = part.bounds
    N = part.N
    me = env.rank
    nrhs = 1 if b.ndim == 1 else b.shape[1]
    mv_kernel = "dgemv" if nrhs == 1 else "dgemm"

    def row_payload(seg, i):
        # a scalar for vector solves (historic wire format), a row copy for
        # (n, k) blocks
        return float(seg[i]) if b.ndim == 1 else seg[i].copy()

    mine = [K for K in range(N) if int(owner[K]) == me]
    x = {K: b[bounds[K] : bounds[K + 1]].copy() for K in mine}

    # ---- forward substitution with interleaved pivoting ----------------
    for K in range(N):
        if int(owner[K]) == me:
            # apply block K's pivot swaps; t may live on another rank
            for step, (m, t) in enumerate(lu.matrix.pivot_seq[K]):
                if m == t:
                    continue
                It = int(part.block_of[t])
                pt = int(owner[It])
                lm = m - bounds[K]
                if pt == me:
                    lt = t - bounds[It]
                    tmp = np.copy(x[K][lm])
                    x[K][lm] = x[It][lt]
                    x[It][lt] = tmp
                else:
                    env.send(pt, ("fswap", K, step, "m"), row_payload(x[K], lm))
                    x[K][lm] = yield env.recv(("fswap", K, step, "t"))
            xk = x[K]
            win = env.begin_counted()
            unit_lower_solve(blocks[(K, K)], xk, counter=env.counter)
            env.end_counted(win)
            # push L_IK x_K contributions to segment owners
            for I in bstruct.l_block_rows(K):
                if I <= K:
                    continue
                contrib = blocks[(I, K)] @ xk
                env.compute(mv_kernel, 2.0 * blocks[(I, K)].size * nrhs, gran=part.size(K))
                po = int(owner[I])
                if po == me:
                    x[I] -= contrib
                else:
                    env.send(po, ("fwd", K, I), contrib)
        else:
            # serve swap partners targeting my rows
            for step, (m, t) in enumerate(lu.matrix.pivot_seq[K]):
                if m == t:
                    continue
                It = int(part.block_of[t])
                if int(owner[It]) != me:
                    continue
                lt = t - bounds[It]
                env.send(int(owner[K]), ("fswap", K, step, "t"), row_payload(x[It], lt))
                x[It][lt] = yield env.recv(("fswap", K, step, "m"))
            # absorb contributions into my segments, ascending I
            for I in bstruct.l_block_rows(K):
                if I > K and int(owner[I]) == me:
                    contrib = yield env.recv(("fwd", K, I))
                    x[I] -= contrib

    # ---- backward substitution -----------------------------------------
    for K in range(N - 1, -1, -1):
        # producers: owners of columns J > K holding U_KJ send their product
        for J in bstruct.u_block_cols(K):
            if int(owner[J]) == me and int(owner[K]) != me:
                contrib = blocks[(K, J)] @ x[J]
                env.compute(mv_kernel, 2.0 * blocks[(K, J)].size * nrhs, gran=part.size(J))
                env.send(int(owner[K]), ("bwd", K, J), contrib)
        if int(owner[K]) == me:
            xk = x[K]
            for J in bstruct.u_block_cols(K):  # ascending J: bitwise order
                if int(owner[J]) == me:
                    contrib = blocks[(K, J)] @ x[J]
                    env.compute(mv_kernel, 2.0 * blocks[(K, J)].size * nrhs, gran=part.size(J))
                else:
                    contrib = yield env.recv(("bwd", K, J))
                xk -= contrib
            win = env.begin_counted()
            upper_solve(blocks[(K, K)], xk, counter=env.counter)
            env.end_counted(win)

    return {K: x[K] for K in mine}


def run_1d_trisolve(
    lu: LUFactorization, owner, b: np.ndarray, nprocs: int, spec: MachineSpec,
    sim_opts: dict = None,
) -> TriSolveResult:
    """Solve ``A x = b`` (permuted coordinates) with the distributed
    triangular solvers over the 1D mapping ``owner``.

    ``lu`` is a (merged) factorization whose blocks the ranks read from
    according to ownership — physically shared in-process, logically
    distributed, matching how the factorization left the data.

    ``b`` is a single right-hand side ``(n,)`` or a block ``(n, k)``; the
    block form solves all ``k`` systems in one pass with BLAS-3 panels.
    """
    b = np.asarray(b, dtype=np.float64)
    if b.ndim not in (1, 2) or b.shape[0] != lu.n:
        raise ValueError(
            f"rhs must have shape ({lu.n},) or ({lu.n}, k); got {b.shape}"
        )
    ctx = {"lu": lu, "owner": owner, "b": b}
    opts = dict(sim_opts or {})
    opts.setdefault("zero_copy", True)  # Z-rule certified module
    sim = Simulator(nprocs, spec, _solve_program, args=(ctx,), **opts).run()
    x = np.empty(b.shape)
    bounds = lu.part.bounds
    for ret in sim.returns:
        for K, seg in ret.items():
            x[bounds[K] : bounds[K + 1]] = seg
    return TriSolveResult(x=x, sim=sim)
