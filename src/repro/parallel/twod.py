"""The 2D block-cyclic parallel codes (Section 5.2, Figs. 12-15).

Blocks map to a ``p_r x p_c`` grid: ``A_IJ`` lives on rank
``(I mod p_r, J mod p_c)``.  The asynchronous algorithm follows Fig. 12:

* ``Factor(K)`` (Fig. 13) runs on processor column ``K mod p_c`` with a
  per-column pivot reduction along the processor column (local maxima +
  candidate subrows sent to the diagonal owner, winning subrow broadcast
  back), then multicasts the pivot sequence and local L blocks along each
  processor *row*;
* ``ScaleSwap(K)`` (Fig. 14) performs the delayed row interchanges inside
  each processor column (pairwise subrow exchanges), the owners of block
  row ``K`` scale ``U_K,*`` by ``L_KK^{-1}`` and multicast the scaled row
  panel along their processor *columns*;
* ``Update_2D(K, J)`` (Fig. 15) is the embarrassingly block-parallel GEMM
  sweep;
* compute-ahead: the owner column of ``K+1`` runs ``Update_2D(K, K+1)`` and
  ``Factor(K+1)`` before its remaining stage-``K`` updates.

The synchronous variant (the Table 7 baseline) adds a global barrier per
elimination stage and drops the compute-ahead, serialising the pipeline.

The numerics are bitwise identical to the sequential S* code — same scalar
operations in the same order per matrix element — which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine import Simulator, MachineSpec
from ..numfact import BlockLUMatrix, SingularMatrixError, StructureViolation
from ..numfact.abft import payload_checksums, verify_payload
from ..numfact.kernels import scratch_buffer, unit_lower_solve
from ..numfact.tasks import batched_updates_enabled
from ..sparse import CSRMatrix
from ..supernodes import BlockPartition, BlockStructure
from .mapping import Grid2D


@dataclass
class TwoDResult:
    """Outcome of a 2D parallel factorization run."""

    sim: object  # SimResult
    grid: Grid2D
    factor: BlockLUMatrix  # merged storage (solvable)
    update_spans: list  # (rank, K, start, end) intervals of Update_2D stages

    @property
    def parallel_seconds(self) -> float:
        return self.sim.total_time

    def overlap_degree(self) -> int:
        """Measured stage-overlap degree of Update_2D tasks (Theorem 2):
        max |k' - k| over concurrently executing Update_2D stages."""
        spans = sorted(self.update_spans, key=lambda s: s[2])
        best = 0
        for i, (_, k1, s1, e1) in enumerate(spans):
            for _, k2, s2, e2 in spans[i + 1 :]:
                if s2 >= e1:
                    break
                if min(e1, e2) > max(s1, s2):
                    best = max(best, abs(k2 - k1))
        return best


def _distribute_2d(A, part, bstruct, grid: Grid2D, full: BlockLUMatrix = None):
    if full is None:
        full = BlockLUMatrix.from_csr(A, part, bstruct)
    locals_ = [dict() for _ in range(grid.nprocs)]
    for (I, J), blk in full.blocks.items():
        locals_[grid.owner_of_block(I, J)][(I, J)] = blk
    return locals_


def _swap_local(blocks, part, J, r1, r2, bstruct):
    """Swap rows r1, r2 of block column J when both live on this rank."""
    I1, I2 = int(part.block_of[r1]), int(part.block_of[r2])
    b1 = blocks.get((I1, J))
    b2 = blocks.get((I2, J))
    o1, o2 = r1 - part.start(I1), r2 - part.start(I2)
    if b1 is not None and b2 is not None:
        tmp = b1[o1].copy()
        b1[o1] = b2[o2]
        b2[o2] = tmp
    elif b1 is None and b2 is not None:
        if np.any(b2[o2]):
            raise StructureViolation(f"2D swap into absent block ({I1},{J})")
    elif b2 is None and b1 is not None:
        if np.any(b1[o1]):
            raise StructureViolation(f"2D swap into absent block ({I2},{J})")


def _pack_row(blocks, part, cols, pos):
    """Pack the subrow at global position ``pos`` across the given local
    block columns; absent blocks are omitted (structurally zero)."""
    I = int(part.block_of[pos])
    o = pos - part.start(I)
    out = {}
    for J in cols:
        blk = blocks.get((I, J))
        if blk is not None:
            # copy, not a view: the row is posted zero-copy while the local
            # block keeps being updated (Z201)
            out[J] = blk[o].copy()
    return out


def _ndarray_dict_nbytes(d) -> int:
    """Exact ``_payload_nbytes`` of a ``{key: ndarray}`` payload, computed
    without the generic recursion (wire-format parity is what keeps the
    modeled transfer times identical across delivery modes)."""
    return 16 + sum(8 + v.nbytes for v in d.values())


def _store_row(blocks, part, cols, pos, incoming):
    """Write an exchanged subrow back; enforce the static structure."""
    I = int(part.block_of[pos])
    o = pos - part.start(I)
    for J in cols:
        blk = blocks.get((I, J))
        if blk is not None:
            if J in incoming:
                blk[o] = incoming[J]
            else:
                if np.any(blk[o]):
                    raise StructureViolation(
                        f"2D swap lost nonzeros of row {pos} in column {J}"
                    )
                blk[o] = 0.0
        else:
            if J in incoming and np.any(incoming[J]):
                raise StructureViolation(
                    f"2D swap would fill absent block ({I},{J})"
                )


def _rank_program_2d(env, ctx):
    grid: Grid2D = ctx["grid"]
    part: BlockPartition = ctx["part"]
    bstruct: BlockStructure = ctx["bstruct"]
    blocks: dict = ctx["locals"][env.rank]
    synchronous: bool = ctx["synchronous"]
    pivot_threshold: float = ctx["pivot_threshold"]
    monitor = ctx.get("monitor")
    abft = bool(ctx.get("abft"))
    batched = batched_updates_enabled()
    block_of = ctx["block_of"]
    r, c = grid.coords(env.rank)
    pr, pc = grid.pr, grid.pc
    N = part.N
    update_spans = []
    pivseqs = [None] * N
    lcol_cache = {}  # K -> {"pivots", "diag", "lblocks"} for my block rows
    urow_cache = {}  # K -> {J: scaled U_KJ} for my block columns
    # per-rank update-sweep memo: K -> (sorted lblock items, tallest block).
    # Kept outside lcol_cache because the lcol payload may be zero-copy
    # shared with other ranks — received payloads are never mutated.
    lcol_sweep = {}

    my_cols = [J for J in range(N) if J % pc == c]

    # ---- Factor(K): runs on processor column K % pc (Fig. 13) -----------
    def factor(K):
        k0, bs = part.start(K), part.size(K)
        diag_r = K % pr
        myI = [I for I in bstruct.l_block_rows(K) if I % pr == r]
        # hoist the per-column lookups: (start, block, structural rows) per
        # local panel block, plus shared abs/outer scratch for the pivot
        # search and the rank-1 eliminations
        panel = []
        maxrows = 0
        for I in myI:
            blk = blocks[(I, K)]
            panel.append((part.start(I), blk, bstruct.l_rows_count(I, K)))
            if blk.shape[0] > maxrows:
                maxrows = blk.shape[0]
        # scratch contents never survive a yield (each pivot step fully
        # writes before reading), so the pooled buffers are safe to share
        # across the interleaved per-rank factor() generators
        scr = scratch_buffer("2d-factor-outer", maxrows, bs) if maxrows else None
        babs = scratch_buffer("2d-factor-abs", maxrows) if maxrows else None
        compute = env.compute
        pivots = []
        for m in range(bs):
            gm = k0 + m
            # local best candidate (position >= gm), ties -> smallest position
            best_abs, best_pos, best_row = -1.0, -1, None
            ncand = 0
            for s0, blk, _lrc in panel:
                lo = gm - s0
                if lo < 0:
                    lo = 0
                nsub = blk.shape[0] - lo
                if nsub <= 0:
                    continue
                sub = blk[lo:, m]
                ncand += nsub
                ab = babs[:nsub]
                np.abs(sub, out=ab)
                t = int(np.argmax(ab))
                v = float(ab[t])
                if v > best_abs:
                    best_abs, best_pos = v, s0 + lo + t
                    best_row = blk[lo + t]
            compute("blas1", ncand)
            if r != diag_r:
                env.send(
                    grid.rank(diag_r, c),
                    ("pmax", K, m, r),
                    (best_abs, best_pos,
                     None if best_row is None else best_row.copy()),
                    nbytes=32 + (8 if best_row is None else best_row.nbytes),
                )
                t_pos, piv_row, old_row = yield env.recv(("pbest", K, m))
            else:
                g_abs, g_pos, g_row = best_abs, best_pos, best_row
                for rr in range(pr):
                    if rr == diag_r:
                        continue
                    a, p, row = yield env.recv(("pmax", K, m, rr))
                    if a > g_abs or (a == g_abs and p != -1 and (g_pos == -1 or p < g_pos)):
                        g_abs, g_pos, g_row = a, p, row
                if g_pos == -1 or g_abs == 0.0:
                    if monitor is None or not monitor.perturb:
                        raise SingularMatrixError(
                            f"no nonzero pivot for column {gm}", pivot_index=gm
                        )
                    # numerically dead column: keep the diagonal position and
                    # let the monitor perturb its value below
                    g_pos = gm
                    g_row = blocks[(K, K)][m]
                dval = blocks[(K, K)][m, m]
                if (
                    pivot_threshold < 1.0
                    and abs(dval) >= pivot_threshold * g_abs
                    and dval != 0.0
                ):
                    # threshold pivoting: keep the diagonal
                    g_pos = gm
                    g_row = blocks[(K, K)][m]
                t_pos = g_pos
                piv_row = np.array(g_row, copy=True)
                if monitor is not None:
                    new = monitor.consider(gm, float(piv_row[m]))
                    if new != piv_row[m]:
                        piv_row[m] = new
                        if int(t_pos) == gm:
                            # no interchange will write piv_row back; patch
                            # the stored diagonal directly
                            blocks[(K, K)][m, m] = new
                # old row m is local to the diagonal owner
                dblk = blocks[(K, K)]
                old_row = dblk[m].copy()
                env.multicast(
                    grid.col_ranks(c),
                    ("pbest", K, m),
                    (t_pos, piv_row, old_row),
                    nbytes=24 + piv_row.nbytes + old_row.nbytes,
                )
            pivots.append((gm, int(t_pos)))
            # perform the interchange within the panel
            if int(t_pos) != gm:
                It = block_of[t_pos]
                if r == diag_r:
                    blocks[(K, K)][m] = piv_row
                if It % pr == r:
                    blk = blocks[(It, K)]
                    blk[t_pos - part.start(It)] = old_row
            # eliminate: scale column m and update the trailing panel
            piv_val = piv_row[m] if r != diag_r else blocks[(K, K)][m, m]
            nrows = 0
            ntrail = bs - m - 1
            prow = piv_row[m + 1 :] if ntrail > 0 else None
            for s0, blk, lrc in panel:
                lo = gm + 1 - s0
                if lo < 0:
                    lo = 0
                h = blk.shape[0] - lo
                if h <= 0:
                    continue
                col = blk[lo:, m]
                col /= piv_val
                if ntrail > 0:
                    sub = blk[lo:, m + 1 :]
                    outer = scr[:h, :ntrail]
                    np.multiply(col[:, None], prow, out=outer)
                    np.subtract(sub, outer, out=sub)
                # charge the packed-storage row count (accounting parity
                # with the sequential code)
                nrows += lrc if lrc < h else h
            compute("blas1", nrows)
            compute("dgemv", 2.0 * nrows * max(ntrail, 0), gran=bs)
        pivseqs[K] = pivots
        # multicast pivots + my local L blocks along my processor row
        diag = blocks.get((K, K)) if diag_r == r else None
        lblocks = {I: blocks[(I, K)] for I in myI if I > K}
        payload = {"pivots": pivots, "diag": diag, "lblocks": lblocks}
        nb = None
        if abft:
            # column K is final after Factor(K): checksums taken from the
            # live views stay valid for the in-flight deep-copied payload
            payload["abft"] = payload_checksums(
                {key: v for key, v in payload.items()})
        else:
            # exact _payload_nbytes of this payload shape, without the
            # generic recursion
            nb = (
                72 + 32 * len(pivots)
                + (diag.nbytes if diag is not None else 8)
                + sum(8 + b.nbytes for b in lblocks.values())
            )
        lcol_cache[K] = payload
        env.multicast(grid.row_ranks(r), ("lcol", K), payload, nbytes=nb)

    # ---- ScaleSwap(K): all ranks (Fig. 14) -------------------------------
    def scaleswap(K):
        if c == K % pc:
            info = lcol_cache[K]
        else:
            info = yield env.recv(("lcol", K))
            if abft:
                verify_payload(info, where=f"payload:lcol({K})",
                               column=K, metrics=env.metrics)
            lcol_cache[K] = info
        pivots = info["pivots"]
        cols_after = [J for J in my_cols if J > K]
        # delayed row interchanges within my processor column
        for step, (gm, t) in enumerate(pivots):
            if gm == t:
                continue
            r1 = block_of[gm] % pr
            r2 = block_of[t] % pr
            if r1 == r and r2 == r:
                for J in cols_after:
                    _swap_local(blocks, part, J, gm, t, bstruct)
            elif r1 == r or r2 == r:
                mine, theirs = (gm, t) if r1 == r else (t, gm)
                peer = grid.rank(r2 if r1 == r else r1, c)
                outrow = _pack_row(blocks, part, cols_after, mine)
                nb = None if abft else _ndarray_dict_nbytes(outrow)
                if abft:
                    outrow["abft"] = payload_checksums(
                        {key: v for key, v in outrow.items()})
                env.send(peer, ("swap", K, step, r), outrow, nbytes=nb)
                incoming = yield env.recv(("swap", K, step, (r2 if r1 == r else r1)))
                if abft:
                    verify_payload(incoming, where=f"payload:swap({K},{step})",
                                   column=K, metrics=env.metrics)
                _store_row(blocks, part, cols_after, mine, incoming)
        # scaling of the U row panel by the owners of block row K
        if r == K % pr:
            diag = info["diag"]
            scaled = {}
            udense = bstruct.udense_cols
            for J in cols_after:
                ukj = blocks.get((K, J))
                if ukj is not None:
                    win = env.begin_counted()
                    unit_lower_solve(
                        diag,
                        ukj,
                        counter=env.counter,
                        ncols_structural=len(udense[(K, J)]),
                    )
                    env.end_counted(win)
                    scaled[J] = ukj
            nb = None if abft else _ndarray_dict_nbytes(scaled)
            if abft:
                # block row K is final after the scaling; see lcol above
                scaled["abft"] = payload_checksums(
                    {key: v for key, v in scaled.items()})
            urow_cache[K] = scaled
            env.multicast(grid.col_ranks(c), ("urow", K, c), scaled, nbytes=nb)
        else:
            urow = yield env.recv(("urow", K, c))
            if abft:
                verify_payload(urow, where=f"payload:urow({K})",
                               column=K, metrics=env.metrics)
            urow_cache[K] = urow

    # ---- Update_2D(K, J): local GEMM sweep (Fig. 15) ---------------------
    udense_cols = bstruct.udense_cols

    def update_stage(K, urow, js):
        """Run ``Update_2D(K, J)`` for each candidate ``J`` in ``js``
        (skipping columns absent from the scaled U row), hoisting the
        per-stage lookups shared by the whole sweep out of the per-(K, J)
        work.  Per-(K, J) spans, counters and clock charges are unchanged."""
        items = None
        urow_get = urow.get
        for J in js:
            ukj = urow_get(J)
            if ukj is None:
                continue
            if items is None:
                sweep = lcol_sweep.get(K)
                if sweep is None:
                    items = [
                        (I, lik, bstruct.l_rows_count(I, K), lik.shape[1])
                        for I, lik in sorted(lcol_cache[K]["lblocks"].items())
                    ]
                    maxrows = max(
                        (lik.shape[0] for _, lik, _, _ in items), default=0)
                    sweep = lcol_sweep[K] = (items, maxrows)
                items, maxrows = sweep
                do_batch = batched and bool(items)
                blocks_get = blocks.get
                compute = env.compute
                matmul = np.matmul
                subtract = np.subtract
            t0 = env.clock
            ncols = len(udense_cols[(K, J)])
            if do_batch:
                # fused sweep sharing one product scratch: same per-block
                # BLAS shapes and charge order as the legacy path
                # (bit-identical factors and virtual times), no per-block
                # temporaries
                scratch = scratch_buffer(
                    "2d-update-prod", maxrows, ukj.shape[1])
                wide = ncols >= 2
                for I, lik, srows, lk in items:
                    prod = scratch[: lik.shape[0]]
                    matmul(lik, ukj, out=prod)
                    target = blocks_get((I, J))
                    if target is None:
                        if np.any(prod):
                            raise StructureViolation(
                                f"2D update ({K},{J}) touches absent block ({I},{J})"
                            )
                        continue
                    subtract(target, prod, out=target)
                    if wide and srows >= 2:
                        compute("dgemm", 2.0 * srows * lk * ncols,
                                gran=lk if lk < ncols else ncols)
                    else:
                        compute("dgemv", 2.0 * srows * lk * ncols, gran=lk)
            else:
                for I, lik, srows, lk in items:
                    target = blocks_get((I, J))
                    if target is None:
                        if np.any(lik @ ukj):
                            raise StructureViolation(
                                f"2D update ({K},{J}) touches absent block ({I},{J})"
                            )
                        continue
                    snap = env.snapshot()
                    target -= lik @ ukj
                    kernel = "dgemm" if ncols >= 2 and srows >= 2 else "dgemv"
                    env.counter.add(
                        kernel,
                        2.0 * srows * lk * ncols,
                        gran=min(lk, ncols) if kernel == "dgemm" else lk,
                    )
                    env.compute_counted(snap)
            if env.clock > t0:
                update_spans.append((env.rank, K, t0, env.clock))
                env.span(f"U2D{K}", t0)

    # ---- main loop (Fig. 12) ---------------------------------------------
    # checkpoint/restart runs a window of elimination stages [k_lo, k_hi)
    # per round; the full run is the single window [0, N)
    k_lo, k_hi = ctx.get("stage_range", (0, N))
    # a J absent from the scaled U row is a no-op Update (its first check
    # returns immediately) — skip the call entirely
    if synchronous:
        for k in range(k_lo, k_hi):
            if c == k % pc:
                yield from factor(k)
            yield from scaleswap(k)
            update_stage(k, urow_cache[k], [j for j in my_cols if j > k])
            yield env.barrier()
    else:
        if c == k_lo % pc:
            yield from factor(k_lo)
        for k in range(k_lo, k_hi - 1):
            yield from scaleswap(k)
            urow = urow_cache[k]
            if (k + 1) % pc == c:
                update_stage(k, urow, (k + 1,))
                yield from factor(k + 1)
            update_stage(k, urow, [j for j in my_cols if j > k + 1])
        if k_hi < N:
            # window boundary: finish stage k_hi-1 completely (its Factor
            # already ran; ScaleSwap + every trailing update) so the merged
            # state is a consistent checkpoint.  Factor(k_hi) belongs to
            # the next round.
            k = k_hi - 1
            yield from scaleswap(k)
            update_stage(k, urow_cache[k], [j for j in my_cols if j > k])
        # ScaleSwap(N-1) never runs in the pipelined loop, but Factor(N-1)
        # still multicast its L panel along the processor rows; drain it so
        # no message is left undelivered at exit (the Cbuffer free)
        elif N >= 1 and c != (N - 1) % pc:
            last = yield env.recv(("lcol", N - 1))
            if abft:
                verify_payload(last, where=f"payload:lcol({N - 1})",
                               column=N - 1, metrics=env.metrics)
            lcol_cache[N - 1] = last
    return {
        "pivot_seq": pivseqs,
        "update_spans": update_spans,
    }


def run_2d(
    A: CSRMatrix,
    part: BlockPartition,
    bstruct: BlockStructure,
    nprocs: int,
    spec: MachineSpec,
    synchronous: bool = False,
    grid: Grid2D = None,
    pivot_threshold: float = 1.0,
    sim_opts: dict = None,
    stage_range: tuple = None,
    start_from: BlockLUMatrix = None,
    monitor=None,
    abft: bool = False,
) -> TwoDResult:
    """Run the 2D parallel factorization of an ordered matrix ``A``.

    ``sim_opts`` are forwarded to :class:`repro.machine.Simulator` (e.g.
    ``trace=True`` / ``host_order=...`` / ``faults=...`` /
    ``reliable=...``).  Checkpoint/restart passes ``stage_range=(k0, k1)``
    and ``start_from`` (a partially factored merged matrix); ``monitor``
    is an optional :class:`repro.numfact.PivotMonitor`.

    ``abft=True`` adds checksum records to the block-carrying payloads
    (``lcol`` L panels, ``urow`` scaled row panels, ``swap`` row
    exchanges); receivers verify them at consumption and raise
    :class:`repro.numfact.SilentCorruptionError` on a mismatch.  The
    O(b)-word pivot-reduction messages (``pmax``/``pbest``) are not
    checksummed — see DESIGN.
    """
    if grid is None:
        grid = Grid2D.preferred(nprocs)
    if grid.nprocs != nprocs:
        raise ValueError("grid size does not match nprocs")
    locals_ = _distribute_2d(A, part, bstruct, grid, full=start_from)
    ctx = {
        "grid": grid,
        "part": part,
        "bstruct": bstruct,
        "locals": locals_,
        "synchronous": synchronous,
        "pivot_threshold": pivot_threshold,
        "monitor": monitor,
        "abft": abft,
        # row -> block index as plain Python ints, shared read-only by all
        # ranks: the pivot-swap loops hit this per pivot, and indexing the
        # numpy array there costs an int() boxing per lookup
        "block_of": part.block_of.tolist(),
    }
    if stage_range is not None:
        ctx["stage_range"] = stage_range
    opts = dict(sim_opts or {})
    # zero-copy delivery by default: this module is Z-rule certified
    # (repro lint --certify); the simulator falls back to copying if the
    # certificate is stale/absent or sanitize mode is on
    opts.setdefault("zero_copy", True)
    sim = Simulator(
        grid.nprocs, spec, _rank_program_2d, args=(ctx,), **opts
    ).run()

    merged = BlockLUMatrix(part, bstruct)
    for d in locals_:
        merged.blocks.update(d)
    if start_from is not None:
        for K, seq in enumerate(start_from.pivot_seq):
            if seq is not None:
                merged.pivot_seq[K] = seq
    spans = []
    for ret in sim.returns:
        if ret is None:  # rank crashed; its state is on the restart path
            continue
        spans.extend(ret["update_spans"])
        for K, seq in enumerate(ret["pivot_seq"]):
            if seq is not None:
                merged.pivot_seq[K] = seq
    return TwoDResult(sim=sim, grid=grid, factor=merged, update_spans=spans)
