"""Distributed triangular solves over the 2D block-cyclic mapping.

Completes the 2D story: after :func:`repro.parallel.run_2d` leaves the
factor blocks distributed on the ``p_r x p_c`` grid, these SPMD solvers run
``L y = P b`` and ``U x = y`` without gathering the matrix anywhere.

The solution vector is distributed by block, segment ``x_K`` living with
the diagonal block's owner ``(K mod p_r, K mod p_c)``:

* **forward** (ascending K): diagonal owners exchange the scalars a pivot
  swap touches, the owner solves with ``L_KK`` and multicasts ``x_K`` down
  processor column ``K mod p_c`` — exactly where every ``L_IK`` lives; each
  ``L_IK`` owner ships its product to segment ``I``'s owner, which absorbs
  contributions in ascending ``(K, I)`` order so sums match the sequential
  solver bitwise;
* **backward** (descending K): each finalised ``x_J`` is multicast down
  processor column ``J mod p_c``, where the ``U_KJ`` owners later produce
  the contributions segment ``K`` subtracts in ascending-``J`` order before
  its own back substitution.

``b`` may be a vector ``(n,)`` or an ``(n, k)`` block of right-hand sides;
the block form runs the identical protocol once with BLAS-3 ``(bs, k)``
panels in every product and multicast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine import Simulator, MachineSpec
from ..numfact import LUFactorization
from ..numfact.kernels import unit_lower_solve, upper_solve
from .mapping import Grid2D


@dataclass
class TriSolve2DResult:
    """Outcome of a distributed 2D triangular solve."""

    x: np.ndarray
    sim: object

    @property
    def parallel_seconds(self) -> float:
        return self.sim.total_time


def _shared_precomputes(lu: LUFactorization, grid: Grid2D) -> dict:
    """Per-run tables every rank reads (never writes): diagonal owners,
    L-below / U-right block lists, and the non-trivial pivot swaps.  Built
    once in the driver instead of ``nprocs`` times in the rank programs."""
    part = lu.part
    bstruct = lu.bstruct
    pr, pc = grid.pr, grid.pc
    N = part.N
    down = [grid.rank(K % pr, K % pc) for K in range(N)]
    below = [[I for I in bstruct.l_block_rows(K) if I > K] for K in range(N)]
    right = [bstruct.u_block_cols(K) for K in range(N)]
    block_of = part.block_of
    swaps = []
    for K in range(N):
        s = []
        for step, (m, t) in enumerate(lu.matrix.pivot_seq[K]):
            if m != t:
                s.append((step, m, t, int(block_of[t])))
        swaps.append(s)
    return {"down": down, "below": below, "right": right, "swaps": swaps}


def _program(env, ctx):
    lu: LUFactorization = ctx["lu"]
    grid: Grid2D = ctx["grid"]
    b = ctx["b"]
    part = lu.part
    bstruct = lu.bstruct
    blocks = lu.matrix.blocks
    bounds = part.bounds
    N = part.N
    me = env.rank
    r, c = grid.coords(me)
    pr, pc = grid.pr, grid.pc
    nrhs = 1 if b.ndim == 1 else b.shape[1]
    mv_kernel = "dgemv" if nrhs == 1 else "dgemm"
    down = ctx["down"]
    below_of = ctx["below"]
    right_of = ctx["right"]
    swaps_of = ctx["swaps"]
    psize = part.size

    def row_payload(seg, i):
        # a scalar for vector solves (historic wire format), a row copy for
        # (n, k) blocks
        return float(seg[i]) if b.ndim == 1 else seg[i].copy()

    x = {
        K: b[bounds[K] : bounds[K + 1]].copy()
        for K in range(N)
        if down[K] == me
    }

    # ---- forward ---------------------------------------------------------
    for K in range(N):
        own_k = down[K] == me
        my_col = c == K % pc
        # pivot swaps: scalar exchanges between diagonal owners
        for step, m, t, It in swaps_of[K]:
            o_m, o_t = down[K], down[It]
            if o_m == o_t:
                if me == o_m:
                    lm, lt = m - bounds[K], t - bounds[It]
                    tmp = np.copy(x[K][lm])
                    x[K][lm] = x[It][lt]
                    x[It][lt] = tmp
            elif me == o_m:
                lm = m - bounds[K]
                env.send(o_t, ("2dswap", K, step, "m"), row_payload(x[K], lm))
                x[K][lm] = yield env.recv(("2dswap", K, step, "t"))
            elif me == o_t:
                lt = t - bounds[It]
                env.send(o_m, ("2dswap", K, step, "t"), row_payload(x[It], lt))
                x[It][lt] = yield env.recv(("2dswap", K, step, "m"))
        below = below_of[K]
        if own_k:
            xk = x[K]
            win = env.begin_counted()
            unit_lower_solve(blocks[(K, K)], xk, counter=env.counter)
            env.end_counted(win)
            env.multicast(grid.col_ranks(K % pc), ("2dxk", K), xk.copy())
            xk_local = xk
        elif my_col:
            xk_local = yield env.recv(("2dxk", K))
        else:
            xk_local = None
        # producers in processor column K % pc compute L_IK x_K
        if my_col:
            for I in below:
                if I % pr == r and bstruct.has_l(I, K):
                    contrib = blocks[(I, K)] @ xk_local
                    env.compute(mv_kernel, 2.0 * blocks[(I, K)].size * nrhs, gran=psize(K))
                    dest = down[I]
                    if dest == me:
                        x[I] -= contrib
                    else:
                        env.send(dest, ("2dfwd", K, I), contrib)
        # absorb contributions into my segments (ascending I: bitwise order)
        kc = K % pc
        for I in below:
            if (
                down[I] == me
                and bstruct.has_l(I, K)
                and grid.rank(I % pr, kc) != me
            ):
                contrib = yield env.recv(("2dfwd", K, I))
                x[I] -= contrib

    # ---- backward --------------------------------------------------------
    xj_local = {}  # finalised segments received on my processor column
    for K in range(N - 1, -1, -1):
        right = right_of[K]
        own_k = down[K] == me
        # producers of stage-K contributions (U_KJ owners, J finalised)
        if r == K % pr and not own_k:
            for J in right:
                if J % pc == c:
                    contrib = blocks[(K, J)] @ xj_local[J]
                    env.compute(mv_kernel, 2.0 * blocks[(K, J)].size * nrhs, gran=psize(J))
                    env.send(down[K], ("2dbwd", K, J), contrib)
        if own_k:
            xk = x[K]
            for J in right:  # ascending J: bitwise order
                producer = grid.rank(K % pr, J % pc)
                if producer == me:
                    contrib = blocks[(K, J)] @ xj_local[J]
                    env.compute(mv_kernel, 2.0 * blocks[(K, J)].size * nrhs, gran=psize(J))
                else:
                    contrib = yield env.recv(("2dbwd", K, J))
                xk -= contrib
            win = env.begin_counted()
            upper_solve(blocks[(K, K)], xk, counter=env.counter)
            env.end_counted(win)
            env.multicast(grid.col_ranks(K % pc), ("2dxb", K), xk.copy())
            if c == K % pc:
                xj_local[K] = xk
        elif c == K % pc:
            xj_local[K] = yield env.recv(("2dxb", K))
    return {K: x[K] for K in x}


def run_2d_trisolve(
    lu: LUFactorization, b: np.ndarray, nprocs: int, spec: MachineSpec,
    grid: Grid2D = None, sim_opts: dict = None,
) -> TriSolve2DResult:
    """Solve ``A x = b`` (permuted coordinates) on the 2D grid.

    ``b`` is a single right-hand side ``(n,)`` or an ``(n, k)`` block; the
    block form solves all ``k`` systems in one pass with BLAS-3 panels.
    """
    if grid is None:
        grid = Grid2D.preferred(nprocs)
    if grid.nprocs != nprocs:
        raise ValueError("grid size does not match nprocs")
    b = np.asarray(b, dtype=np.float64)
    if b.ndim not in (1, 2) or b.shape[0] != lu.n:
        raise ValueError(
            f"rhs must have shape ({lu.n},) or ({lu.n}, k); got {b.shape}"
        )
    ctx = {"lu": lu, "grid": grid, "b": b, **_shared_precomputes(lu, grid)}
    opts = dict(sim_opts or {})
    opts.setdefault("zero_copy", True)  # Z-rule certified module
    sim = Simulator(nprocs, spec, _program, args=(ctx,), **opts).run()
    x = np.empty(b.shape)
    bounds = lu.part.bounds
    for ret in sim.returns:
        for K, seg in ret.items():
            x[bounds[K] : bounds[K + 1]] = seg
    return TriSolve2DResult(x=x, sim=sim)
