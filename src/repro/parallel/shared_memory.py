"""Shared-memory (thread) parallel factorization — real wall-clock parallelism.

The previous performance record the paper cites was set on a *shared
memory* machine [8]; this module provides that flavour for modern hosts:
within each elimination stage ``K`` the tasks ``Update(K, J)`` for distinct
``J`` touch disjoint block columns, so they run concurrently on a thread
pool.  numpy's BLAS releases the GIL inside the block GEMMs, so — unlike
the discrete-event codes, whose time is *modeled* — this backend can show
genuine wall-clock speedup on multicore hosts for large enough blocks.

Numerics are bitwise identical to the sequential driver: each column block
is updated by exactly one thread per stage and stages are barriers, so
every matrix element sees the same operations in the same order.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from ..numfact import KernelCounter
from ..numfact.blocks import BlockLUMatrix
from ..numfact.sequential import LUFactorization
from ..numfact.tasks import factor_block_column, update_block_column
from ..sparse import CSRMatrix
from ..supernodes import build_partition, build_block_structure
from ..symbolic import static_symbolic_factorization


def sstar_factor_threads(
    A: CSRMatrix,
    nthreads: int = 4,
    block_size: int = 25,
    amalgamation: int = 4,
    sym=None,
    part=None,
    pivot_threshold: float = 1.0,
) -> LUFactorization:
    """Factor an ordered matrix with stage-parallel updates on threads."""
    if sym is None:
        sym = static_symbolic_factorization(A)
    if part is None:
        part = build_partition(sym, max_size=block_size, amalgamation=amalgamation)
    bstruct = build_block_structure(sym, part)
    m = BlockLUMatrix.from_csr(A, part, bstruct)
    counter = KernelCounter()
    merge_lock = __import__("threading").Lock()

    N = part.N
    with ThreadPoolExecutor(max_workers=max(nthreads, 1)) as pool:
        for K in range(N):
            fc = factor_block_column(
                m, K, counter=counter, pivot_threshold=pivot_threshold
            )
            cols = bstruct.u_block_cols(K)
            if not cols:
                continue

            def work(j):
                # per-task counter, merged under a lock: no shared
                # read-modify-write races on the tallies
                local = KernelCounter()
                update_block_column(m, fc, j, counter=local)
                with merge_lock:
                    counter.merge(local)

            list(pool.map(work, cols))
    return LUFactorization(m, sym, part, bstruct, counter)
