"""Communication-buffer accounting for the 2D asynchronous code (Theorem 2).

The paper bounds the buffer space needed per processor to support the
asynchronous pipeline: with overlap degree at most ``p_c`` across processor
columns and ``min(p_r - 1, p_c)`` within one, a processor needs

* ``p_c`` separate **Cbuffers** (a multicast L column panel each,
  ``C < n * BSIZE * s / p_r`` bytes),
* ``p_r - 1`` separate **Rbuffers** (a multicast scaled U row panel each,
  ``R < n * BSIZE * s / p_c``),
* small **Pbuffer** (pivot rows, ~``BSIZE^2``) and **Ibuffer**
  (row-interchange staging, ~``s * n / p_c``),

for a total below ``n * BSIZE * s * (p_c/p_r + p_r/p_c)`` — vanishing
relative to the ``S_1/p`` data share for large matrices.  This module
computes those bounds for a concrete block structure and compares them with
what a simulated run actually needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..supernodes import BlockStructure
from .mapping import Grid2D


@dataclass
class BufferReport:
    """Predicted buffer requirements per processor (bytes)."""

    cbuffer: int  # one L column panel (max over K of a rank's share)
    rbuffer: int  # one U row panel (max over K of a rank's share)
    pbuffer: int
    ibuffer: int
    pc: int
    pr: int

    @property
    def total(self) -> int:
        """Theorem 2 provisioning: p_c Cbuffers + (p_r - 1) Rbuffers."""
        return (
            self.pc * self.cbuffer
            + max(self.pr - 1, 0) * self.rbuffer
            + self.pbuffer
            + self.ibuffer
        )


def buffer_requirements(bstruct: BlockStructure, grid: Grid2D) -> BufferReport:
    """Size the four buffer kinds for a block structure on a grid."""
    part = bstruct.part
    N = part.N
    bsize = int(max(part.sizes())) if N else 0

    cmax = 0
    rmax = 0
    for K in range(N):
        bs = part.size(K)
        # a rank's share of column K's L blocks (worst rank)
        per_rank_rows = {}
        for I in bstruct.l_block_rows(K):
            per_rank_rows.setdefault(I % grid.pr, 0)
            per_rank_rows[I % grid.pr] += part.size(I)
        if per_rank_rows:
            cmax = max(cmax, max(per_rank_rows.values()) * bs * 8)
        # a rank's share of row K's scaled U blocks (worst rank)
        per_rank_cols = {}
        for J in bstruct.u_block_cols(K):
            per_rank_cols.setdefault(J % grid.pc, 0)
            per_rank_cols[J % grid.pc] += len(bstruct.udense_cols[(K, J)])
        if per_rank_cols:
            rmax = max(rmax, max(per_rank_cols.values()) * bs * 8)

    n = part.n
    ibuffer = 8 * (n // max(grid.pc, 1) + bsize)
    return BufferReport(
        cbuffer=cmax,
        rbuffer=rmax,
        pbuffer=8 * bsize * bsize,
        ibuffer=ibuffer,
        pc=grid.pc,
        pr=grid.pr,
    )
