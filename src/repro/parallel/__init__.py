"""The parallel sparse LU codes, executed on the simulated machine.

* :mod:`oned` — the 1D column-block codes: a generic schedule-driven
  executor that realises both the RAPID-style graph-scheduled code and the
  compute-ahead (CA) code (Section 5.1);
* :mod:`twod` — the 2D block-cyclic codes: synchronous and asynchronous
  pipelined SPMD algorithms (Section 5.2, Figs. 12-15);
* :mod:`mapping` — 1D cyclic and 2D grid data mappings;
* :mod:`buffers` — communication-buffer accounting for Theorem 2.
"""

from .mapping import Grid2D, cyclic_owner
from .oned import run_1d, OneDResult
from .twod import run_2d, TwoDResult
from .buffers import buffer_requirements, BufferReport
from .trisolve import run_1d_trisolve, TriSolveResult
from .shared_memory import sstar_factor_threads
from .trisolve2d import run_2d_trisolve, TriSolve2DResult
from .resilience import (
    run_1d_resilient,
    run_2d_resilient,
    ResilientResult,
    RoundInfo,
)

__all__ = [
    "Grid2D",
    "cyclic_owner",
    "run_1d",
    "OneDResult",
    "run_2d",
    "TwoDResult",
    "buffer_requirements",
    "BufferReport",
    "run_1d_trisolve",
    "TriSolveResult",
    "sstar_factor_threads",
    "run_2d_trisolve",
    "TriSolve2DResult",
    "run_1d_resilient",
    "run_2d_resilient",
    "ResilientResult",
    "RoundInfo",
]
