"""repro — S*: sparse LU factorization with partial pivoting on
(simulated) distributed memory machines.

A from-scratch reproduction of Fu, Jiao & Yang, *Efficient Sparse LU
Factorization with Partial Pivoting on Distributed Memory Architectures*
(SC'96 / IEEE TPDS 9(2), 1998).  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the paper-vs-measured results.

Quick start::

    import numpy as np
    from repro.api import SStarSolver
    from repro.matrices import get_matrix

    A = get_matrix("sherman5")
    solver = SStarSolver().factor(A)
    b = np.ones(A.nrows)
    x = solver.solve(b)
"""

from .api import SStarSolver, FactorizationReport, ExperimentContext

__version__ = "1.0.0"

__all__ = ["SStarSolver", "FactorizationReport", "ExperimentContext", "__version__"]
