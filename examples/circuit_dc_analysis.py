"""Circuit DC operating-point analysis on a simulated distributed machine.

jpwh991-class workload: a modified-nodal-analysis matrix from circuit
simulation is numerically nonsymmetric and *needs* partial pivoting for
stability.  We solve it three ways — sequentially, with the 1D RAPID code on
8 simulated T3E nodes, and with the 2D asynchronous code — and show all
three produce bitwise-identical factors while the parallel runs report
machine-level statistics (messages, bytes, modeled time).

Run:  python examples/circuit_dc_analysis.py
"""

import numpy as np

from repro import SStarSolver
from repro.matrices import circuit_like
from repro.sparse import csr_matvec


def main():
    A = circuit_like(500, fanout=3, seed=11)
    n = A.nrows
    print(f"circuit matrix: n = {n}, nnz = {A.nnz}")

    b = np.zeros(n)
    b[0] = 1.0  # unit current injection at node 0

    results = {}
    for label, kwargs in {
        "sequential": dict(),
        "1D RAPID x8 (T3E)": dict(nprocs=8, method="1d-rapid", machine="T3E"),
        "2D async 2x4 (T3E)": dict(nprocs=8, method="2d", machine="T3E"),
    }.items():
        solver = SStarSolver(**kwargs).factor(A)
        x = solver.solve(b)
        resid = np.linalg.norm(csr_matvec(A, x) - b) / np.linalg.norm(b)
        results[label] = x
        rep = solver.report
        extra = ""
        if rep.parallel_seconds is not None:
            extra = (
                f", modeled time {rep.parallel_seconds*1e3:.2f} ms, "
                f"{rep.messages} msgs, {rep.bytes_sent/1024:.0f} KiB"
            )
        print(f"  {label:20s} residual {resid:.2e}{extra}")

    xs = list(results.values())
    assert all(np.array_equal(xs[0], x) for x in xs[1:])
    print("all three solutions are bitwise identical.")
    print(f"node voltages (first 5): {np.round(xs[0][:5], 6)}")


if __name__ == "__main__":
    main()
