"""A guided tour of the S* pipeline on a small matrix (the paper's figures).

Walks one small sparse matrix through every stage the paper illustrates:
static symbolic factorization (Fig. 2), the 2D L/U supernode partition and
its dense U subcolumns (Figs. 3-4, Theorem 1), the task dependence graph
(Fig. 9), the CA-vs-graph-schedule Gantt charts (Fig. 11), and a simulated
2D asynchronous run with its execution timeline.

Run:  python examples/paper_walkthrough.py
"""

import numpy as np

from repro.analysis import render_timeline
from repro.machine import T3E
from repro.matrices import random_nonsymmetric
from repro.ordering import prepare_matrix
from repro.parallel import run_2d
from repro.scheduling import demo_unit_weight_charts
from repro.supernodes import build_block_structure, build_partition
from repro.symbolic import static_symbolic_factorization
from repro.taskgraph import build_task_graph, FACTOR


def pattern_str(mask):
    return "\n".join(
        "  " + " ".join("x" if v else "." for v in row) for row in mask
    )


def main():
    A = random_nonsymmetric(14, density=0.18, seed=73)
    om = prepare_matrix(A)
    n = om.n

    print("== input pattern (after transversal + min-degree ordering) ==")
    from repro.sparse import csr_to_dense

    print(pattern_str(csr_to_dense(om.A) != 0))

    print("\n== static symbolic factorization (Fig. 2): predicted L+U ==")
    sym = static_symbolic_factorization(om.A)
    print(pattern_str(sym.filled_pattern_dense()))
    print(f"  factor entries: {sym.factor_entries}")

    print("\n== 2D L/U supernode partition (Fig. 4) ==")
    part = build_partition(sym, max_size=3, amalgamation=2)
    print(f"  boundaries S = {part.bounds.tolist()}")
    bstruct = build_block_structure(sym, part)
    rep = bstruct.density_report()
    print(f"  nonzero U blocks: {rep['u_blocks']}, fully dense: "
          f"{rep['fully_dense_u_blocks']} (Theorem 1 payoff)")

    print("\n== task dependence graph (Fig. 9) ==")
    tg = build_task_graph(bstruct)
    factors = sum(1 for t in tg.tasks if t[0] == FACTOR)
    print(f"  {factors} Factor tasks, {len(tg.tasks) - factors} Update tasks,"
          f" critical path {tg.critical_path_seconds(T3E)*1e6:.1f} us (T3E)")
    for t in tg.tasks[:8]:
        succ = ", ".join(map(str, tg.succ.get(t, [])[:4]))
        print(f"  {t} -> {succ}")

    print("\n== Fig. 11: compute-ahead vs graph schedule (unit weights) ==")
    ca, gs = demo_unit_weight_charts(tg, nprocs=2)
    print("graph schedule:")
    print(gs.render(width=56))
    print("compute-ahead:")
    print(ca.render(width=56))

    print("\n== simulated 2D asynchronous run (Figs. 12-15) ==")
    res = run_2d(om.A, part, bstruct, 4, T3E)
    print(f"  modeled time {res.parallel_seconds*1e6:.1f} us, "
          f"{res.sim.messages} messages, overlap degree {res.overlap_degree()}"
          f" (Theorem 2 bound: p_c = {res.grid.pc})")
    print(render_timeline(res.sim.spans, 4, width=56))

    # and of course it still solves the system
    b = np.ones(n)
    from repro.numfact import LUFactorization

    lu = LUFactorization(res.factor, sym, part, bstruct, res.sim.total_counter())
    x = lu.solve(b)
    D = csr_to_dense(om.A)
    print(f"\nresidual of the parallel factorization: "
          f"{np.linalg.norm(D @ x - b):.2e}")


if __name__ == "__main__":
    main()
