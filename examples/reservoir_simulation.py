"""Implicit reservoir simulation: repeated sparse solves on one pattern.

The paper's motivating workloads (sherman5, orsreg1, saylr4) come from
fully-implicit oil-reservoir simulators: every Newton step solves a
nonsymmetric Jacobian system whose *pattern* is fixed by the grid while the
*values* change with the saturation state.  This is exactly where S* shines:
the expensive structure work (ordering, static symbolic factorization,
partitioning) is done once, and each Newton step only re-runs the numeric
factorization — impossible for dynamic-symbolic codes, which must redo
symbolic work every time pivoting changes.

The serving layer packages the idiom: ``SStarSolver.refactor`` pulls the
cached analysis out of an ``AnalysisCache`` keyed on the pattern and jumps
straight to the numeric sweep, handling the permutation bookkeeping that
the first version of this example did by hand.

Run:  python examples/reservoir_simulation.py
"""

import time

import numpy as np

from repro.api import SStarSolver
from repro.matrices import stencil_3d
from repro.service import AnalysisCache
from repro.sparse import csr_matvec, CSRMatrix


def perturb_values(A: CSRMatrix, step: int) -> CSRMatrix:
    """New Newton-step Jacobian: same pattern, perturbed coefficients."""
    rng = np.random.default_rng(1000 + step)
    return A.with_values(A.data * (1.0 + 0.05 * rng.uniform(-1, 1, A.nnz)))


def main():
    nx, ny, nz, ndof = 7, 7, 4, 2
    A0 = stencil_3d(nx, ny, nz, ndof=ndof, seed=3)
    n = A0.nrows
    print(f"reservoir grid {nx}x{ny}x{nz}, {ndof} unknowns/cell -> n = {n}")

    # --- one-off structure phase -------------------------------------
    cache = AnalysisCache()
    t0 = time.perf_counter()
    solver = SStarSolver(analysis_cache=cache).factor(A0)
    t_cold = time.perf_counter() - t0
    print(f"cold factor (analysis + numeric): {t_cold*1e3:.1f} ms "
          f"({solver.report.factor_entries} factor entries, "
          f"{solver.report.supernode_blocks} blocks)")

    # --- Newton iteration: re-factor values on the fixed structure ----
    state = np.zeros(n)
    for step in range(4):
        Ak = perturb_values(A0, step)
        t0 = time.perf_counter()
        solver = SStarSolver(analysis_cache=cache).refactor(Ak)
        t_num = time.perf_counter() - t0
        assert solver.report.analysis_reused

        b = csr_matvec(Ak, np.ones(n)) + 0.1 * state
        x = solver.solve(b)
        resid = np.linalg.norm(csr_matvec(Ak, x) - b) / np.linalg.norm(b)
        state = x
        print(
            f"  newton step {step}: numeric refactor {t_num*1e3:7.1f} ms "
            f"({t_cold/t_num:4.1f}x vs cold), "
            f"DGEMM share {solver.report.dgemm_fraction:.0%}, "
            f"residual {resid:.2e}"
        )
        assert resid < 1e-9

    s = cache.stats
    print(f"pattern reused across all steps ({s.hits} cache hits); "
          "only values were refactored.")


if __name__ == "__main__":
    main()
