"""Implicit reservoir simulation: repeated sparse solves on one pattern.

The paper's motivating workloads (sherman5, orsreg1, saylr4) come from
fully-implicit oil-reservoir simulators: every Newton step solves a
nonsymmetric Jacobian system whose *pattern* is fixed by the grid while the
*values* change with the saturation state.  This is exactly where S* shines:
the expensive structure work (ordering, static symbolic factorization,
partitioning) is done once, and each Newton step only re-runs the numeric
factorization — impossible for dynamic-symbolic codes, which must redo
symbolic work every time pivoting changes.

Run:  python examples/reservoir_simulation.py
"""

import time

import numpy as np

from repro.matrices import stencil_3d
from repro.numfact import sstar_factor
from repro.ordering import prepare_matrix
from repro.sparse import csr_matvec, CSRMatrix, coo_to_csr, csr_to_coo
from repro.supernodes import build_partition
from repro.symbolic import static_symbolic_factorization


def perturb_values(A: CSRMatrix, step: int) -> CSRMatrix:
    """New Newton-step Jacobian: same pattern, perturbed coefficients."""
    rng = np.random.default_rng(1000 + step)
    rows, cols, vals = csr_to_coo(A)
    vals = vals * (1.0 + 0.05 * rng.uniform(-1, 1, len(vals)))
    return coo_to_csr(A.nrows, A.ncols, rows, cols, vals)


def main():
    nx, ny, nz, ndof = 7, 7, 4, 2
    A0 = stencil_3d(nx, ny, nz, ndof=ndof, seed=3)
    n = A0.nrows
    print(f"reservoir grid {nx}x{ny}x{nz}, {ndof} unknowns/cell -> n = {n}")

    # --- one-off structure phase -------------------------------------
    t0 = time.perf_counter()
    om = prepare_matrix(A0)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=25, amalgamation=4)
    t_struct = time.perf_counter() - t0
    print(f"structure phase: {t_struct*1e3:.1f} ms "
          f"({sym.factor_entries} predicted factor entries, {part.N} blocks)")

    # --- Newton iteration: re-factor values on the fixed structure ----
    state = np.zeros(n)
    for step in range(4):
        Ak_orig = perturb_values(A0, step)
        # apply the *same* permutations computed once
        Ak = Ak_orig.permute(row_perm=om.row_perm, col_perm=om.col_perm)
        t0 = time.perf_counter()
        lu = sstar_factor(Ak, sym=sym, part=part)
        t_num = time.perf_counter() - t0

        b = csr_matvec(Ak_orig, np.ones(n)) + 0.1 * state
        z = lu.solve(b[om.row_perm])
        x = np.empty(n)
        x[om.col_perm] = z
        resid = np.linalg.norm(csr_matvec(Ak_orig, x) - b) / np.linalg.norm(b)
        state = x
        print(
            f"  newton step {step}: numeric factor {t_num*1e3:7.1f} ms, "
            f"DGEMM share {lu.counter.fraction('dgemm'):.0%}, "
            f"residual {resid:.2e}"
        )
        assert resid < 1e-9

    print("pattern reused across all steps; only values were refactored.")


if __name__ == "__main__":
    main()
