"""Quickstart: factor a sparse nonsymmetric system and solve it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SStarSolver
from repro.matrices import get_matrix
from repro.sparse import csr_matvec


def main():
    # A synthetic analogue of the paper's sherman5 reservoir matrix.
    A = get_matrix("sherman5")
    print(f"matrix: {A.nrows} x {A.ncols}, nnz = {A.nnz}")

    # The solver runs the whole S* pipeline: maximum transversal ->
    # minimum-degree(AtA) ordering -> static symbolic factorization ->
    # supernode partition with amalgamation -> numeric GEPP factorization.
    solver = SStarSolver(block_size=25, amalgamation=4).factor(A)

    rep = solver.report
    print(f"predicted factor entries : {rep.factor_entries}")
    print(f"supernode column blocks  : {rep.supernode_blocks}")
    print(f"numeric flops            : {rep.flops:.3g}")
    print(f"DGEMM (BLAS-3) fraction  : {rep.dgemm_fraction:.1%}")

    # Solve A x = b and check the residual.
    rng = np.random.default_rng(0)
    x_true = rng.uniform(-1, 1, A.nrows)
    b = csr_matvec(A, x_true)
    x = solver.solve(b)

    resid = np.linalg.norm(csr_matvec(A, x) - b) / np.linalg.norm(b)
    err = np.linalg.norm(x - x_true) / np.linalg.norm(x_true)
    print(f"relative residual        : {resid:.2e}")
    print(f"forward error            : {err:.2e}")
    assert resid < 1e-10


if __name__ == "__main__":
    main()
