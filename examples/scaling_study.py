"""Scaling study: 1D vs 2D codes across machine sizes (the Section 6 story).

Sweeps processor counts on the simulated T3E for one suite matrix and
prints modeled time, achieved MFLOPS (paper convention), speedup, load
balance, and the async-over-sync gain — the condensed version of
Tables 3/6/7 and Figs. 16-18.

Run:  python examples/scaling_study.py [matrix] [scale]
      e.g. python examples/scaling_study.py goodwin small
"""

import sys

from repro.analysis import achieved_mflops, load_balance_factor
from repro.analysis.loadbalance import update_work_by_rank
from repro.api import ExperimentContext
from repro.machine import T3E
from repro.parallel import run_1d, run_2d


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "goodwin"
    scale = sys.argv[2] if len(sys.argv) > 2 else "small"
    ctx = ExperimentContext(name, scale=scale)
    A, part, bstruct = ctx.ordered.A, ctx.part, ctx.bstruct
    flops = ctx.superlu_flops
    seq = ctx.sequential_factor()
    t_seq = seq.counter.modeled_seconds(T3E)
    print(f"matrix {name} ({scale}): n = {ctx.ordered.n}, "
          f"blocks = {part.N}, sequential (modeled T3E) = {t_seq*1e3:.2f} ms")
    print(f"{'P':>4} {'1D RAPID':>10} {'1D CA':>10} {'2D async':>10} "
          f"{'2D sync':>10} {'spdup1D':>8} {'MF 2D':>8} {'lb 2D':>6} {'async gain':>10}")
    for p in (2, 4, 8, 16, 32, 64):
        t_ra = run_1d(A, part, bstruct, p, T3E, method="rapid",
                      tg=ctx.taskgraph).parallel_seconds
        t_ca = run_1d(A, part, bstruct, p, T3E, method="ca",
                      tg=ctx.taskgraph).parallel_seconds
        r2a = run_2d(A, part, bstruct, p, T3E, synchronous=False)
        t_2a = r2a.parallel_seconds
        t_2s = run_2d(A, part, bstruct, p, T3E, synchronous=True).parallel_seconds
        lb = load_balance_factor(update_work_by_rank(r2a.sim))
        print(
            f"{p:>4} {t_ra*1e3:>8.2f}ms {t_ca*1e3:>8.2f}ms {t_2a*1e3:>8.2f}ms "
            f"{t_2s*1e3:>8.2f}ms {t_seq/t_ra:>8.2f} "
            f"{achieved_mflops(flops, t_2a):>8.1f} {lb:>6.2f} "
            f"{1 - t_2a/t_2s:>+9.1%}"
        )


if __name__ == "__main__":
    main()
