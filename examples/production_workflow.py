"""Production workflow: threshold pivoting, refinement, condition estimate,
factor reuse via serialization, and the packed storage backend.

Run:  python examples/production_workflow.py
"""

import os
import tempfile

import numpy as np

from repro import SStarSolver
from repro.analysis import (
    backward_error,
    condest,
    iterative_refinement,
)
from repro.matrices import get_matrix, random_nonsymmetric
from repro.numfact import load_factorization, save_factorization
from repro.sparse import csr_matvec


def main():
    A = get_matrix("saylr4", "small")
    n = A.nrows
    rng = np.random.default_rng(42)
    b = rng.uniform(-1, 1, n)

    # 1. threshold pivoting: fewer interchanges, refinement repairs accuracy
    # (shown on a matrix that genuinely needs row interchanges)
    P = random_nonsymmetric(200, density=0.04, seed=9)
    bp = rng.uniform(-1, 1, 200)
    print("== threshold pivoting sweep ==")
    for u in (1.0, 0.1, 0.01):
        s = SStarSolver(pivot_threshold=u).factor(P)
        x = s.solve(bp)
        x_ref, hist = iterative_refinement(P, s.solve, bp)
        print(
            f"  u={u:<5} interchanges={s.factorization.num_interchanges():4d} "
            f"backward error {backward_error(P, x, bp):.2e} -> "
            f"{hist[-1]:.2e} after {len(hist) - 1} refinement step(s)"
        )

    # 2. condition estimate from the factorization (Hager's algorithm)
    s = SStarSolver().factor(A)
    lu = s.factorization

    def solve_perm(v):
        return lu.solve(v)

    def solve_perm_t(v):
        return lu.solve_transpose(v)

    om = s.ordering
    est = condest(om.A, solve_perm, solve_perm_t)
    print(f"\n== condition estimate ==\n  cond_1(A) ~ {est:.3e}")

    # 3. factor once, persist, reload, solve many right-hand sides
    print("\n== factor reuse via serialization ==")
    with tempfile.TemporaryDirectory() as d:
        path = os.path.join(d, "factors.npz")
        save_factorization(path, lu)
        size = os.path.getsize(path)
        lu2 = load_factorization(path)
        B = rng.uniform(-1, 1, (n, 4))
        X = lu2.solve(B[om.row_perm])  # permuted coordinates
        resid = 0.0
        for j in range(4):
            xj = np.empty(n)
            xj[om.col_perm] = X[:, j]
            r = np.linalg.norm(csr_matvec(A, xj) - B[:, j])
            resid = max(resid, r)
        print(f"  archive {size/1024:.0f} KiB; worst residual over 4 rhs: {resid:.2e}")

    # 4. packed backend: the paper's storage scheme, about half the memory
    print("\n== packed storage backend ==")
    sp = SStarSolver(backend="packed").factor(A)
    xp = sp.solve(b)
    print(f"  packed solve backward error {backward_error(A, xp, b):.2e}")


if __name__ == "__main__":
    main()
