"""Regenerate EXPERIMENTS.md from benchmarks/results/BENCH_*.json.

Usage:  python tools/make_experiments.py
        (after `pytest benchmarks/ -s --benchmark-disable` has populated
        benchmarks/results/)
"""

from __future__ import annotations

import json
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

PAPER_NOTES = {
    "table1": (
        "Table 1 — structure prediction",
        "Paper: S* overestimates SuperLU's factor entries by <50% on most "
        "matrices (sherman5 1.4x, orsreg1 1.3x band); Cholesky(AtA) is far "
        "looser; elementwise ops ratio up to ~5 (mean ~3.98).",
    ),
    "table2": (
        "Table 2 — sequential S* vs SuperLU",
        "Paper: exec-time ratios ~0.5-1.6; S* wins outright on dense1000 "
        "(~0.48 T3D / ~0.42 T3E) because r -> 1 and C~/C -> 1.",
    ),
    "table3": (
        "Table 3 — 1D RAPID absolute MFLOPS",
        "Paper: MFLOPS grow with P on both machines; T3E ~3x T3D; speedups "
        "to 17.7 (T3D) / 24.1 (T3E) at 64 nodes; small matrices saturate.",
    ),
    "fig11": (
        "Fig. 11 — Gantt charts, graph schedule vs compute-ahead",
        "Paper: on the 7x7 sample with comp weight 2 / comm weight 1, graph "
        "scheduling executes Factor(3) early and beats the CA schedule.",
    ),
    "fig16": (
        "Fig. 16 — scheduling strategy impact (1 - PT_RAPID/PT_CA)",
        "Paper: CA occasionally wins at P=2-4; RAPID 10-40% faster for P>4, "
        "gap grows with P.",
    ),
    "table4": (
        "Table 4 — amalgamation improvement (1 - PT_amalg/PT_exact)",
        "Paper: 10-55% improvement across P=1..32 (r=4-6 best).",
    ),
    "table5": (
        "Table 5 — 2D async on T3D, large matrices",
        "Paper: up to 1.48 GFLOPS on 64 nodes (23.1 MFLOPS/node; 32.8 at 16).",
    ),
    "table6": (
        "Table 6 — 2D async on T3E (headline)",
        "Paper: up to 6.878 GFLOPS on 128 nodes; 64-node T3E/T3D ratio "
        "3.1-3.4x against a 3.7x DGEMM-rate ratio.",
    ),
    "fig17": (
        "Fig. 17 — 1D RAPID vs 2D (1 - PT_RAPID/PT_2D)",
        "Paper: 1D RAPID wins whenever memory suffices; gap largest where "
        "2D's load-balance advantage is smallest.",
    ),
    "fig18": (
        "Fig. 18 — load balance factors",
        "Paper: 2D block-cyclic balances update work better than the 1D "
        "column mapping on most matrices.",
    ),
    "table7": (
        "Table 7 — 2D async vs sync improvement",
        "Paper: ~3-10% at P=2-4 rising to ~25-35% at P=16-64.",
    ),
    "eq4": (
        "Eq. (4) — analytic sequential model",
        "Paper: dense-case prediction 0.48 (T3D) / 0.42 (T3E) matches "
        "Table 2 almost exactly; sparse cases deviate with block-size "
        "nonuniformity.",
    ),
    "ablation_ordering": (
        "Ablation — ordering vs overestimation (memplus pathology)",
        "Paper: static fill 119x SuperLU's for memplus under the AtA "
        "ordering, 2.34x when orderings match; a nearly dense row is the "
        "failure mode named in the conclusion.",
    ),
    "ablation_grid": (
        "Ablation — 2D grid aspect ratio",
        "Paper: p_r <= p_c + 1 always better; p_c/p_r = 2 used in practice.",
    ),
    "ablation_blocksize": (
        "Ablation — supernode block-size cap",
        "Paper: block size 25; larger caps reduce available parallelism, "
        "smaller ones forfeit BLAS-3 rates.",
    ),
    "ablation_network": (
        "Ablation — message-latency sensitivity",
        "Paper: low-overhead RMA (2.7 us shmem_put) is critical for sparse "
        "code with mixed granularities.",
    ),
    "memory_scalability": (
        "Memory — 1D vs 2D per-node footprints",
        "Paper: 1D needs up to O(S1) per node (could not run the Table 6 "
        "giants); 2D needs S1/p plus Theorem 2 buffers.",
    ),
    "storage_backends": (
        "Storage — packed panels vs padded dense blocks",
        "The paper's packed supernode layout vs this repo's padded-block "
        "teaching backend: same pivots, same flops, less memory.",
    ),
    "trisolve": (
        "Triangular solves vs factorization",
        "Paper (Section 2): the triangular solvers are much less time "
        "consuming than the elimination; they are latency-bound.",
    ),
    "tune_gain": (
        "Autotuning — model-guided search vs the static default",
        "The paper picks block size 25 and the p_c/p_r ~ 2 grid by hand "
        "(Section 6); repro.tune searches the declared space per pattern "
        "and must match or beat that hand configuration.",
    ),
}

ORDER = [
    "table1", "table2", "table3", "fig11", "fig16", "table4",
    "table5", "table6", "fig17", "fig18", "table7", "eq4",
    "ablation_ordering", "ablation_grid", "ablation_blocksize",
    "ablation_network", "memory_scalability", "storage_backends",
    "trisolve", "tune_gain",
]


def fmt_value(v):
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)


def md_table(rows) -> str:
    if not rows:
        return "_no rows recorded_\n"
    cols = list(rows[0].keys())
    out = ["| " + " | ".join(cols) + " |",
           "|" + "|".join("---" for _ in cols) + "|"]
    for r in rows:
        out.append("| " + " | ".join(fmt_value(r.get(c, "")) for c in cols) + " |")
    return "\n".join(out) + "\n"


def main() -> None:
    parts = [
        "# EXPERIMENTS — paper vs measured\n",
        "Generated by `tools/make_experiments.py` from "
        "`benchmarks/results/BENCH_*.json` (run `pytest benchmarks/ -s "
        "--benchmark-disable` first).\n",
        "Absolute numbers are *modeled* on the calibrated T3D/T3E simulator "
        "over reduced-scale synthetic analogues; the reproduction targets "
        "are the paper's comparative shapes, asserted inside each "
        "benchmark module.\n",
    ]
    for key in ORDER:
        title, note = PAPER_NOTES[key]
        path = RESULTS / f"BENCH_{key}.json"
        parts.append(f"\n## {title}\n")
        parts.append(f"**Paper reference.** {note}\n")
        if not path.exists():
            parts.append("_results file missing — bench not yet run_\n")
            continue
        data = json.loads(path.read_text())
        parts.append(f"**Measured** (scale `{data['scale']}`):\n")
        parts.append(md_table(data["rows"]))
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(parts))
    print(f"wrote {ROOT / 'EXPERIMENTS.md'}")


if __name__ == "__main__":
    main()
