"""MatrixMarket I/O round trips."""

import numpy as np
import pytest

from repro.matrices import random_nonsymmetric
from repro.sparse import (
    csr_to_dense,
    read_matrix_market,
    write_matrix_market,
)


class TestRoundtrip:
    def test_general(self, tmp_path):
        A = random_nonsymmetric(20, density=0.15, seed=4)
        p = tmp_path / "a.mtx"
        write_matrix_market(p, A, comment="test matrix\nsecond line")
        B = read_matrix_market(p)
        assert np.allclose(csr_to_dense(B), csr_to_dense(A))

    def test_comment_preserved_in_file(self, tmp_path):
        A = random_nonsymmetric(5, density=0.3, seed=1)
        p = tmp_path / "a.mtx"
        write_matrix_market(p, A, comment="hello")
        assert "% hello" in p.read_text()

    def test_symmetric_read(self, tmp_path):
        p = tmp_path / "s.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 4\n"
            "1 1 2.0\n"
            "2 1 -1.0\n"
            "3 2 -1.0\n"
            "3 3 2.0\n"
        )
        A = read_matrix_market(p)
        D = csr_to_dense(A)
        assert np.array_equal(D, D.T)
        assert A.get(0, 1) == -1.0
        assert A.get(1, 0) == -1.0

    def test_pattern_entries_default_one(self, tmp_path):
        p = tmp_path / "p.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 2\n"
            "1 1\n"
            "2 2\n"
        )
        A = read_matrix_market(p)
        assert A.get(0, 0) == 1.0

    def test_rejects_non_mm(self, tmp_path):
        p = tmp_path / "bad.mtx"
        p.write_text("garbage\n1 1 1\n")
        with pytest.raises(ValueError, match="MatrixMarket"):
            read_matrix_market(p)
