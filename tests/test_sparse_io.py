"""MatrixMarket I/O round trips."""

import numpy as np
import pytest

from repro.matrices import random_nonsymmetric
from repro.sparse import (
    csr_to_dense,
    read_matrix_market,
    write_matrix_market,
)


class TestRoundtrip:
    def test_general(self, tmp_path):
        A = random_nonsymmetric(20, density=0.15, seed=4)
        p = tmp_path / "a.mtx"
        write_matrix_market(p, A, comment="test matrix\nsecond line")
        B = read_matrix_market(p)
        assert np.allclose(csr_to_dense(B), csr_to_dense(A))

    def test_comment_preserved_in_file(self, tmp_path):
        A = random_nonsymmetric(5, density=0.3, seed=1)
        p = tmp_path / "a.mtx"
        write_matrix_market(p, A, comment="hello")
        assert "% hello" in p.read_text()

    def test_symmetric_read(self, tmp_path):
        p = tmp_path / "s.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 4\n"
            "1 1 2.0\n"
            "2 1 -1.0\n"
            "3 2 -1.0\n"
            "3 3 2.0\n"
        )
        A = read_matrix_market(p)
        D = csr_to_dense(A)
        assert np.array_equal(D, D.T)
        assert A.get(0, 1) == -1.0
        assert A.get(1, 0) == -1.0

    def test_pattern_entries_default_one(self, tmp_path):
        p = tmp_path / "p.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 2\n"
            "1 1\n"
            "2 2\n"
        )
        A = read_matrix_market(p)
        assert A.get(0, 0) == 1.0

    def test_rejects_non_mm(self, tmp_path):
        p = tmp_path / "bad.mtx"
        p.write_text("garbage\n1 1 1\n")
        with pytest.raises(ValueError, match="MatrixMarket"):
            read_matrix_market(p)

    def test_values_exact_round_trip(self, tmp_path):
        """%.17g is enough digits to reproduce any float64 bit for bit."""
        from repro.sparse import CSRMatrix

        data = np.array(
            [1.0 / 3.0, np.pi, 1e-300, -1e300, np.nextafter(1.0, 2.0), -0.0]
        )
        A = CSRMatrix(
            2, 3,
            np.array([0, 3, 6]),
            np.array([0, 1, 2, 0, 1, 2]),
            data,
        )
        p = tmp_path / "exact.mtx"
        write_matrix_market(p, A)
        B = read_matrix_market(p)
        assert np.array_equal(A.indptr, B.indptr)
        assert np.array_equal(A.indices, B.indices)
        assert B.data.tobytes() == A.data.tobytes()

    def test_structure_round_trip(self, tmp_path):
        A = random_nonsymmetric(40, density=0.08, seed=9)
        p = tmp_path / "s.mtx"
        write_matrix_market(p, A)
        B = read_matrix_market(p)
        assert (B.nrows, B.ncols, B.nnz) == (A.nrows, A.ncols, A.nnz)
        assert np.array_equal(A.indptr, B.indptr)
        assert np.array_equal(A.indices, B.indices)
        assert np.array_equal(A.data, B.data)

    def test_written_indices_are_one_based(self, tmp_path):
        from repro.sparse import CSRMatrix

        A = CSRMatrix(
            2, 2,
            np.array([0, 1, 2]),
            np.array([0, 1]),
            np.array([5.0, 7.0]),
        )
        p = tmp_path / "one.mtx"
        write_matrix_market(p, A)
        body = [
            ln for ln in p.read_text().splitlines()
            if not ln.startswith("%")
        ]
        assert body[0].split() == ["2", "2", "2"]
        assert body[1].split()[:2] == ["1", "1"]  # (0,0) written 1-based
        assert body[2].split()[:2] == ["2", "2"]

    def test_pattern_file_full_round_trip(self, tmp_path):
        p = tmp_path / "pat.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "3 3 3\n"
            "1 2\n"
            "2 3\n"
            "3 1\n"
        )
        A = read_matrix_market(p)
        assert A.nnz == 3
        assert all(v == 1.0 for v in A.data)
        q = tmp_path / "pat2.mtx"
        write_matrix_market(q, A)
        B = read_matrix_market(q)
        assert np.array_equal(A.indptr, B.indptr)
        assert np.array_equal(A.indices, B.indices)
        assert np.array_equal(A.data, B.data)
