"""Property/fuzz tests for the discrete-event simulator.

Random SPMD programs with structurally matched sends and receives must
always terminate, preserve causality (no receive before its send completes
transit) and deliver every payload intact.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import GENERIC, Simulator, DeadlockError


# a program schedule: per rank, a list of ops
#   ("compute", flops)
#   ("send", dest, tag_id)
#   ("recv", tag_id)
# tags are globally unique ints; each send has exactly one matching recv.


def _build_random_schedule(rng, nprocs, nops):
    """Generate per-rank op lists with deadlock-free matched messaging.

    We generate a global linear order of events; a send is placed before
    its matching receive in that global order, each rank executes its
    projection — the same single-linearization argument that makes the
    schedule-driven executors deadlock-free applies.
    """
    ops = [[] for _ in range(nprocs)]
    tag = 0
    for _ in range(nops):
        kind = rng.integers(0, 3)
        if kind == 0:
            r = int(rng.integers(0, nprocs))
            ops[r].append(("compute", float(rng.integers(1, 10_000))))
        else:
            src = int(rng.integers(0, nprocs))
            dst = int(rng.integers(0, nprocs))
            ops[src].append(("send", dst, tag))
            ops[dst].append(("recv", tag))
            tag += 1
    return ops


def _program(env, ops, log):
    for op in ops[env.rank]:
        if op[0] == "compute":
            env.compute("blas1", op[1])
        elif op[0] == "send":
            env.send(op[1], ("t", op[2]), {"tag": op[2], "stamp": env.clock})
        else:
            payload = yield env.recv(("t", op[1]))
            log.append((env.rank, op[1], payload["tag"], payload["stamp"], env.clock))
    return env.clock


@given(st.integers(0, 100_000), st.integers(2, 6), st.integers(5, 60))
@settings(max_examples=40, deadline=None)
def test_random_programs_terminate_and_deliver(seed, nprocs, nops):
    rng = np.random.default_rng(seed)
    ops = _build_random_schedule(rng, nprocs, nops)
    log = []
    res = Simulator(nprocs, GENERIC, _program, args=(ops, log)).run()
    # every recv consumed the payload with its own tag
    for _rank, want_tag, got_tag, stamp, at in log:
        assert want_tag == got_tag
        # causality: receipt happens no earlier than the send stamp
        assert at >= stamp - 1e-15
    # all clocks are finite and nonnegative
    assert all(c >= 0 for c in res.rank_clocks)


@given(st.integers(0, 100_000))
@settings(max_examples=20, deadline=None)
def test_determinism_under_replay(seed):
    rng = np.random.default_rng(seed)
    ops = _build_random_schedule(rng, 4, 30)
    r1 = Simulator(4, GENERIC, _program, args=(ops, [])).run()
    r2 = Simulator(4, GENERIC, _program, args=(ops, [])).run()
    assert r1.rank_clocks == r2.rank_clocks
    assert r1.messages == r2.messages
    assert r1.bytes_sent == r2.bytes_sent


def test_unmatched_recv_deadlocks():
    def prog(env):
        if env.rank == 0:
            yield env.recv(("t", 999))

    with pytest.raises(DeadlockError):
        Simulator(2, GENERIC, prog).run()
