"""Host wall-clock overhaul: semantics-preservation tests.

The performance work (lint-certified zero-copy delivery, the event-driven
scheduler, batched supernode updates, pooled scratch) must be *observably
free*: every mode toggle yields bit-identical factors and solves, identical
virtual times, and byte-identical Chrome traces.  These tests pin that down
pairwise:

* zero-copy vs deep-copy delivery — 1D rapid/CA, 2D sync/async, a resilient
  crash-restart run, and a chaos-style lossy-network scenario;
* event scheduler vs the legacy round-robin poll scan;
* batched supernode update sweeps vs the legacy per-block path;
* the sanitizer (``sanitize=True``) catching a seeded write-after-send
  mutation that zero-copy semantics forbid;
* the certificate logic gating zero-copy (clean + fresh hash, or nothing);
* ``as_gemm_operand`` / ``gemm_update`` never copying packed operands;
* mailbox arrival-order delivery through the single-entry fast path and
  the heap path.

NOTE: this module must stay *out* of ``TRACE_CHECKED_MODULES`` — the trace
checker forces ``sanitize=True``, which deliberately disables zero-copy.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.lint.certify import ZeroCopyCertificate, certificate_covers
from repro.machine import (
    CrashFault,
    FaultPlan,
    PayloadMutationError,
    Simulator,
    T3E,
)
from repro.numfact import BlockLUMatrix, sstar_factor
from repro.numfact.kernels import as_gemm_operand, gemm_update, scratch_buffer
from repro.numfact.tasks import batched_updates
from repro.obs import Tracer, to_chrome_trace
from repro.parallel import (
    run_1d,
    run_1d_trisolve,
    run_2d,
    run_2d_trisolve,
)
from repro.parallel.resilience import run_1d_resilient


@pytest.fixture(scope="module")
def pipeline(contexts):
    return contexts("sherman5")


def _assert_factor_identical(fa, fb):
    assert set(fa.blocks) == set(fb.blocks)
    for key in fa.blocks:
        assert fa.blocks[key].tobytes() == fb.blocks[key].tobytes(), key
    assert fa.pivot_seq == fb.pivot_seq


def _assert_sim_identical(sa, sb):
    assert sa.total_time == sb.total_time
    assert sa.rank_clocks == sb.rank_clocks
    assert sa.messages == sb.messages
    assert sa.bytes_sent == sb.bytes_sent
    assert sa.total_counter().by_gran == sb.total_counter().by_gran


def _chrome_bytes(tracer) -> bytes:
    doc = to_chrome_trace(tracer.spans, tracer.messages)
    return json.dumps(doc, sort_keys=True).encode()


# ---------------------------------------------------------------------------
# zero-copy vs deep-copy delivery
# ---------------------------------------------------------------------------


class TestZeroCopyDelivery:
    def test_certificate_actually_engages(self):
        # guard against a silently stale certificate making every A/B in
        # this class compare copy vs copy
        for mod in ("repro.parallel.oned", "repro.parallel.twod",
                    "repro.parallel.trisolve", "repro.parallel.trisolve2d"):
            assert certificate_covers(mod), f"certificate stale for {mod}"

    @pytest.mark.parametrize("method", ["rapid", "ca"])
    def test_1d_bit_identical(self, pipeline, method):
        args = (pipeline["om"].A, pipeline["part"], pipeline["bstruct"], 4, T3E)
        zc = run_1d(*args, method=method, sim_opts={"zero_copy": True})
        cp = run_1d(*args, method=method, sim_opts={"zero_copy": False})
        _assert_factor_identical(zc.factor, cp.factor)
        _assert_sim_identical(zc.sim, cp.sim)
        assert zc.buffer_high_water == cp.buffer_high_water

    @pytest.mark.parametrize("synchronous", [False, True])
    def test_2d_bit_identical(self, pipeline, synchronous):
        args = (pipeline["om"].A, pipeline["part"], pipeline["bstruct"], 4, T3E)
        zc = run_2d(*args, synchronous=synchronous,
                    sim_opts={"zero_copy": True})
        cp = run_2d(*args, synchronous=synchronous,
                    sim_opts={"zero_copy": False})
        _assert_factor_identical(zc.factor, cp.factor)
        _assert_sim_identical(zc.sim, cp.sim)

    def test_trisolves_bit_identical(self, pipeline):
        lu = sstar_factor(pipeline["om"].A, sym=pipeline["sym"],
                          part=pipeline["part"], bstruct=pipeline["bstruct"])
        b = np.random.default_rng(7).standard_normal((lu.n, 3))
        owner = [K % 4 for K in range(lu.part.N)]
        z1 = run_1d_trisolve(lu, owner, b, 4, T3E, sim_opts={"zero_copy": True})
        c1 = run_1d_trisolve(lu, owner, b, 4, T3E, sim_opts={"zero_copy": False})
        assert z1.x.tobytes() == c1.x.tobytes()
        assert z1.sim.total_time == c1.sim.total_time
        z2 = run_2d_trisolve(lu, b, 4, T3E, sim_opts={"zero_copy": True})
        c2 = run_2d_trisolve(lu, b, 4, T3E, sim_opts={"zero_copy": False})
        assert z2.x.tobytes() == c2.x.tobytes()
        assert z2.sim.total_time == c2.sim.total_time

    def test_resilient_restart_bit_identical(self, pipeline):
        args = (pipeline["om"].A, pipeline["part"], pipeline["bstruct"], 4, T3E)
        probe = run_1d(*args, method="ca")
        plan = FaultPlan(crashes=[CrashFault(2, probe.sim.total_time * 0.4)])
        kw = dict(method="ca", ckpt_interval=3, reliable=True)
        zc = run_1d_resilient(*args, faults=plan, sim_opts={"zero_copy": True}, **kw)
        cp = run_1d_resilient(*args, faults=plan, sim_opts={"zero_copy": False}, **kw)
        assert zc.crashes == cp.crashes == [2]
        _assert_factor_identical(zc.factor, cp.factor)
        assert zc.total_time == cp.total_time
        assert [(r.window, r.ok) for r in zc.rounds] == \
               [(r.window, r.ok) for r in cp.rounds]

    def test_chaos_lossy_network_bit_identical(self, pipeline):
        # chaos-style scenario: 5% message loss under reliable (ack/retry)
        # delivery — retransmissions and all, both modes must agree exactly
        args = (pipeline["om"].A, pipeline["part"], pipeline["bstruct"], 4, T3E)
        plan = FaultPlan.drops(0.05, seed=11)
        zc = run_1d(*args, method="ca",
                    sim_opts={"faults": plan, "reliable": True,
                              "zero_copy": True})
        cp = run_1d(*args, method="ca",
                    sim_opts={"faults": plan, "reliable": True,
                              "zero_copy": False})
        _assert_factor_identical(zc.factor, cp.factor)
        _assert_sim_identical(zc.sim, cp.sim)

    @pytest.mark.parametrize("synchronous", [False, True])
    def test_2d_traces_byte_identical(self, pipeline, synchronous):
        args = (pipeline["om"].A, pipeline["part"], pipeline["bstruct"], 4, T3E)
        traces = []
        for zero_copy in (True, False):
            tr = Tracer()
            run_2d(*args, synchronous=synchronous,
                   sim_opts={"zero_copy": zero_copy, "tracer": tr})
            traces.append(_chrome_bytes(tr))
        assert traces[0] == traces[1]

    @pytest.mark.parametrize("method", ["rapid", "ca"])
    def test_1d_traces_byte_identical(self, pipeline, method):
        args = (pipeline["om"].A, pipeline["part"], pipeline["bstruct"], 4, T3E)
        traces = []
        for zero_copy in (True, False):
            tr = Tracer()
            run_1d(*args, method=method,
                   sim_opts={"zero_copy": zero_copy, "tracer": tr})
            traces.append(_chrome_bytes(tr))
        assert traces[0] == traces[1]


# ---------------------------------------------------------------------------
# event-driven scheduler vs round-robin polling
# ---------------------------------------------------------------------------


class TestEventScheduler:
    @pytest.mark.parametrize("method", ["rapid", "ca"])
    def test_1d_equivalent(self, pipeline, method):
        args = (pipeline["om"].A, pipeline["part"], pipeline["bstruct"], 4, T3E)
        traces, results = [], []
        for scheduler in ("event", "poll"):
            tr = Tracer()
            res = run_1d(*args, method=method,
                         sim_opts={"scheduler": scheduler, "tracer": tr})
            traces.append(_chrome_bytes(tr))
            results.append(res)
        assert traces[0] == traces[1]
        _assert_factor_identical(results[0].factor, results[1].factor)
        _assert_sim_identical(results[0].sim, results[1].sim)

    @pytest.mark.parametrize("synchronous", [False, True])
    def test_2d_equivalent(self, pipeline, synchronous):
        args = (pipeline["om"].A, pipeline["part"], pipeline["bstruct"], 4, T3E)
        traces, results = [], []
        for scheduler in ("event", "poll"):
            tr = Tracer()
            res = run_2d(*args, synchronous=synchronous,
                         sim_opts={"scheduler": scheduler, "tracer": tr})
            traces.append(_chrome_bytes(tr))
            results.append(res)
        assert traces[0] == traces[1]
        _assert_factor_identical(results[0].factor, results[1].factor)
        _assert_sim_identical(results[0].sim, results[1].sim)

    def test_resilient_equivalent(self, pipeline):
        args = (pipeline["om"].A, pipeline["part"], pipeline["bstruct"], 4, T3E)
        probe = run_1d(*args, method="ca")
        plan = FaultPlan(crashes=[CrashFault(1, probe.sim.total_time * 0.5)])
        outs = [
            run_1d_resilient(*args, method="ca", ckpt_interval=3,
                             faults=plan, reliable=True,
                             sim_opts={"scheduler": scheduler})
            for scheduler in ("event", "poll")
        ]
        _assert_factor_identical(outs[0].factor, outs[1].factor)
        assert outs[0].total_time == outs[1].total_time

    def test_bad_scheduler_rejected(self):
        with pytest.raises(ValueError, match="scheduler"):
            Simulator(2, T3E, lambda env: iter(()), scheduler="greedy")


# ---------------------------------------------------------------------------
# batched supernode updates vs the legacy per-block path
# ---------------------------------------------------------------------------


class TestBatchedUpdates:
    def test_sequential_bit_identical(self, pipeline):
        kw = dict(sym=pipeline["sym"], part=pipeline["part"],
                  bstruct=pipeline["bstruct"])
        with batched_updates(True):
            a = sstar_factor(pipeline["om"].A, **kw)
        with batched_updates(False):
            b = sstar_factor(pipeline["om"].A, **kw)
        _assert_factor_identical(a.matrix, b.matrix)
        assert a.counter.by_gran == b.counter.by_gran

    @pytest.mark.parametrize("runner,kw", [
        (run_1d, {"method": "ca"}),
        (run_2d, {"synchronous": False}),
    ])
    def test_parallel_bit_identical(self, pipeline, runner, kw):
        args = (pipeline["om"].A, pipeline["part"], pipeline["bstruct"], 4, T3E)
        with batched_updates(True):
            a = runner(*args, **kw)
        with batched_updates(False):
            b = runner(*args, **kw)
        _assert_factor_identical(a.factor, b.factor)
        _assert_sim_identical(a.sim, b.sim)


# ---------------------------------------------------------------------------
# sanitizer: seeded write-after-send mutation must be caught
# ---------------------------------------------------------------------------


def _wapsend_program(env, got, mutate):
    """Rank 0 posts a buffer (then optionally mutates it — the zero-copy
    hazard); rank 1 records what arrived."""
    if env.rank == 0:
        buf = np.ones(4)
        env.send(1, "payload", buf)
        if mutate:
            buf[0] = -7.0  # write-after-send: forbidden under zero-copy
        return None
    got.append((yield env.recv("payload")))
    return None


class TestSanitizer:
    def test_seeded_mutation_caught(self):
        got = []
        sim = Simulator(2, T3E, _wapsend_program, args=(got, True),
                        zero_copy=True, sanitize=True)
        with pytest.raises(PayloadMutationError, match="write-after-send"):
            sim.run()

    def test_clean_send_passes(self):
        got = []
        Simulator(2, T3E, _wapsend_program, args=(got, False),
                  zero_copy=True, sanitize=True).run()
        assert got[0].tobytes() == np.ones(4).tobytes()

    def test_uncertified_module_falls_back_to_copying(self):
        # this test module carries no certificate entry: zero_copy=True
        # must silently keep the defensive copy, so the receiver still
        # observes pre-mutation bytes
        got = []
        sim = Simulator(2, T3E, _wapsend_program, args=(got, True),
                        zero_copy=True)
        assert not sim._zc_certified
        sim.run()
        assert got[0].tobytes() == np.ones(4).tobytes()

    def test_unchecked_zero_copy_exposes_the_hazard(self):
        # zero_copy="unchecked" bypasses the certificate — the seeded
        # mutation is visible to the receiver, which is exactly why
        # certification gates the default
        got = []
        Simulator(2, T3E, _wapsend_program, args=(got, True),
                  zero_copy="unchecked").run()
        assert got[0][0] == -7.0


# ---------------------------------------------------------------------------
# certificate logic
# ---------------------------------------------------------------------------


class TestCertificate:
    def test_certified_program_enables_zero_copy(self, pipeline):
        from repro.parallel.oned import _rank_program

        sim = Simulator(2, T3E, _rank_program, args=(None,), zero_copy=True)
        assert sim._zc_certified

    def test_stale_hash_declines(self):
        cert = ZeroCopyCertificate({
            "repro.parallel.oned": {
                "path": "x", "sha256": "0" * 64, "clean": True,
                "findings": [],
            },
        })
        assert not cert.covers("repro.parallel.oned")

    def test_dirty_module_declines(self):
        cert = ZeroCopyCertificate({
            "repro.parallel.oned": {
                "path": "x", "sha256": "0" * 64, "clean": False,
                "findings": ["Z201 oned.py:1:1 boom"],
            },
        })
        assert not cert.covers("repro.parallel.oned")
        assert cert.dirty_modules() == ["repro.parallel.oned"]

    def test_unknown_module_declines(self):
        assert not certificate_covers("tests.test_host_perf")
        assert not certificate_covers(None)

    def test_sanitize_overrides_certificate(self, pipeline):
        from repro.parallel.oned import _rank_program

        sim = Simulator(2, T3E, _rank_program, args=(None,),
                        zero_copy=True, sanitize=True)
        assert sim._zc_certified  # certificate says yes...
        # ...but run() must restore copying under sanitize; exercised on a
        # real run by the trace-checked parallel test modules, asserted
        # here on the effective flag after finalisation
        try:
            sim.run()
        except Exception:
            pass  # args=(None,) is not a runnable ctx; finalisation ran
        assert sim.zero_copy is False


# ---------------------------------------------------------------------------
# gemm operands: no hidden temporaries on the packed path
# ---------------------------------------------------------------------------


class TestGemmOperands:
    def test_packed_blocks_are_not_copied(self, pipeline):
        m = BlockLUMatrix.from_csr(pipeline["om"].A, pipeline["part"],
                                   pipeline["bstruct"])
        for blk in list(m.blocks.values())[:16]:
            assert blk.flags.c_contiguous
            assert as_gemm_operand(blk) is blk  # regression: no copy

    def test_noncontiguous_view_copied_once_explicitly(self):
        base = np.arange(36.0).reshape(6, 6)
        view = base[:, ::2]  # strided: BLAS would copy this silently
        out = as_gemm_operand(view)
        assert out is not view and out.flags.c_contiguous
        assert out.tobytes() == np.ascontiguousarray(view).tobytes()

    def test_gemm_update_scratch_path_bit_identical(self):
        rng = np.random.default_rng(5)
        A = rng.standard_normal((7, 4))
        B = rng.standard_normal((4, 3))
        C0 = rng.standard_normal((7, 3))
        ref = C0.copy()
        gemm_update(ref, A, B)
        got = C0.copy()
        gemm_update(got, A, B, out=scratch_buffer("test-gemm", 9, 3))
        assert got.tobytes() == ref.tobytes()

    def test_scratch_pool_reuses_and_grows(self):
        a = scratch_buffer("test-pool", 4, 3)
        b = scratch_buffer("test-pool", 2, 2)
        assert b.base is a.base or b.base is a  # shrink reuses the slot
        c = scratch_buffer("test-pool", 64, 8)
        assert c.shape == (64, 8)  # growth reallocates


# ---------------------------------------------------------------------------
# mailbox: arrival-order delivery (single-entry fast path + heap path)
# ---------------------------------------------------------------------------


def _stagger_program(env, got, nmsg):
    """Two senders interleave same-tag messages with staggered clocks; the
    receiver must drain them in global arrival order."""
    if env.rank < 2:
        for i in range(nmsg):
            env.compute("blas1", 5e5 * (env.rank + 1))
            env.send(2, "m", np.array([float(env.rank), float(i)]))
        return None
    for _ in range(2 * nmsg):
        msg = yield env.recv("m")
        got.append((env.clock, float(msg[0]), float(msg[1])))
    return None


class TestMailboxOrdering:
    def test_heap_box_preserves_arrival_order(self):
        got = []
        Simulator(3, T3E, _stagger_program, args=(got, 8)).run()
        clocks = [t for t, _, _ in got]
        assert clocks == sorted(clocks)
        # per-sender FIFO must survive the merge
        for sender in (0.0, 1.0):
            seq = [i for _, s, i in got if s == sender]
            assert seq == sorted(seq)

    def test_single_entry_fast_path(self):
        got = []
        Simulator(3, T3E, _stagger_program, args=(got, 1)).run()
        assert len(got) == 2
