"""Tests for :mod:`repro.tune` — plans, the plan cache, the search, and
its solver/service integration.

Covers the PR's acceptance criteria: JSON round-trips (property-tested,
including cache eviction stats), bit-identical results between a tuned
run and the same configuration passed manually, bit-reproducible searches
for a fixed ``(seed, budget)``, the Eq. (4)-model-vs-simulator regression
tolerance, and a tuning service paying zero extra probes on
repeated-pattern workloads.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import SStarSolver
from repro.machine import T3E
from repro.matrices import get_matrix
from repro.service import SolveService
from repro.tune import (
    BLOCK_SIZES,
    PlanCache,
    Tuner,
    TuningPlan,
    default_plan,
    enumerate_plans,
    grid_shapes,
    plan_cache_key,
)

# -- TuningPlan ---------------------------------------------------------


def test_plan_validation():
    with pytest.raises(ValueError):
        TuningPlan(layout="3d")
    with pytest.raises(ValueError):
        TuningPlan(layout="1d", nprocs=4, pipeline="eager")
    with pytest.raises(ValueError):
        TuningPlan(layout="2d", nprocs=4, pr=3, pc=2)


def test_plan_method_strings():
    assert TuningPlan().method == "sequential"
    assert TuningPlan(layout="1d", nprocs=4).method == "1d-rapid"
    assert TuningPlan(layout="1d", nprocs=4, pipeline="ca").method == "1d-ca"
    p2 = TuningPlan(layout="2d", nprocs=4, pr=2, pc=2)
    assert p2.method == "2d"
    assert p2.grid().pr == 2 and p2.grid().pc == 2
    assert TuningPlan(layout="2d", nprocs=4, pr=2, pc=2,
                      synchronous=True).method == "2d-sync"


def test_plan_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown TuningPlan fields"):
        TuningPlan.from_dict({"block_size": 8, "bogus_knob": 1})


def _plans():
    """Hypothesis strategy over *valid* TuningPlans (grid consistent)."""
    seq = st.builds(
        TuningPlan,
        block_size=st.sampled_from(BLOCK_SIZES),
        amalgamation=st.integers(1, 8),
    )
    oned = st.builds(
        TuningPlan,
        block_size=st.sampled_from(BLOCK_SIZES),
        amalgamation=st.integers(1, 8),
        layout=st.just("1d"),
        nprocs=st.integers(2, 64),
        pipeline=st.sampled_from(["rapid", "ca"]),
        ckpt_interval=st.one_of(st.none(), st.integers(1, 16)),
    )
    twod = st.integers(2, 32).flatmap(
        lambda p: st.tuples(
            st.sampled_from(grid_shapes(p)),
            st.sampled_from(BLOCK_SIZES),
            st.booleans(),
        ).map(
            lambda t: TuningPlan(
                block_size=t[1], layout="2d", nprocs=p,
                pr=t[0][0], pc=t[0][1], synchronous=t[2],
            )
        )
    )
    return st.one_of(seq, oned, twod)


@given(_plans())
@settings(max_examples=50, deadline=None)
def test_plan_json_roundtrip(plan):
    assert TuningPlan.from_json(plan.to_json()) == plan
    # dict round trip too, and the dict is pure JSON types
    d = json.loads(plan.to_json())
    assert TuningPlan.from_dict(d) == plan


@given(_plans())
@settings(max_examples=25, deadline=None)
def test_plan_solver_opts_construct(plan):
    """Every generated plan yields kwargs SStarSolver accepts."""
    s = SStarSolver(**plan.solver_opts())
    assert s.block_size == plan.block_size


# -- PlanCache ----------------------------------------------------------


def test_plan_cache_lru_and_eviction():
    cache = PlanCache(max_entries=2)
    k = [plan_cache_key(f"pat{i}", "T3E", 4) for i in range(3)]
    p = [TuningPlan(block_size=b) for b in (4, 8, 16)]
    cache.put(k[0], p[0])
    cache.put(k[1], p[1])
    assert cache.get(k[0]) == p[0]  # k0 now MRU
    cache.put(k[2], p[2])  # evicts k1 (LRU)
    assert cache.get(k[1]) is None
    assert cache.get(k[2]) == p[2]
    s = cache.stats
    assert (s.hits, s.misses, s.evictions, s.entries) == (2, 1, 1, 2)
    assert s.hit_rate == pytest.approx(2 / 3)
    # peek has no side effects
    cache.peek(k[0])
    assert cache.stats.hits == 2


@given(
    st.lists(st.tuples(st.integers(0, 9), _plans()), max_size=20),
    st.lists(st.integers(0, 9), max_size=10),
    st.integers(1, 4),
)
@settings(max_examples=30, deadline=None)
def test_plan_cache_json_roundtrip(puts, gets, max_entries):
    """Random workload -> serialize -> deserialize is bit-identical:
    same entries, same LRU order, same hit/miss/eviction counters."""
    cache = PlanCache(max_entries=max_entries)
    for i, plan in puts:
        cache.put(plan_cache_key(f"p{i}", "T3E", plan.nprocs), plan)
    for i in gets:
        cache.get(plan_cache_key(f"p{i}", "T3E", 1))
    js = cache.to_json()
    back = PlanCache.from_json(js)
    assert back.to_json() == js
    assert list(back._entries) == list(cache._entries)  # LRU order
    assert back.stats.as_dict() == cache.stats.as_dict()
    assert len(back) <= max_entries


# -- the search ---------------------------------------------------------


@pytest.fixture(scope="module")
def sherman5():
    return get_matrix("sherman5", "small")


@pytest.fixture(scope="module")
def tuned_result(sherman5):
    return Tuner(spec=T3E, nprocs=4, budget="auto", seed=0).tune(sherman5)


def test_space_enumeration_counts():
    seq = enumerate_plans(1)
    assert all(p.method == "sequential" for p in seq)
    assert len(seq) == len(BLOCK_SIZES)
    par = enumerate_plans(4)
    # per block size: 2 1D flavours + 2 paper-regime grids x {async, sync}
    assert len(par) == len(BLOCK_SIZES) * (2 + 2 * 2)
    assert all(p.nprocs == 4 for p in par)


def test_tune_deterministic_bit_for_bit(sherman5, tuned_result):
    again = Tuner(spec=T3E, nprocs=4, budget="auto", seed=0).tune(sherman5)
    assert again.to_json() == tuned_result.to_json()


def test_tune_result_shape(tuned_result):
    res = tuned_result
    assert res.best_seconds is not None and res.best_seconds > 0
    assert res.nprocs == 4 and res.machine == "T3E"
    statuses = {r.status for r in res.records}
    assert "winner" in statuses and "pruned-model" in statuses
    winners = [r for r in res.records if r.status == "winner"]
    assert len(winners) == 1 and winners[0].plan == res.best
    # the budget was resolved from "auto" to a float and respected up to
    # the final leader-validation probe
    assert isinstance(res.budget, float)
    # search trace JSON round-trips
    d = json.loads(res.to_json())
    assert d["best"] == res.best.as_dict()
    assert len(d["records"]) == len(res.records)


def test_tune_tiny_budget_still_validates_winner(sherman5):
    """Even a budget too small for a single probe must yield a winner
    measured at full fidelity (overrun <= one factorization)."""
    res = Tuner(spec=T3E, nprocs=4, budget=1e-12, seed=0).tune(sherman5)
    assert res.best_seconds is not None and res.best_seconds > 0
    assert any(r.status == "skipped-budget" for r in res.records)


def test_tune_sequential_budget(sherman5):
    res = Tuner(spec=T3E, nprocs=1, seed=0).tune(sherman5)
    assert res.best.method == "sequential"
    # sequential probes are priced analytically: zero budget consumed
    assert res.budget_spent == 0.0


def test_tuned_beats_default_on_sherman5(sherman5, tuned_result):
    tuner = Tuner(spec=T3E, nprocs=4, seed=0)
    base = tuner.simulate_plan(sherman5, default_plan(4))
    assert tuned_result.best_seconds <= base["seconds"] * (1 + 1e-9)


# -- Eq. (4) model vs simulator regression ------------------------------

#: Stated tolerance of the pattern-only plan-time model against the
#: simulator: 1D predictions stay within [0.6, 1.6]x of simulated time,
#: 2D within [0.2, 2.0]x (the 2D comm estimator is a per-stage upper
#: shape, not a schedule).  ``Tuner.prune_ratio`` (default 2.0) relies on
#: this band: the model may only be wrong by less than the pruning slack.
MODEL_TOL_1D = (0.6, 1.6)
MODEL_TOL_2D = (0.2, 2.0)

MODEL_SUITE = ["sherman5", "goodwin", "jpwh991", "orsreg1", "saylr4",
               "memplus", "wang3", "dense1000"]


@pytest.mark.parametrize("name", MODEL_SUITE)
def test_model_vs_simulator_regression(name):
    A = get_matrix(name, "small")
    tuner = Tuner(spec=T3E, nprocs=8)
    state = tuner.pattern_state(A)
    plans = [
        TuningPlan(block_size=25, amalgamation=4, layout="1d", nprocs=8),
        TuningPlan(block_size=8, amalgamation=4, layout="1d", nprocs=8),
        default_plan(8),  # 2d async on the preferred grid
    ]
    for plan in plans:
        model = tuner.model_seconds(state, plan)
        sim = tuner.simulate_plan(state, plan)["seconds"]
        lo, hi = MODEL_TOL_1D if plan.layout == "1d" else MODEL_TOL_2D
        assert lo <= model / sim <= hi, (
            f"{name} {plan.describe()}: model {model:.6f} vs "
            f"simulated {sim:.6f} (ratio {model / sim:.2f})"
        )
    # sequential prediction is exact: the static tally *is* the model
    seq = TuningPlan(block_size=25, amalgamation=4)
    model = tuner.model_seconds(state, seq)
    sim = tuner.simulate_plan(state, seq)["seconds"]
    assert model == pytest.approx(sim, rel=1e-12)


# -- solver integration -------------------------------------------------


def test_solver_tuned_vs_manual_bit_identical(sherman5):
    rng = np.random.default_rng(3)
    b = rng.standard_normal(sherman5.nrows)
    tuned = SStarSolver(nprocs=4, tune=True, tune_seed=0)
    tuned.factor(sherman5)
    assert tuned.tune_result is not None
    assert tuned.plan == tuned.tune_result.best
    x_tuned = tuned.solve(b)
    manual = SStarSolver(**tuned.plan.solver_opts())
    manual.factor(sherman5)
    x_manual = manual.solve(b)
    assert np.array_equal(x_tuned, x_manual)
    assert tuned.report.parallel_seconds == manual.report.parallel_seconds


def test_solver_plan_cache_skips_second_search(sherman5):
    cache = PlanCache()
    s1 = SStarSolver(nprocs=4, tune=True, plan_cache=cache)
    s1.factor(sherman5)
    assert s1.tune_result is not None  # searched
    s2 = SStarSolver(nprocs=4, tune=True, plan_cache=cache)
    s2.factor(sherman5)
    assert s2.tune_result is None  # cache hit: no second search
    assert s2.plan == s1.plan
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    # refactorization on the same solver re-resolves from the cache too
    s2.factor(sherman5.with_values(sherman5.data * 1.5))
    assert s2.tune_result is None


# -- service integration ------------------------------------------------


def test_service_repeated_pattern_tunes_once(sherman5):
    svc = SolveService(tune=True, solver_opts={"nprocs": 4})
    rng = np.random.default_rng(11)
    n = sherman5.nrows
    for _ in range(3):
        # drain per job so each one runs its own factor (no multi-RHS
        # coalescing hiding the counters)
        svc.submit(sherman5.with_values(
            sherman5.data * (1 + 0.01 * rng.standard_normal(sherman5.nnz))
        ), rng.standard_normal(n))
        svc.drain()
    counters = svc.metrics_registry.as_dict()["counters"]
    assert counters["tune.searches"] == 1
    assert counters["tune.plan_cache.misses"] == 1
    probes_after_first = counters["tune.probes"]

    # more same-pattern jobs: zero additional tuning probes
    for _ in range(2):
        svc.submit(sherman5, rng.standard_normal(n))
        svc.drain()
    counters = svc.metrics_registry.as_dict()["counters"]
    assert counters["tune.searches"] == 1
    assert counters["tune.probes"] == probes_after_first
    assert counters["tune.plan_cache.hits"] >= 2
    for jid in range(svc.metrics().jobs_completed):
        job = svc.job(jid)
        assert job.status == "done"
