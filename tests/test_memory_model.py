"""Per-processor memory modeling: the 1D-vs-2D scalability argument."""

import pytest

from repro.analysis import (
    footprint_1d,
    footprint_2d,
    sequential_storage_bytes,
)
from repro.analysis.memory import owned_bytes_1d, owned_bytes_2d
from repro.machine import T3E
from repro.matrices import get_matrix
from repro.ordering import prepare_matrix
from repro.parallel import Grid2D, run_1d
from repro.supernodes import build_block_structure, build_partition
from repro.symbolic import static_symbolic_factorization


@pytest.fixture(scope="module")
def pipeline():
    A = get_matrix("goodwin", "small")
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=8, amalgamation=4)
    bstruct = build_block_structure(sym, part)
    return om, sym, part, bstruct


class TestAccounting:
    def test_owned_bytes_partition_the_matrix(self, pipeline):
        om, sym, part, bstruct = pipeline
        s1 = sequential_storage_bytes(bstruct)
        grid = Grid2D(2, 4)
        assert sum(owned_bytes_2d(bstruct, grid)) == s1
        res = run_1d(om.A, part, bstruct, 8, T3E, method="rapid")
        assert sum(owned_bytes_1d(bstruct, res.schedule.owner)) == s1

    def test_sequential_bytes_positive(self, pipeline):
        _, _, _, bstruct = pipeline
        assert sequential_storage_bytes(bstruct) > 0


class TestFootprints:
    def test_2d_footprint_scales_down(self, pipeline):
        """The paper's claim: 2D per-node memory ~ S1/p + small buffers."""
        _, _, _, bstruct = pipeline
        f2 = footprint_2d(bstruct, Grid2D(2, 4))
        f8 = footprint_2d(bstruct, Grid2D(4, 8))
        assert f2.peak < sequential_storage_bytes(bstruct)
        assert f8.data_peak < f2.data_peak
        assert 0 < f2.fraction_of_s1 < 1.0

    def test_1d_footprint_includes_buffers(self, pipeline):
        om, sym, part, bstruct = pipeline
        res = run_1d(om.A, part, bstruct, 8, T3E, method="rapid")
        f1 = footprint_1d(bstruct, res.schedule.owner, res.buffer_high_water)
        assert f1.buffer_peak > 0
        assert f1.peak >= f1.data_peak

    def test_2d_beats_1d_at_scale(self, pipeline):
        """At large P the 2D peak footprint falls below 1D's (the reason
        Table 6's large matrices only ran under the 2D mapping)."""
        om, sym, part, bstruct = pipeline
        res = run_1d(om.A, part, bstruct, 16, T3E, method="rapid")
        f1 = footprint_1d(bstruct, res.schedule.owner, res.buffer_high_water)
        f2 = footprint_2d(bstruct, Grid2D.preferred(16))
        assert f2.data_peak <= f1.data_peak * 1.5
        # the decisive comparison: 2D's *fraction of S1* keeps shrinking
        f2_big = footprint_2d(bstruct, Grid2D.preferred(64))
        assert f2_big.data_peak < f2.data_peak

    def test_fits_budget(self, pipeline):
        _, _, _, bstruct = pipeline
        f2 = footprint_2d(bstruct, Grid2D(2, 4))
        assert f2.fits(f2.peak)
        assert not f2.fits(f2.peak - 1)
