"""Chaos campaign harness: seeded fault sweeps, oracles and the shrinker.

Acceptance criteria under test:

* a seeded campaign of >= 200 runs over the 1D/2D codes (and the
  checkpoint/restart and service scenarios) comes back **all green** —
  every (scenario, family) pair is capability-compatible, so every
  oracle violation would be a real robustness bug;
* an intentionally-unrecoverable corruption (ABFT without transport
  protection or checkpointing) **shrinks** to a schedule of <= 2 fault
  events whose JSON artifact replays to the *same* typed failure
  bit-for-bit;
* :class:`repro.machine.FaultPlan` round-trips through JSON — rules,
  crashes and explicit events — with identical replay decisions
  (the shrinker's artifacts depend on this);
* ``recv(timeout=)`` expiry and crash-while-blocked both close the open
  ``RECV_WAIT`` span, so every rank's non-task spans tile its timeline
  (the regression behind the ``span_tiling`` oracle).
"""

import json

import pytest

from repro.chaos import (
    DEFAULT_SCENARIOS,
    FAMILIES,
    Campaign,
    Scenario,
    build_context,
    compatible,
    family_cells,
    make_plan,
    replay_artifact,
    run_case,
    shrink_failure,
)
from repro.chaos.oracles import check_span_tiling
from repro.machine import GENERIC, TIMEOUT, FaultPlan, Simulator
from repro.machine.faults import (
    CORRUPT,
    DELAY,
    DROP,
    DUPLICATE,
    CrashFault,
    FaultEvent,
    MessageFaultRule,
)
from repro.obs import PHASE, RECV_WAIT, Tracer


@pytest.fixture(scope="module")
def ctx():
    return build_context()


# ---------------------------------------------------------------------------
# the compatibility matrix: every campaign case is *expected* green
# ---------------------------------------------------------------------------


class TestCompatibility:
    def test_pairs_are_recoverable_by_construction(self, ctx):
        camp = Campaign(ctx)
        pairs = camp.pairs()
        assert pairs, "empty campaign"
        for scenario, family in pairs:
            assert compatible(family, scenario.capabilities)

    def test_corrupt_needs_checksums_or_abft_plus_restart(self):
        bare = Scenario("bare", "1d", reliable=False)
        acked = Scenario("acked", "1d", reliable=True, checksum=True)
        abft_only = Scenario("a", "1d", reliable=False, abft=True)
        abft_ckpt = Scenario("ac", "resilient-1d", reliable=False, abft=True)
        assert not compatible("corrupt", bare.capabilities)
        assert compatible("corrupt", acked.capabilities)
        assert not compatible("corrupt", abft_only.capabilities)
        assert compatible("corrupt", abft_ckpt.capabilities)

    def test_crash_needs_restart(self):
        assert not compatible("crash", Scenario("s", "1d").capabilities)
        assert compatible(
            "crash", Scenario("s", "resilient-2d").capabilities)
        # job-level retry is the service's restart analogue
        assert compatible("crash", Scenario("s", "service").capabilities)

    def test_plan_grids_are_deterministic(self, ctx):
        for family in FAMILIES:
            cells = family_cells(family, 4, tscale=ctx.tscale)
            assert cells
            a = make_plan(family, 3, 7, 4, tscale=ctx.tscale)
            b = make_plan(family, 3, 7, 4, tscale=ctx.tscale)
            assert a.to_dict() == b.to_dict()
            c = make_plan(family, 4, 7, 4, tscale=ctx.tscale)
            assert c.to_dict() != a.to_dict() or len(cells) == 1


# ---------------------------------------------------------------------------
# the acceptance sweep: >= 200 seeded runs, every oracle green
# ---------------------------------------------------------------------------


class TestCampaign:
    def test_seeded_campaign_all_green(self, ctx):
        camp = Campaign(ctx, budget=210, seed=7)
        report = camp.run()
        assert report.runs == 210
        assert report.ok, report.summary()
        # observability: the counters and spans tell the same story
        assert camp.metrics.counter("chaos.runs").value == 210
        assert camp.metrics.counter("chaos.failures").value == 0
        phase_spans = [s for s in camp.tracer.spans if s.cat == PHASE]
        assert len(phase_spans) == 210
        # coverage: every family ran, every message action was injected,
        # crashes actually killed ranks
        cov = report.coverage
        assert set(cov["families"]) == set(FAMILIES)
        assert {DROP, DUPLICATE, DELAY, CORRUPT} <= set(cov["actions"])
        assert cov["crashes"] >= 1
        assert cov["total_injected"] >= 100
        assert len(cov["pairs"]) >= 4  # several distinct src->dest routes
        # the report is a JSON document (CI consumes --json output)
        json.dumps(report.as_dict())

    def test_failing_run_is_reported_with_key(self, ctx):
        """A deliberately unprotected scenario turns the campaign red and
        the failure lands in the report with its shrinkable key."""
        bare = Scenario("1d-bare-corrupt", "1d", method="ca", nprocs=4,
                        reliable=False, checksum=False, abft=True)
        # pair it with the corrupt family only (bypassing compatibility
        # by constructing the campaign's sweep by hand)
        camp = Campaign(ctx, scenarios=[bare], families=["corrupt"],
                        budget=8, seed=1)
        camp.pairs = lambda: [(bare, "corrupt")]
        report = camp.run()
        assert not report.ok
        f = report.failures[0]
        assert f["scenario"] == "1d-bare-corrupt"
        assert f["failure_key"][0] == "SilentCorruptionError"


# ---------------------------------------------------------------------------
# the shrinker: minimal schedules, replayable artifacts
# ---------------------------------------------------------------------------


def _find_failing(ctx, scenario, rule, seeds=range(12)):
    for seed in seeds:
        plan = FaultPlan(rules=[rule], seed=seed)
        out = run_case(ctx, scenario, plan)
        if out.failure_key() is not None:
            return plan, out
    raise AssertionError("no failing seed found")


class TestShrinker:
    def test_unrecoverable_corruption_shrinks_to_two_events(self, ctx,
                                                            tmp_path):
        """The acceptance case: ABFT detects a corrupted payload but with
        no transport protection and no checkpointing the run dies with a
        typed error; the shrinker reduces the realised schedule to <= 2
        events and the saved artifact replays to the same failure."""
        scenario = Scenario("1d-ca-abft-bare", "1d", method="ca", nprocs=4,
                            reliable=False, checksum=False, abft=True)
        rule = MessageFaultRule(CORRUPT, rate=0.4, tag_prefix=("col",))
        plan, out = _find_failing(ctx, scenario, rule)
        assert out.failure_key()[0] == "SilentCorruptionError"

        sr = shrink_failure(ctx, scenario, plan, outcome=out)
        assert sr.shrunk_events <= 2
        assert sr.shrunk_events <= sr.original_events
        assert sr.failure_key == out.failure_key()

        path = tmp_path / "chaos_repro.json"
        sr.save(path)
        art = json.loads(path.read_text())
        assert art["kind"] == "repro.chaos.repro"
        replayed, matches = replay_artifact(str(path), ctx=ctx)
        assert matches, (replayed.failure_key(), sr.failure_key)
        # bit-for-bit: the typed error's float discrepancy survives the
        # JSON round trip exactly
        assert replayed.failure_key() == art["failure_key"]

    def test_silent_wrong_result_shrinks(self, ctx):
        """Corruption the oracles (not a typed error) catch: an entirely
        unprotected 2D run completes with a wrong factor; the shrinker
        works from the red oracle key."""
        scenario = Scenario("2d-bare", "2d", method="async", nprocs=4,
                            reliable=False, checksum=False, abft=False)
        rule = MessageFaultRule(CORRUPT, rate=0.5, tag_prefix=("urow",))
        plan, out = _find_failing(ctx, scenario, rule)
        assert out.failure_key()[0] == "oracle"

        sr = shrink_failure(ctx, scenario, plan, outcome=out)
        assert sr.shrunk_events <= 2
        replayed, matches = replay_artifact(sr.artifact, ctx=ctx)
        assert matches

    def test_green_case_refuses_to_shrink(self, ctx):
        scenario = DEFAULT_SCENARIOS[1]  # 1d-ca, fully protected
        plan = FaultPlan(rules=[MessageFaultRule(DROP, rate=0.1)], seed=0)
        with pytest.raises(ValueError, match="green"):
            shrink_failure(ctx, scenario, plan)

    def test_resilient_scenarios_are_rejected(self, ctx):
        scenario = Scenario("r", "resilient-1d")
        with pytest.raises(ValueError, match="single-simulator"):
            shrink_failure(ctx, scenario, FaultPlan())


# ---------------------------------------------------------------------------
# FaultPlan JSON round trip (rules + crashes + explicit events)
# ---------------------------------------------------------------------------


class TestFaultPlanRoundTrip:
    def _random_plan(self, rng):
        actions = [DROP, DUPLICATE, DELAY, CORRUPT]
        tags = [None, ("col",), ("urow", 3), ("swap",)]
        rules = [
            MessageFaultRule(
                actions[rng.integers(len(actions))],
                rate=float(rng.uniform(0.01, 1.0)),
                src=None if rng.integers(2) else int(rng.integers(4)),
                dest=None if rng.integers(2) else int(rng.integers(4)),
                tag_prefix=tags[rng.integers(len(tags))],
                delay_s=float(rng.uniform(0, 1e-4)),
            )
            for _ in range(rng.integers(0, 4))
        ]
        crashes = [
            CrashFault(int(r), float(rng.uniform(0, 1e-3)))
            for r in rng.choice(4, size=rng.integers(0, 3), replace=False)
        ]
        events = [
            FaultEvent(
                actions[rng.integers(len(actions))],
                int(rng.integers(4)), int(rng.integers(4)),
                tags[rng.integers(1, len(tags))],
                attempt=int(rng.integers(3)),
                delay_s=float(rng.uniform(0, 1e-4)),
            )
            for _ in range(rng.integers(0, 4))
        ]
        return FaultPlan(rules=rules, crashes=crashes,
                         seed=int(rng.integers(2**31)), events=events)

    def test_json_round_trip_preserves_plan(self):
        import numpy as np
        rng = np.random.default_rng(5)
        for _ in range(25):
            plan = self._random_plan(rng)
            back = FaultPlan.from_json(plan.to_json())
            assert back.to_dict() == plan.to_dict()
            assert len(back.rules) == len(plan.rules)
            assert len(back.crashes) == len(plan.crashes)
            assert len(back.events) == len(plan.events)

    def test_round_trip_preserves_decisions(self):
        """The reloaded plan makes bitwise-identical fault decisions —
        the property the shrinker's replayable artifacts rest on."""
        import numpy as np
        rng = np.random.default_rng(6)
        tags = [("col", 0), ("urow", 3, 1), ("swap",), ("lcol", 2), "misc"]
        for _ in range(10):
            plan = self._random_plan(rng)
            back = FaultPlan.from_json(plan.to_json())
            for r in range(4):
                assert back.crash_time(r) == plan.crash_time(r)
            for _ in range(60):
                src = int(rng.integers(4))
                dest = int(rng.integers(4))
                tag = tags[rng.integers(len(tags))]
                attempt = int(rng.integers(3))
                a = plan.message_fault(src, dest, tag, attempt)
                b = back.message_fault(src, dest, tag, attempt)
                if a is None:
                    assert b is None
                else:
                    assert b is not None
                    assert (a.action, a.delay_s) == (b.action, b.delay_s)

    def test_file_round_trip(self, tmp_path):
        plan = FaultPlan(
            rules=[MessageFaultRule(DROP, rate=0.2, tag_prefix=("col",))],
            seed=9,
            events=[FaultEvent(CORRUPT, 0, 2, ("col", 1), attempt=1)],
        ).with_crash(3, 5e-4)
        path = tmp_path / "plan.json"
        plan.to_json(path)
        back = FaultPlan.from_json(str(path))
        assert back.to_dict() == plan.to_dict()


# ---------------------------------------------------------------------------
# recv(timeout=) and crash-while-blocked close their wait spans
# ---------------------------------------------------------------------------


class TestWaitSpanClosure:
    def test_recv_timeout_closes_wait_span(self):
        """A timed-out recv must emit its RECV_WAIT span (tagged
        ``timeout``) so the rank's timeline still tiles [0, clock]."""
        def prog(env):
            if env.rank == 0:
                got = yield env.recv("never", timeout=2e-4)
                assert got is TIMEOUT
                env.send(1, "go", 1)
            else:
                got = yield env.recv("go")
                assert got == 1
            return None

        tr = Tracer()
        res = Simulator(2, GENERIC, prog, tracer=tr).run()
        waits = [s for s in tr.spans
                 if s.cat == RECV_WAIT and s.track == 0]
        assert any(s.args and s.args.get("timeout") for s in waits)
        rep = check_span_tiling(tr, res)
        assert rep.ok, rep.detail

    def test_crash_while_blocked_closes_wait_span(self):
        """A rank that dies inside a blocking recv must still close the
        open RECV_WAIT span (tagged ``crashed``)."""
        def prog(env):
            if env.rank == 1:
                yield env.recv("never")  # blocks until the crash
            else:
                t0 = env.clock
                env.compute("blas1", 1e5)
                env.span("work", t0)
            return env.rank

        plan = FaultPlan().with_crash(1, 2e-4)
        tr = Tracer()
        res = Simulator(2, GENERIC, prog, tracer=tr, faults=plan).run()
        assert res.crashed == [1]
        waits = [s for s in tr.spans
                 if s.cat == RECV_WAIT and s.track == 1]
        assert any(s.args and s.args.get("crashed") for s in waits)
        rep = check_span_tiling(tr, res)
        assert rep.ok, rep.detail
