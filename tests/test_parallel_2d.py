"""2D parallel codes: grids, sync vs async, Theorem 2 overlap bounds."""

import numpy as np
import pytest

from repro.machine import T3E
from repro.matrices import random_nonsymmetric
from repro.numfact import LUFactorization, sstar_factor
from repro.ordering import prepare_matrix
from repro.parallel import Grid2D, run_2d, buffer_requirements
from repro.sparse import csr_to_dense
from repro.supernodes import build_block_structure, build_partition
from repro.symbolic import static_symbolic_factorization


@pytest.fixture(scope="module")
def pipeline():
    A = random_nonsymmetric(90, density=0.06, seed=37)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=6, amalgamation=4)
    bstruct = build_block_structure(sym, part)
    seq = sstar_factor(om.A, sym=sym, part=part)
    return dict(om=om, sym=sym, part=part, bstruct=bstruct, seq=seq,
                dense=csr_to_dense(om.A))


def _assert_bitwise_equal(seq, factor):
    assert set(seq.matrix.blocks) == set(factor.blocks)
    for key, blk in seq.matrix.blocks.items():
        assert np.array_equal(blk, factor.blocks[key]), f"block {key} differs"
    assert seq.matrix.pivot_seq == factor.pivot_seq


class TestGrid:
    def test_preferred_shapes(self):
        assert (Grid2D.preferred(8).pr, Grid2D.preferred(8).pc) == (2, 4)
        assert (Grid2D.preferred(16).pr, Grid2D.preferred(16).pc) == (4, 4)
        g = Grid2D.preferred(128)
        assert g.nprocs == 128 and g.pc >= g.pr

    def test_rank_coords_roundtrip(self):
        g = Grid2D(3, 5)
        for rank in range(15):
            r, c = g.coords(rank)
            assert g.rank(r, c) == rank

    def test_owner_of_block(self):
        g = Grid2D(2, 3)
        assert g.owner_of_block(4, 7) == g.rank(0, 1)

    def test_row_col_ranks(self):
        g = Grid2D(2, 2)
        assert g.row_ranks(1) == [2, 3]
        assert g.col_ranks(0) == [0, 2]


class TestBitwiseAgreement:
    @pytest.mark.parametrize("synchronous", [False, True])
    @pytest.mark.parametrize("grid", [(1, 1), (1, 2), (2, 1), (2, 2), (2, 4)])
    def test_matches_sequential(self, pipeline, synchronous, grid):
        p = pipeline
        g = Grid2D(*grid)
        res = run_2d(
            p["om"].A, p["part"], p["bstruct"], g.nprocs, T3E,
            synchronous=synchronous, grid=g,
        )
        _assert_bitwise_equal(p["seq"], res.factor)

    def test_solve_works(self, pipeline):
        p = pipeline
        res = run_2d(p["om"].A, p["part"], p["bstruct"], 4, T3E)
        lf = LUFactorization(res.factor, p["sym"], p["part"], p["bstruct"],
                             res.sim.total_counter())
        b = np.cos(np.arange(90.0))
        x = lf.solve(b)
        assert np.linalg.norm(p["dense"] @ x - b) / np.linalg.norm(b) < 1e-10


class TestOverlap:
    def test_async_overlaps_stages(self, pipeline):
        p = pipeline
        res = run_2d(p["om"].A, p["part"], p["bstruct"], 4, T3E, synchronous=False)
        assert res.overlap_degree() >= 1

    def test_sync_does_not_overlap(self, pipeline):
        p = pipeline
        res = run_2d(p["om"].A, p["part"], p["bstruct"], 4, T3E, synchronous=True)
        assert res.overlap_degree() == 0

    @pytest.mark.parametrize("grid", [(2, 2), (2, 4), (4, 2)])
    def test_theorem2_bound(self, pipeline, grid):
        """Measured overlap degree never exceeds the p_c bound."""
        p = pipeline
        g = Grid2D(*grid)
        res = run_2d(p["om"].A, p["part"], p["bstruct"], g.nprocs, T3E, grid=g)
        assert res.overlap_degree() <= g.pc

    def test_async_not_slower_than_sync(self, pipeline):
        p = pipeline
        a = run_2d(p["om"].A, p["part"], p["bstruct"], 4, T3E, synchronous=False)
        s = run_2d(p["om"].A, p["part"], p["bstruct"], 4, T3E, synchronous=True)
        assert a.parallel_seconds <= s.parallel_seconds


class TestBuffers:
    def test_report_positive(self, pipeline):
        p = pipeline
        rep = buffer_requirements(p["bstruct"], Grid2D(2, 4))
        assert rep.cbuffer > 0 and rep.rbuffer > 0
        assert rep.total >= rep.pc * rep.cbuffer

    def test_buffer_small_relative_to_matrix(self, pipeline):
        """The Theorem 2 selling point: buffers are a small multiple of a
        single panel, far below the whole-matrix footprint 1D may need."""
        p = pipeline
        rep = buffer_requirements(p["bstruct"], Grid2D(2, 4))
        matrix_bytes = sum(
            p["part"].size(I) * p["part"].size(J)
            for (I, J) in p["bstruct"].nonzero_blocks()
        ) * 8
        assert rep.total < matrix_bytes

    def test_grid_mismatch_rejected(self, pipeline):
        p = pipeline
        with pytest.raises(ValueError, match="grid"):
            run_2d(p["om"].A, p["part"], p["bstruct"], 8, T3E, grid=Grid2D(2, 2))


class TestScaling:
    def test_more_procs_not_slower(self, pipeline):
        p = pipeline
        t2 = run_2d(p["om"].A, p["part"], p["bstruct"], 2, T3E).parallel_seconds
        t8 = run_2d(p["om"].A, p["part"], p["bstruct"], 8, T3E).parallel_seconds
        # n=90 is far below the machine's scaling regime; just require that
        # the pipeline does not collapse when the grid grows
        assert t8 < t2 * 1.5
