"""Stability diagnostics: growth factors, backward error, refinement,
threshold pivoting."""

import numpy as np
import pytest

from repro import SStarSolver
from repro.analysis import (
    backward_error,
    factor_max_element,
    growth_factor,
    iterative_refinement,
)
from repro.matrices import random_nonsymmetric
from repro.sparse import csr_matvec, dense_to_csr


class TestBackwardError:
    def test_exact_solution_zero_error(self):
        A = random_nonsymmetric(30, density=0.15, seed=1)
        s = SStarSolver().factor(A)
        b = csr_matvec(A, np.ones(30))
        x = s.solve(b)
        assert backward_error(A, x, b) < 1e-13

    def test_wrong_solution_large_error(self):
        A = random_nonsymmetric(20, density=0.2, seed=2)
        b = np.ones(20)
        assert backward_error(A, np.zeros(20), b) > 0.5

    def test_zero_rhs_zero_solution(self):
        A = random_nonsymmetric(10, density=0.3, seed=3)
        assert backward_error(A, np.zeros(10), np.zeros(10)) == 0.0


class TestGrowthFactor:
    def test_gepp_growth_is_modest(self):
        A = random_nonsymmetric(40, density=0.15, seed=4)
        s = SStarSolver().factor(A)
        g = growth_factor(A, factor_max_element(s.factorization))
        assert 0 < g < 100  # GEPP growth is small in practice

    def test_threshold_pivoting_can_grow_more(self):
        """Relaxing u can only increase (or keep) the element growth."""
        A = random_nonsymmetric(40, density=0.15, seed=5)
        g_full = growth_factor(
            A, factor_max_element(SStarSolver().factor(A).factorization)
        )
        g_loose = growth_factor(
            A,
            factor_max_element(
                SStarSolver(pivot_threshold=0.01).factor(A).factorization
            ),
        )
        assert g_loose >= g_full * 0.999


class TestIterativeRefinement:
    def test_converges_to_roundoff(self):
        A = random_nonsymmetric(50, density=0.1, seed=6)
        s = SStarSolver().factor(A)
        rng = np.random.default_rng(0)
        b = rng.uniform(-1, 1, 50)
        x, history = iterative_refinement(A, s.solve, b)
        assert history[-1] < 1e-13
        assert len(history) >= 1

    def test_improves_threshold_pivoted_solution(self):
        """Refinement repairs the accuracy lost to loose threshold pivoting."""
        A = random_nonsymmetric(60, density=0.12, seed=7)
        s = SStarSolver(pivot_threshold=0.05).factor(A)
        rng = np.random.default_rng(1)
        b = rng.uniform(-1, 1, 60)
        x, history = iterative_refinement(A, s.solve, b)
        assert history[-1] <= history[0]
        assert history[-1] < 1e-12

    def test_history_monotone_until_stagnation(self):
        A = random_nonsymmetric(40, density=0.1, seed=8)
        s = SStarSolver().factor(A)
        b = np.ones(40)
        _, history = iterative_refinement(A, s.solve, b, max_iters=3)
        assert min(history) == history[-1] or history[-1] < 1e-13


class TestThresholdPivoting:
    def test_u_one_is_partial_pivoting(self):
        A = random_nonsymmetric(50, density=0.1, seed=9)
        s1 = SStarSolver().factor(A)
        s2 = SStarSolver(pivot_threshold=1.0).factor(A)
        b = np.ones(50)
        assert np.array_equal(s1.solve(b), s2.solve(b))

    def test_small_u_reduces_interchanges(self):
        A = random_nonsymmetric(80, density=0.08, seed=10)
        full = SStarSolver().factor(A).factorization.num_interchanges()
        loose = (
            SStarSolver(pivot_threshold=0.01).factor(A).factorization.num_interchanges()
        )
        assert loose <= full

    def test_solution_still_accurate(self):
        A = random_nonsymmetric(60, density=0.1, seed=11)
        s = SStarSolver(pivot_threshold=0.1).factor(A)
        b = np.arange(60.0)
        x = s.solve(b)
        assert backward_error(A, x, b) < 1e-10

    def test_invalid_threshold_rejected(self):
        A = random_nonsymmetric(20, density=0.2, seed=12)
        with pytest.raises(ValueError, match="threshold"):
            SStarSolver(pivot_threshold=0.0).factor(A)
        with pytest.raises(ValueError, match="threshold"):
            SStarSolver(pivot_threshold=1.5).factor(A)

    @pytest.mark.parametrize("u", [0.1, 0.5])
    @pytest.mark.parametrize("method", ["1d-rapid", "2d"])
    def test_parallel_codes_match_sequential_under_threshold(self, u, method):
        A = random_nonsymmetric(60, density=0.08, seed=13)
        ref = SStarSolver(pivot_threshold=u).factor(A)
        par = SStarSolver(pivot_threshold=u, nprocs=4, method=method).factor(A)
        b = np.ones(60)
        assert np.array_equal(ref.solve(b), par.solve(b))

    def test_diagonally_dominant_needs_no_interchanges(self):
        rng = np.random.default_rng(3)
        D = rng.uniform(-0.5, 0.5, (30, 30)) + 40 * np.eye(30)
        A = dense_to_csr(D)
        s = SStarSolver(pivot_threshold=0.5).factor(A)
        assert s.factorization.num_interchanges() == 0
