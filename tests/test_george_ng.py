"""Static symbolic factorization: reference cross-check and the
covers-any-pivot-sequence guarantee."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import superlu_like_factor
from repro.matrices import random_nonsymmetric
from repro.ordering import prepare_matrix
from repro.sparse import coo_to_csr
from repro.symbolic import static_symbolic_factorization


def george_ng_reference(A):
    """Direct per-row set simulation of the Section 3.1 algorithm."""
    n = A.nrows
    rows = [set(int(c) for c in A.row_indices(i)) for i in range(n)]
    lcol, urow = [], []
    for k in range(n):
        cand = [i for i in range(k, n) if k in rows[i]]
        union = set()
        for i in cand:
            union |= {c for c in rows[i] if c >= k}
        for i in cand:
            rows[i] = {c for c in rows[i] if c < k} | union
        lcol.append(sorted(cand))
        urow.append(sorted(union))
    return lcol, urow


def _subset(small, big):
    return set(int(x) for x in small) <= set(int(x) for x in big)


class TestAgainstReference:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_matrices(self, seed):
        A = random_nonsymmetric(24, density=0.12, seed=seed)
        sym = static_symbolic_factorization(A)
        ref_l, ref_u = george_ng_reference(A)
        for k in range(A.nrows):
            assert sym.lcol[k].tolist() == ref_l[k], f"lcol mismatch at {k}"
            assert sym.urow[k].tolist() == ref_u[k], f"urow mismatch at {k}"

    def test_worked_example(self):
        # the structure of the paper's Fig. 2 style 5x5 example:
        # x . . x .
        # . x . . x
        # x . x . .
        # . x . x .
        # . . x . x
        rows = [0, 0, 1, 1, 2, 2, 3, 3, 4, 4]
        cols = [0, 3, 1, 4, 0, 2, 1, 3, 2, 4]
        A = coo_to_csr(5, 5, rows, cols, np.ones(10))
        sym = static_symbolic_factorization(A)
        ref_l, ref_u = george_ng_reference(A)
        assert [c.tolist() for c in sym.lcol] == ref_l
        assert [c.tolist() for c in sym.urow] == ref_u
        # step 0 candidates are rows 0 and 2; both get the union {0, 2, 3}
        assert sym.lcol[0].tolist() == [0, 2]
        assert sym.urow[0].tolist() == [0, 2, 3]


class TestStructuralGuarantees:
    def test_diagonal_included(self):
        A = random_nonsymmetric(30, density=0.1, seed=3)
        sym = static_symbolic_factorization(A)
        for k in range(30):
            assert sym.lcol[k][0] == k
            assert sym.urow[k][0] == k

    def test_original_pattern_covered(self):
        A = random_nonsymmetric(30, density=0.1, seed=4)
        sym = static_symbolic_factorization(A)
        F = sym.filled_pattern_dense()
        for i in range(30):
            for j in A.row_indices(i):
                assert F[i, j], f"original entry ({i},{j}) lost"

    def test_rejects_zero_diagonal(self):
        A = coo_to_csr(2, 2, [0, 1], [1, 0], [1.0, 1.0])
        with pytest.raises(ValueError, match="diagonal"):
            static_symbolic_factorization(A)

    def test_rejects_rectangular(self):
        A = coo_to_csr(2, 3, [0, 1], [0, 1], [1.0, 1.0])
        with pytest.raises(ValueError, match="square"):
            static_symbolic_factorization(A)

    @pytest.mark.parametrize("rule", ["partial", "random"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_covers_dynamic_factorization(self, rule, seed):
        """The George-Ng structure must contain the dynamic fill of *any*
        pivot sequence — partial pivoting and adversarial random pivoting."""
        A = random_nonsymmetric(40, density=0.08, seed=seed)
        om = prepare_matrix(A)
        sym = static_symbolic_factorization(om.A)
        dyn = superlu_like_factor(om.A, pivot_rule=rule)
        dl = dyn.l_column_structures()
        du = dyn.u_row_structures()
        for k in range(om.n):
            assert _subset(dl[k], sym.lcol[k]), f"L column {k} not covered"
            assert _subset(du[k], sym.urow[k]), f"U row {k} not covered"

    def test_factor_entries_counts(self):
        A = random_nonsymmetric(20, density=0.15, seed=6)
        sym = static_symbolic_factorization(A)
        manual = sum(len(l) + len(u) - 1 for l, u in zip(sym.lcol, sym.urow))
        assert sym.factor_entries == manual

    def test_row_structure_helper(self):
        A = random_nonsymmetric(15, density=0.2, seed=8)
        sym = static_symbolic_factorization(A)
        F = sym.filled_pattern_dense()
        for i in range(15):
            got = sorted(int(c) for c in sym.row_structure(i))
            ref = sorted(np.flatnonzero(F[i]).tolist())
            assert got == ref


class TestDenseCase:
    def test_dense_matrix_fills_completely(self):
        from repro.matrices import dense_matrix

        A = dense_matrix(10)
        sym = static_symbolic_factorization(A)
        assert sym.factor_entries == 100

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_property_static_covers_partial_pivoting(self, seed):
        A = random_nonsymmetric(18, density=0.18, seed=seed)
        om = prepare_matrix(A)
        sym = static_symbolic_factorization(om.A)
        dyn = superlu_like_factor(om.A)
        for k, (ls, us) in enumerate(zip(dyn.l_column_structures(), dyn.u_row_structures())):
            assert _subset(ls, sym.lcol[k])
            assert _subset(us, sym.urow[k])
