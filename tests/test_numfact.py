"""Block storage, Factor/Update kernels and the sequential S* driver."""

import numpy as np
import pytest

from repro.baselines import dense_gepp
from repro.matrices import dense_matrix, random_nonsymmetric
from repro.numfact import (
    BlockLUMatrix,
    KernelCounter,
    SingularMatrixError,
    StructureViolation,
    factor_block_column,
    sstar_factor,
    unit_lower_solve,
    upper_solve,
)
from repro.ordering import prepare_matrix
from repro.sparse import coo_to_csr, csr_to_dense
from repro.supernodes import build_block_structure, build_partition
from repro.symbolic import static_symbolic_factorization



def _pipeline(n=50, density=0.08, seed=0, block=8, amalg=4):
    A = random_nonsymmetric(n, density=density, seed=seed)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=block, amalgamation=amalg)
    bstruct = build_block_structure(sym, part)
    return om, sym, part, bstruct


def residual(D, x, b):
    import numpy as _np
    return _np.linalg.norm(D @ x - b) / max(_np.linalg.norm(b), 1e-30)


class TestKernels:
    def test_unit_lower_solve_matches_numpy(self, rng):
        L = np.tril(rng.uniform(-1, 1, (9, 9)), -1) + np.eye(9)
        B = rng.uniform(-1, 1, (9, 4))
        X = B.copy()
        unit_lower_solve(L, X)
        assert np.allclose(L @ X, B)

    def test_unit_lower_solve_vector(self, rng):
        L = np.tril(rng.uniform(-1, 1, (7, 7)), -1) + np.eye(7)
        b = rng.uniform(-1, 1, 7)
        x = b.copy()
        unit_lower_solve(L, x)
        assert np.allclose(L @ x, b)

    def test_upper_solve_matches_numpy(self, rng):
        U = np.triu(rng.uniform(-1, 1, (9, 9))) + 3 * np.eye(9)
        B = rng.uniform(-1, 1, (9, 3))
        X = B.copy()
        upper_solve(U, X)
        assert np.allclose(U @ X, B)

    def test_counters_filled(self, rng):
        c = KernelCounter()
        L = np.tril(rng.uniform(-1, 1, (6, 6)), -1) + np.eye(6)
        B = rng.uniform(-1, 1, (6, 5))
        unit_lower_solve(L, B, counter=c)
        assert c.flops.get("dgemm", 0) > 0

    def test_kernel_fraction(self):
        c = KernelCounter()
        c.add("dgemm", 75)
        c.add("dgemv", 25)
        assert c.fraction("dgemm") == 0.75
        assert c.total == 100


class TestBlockStorage:
    def test_from_csr_roundtrip(self):
        om, sym, part, bstruct = _pipeline(seed=1)
        m = BlockLUMatrix.from_csr(om.A, part, bstruct)
        assert np.array_equal(m.to_dense(), csr_to_dense(om.A))

    def test_out_of_structure_entry_raises(self):
        om, sym, part, bstruct = _pipeline(seed=2)
        # forge a matrix with an entry outside the static structure:
        # find an absent block and drop an entry there
        absent = None
        for I in range(part.N - 1, 0, -1):
            for J in range(part.N):
                if not bstruct.has_block(I, J) and I > J:
                    absent = (I, J)
                    break
            if absent:
                break
        if absent is None:
            pytest.skip("structure is full for this seed")
        I, J = absent
        bad = coo_to_csr(
            om.n,
            om.n,
            [part.start(I)],
            [part.start(J)],
            [1.0],
        )
        with pytest.raises(StructureViolation):
            BlockLUMatrix.from_csr(bad, part, bstruct)

    def test_swap_rows_both_present(self):
        om, sym, part, bstruct = _pipeline(seed=3)
        m = BlockLUMatrix.from_csr(om.A, part, bstruct)
        J = part.N - 1
        rows = [I for I in range(part.N) if bstruct.has_block(I, J)]
        if len(rows) < 1:
            pytest.skip("no blocks in last column")
        r1 = part.start(rows[0])
        r2 = part.start(rows[0]) + part.size(rows[0]) - 1
        D0 = m.to_dense()
        m.swap_rows_in_block_column(J, r1, r2)
        D1 = m.to_dense()
        c0, c1 = part.start(J), part.start(J) + part.size(J)
        assert np.array_equal(D1[r1, c0:c1], D0[r2, c0:c1])
        assert np.array_equal(D1[r2, c0:c1], D0[r1, c0:c1])

    def test_swap_absent_zero_is_noop(self):
        om, sym, part, bstruct = _pipeline(seed=4)
        m = BlockLUMatrix.from_csr(om.A, part, bstruct)
        # find absent (I, J) pair sharing a column with a present block
        for J in range(part.N):
            present = [I for I in range(part.N) if bstruct.has_block(I, J)]
            missing = [I for I in range(part.N) if not bstruct.has_block(I, J)]
            if present and missing:
                r_present = part.start(present[0])
                r_missing = part.start(missing[0])
                blk = m.blocks[(present[0], J)]
                blk[r_present - part.start(present[0])] = 0.0
                m.swap_rows_in_block_column(J, r_present, r_missing)  # no raise
                return
        pytest.skip("no absent block found")

    def test_swap_absent_nonzero_raises(self):
        om, sym, part, bstruct = _pipeline(seed=5)
        m = BlockLUMatrix.from_csr(om.A, part, bstruct)
        for J in range(part.N):
            present = [
                I
                for I in range(part.N)
                if bstruct.has_block(I, J)
                and np.any(m.blocks[(I, J)][0])
            ]
            missing = [I for I in range(part.N) if not bstruct.has_block(I, J)]
            if present and missing:
                with pytest.raises(StructureViolation):
                    m.swap_rows_in_block_column(
                        J, part.start(present[0]), part.start(missing[0])
                    )
                return
        pytest.skip("no absent block found")


class TestFactorBlockColumn:
    def test_matches_dense_gepp_on_panel(self):
        om, sym, part, bstruct = _pipeline(seed=6)
        m = BlockLUMatrix.from_csr(om.A, part, bstruct)
        # dense reference on the stacked panel of column 0
        rows = [I for I in bstruct.l_block_rows(0)]
        panel = np.vstack([m.blocks[(I, 0)].copy() for I in rows])
        fc = factor_block_column(m, 0)
        bs = part.size(0)
        ref = panel.copy()
        for c in range(bs):
            t = c + int(np.argmax(np.abs(ref[c:, c])))
            if t != c:
                ref[[c, t]] = ref[[t, c]]
            ref[c + 1 :, c] /= ref[c, c]
            if c + 1 < bs:
                ref[c + 1 :, c + 1 : bs] -= np.outer(
                    ref[c + 1 :, c], ref[c, c + 1 : bs]
                )
        got = np.vstack([m.blocks[(I, 0)] for I in rows])
        assert np.array_equal(got, ref)
        assert len(fc.pivots) == bs

    def test_singular_column_raises(self):
        # a matrix whose first column is entirely zero after the diagonal..
        # make an exactly singular matrix (duplicate rows)
        D = np.ones((4, 4))
        A = coo_to_csr(
            4, 4, *np.nonzero(D), D[np.nonzero(D)]
        )
        sym = static_symbolic_factorization(A)
        part = build_partition(sym, max_size=4, amalgamation=0)
        bstruct = build_block_structure(sym, part)
        m = BlockLUMatrix.from_csr(A, part, bstruct)
        with pytest.raises(SingularMatrixError):
            factor_block_column(m, 0)


class TestSequentialFactor:
    @pytest.mark.parametrize("seed", range(5))
    def test_solve_matches_numpy(self, seed):
        om, sym, part, bstruct = _pipeline(n=60, seed=seed)
        lu = sstar_factor(om.A, sym=sym, part=part)
        D = csr_to_dense(om.A)
        b = np.sin(np.arange(60) + 1.0)
        x = lu.solve(b)
        assert residual(D, x, b) < 1e-10
        assert np.allclose(x, np.linalg.solve(D, b), rtol=1e-8, atol=1e-10)

    def test_pivot_choice_matches_dense_gepp(self):
        """S*'s restricted pivot search must pick the same pivots as dense
        GEPP: values outside the static structure are exactly zero."""
        om, sym, part, bstruct = _pipeline(n=40, seed=7, block=1, amalg=0)
        lu = sstar_factor(om.A, sym=sym, part=part, amalgamation=0)
        _, ipiv = dense_gepp(csr_to_dense(om.A))
        got = [t for seq in lu.matrix.pivot_seq for (_, t) in seq]
        assert got == ipiv.tolist()

    def test_static_zero_invariant(self):
        om, sym, part, bstruct = _pipeline(n=60, seed=8)
        lu = sstar_factor(om.A, sym=sym, part=part)
        assert lu.matrix.check_static_zeros(sym) == 0

    def test_dense1000_analogue(self):
        A = dense_matrix(40, seed=1)
        om = prepare_matrix(A)
        lu = sstar_factor(om.A)
        D = csr_to_dense(om.A)
        b = np.ones(40)
        assert residual(D, lu.solve(b), b) < 1e-10

    def test_dgemm_dominates_on_dense(self):
        A = dense_matrix(60, seed=2)
        om = prepare_matrix(A)
        lu = sstar_factor(om.A)
        assert lu.counter.fraction("dgemm") > 0.5

    def test_rhs_shape_validated(self):
        om, sym, part, bstruct = _pipeline(n=30, seed=9)
        lu = sstar_factor(om.A, sym=sym, part=part)
        with pytest.raises(ValueError, match="rhs"):
            lu.solve(np.ones(7))

    def test_pivot_rows_flat(self):
        om, sym, part, bstruct = _pipeline(n=30, seed=10)
        lu = sstar_factor(om.A, sym=sym, part=part)
        assert len(lu.pivot_rows()) == 30
