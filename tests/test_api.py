"""The SStarSolver facade."""

import numpy as np
import pytest

from repro import SStarSolver
from repro.matrices import get_matrix, random_nonsymmetric
from repro.sparse import csr_matvec, csr_to_dense


class TestSequential:
    def test_factor_solve_original_coordinates(self):
        A = random_nonsymmetric(70, density=0.06, seed=41, zero_free_diagonal=False)
        # ensure structural nonsingularity by adding a diagonal
        A = random_nonsymmetric(70, density=0.06, seed=41)
        s = SStarSolver().factor(A)
        b = np.linspace(1, 2, 70)
        x = s.solve(b)
        assert np.linalg.norm(csr_matvec(A, x) - b) / np.linalg.norm(b) < 1e-9

    def test_dense_input(self, rng):
        D = rng.uniform(-1, 1, (30, 30)) + 4 * np.eye(30)
        s = SStarSolver().factor(D)
        b = rng.uniform(-1, 1, 30)
        x = s.solve(b)
        assert np.allclose(D @ x, b)

    def test_report_populated(self):
        A = get_matrix("jpwh991", "small")
        s = SStarSolver().factor(A)
        r = s.report
        assert r.n == A.nrows
        assert r.factor_entries >= A.nnz * 0.5
        assert r.flops > 0
        assert 0 <= r.dgemm_fraction <= 1
        assert r.parallel_seconds is None

    def test_solve_before_factor_raises(self):
        with pytest.raises(RuntimeError, match="factor"):
            SStarSolver().solve(np.ones(3))

    def test_bad_input_type(self):
        with pytest.raises(TypeError):
            SStarSolver().factor([[1, 2], [3, 4]])

    def test_solution_matches_dense_reference(self):
        A = get_matrix("orsreg1", "small")
        s = SStarSolver().factor(A)
        D = csr_to_dense(A)
        b = np.ones(A.nrows)
        assert np.allclose(s.solve(b), np.linalg.solve(D, b), rtol=1e-7, atol=1e-9)


class TestParallelMethods:
    @pytest.mark.parametrize("method", ["1d-rapid", "1d-ca", "2d", "2d-sync"])
    def test_all_methods_agree(self, method):
        A = random_nonsymmetric(60, density=0.08, seed=43)
        ref = SStarSolver().factor(A)
        par = SStarSolver(nprocs=4, method=method).factor(A)
        b = np.arange(60.0) + 1
        assert np.array_equal(ref.solve(b), par.solve(b))  # bitwise identical
        assert par.report.parallel_seconds > 0
        assert par.report.nprocs == 4

    def test_machine_selection(self):
        A = random_nonsymmetric(50, density=0.08, seed=44)
        t3d = SStarSolver(nprocs=4, method="2d", machine="T3D").factor(A)
        t3e = SStarSolver(nprocs=4, method="2d", machine="T3E").factor(A)
        assert t3e.report.parallel_seconds < t3d.report.parallel_seconds

    def test_unknown_method(self):
        A = random_nonsymmetric(30, seed=45)
        with pytest.raises(ValueError, match="method"):
            SStarSolver(nprocs=2, method="3d").factor(A)

    def test_sim_result_exposed(self):
        A = random_nonsymmetric(50, density=0.08, seed=46)
        s = SStarSolver(nprocs=4, method="1d-rapid").factor(A)
        assert s.sim_result is not None
        assert s.sim_result.messages == s.report.messages


class TestBlockSizeAndAmalgamation:
    def test_block_size_one_works(self):
        A = random_nonsymmetric(40, density=0.1, seed=47)
        s = SStarSolver(block_size=1, amalgamation=0).factor(A)
        b = np.ones(40)
        x = s.solve(b)
        assert np.linalg.norm(csr_matvec(A, x) - b) < 1e-8

    def test_amalgamation_reduces_blocks(self):
        A = get_matrix("saylr4", "small")
        s0 = SStarSolver(amalgamation=0).factor(A)
        s6 = SStarSolver(amalgamation=6).factor(A)
        assert s6.report.supernode_blocks <= s0.report.supernode_blocks
