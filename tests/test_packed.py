"""Packed supernode-panel backend vs the dense-block backend."""

import numpy as np
import pytest

from repro import SStarSolver
from repro.matrices import get_matrix, random_nonsymmetric
from repro.numfact import packed_factor, sstar_factor
from repro.numfact.blocks import StructureViolation
from repro.ordering import prepare_matrix
from repro.sparse import csr_to_dense


def _pair(n=80, seed=0, **kw):
    A = random_nonsymmetric(n, density=0.08, seed=seed)
    om = prepare_matrix(A)
    return om, sstar_factor(om.A, **kw), packed_factor(om.A, **kw)


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_same_pivots_and_solution(self, seed):
        om, dense, packed = _pair(seed=seed)
        assert dense.matrix.pivot_seq == packed.matrix.pivot_seq
        b = np.sin(np.arange(om.n) + 1.0)
        assert np.allclose(dense.solve(b), packed.solve(b), rtol=1e-9, atol=1e-12)

    def test_identical_flop_accounting(self):
        """The packed backend executes exactly the flops the dense backend
        *accounts* — validating the structural-row accounting model."""
        om, dense, packed = _pair(seed=7)
        assert packed.counter.total == pytest.approx(dense.counter.total)
        for k, v in dense.counter.flops.items():
            assert packed.counter.flops.get(k, 0.0) == pytest.approx(v)

    def test_threshold_pivoting_supported(self):
        om, dense, packed = _pair(seed=8, pivot_threshold=0.25)
        assert dense.matrix.pivot_seq == packed.matrix.pivot_seq
        assert packed.num_interchanges() == dense.num_interchanges()

    @pytest.mark.parametrize("name", ["sherman5", "goodwin", "jpwh991"])
    def test_suite_matrices(self, name):
        A = get_matrix(name, "small")
        om = prepare_matrix(A)
        packed = packed_factor(om.A)
        D = csr_to_dense(om.A)
        b = np.ones(om.n)
        x = packed.solve(b)
        assert np.linalg.norm(D @ x - b) / np.linalg.norm(b) < 1e-9


class TestMemory:
    def test_packed_saves_memory(self):
        om, dense, packed = _pair(n=120, seed=9)
        dense_bytes = sum(b.nbytes for b in dense.matrix.blocks.values())
        assert packed.storage_bytes() < dense_bytes

    def test_storage_bytes_positive(self):
        om, dense, packed = _pair(n=40, seed=10)
        assert packed.storage_bytes() > 0


class TestValidation:
    def test_rhs_shape(self):
        om, dense, packed = _pair(n=30, seed=11)
        with pytest.raises(ValueError, match="rhs"):
            packed.solve(np.ones(7))

    def test_bad_threshold(self):
        A = random_nonsymmetric(20, density=0.2, seed=12)
        om = prepare_matrix(A)
        with pytest.raises(ValueError, match="threshold"):
            packed_factor(om.A, pivot_threshold=2.0)

    def test_out_of_structure_entry(self):
        from repro.numfact.packed import PackedLUMatrix
        from repro.sparse import coo_to_csr
        from repro.supernodes import build_block_structure, build_partition
        from repro.symbolic import static_symbolic_factorization

        A = random_nonsymmetric(40, density=0.08, seed=13)
        om = prepare_matrix(A)
        sym = static_symbolic_factorization(om.A)
        part = build_partition(sym, max_size=6, amalgamation=2)
        bstruct = build_block_structure(sym, part)
        # an entry in a structurally-zero location must be rejected
        absent = None
        for I in range(part.N - 1, 0, -1):
            for J in range(I):
                if not bstruct.has_l(I, J):
                    absent = (I, J)
                    break
            if absent:
                break
        if absent is None:
            pytest.skip("full structure")
        bad = coo_to_csr(om.n, om.n, [part.start(absent[0])],
                         [part.start(absent[1])], [1.0])
        with pytest.raises(StructureViolation):
            PackedLUMatrix.from_csr(bad, part, bstruct)


class TestApiBackend:
    def test_packed_via_solver(self):
        A = get_matrix("saylr4", "small")
        sb = SStarSolver(backend="blocks").factor(A)
        sp = SStarSolver(backend="packed").factor(A)
        b = np.arange(A.nrows, dtype=float)
        assert np.allclose(sb.solve(b), sp.solve(b), rtol=1e-9)

    def test_unknown_backend(self):
        A = get_matrix("orsreg1", "small")
        with pytest.raises(ValueError, match="backend"):
            SStarSolver(backend="bogus").factor(A)
