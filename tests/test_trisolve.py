"""Distributed 1D triangular solves."""

import numpy as np
import pytest

from repro.machine import T3E
from repro.matrices import random_nonsymmetric, get_matrix
from repro.numfact import LUFactorization
from repro.ordering import prepare_matrix
from repro.parallel import run_1d, run_1d_trisolve
from repro.sparse import csr_to_dense
from repro.supernodes import build_block_structure, build_partition
from repro.symbolic import static_symbolic_factorization


def kernel_flops(sim, kernel):
    return sum(v for (k, _), v in sim.total_counter().by_gran.items()
               if k == kernel)


@pytest.fixture(scope="module")
def factored():
    A = random_nonsymmetric(90, density=0.07, seed=71)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=6, amalgamation=4)
    bstruct = build_block_structure(sym, part)
    res = run_1d(om.A, part, bstruct, 4, T3E, method="rapid")
    lu = LUFactorization(res.factor, sym, part, bstruct, res.sim.total_counter())
    return om, lu, res


class TestCorrectness:
    def test_bitwise_equal_to_sequential(self, factored):
        om, lu, res = factored
        b = np.sin(np.arange(om.n) + 1.0)
        tri = run_1d_trisolve(lu, res.schedule.owner, b, 4, T3E)
        assert np.array_equal(tri.x, lu.solve(b))

    def test_residual_small(self, factored):
        om, lu, res = factored
        b = np.ones(om.n)
        tri = run_1d_trisolve(lu, res.schedule.owner, b, 4, T3E)
        D = csr_to_dense(om.A)
        assert np.linalg.norm(D @ tri.x - b) / np.linalg.norm(b) < 1e-10

    @pytest.mark.parametrize("nprocs", [1, 2, 3, 8])
    def test_other_processor_counts(self, nprocs):
        A = random_nonsymmetric(60, density=0.1, seed=72)
        om = prepare_matrix(A)
        sym = static_symbolic_factorization(om.A)
        part = build_partition(sym, max_size=5, amalgamation=3)
        bstruct = build_block_structure(sym, part)
        res = run_1d(om.A, part, bstruct, nprocs, T3E, method="ca")
        lu = LUFactorization(res.factor, sym, part, bstruct, res.sim.total_counter())
        b = np.arange(60.0) - 30.0
        tri = run_1d_trisolve(lu, res.schedule.owner, b, nprocs, T3E)
        assert np.array_equal(tri.x, lu.solve(b))

    def test_rhs_shape_validated(self, factored):
        om, lu, res = factored
        with pytest.raises(ValueError, match=r"got \(3,\)"):
            run_1d_trisolve(lu, res.schedule.owner, np.ones(3), 4, T3E)
        with pytest.raises(ValueError, match=r"got \(90, 2, 2\)"):
            run_1d_trisolve(lu, res.schedule.owner, np.ones((90, 2, 2)), 4, T3E)

    def test_multi_rhs_bitwise_equal(self, factored):
        om, lu, res = factored
        B = np.column_stack(
            [np.sin(np.arange(om.n) + 1.0 + j) for j in range(5)]
        )
        tri = run_1d_trisolve(lu, res.schedule.owner, B, 4, T3E)
        assert tri.x.shape == (om.n, 5)
        # the distributed block solve matches the sequential block solve
        # bit for bit; individual columns only match vector solves to
        # rounding (dgemm vs dgemv accumulation order)
        assert np.array_equal(tri.x, lu.solve(B))
        for j in range(5):
            single = run_1d_trisolve(lu, res.schedule.owner, B[:, j], 4, T3E)
            assert np.allclose(tri.x[:, j], single.x, atol=1e-12)

    def test_single_column_block(self, factored):
        om, lu, res = factored
        b = np.cos(np.arange(om.n))
        tri = run_1d_trisolve(lu, res.schedule.owner, b[:, None], 4, T3E)
        assert tri.x.shape == (om.n, 1)
        assert np.array_equal(tri.x[:, 0], lu.solve(b))

    def test_multi_rhs_uses_gemm_accounting(self, factored):
        om, lu, res = factored
        B = np.ones((om.n, 4))
        tri = run_1d_trisolve(lu, res.schedule.owner, B, 4, T3E)
        assert kernel_flops(tri.sim, "dgemm") > 0.0
        single = run_1d_trisolve(lu, res.schedule.owner, B[:, 0], 4, T3E)
        assert kernel_flops(single.sim, "dgemm") == 0.0
        assert kernel_flops(single.sim, "dgemv") > 0.0


class TestCost:
    def test_solve_much_cheaper_than_factor(self):
        """The paper: 'the triangular solvers are much less time consuming
        than the Gaussian elimination process'."""
        A = get_matrix("sherman5", "small")
        om = prepare_matrix(A)
        sym = static_symbolic_factorization(om.A)
        part = build_partition(sym, max_size=25, amalgamation=4)
        bstruct = build_block_structure(sym, part)
        res = run_1d(om.A, part, bstruct, 4, T3E, method="rapid")
        lu = LUFactorization(res.factor, sym, part, bstruct, res.sim.total_counter())
        tri = run_1d_trisolve(lu, res.schedule.owner, np.ones(om.n), 4, T3E)
        assert tri.parallel_seconds < res.parallel_seconds

    def test_messages_counted(self, factored):
        om, lu, res = factored
        tri = run_1d_trisolve(lu, res.schedule.owner, np.ones(om.n), 4, T3E)
        assert tri.sim.messages > 0


class TestTriSolve2D:
    """Distributed 2D triangular solves (grid mapping)."""

    @pytest.mark.parametrize("grid", [(1, 2), (2, 2), (2, 4), (4, 2)])
    def test_bitwise_equal_to_sequential(self, grid):
        from repro.parallel import Grid2D, run_2d, run_2d_trisolve

        A = random_nonsymmetric(80, density=0.08, seed=75)
        om = prepare_matrix(A)
        sym = static_symbolic_factorization(om.A)
        part = build_partition(sym, max_size=6, amalgamation=3)
        bstruct = build_block_structure(sym, part)
        g = Grid2D(*grid)
        res = run_2d(om.A, part, bstruct, g.nprocs, T3E, grid=g)
        lu = LUFactorization(res.factor, sym, part, bstruct,
                             res.sim.total_counter())
        b = np.cos(np.arange(80.0))
        tri = run_2d_trisolve(lu, b, g.nprocs, T3E, grid=g)
        assert np.array_equal(tri.x, lu.solve(b))

    def test_multi_rhs_bitwise_equal(self):
        from repro.parallel import Grid2D, run_2d, run_2d_trisolve

        A = random_nonsymmetric(80, density=0.08, seed=75)
        om = prepare_matrix(A)
        sym = static_symbolic_factorization(om.A)
        part = build_partition(sym, max_size=6, amalgamation=3)
        bstruct = build_block_structure(sym, part)
        g = Grid2D(2, 2)
        res = run_2d(om.A, part, bstruct, g.nprocs, T3E, grid=g)
        lu = LUFactorization(res.factor, sym, part, bstruct,
                             res.sim.total_counter())
        B = np.column_stack([np.cos(np.arange(80.0) + j) for j in range(3)])
        tri = run_2d_trisolve(lu, B, g.nprocs, T3E, grid=g)
        assert tri.x.shape == (80, 3)
        assert np.array_equal(tri.x, lu.solve(B))
        assert kernel_flops(tri.sim, "dgemm") > 0.0

    def test_rhs_validated(self):
        from repro.parallel import Grid2D, run_2d, run_2d_trisolve

        A = random_nonsymmetric(40, density=0.1, seed=76)
        om = prepare_matrix(A)
        sym = static_symbolic_factorization(om.A)
        part = build_partition(sym, max_size=5, amalgamation=2)
        bstruct = build_block_structure(sym, part)
        res = run_2d(om.A, part, bstruct, 4, T3E)
        lu = LUFactorization(res.factor, sym, part, bstruct,
                             res.sim.total_counter())
        with pytest.raises(ValueError, match="rhs"):
            run_2d_trisolve(lu, np.ones(3), 4, T3E)

    def test_grid_mismatch(self):
        from repro.parallel import Grid2D, run_2d, run_2d_trisolve

        A = random_nonsymmetric(40, density=0.1, seed=77)
        om = prepare_matrix(A)
        sym = static_symbolic_factorization(om.A)
        part = build_partition(sym, max_size=5, amalgamation=2)
        bstruct = build_block_structure(sym, part)
        res = run_2d(om.A, part, bstruct, 4, T3E)
        lu = LUFactorization(res.factor, sym, part, bstruct,
                             res.sim.total_counter())
        with pytest.raises(ValueError, match="grid"):
            run_2d_trisolve(lu, np.ones(40), 8, T3E, grid=Grid2D(2, 2))
