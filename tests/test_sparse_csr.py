"""Unit tests for the CSR substrate."""

import numpy as np
import pytest

from repro.sparse import CSRMatrix, coo_to_csr, csr_to_dense, dense_to_csr


def small():
    # [[1, 0, 2],
    #  [0, 3, 0],
    #  [4, 0, 5]]
    return coo_to_csr(3, 3, [0, 0, 1, 2, 2], [0, 2, 1, 0, 2], [1, 2, 3, 4, 5])


class TestBasics:
    def test_shape_nnz(self):
        A = small()
        assert A.shape == (3, 3)
        assert A.nnz == 5

    def test_row_access(self):
        A = small()
        cols, vals = A.row(0)
        assert cols.tolist() == [0, 2]
        assert vals.tolist() == [1.0, 2.0]

    def test_get(self):
        A = small()
        assert A.get(0, 2) == 2.0
        assert A.get(0, 1) == 0.0
        assert A.get(2, 2) == 5.0

    def test_has_entry(self):
        A = small()
        assert A.has_entry(1, 1)
        assert not A.has_entry(1, 0)

    def test_diagonal(self):
        A = small()
        assert A.diagonal().tolist() == [1.0, 3.0, 5.0]

    def test_zero_free_diagonal(self):
        A = small()
        assert A.has_zero_free_diagonal()
        B = coo_to_csr(2, 2, [0, 1], [1, 0], [1.0, 1.0])
        assert not B.has_zero_free_diagonal()

    def test_default_data_is_ones(self):
        A = CSRMatrix(2, 2, [0, 1, 2], [0, 1])
        assert A.data.tolist() == [1.0, 1.0]

    def test_copy_independent(self):
        A = small()
        B = A.copy()
        B.data[0] = 99.0
        assert A.data[0] == 1.0

    def test_with_values(self):
        A = small()
        B = A.with_values(A.data * 2.0)
        assert np.array_equal(B.indptr, A.indptr)
        assert np.array_equal(B.indices, A.indices)
        assert np.array_equal(B.data, A.data * 2.0)
        B.data[0] = 99.0  # fresh arrays, original untouched
        assert A.data[0] == 1.0
        with pytest.raises(ValueError, match="values"):
            A.with_values(np.ones(A.nnz + 1))


class TestValidation:
    def test_bad_indptr_length(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRMatrix(3, 3, [0, 1], [0], [1.0])

    def test_indices_data_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            CSRMatrix(1, 3, [0, 2], [0, 1], [1.0])

    def test_indptr_span(self):
        with pytest.raises(ValueError, match="span"):
            CSRMatrix(1, 3, [0, 5], [0, 1], [1.0, 2.0])


class TestPermute:
    def test_row_permutation(self):
        A = small()
        P = A.permute(row_perm=[2, 0, 1])
        D = csr_to_dense(A)
        assert np.array_equal(csr_to_dense(P), D[[2, 0, 1], :])

    def test_col_permutation(self):
        A = small()
        P = A.permute(col_perm=[1, 2, 0])
        D = csr_to_dense(A)
        assert np.array_equal(csr_to_dense(P), D[:, [1, 2, 0]])

    def test_both(self):
        A = small()
        P = A.permute(row_perm=[1, 2, 0], col_perm=[2, 0, 1])
        D = csr_to_dense(A)
        assert np.array_equal(csr_to_dense(P), D[[1, 2, 0], :][:, [2, 0, 1]])

    def test_identity(self):
        A = small()
        P = A.permute()
        assert np.array_equal(csr_to_dense(P), csr_to_dense(A))


class TestDenseBridges:
    def test_roundtrip(self, rng):
        D = rng.uniform(-1, 1, size=(7, 5))
        D[np.abs(D) < 0.4] = 0.0
        A = dense_to_csr(D)
        assert np.array_equal(csr_to_dense(A), D)

    def test_drop_tol(self):
        D = np.array([[0.1, 1.0], [2.0, 0.05]])
        A = dense_to_csr(D, drop_tol=0.5)
        assert A.nnz == 2
