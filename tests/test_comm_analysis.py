"""Communication-volume analysis and the delayed-pivoting aggregation."""

import pytest

from repro.analysis.comm import (
    CommReport,
    comm_report_from_envs,
    predicted_1d_volume,
)
from repro.machine import Simulator, T3E
from repro.matrices import get_matrix
from repro.ordering import prepare_matrix
from repro.parallel import run_1d
from repro.scheduling import graph_schedule
from repro.supernodes import build_block_structure, build_partition
from repro.symbolic import static_symbolic_factorization
from repro.taskgraph import build_task_graph


@pytest.fixture(scope="module")
def pipeline():
    A = get_matrix("sherman5", "small")
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=8, amalgamation=4)
    bstruct = build_block_structure(sym, part)
    tg = build_task_graph(bstruct)
    return om, part, bstruct, tg


class TestCommReport:
    def test_mean_message_size(self):
        r = CommReport(4, 4096, [2, 2], [2048, 2048])
        assert r.mean_message_bytes == 1024
        assert r.imbalance() == pytest.approx(1.0)

    def test_imbalance(self):
        r = CommReport(2, 300, [1, 1], [100, 200])
        assert r.imbalance() == pytest.approx(200 / 150)

    def test_empty(self):
        r = CommReport(0, 0, [], [])
        assert r.mean_message_bytes == 0.0
        assert r.imbalance() == 1.0

    def test_from_envs(self):
        def prog(env):
            if env.rank == 0:
                env.send(1, "x", 1.0)
            else:
                yield env.recv("x")

        sim = Simulator(2, T3E, prog)
        sim.run()
        rep = comm_report_from_envs(sim.envs)
        assert rep.messages == 1
        assert rep.per_rank_messages[0] == 1


class TestPredictedVolume:
    def test_matches_actual_rapid_bytes(self, pipeline):
        """The 1D RAPID executor must move exactly the predicted factor-
        column bytes (delayed pivoting aggregates everything else away)."""
        om, part, bstruct, tg = pipeline
        sched = graph_schedule(tg, 4, T3E)
        predicted = predicted_1d_volume(tg, sched)
        res = run_1d(om.A, part, bstruct, 4, T3E, method="rapid", tg=tg)
        # the executor sizes messages with FactoredColumn.nbytes(), which
        # counts the same panels plus small pivot metadata
        assert res.sim.bytes_sent == pytest.approx(predicted, rel=0.25)

    def test_single_proc_zero(self, pipeline):
        om, part, bstruct, tg = pipeline
        sched = graph_schedule(tg, 1, T3E)
        assert predicted_1d_volume(tg, sched) == 0
