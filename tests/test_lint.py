"""The repro.lint analyzers: seeded-bug corpus + clean near-misses.

Each seeded-bug test injects exactly one defect of one rule's class into a
toy snippet and asserts the rule fires at the right line; each is paired
with a near-miss snippet that is semantically adjacent but clean, so the
false-positive surface is pinned down too.  The sanitizer tests drive
``Simulator(sanitize=True)`` with a genuinely mutated payload and assert
the typed error (and the MUTATE trace rule) fire.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.lint import (
    RULES,
    Severity,
    count_at_or_above,
    lint_paths,
    lint_source,
    max_severity,
    render_json,
    render_text,
)
from repro.machine import GENERIC, PayloadMutationError, Simulator
from repro.verify import check_messages


def rules_of(findings):
    return [f.rule for f in findings]


def lint_rules(src, **kw):
    return rules_of(lint_source(src, **kw))


# ---------------------------------------------------------------------------
# framework: registry, severities, suppression, rendering
# ---------------------------------------------------------------------------


class TestFramework:
    def test_registry_has_all_rules(self):
        for rule in ["D101", "D102", "D103", "D104", "D105", "D106",
                     "Z201", "Z202"]:
            assert rule in RULES
        assert RULES["D103"].severity == Severity.ERROR
        assert RULES["Z201"].severity == Severity.ERROR
        assert RULES["Z202"].severity == Severity.WARNING

    def test_suppression_single_rule(self):
        src = (
            "def f():\n"
            "    s = {1, 2}\n"
            "    for x in s:  # lint: disable=D101\n"
            "        print(x)\n"
        )
        assert lint_rules(src) == []

    def test_suppression_all(self):
        src = (
            "def f():\n"
            "    s = {1, 2}\n"
            "    for x in s:  # lint: disable\n"
            "        print(x)\n"
        )
        assert lint_rules(src) == []

    def test_suppression_other_rule_does_not_mask(self):
        src = (
            "def f():\n"
            "    s = {1, 2}\n"
            "    for x in s:  # lint: disable=Z201\n"
            "        print(x)\n"
        )
        assert lint_rules(src) == ["D101"]

    def test_severity_aggregation(self):
        src = (
            "import random\n"
            "def f():\n"
            "    s = {1, 2}\n"
            "    for x in s:\n"
            "        random.random()\n"
        )
        findings = lint_source(src)
        assert max_severity(findings) == Severity.ERROR
        assert count_at_or_above(findings, Severity.ERROR) >= 1
        assert count_at_or_above(findings, Severity.NOTE) == len(findings)

    def test_render_text_and_json(self):
        src = "def f():\n    for x in {1}:\n        print(x)\n"
        findings = lint_source(src, path="toy.py")
        text = render_text(findings)
        assert "toy.py:2" in text and "D101" in text
        doc = json.loads(render_json(findings, fail_on="warning"))
        assert doc["counts"]["warning"] == 1
        assert doc["failures"] == 1
        assert doc["findings"][0]["rule"] == "D101"
        assert "D101" in doc["rules"]

    def test_parse_error_is_a_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        findings = lint_paths([bad])
        assert rules_of(findings) == ["PARSE"]
        assert findings[0].severity == Severity.ERROR


# ---------------------------------------------------------------------------
# determinism pass: D101..D106
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_d101_set_iteration(self):
        src = "def f(xs):\n    s = set(xs)\n    for x in s:\n        print(x)\n"
        findings = lint_source(src)
        assert rules_of(findings) == ["D101"]
        assert findings[0].line == 3

    def test_d101_clean_sorted_iteration(self):
        src = (
            "def f(xs):\n"
            "    s = set(xs)\n"
            "    for x in sorted(s):\n"
            "        print(x)\n"
        )
        assert lint_rules(src) == []

    def test_d101_clean_membership_and_reducers(self):
        src = (
            "def f(xs):\n"
            "    s = set(xs)\n"
            "    n = len(s)\n"
            "    lo = min(s)\n"
            "    ok = 3 in s\n"
            "    return n, lo, ok\n"
        )
        assert lint_rules(src) == []

    def test_d101_comprehension_over_set(self):
        src = "def f(xs):\n    s = frozenset(xs)\n    return [x + 1 for x in s]\n"
        assert lint_rules(src) == ["D101"]

    def test_d101_sorted_comprehension_clean(self):
        src = "def f(xs):\n    s = set(xs)\n    return sorted(x for x in s)\n"
        assert lint_rules(src) == []

    def test_d102_dict_keyed_from_set_iteration(self):
        src = (
            "def f(xs):\n"
            "    d = {}\n"
            "    for k in set(xs):\n"
            "        d[k] = 0\n"
            "    out = []\n"
            "    for k in d:\n"
            "        out.append(k)\n"
            "    return out\n"
        )
        rules = lint_rules(src)
        assert "D102" in rules  # the second loop
        assert "D101" in rules  # the first loop is itself unordered

    def test_d102_clean_insertion_ordered_dict(self):
        src = (
            "def f(xs):\n"
            "    d = {}\n"
            "    for k in xs:\n"
            "        d[k] = 0\n"
            "    return [k for k in d]\n"
        )
        assert lint_rules(src) == []

    def test_d103_module_level_rng(self):
        src = "import random\ndef f():\n    return random.random()\n"
        assert lint_rules(src) == ["D103"]

    def test_d103_numpy_global_rng(self):
        src = "import numpy as np\ndef f():\n    return np.random.rand(3)\n"
        assert lint_rules(src) == ["D103"]

    def test_d103_unseeded_default_rng(self):
        src = (
            "import numpy as np\n"
            "def f():\n"
            "    return np.random.default_rng()\n"
        )
        assert lint_rules(src) == ["D103"]

    def test_d103_clean_seeded_rng(self):
        src = (
            "import numpy as np\n"
            "def f(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng\n"
        )
        assert lint_rules(src) == []

    def test_d104_wall_clock_in_generator_is_warning(self):
        src = (
            "import time\n"
            "def prog(env):\n"
            "    t0 = time.perf_counter()\n"
            "    yield env.recv(('x', 0))\n"
        )
        findings = lint_source(src)
        assert rules_of(findings) == ["D104"]
        assert findings[0].severity == Severity.WARNING

    def test_d104_wall_clock_in_host_code_is_note(self):
        src = "import time\ndef bench():\n    return time.perf_counter()\n"
        findings = lint_source(src)
        assert rules_of(findings) == ["D104"]
        assert findings[0].severity == Severity.NOTE

    def test_d105_id_keyed_iteration(self):
        src = (
            "def f(xs):\n"
            "    d = {}\n"
            "    for x in xs:\n"
            "        d[id(x)] = x\n"
            "    return [d[k] for k in d]\n"
        )
        assert lint_rules(src) == ["D105"]

    def test_d105_clean_id_keyed_membership(self):
        src = (
            "def f(xs, y):\n"
            "    d = {}\n"
            "    for x in xs:\n"
            "        d[id(x)] = x\n"
            "    return id(y) in d\n"
        )
        assert lint_rules(src) == []

    def test_d106_sum_over_set(self):
        src = "def f(xs):\n    s = set(xs)\n    return sum(s)\n"
        assert "D106" in lint_rules(src)

    def test_d106_accumulation_from_set_iteration(self):
        src = (
            "def f(xs):\n"
            "    acc = 0.0\n"
            "    for x in set(xs):\n"
            "        acc += x\n"
            "    return acc\n"
        )
        assert "D106" in lint_rules(src)

    def test_d106_clean_fsum(self):
        src = "import math\ndef f(xs):\n    s = set(xs)\n    return math.fsum(s)\n"
        assert lint_rules(src) == []

    def test_d106_clean_sum_over_sorted(self):
        src = "def f(xs):\n    s = set(xs)\n    return sum(sorted(s))\n"
        assert lint_rules(src) == []


# ---------------------------------------------------------------------------
# aliasing pass: Z201 / Z202
# ---------------------------------------------------------------------------


class TestAliasing:
    def test_z201_write_after_send(self):
        src = (
            "import numpy as np\n"
            "def prog(env):\n"
            "    buf = np.zeros(4)\n"
            "    env.send(1, ('t', 0), buf)\n"
            "    buf[0] = 1.0\n"
            "    yield env.recv(('u', 0))\n"
        )
        findings = lint_source(src)
        assert rules_of(findings) == ["Z201"]
        assert findings[0].line == 5
        assert "line 4" in findings[0].message

    def test_z201_clean_copy_on_send(self):
        src = (
            "import numpy as np\n"
            "def prog(env):\n"
            "    buf = np.zeros(4)\n"
            "    env.send(1, ('t', 0), buf.copy())\n"
            "    buf[0] = 1.0\n"
            "    yield env.recv(('u', 0))\n"
        )
        assert lint_rules(src) == []

    def test_z201_clean_rebind_kills_alias(self):
        src = (
            "import numpy as np\n"
            "def prog(env):\n"
            "    buf = np.zeros(4)\n"
            "    env.send(1, ('t', 0), buf)\n"
            "    buf = np.zeros(4)\n"
            "    buf[0] = 1.0\n"
            "    yield env.recv(('u', 0))\n"
        )
        assert lint_rules(src) == []

    def test_z201_loop_wraparound(self):
        src = (
            "import numpy as np\n"
            "def prog(env):\n"
            "    buf = np.zeros(4)\n"
            "    for k in range(3):\n"
            "        env.send(1, ('t', k), buf)\n"
            "        buf[0] = k\n"
            "    yield env.recv(('u', 0))\n"
        )
        assert "Z201" in lint_rules(src)

    def test_z201_multicast_payload_in_dict(self):
        src = (
            "import numpy as np\n"
            "def prog(env):\n"
            "    buf = np.zeros(4)\n"
            "    env.multicast([1, 2], ('t', 0), {'b': buf})\n"
            "    buf.fill(1.0)\n"
            "    yield env.recv(('u', 0))\n"
        )
        assert lint_rules(src) == ["Z201"]

    def test_z201_interprocedural_view_helper(self):
        src = (
            "import numpy as np\n"
            "def pack(b):\n"
            "    return b[0]\n"
            "def prog(env):\n"
            "    b = np.zeros((2, 4))\n"
            "    env.send(1, ('t', 0), pack(b))\n"
            "    b[0, 0] = 1.0\n"
            "    yield env.recv(('u', 0))\n"
        )
        assert lint_rules(src) == ["Z201"]

    def test_z201_interprocedural_copy_helper_clean(self):
        src = (
            "import numpy as np\n"
            "def pack(b):\n"
            "    return b[0].copy()\n"
            "def prog(env):\n"
            "    b = np.zeros((2, 4))\n"
            "    env.send(1, ('t', 0), pack(b))\n"
            "    b[0, 0] = 1.0\n"
            "    yield env.recv(('u', 0))\n"
        )
        assert lint_rules(src) == []

    def test_z202_recv_alias_retained_and_mutated(self):
        src = (
            "def prog(env, cache):\n"
            "    msg = yield env.recv(('t', 0))\n"
            "    cache[0] = msg\n"
            "    msg.fill(0.0)\n"
        )
        findings = lint_source(src)
        assert rules_of(findings) == ["Z202"]
        assert findings[0].line == 4

    def test_z202_clean_mutate_without_retention(self):
        src = (
            "def prog(env):\n"
            "    msg = yield env.recv(('t', 0))\n"
            "    msg.fill(0.0)\n"
            "    return msg\n"
        )
        assert lint_rules(src) == []

    def test_z202_clean_retain_without_mutation(self):
        src = (
            "def prog(env, cache):\n"
            "    msg = yield env.recv(('t', 0))\n"
            "    cache[0] = msg\n"
            "    return cache\n"
        )
        assert lint_rules(src) == []

    def test_custom_env_name(self):
        src = (
            "import numpy as np\n"
            "def prog(comm):\n"
            "    buf = np.zeros(4)\n"
            "    comm.send(1, ('t', 0), buf)\n"
            "    buf[0] = 1.0\n"
            "    yield comm.recv(('u', 0))\n"
        )
        assert lint_rules(src) == []  # default handle name is 'env'
        assert lint_rules(src, env_names=("comm",)) == ["Z201"]


# ---------------------------------------------------------------------------
# the codebase itself must be clean (the analyzers' standing regression)
# ---------------------------------------------------------------------------


class TestCodebaseClean:
    def test_src_repro_has_no_warnings_or_errors(self):
        import repro
        from pathlib import Path

        root = Path(repro.__file__).parent
        findings = lint_paths([root])
        bad = [f for f in findings
               if Severity.rank(f.severity) >= Severity.rank(Severity.WARNING)]
        assert bad == [], "\n".join(str(f) for f in bad)


# ---------------------------------------------------------------------------
# dynamic sanitizer: Simulator(sanitize=True)
# ---------------------------------------------------------------------------


def _mutating_program(env):
    if env.rank == 0:
        buf = np.ones(4)
        env.send(1, ("m", 0), buf)
        buf[0] = 99.0  # lint: disable=Z201 -- the seeded write-after-send
    else:
        msg = yield env.recv(("m", 0))
        assert msg[0] == 1.0  # the defensive copy hid the mutation
    yield env.barrier()


def _clean_program(env):
    if env.rank == 0:
        buf = np.ones(4)
        env.send(1, ("m", 0), buf.copy())
        buf[0] = 99.0
    else:
        msg = yield env.recv(("m", 0))
        assert msg[0] == 1.0
    yield env.barrier()


class TestSanitizer:
    def test_write_after_send_raises(self):
        sim = Simulator(2, GENERIC, _mutating_program, sanitize=True)
        with pytest.raises(PayloadMutationError) as ei:
            sim.run()
        err = ei.value
        assert err.src == 0 and err.dest == 1
        assert err.tag == ("m", 0)
        assert "write-after-send" in str(err)

    def test_copy_on_send_is_clean(self):
        Simulator(2, GENERIC, _clean_program, sanitize=True).run()

    def test_sanitize_off_hides_the_bug(self):
        # the defensive deep copy means the run "succeeds" — exactly why
        # the sanitizer exists
        Simulator(2, GENERIC, _mutating_program, sanitize=False).run()

    def test_mutated_record_flagged_in_trace(self):
        sim = Simulator(2, GENERIC, _mutating_program, trace=True,
                        sanitize=True)
        with pytest.raises(PayloadMutationError):
            sim.run()
        mutated = [r for r in sim.trace.records if r.mutated]
        assert len(mutated) == 1
        violations = check_messages(sim.trace, spec=GENERIC)
        assert any(v.rule == "MUTATE" for v in violations)

    def test_undelivered_mutation_detected_at_exit(self):
        def leaky(env):
            if env.rank == 0:
                buf = np.ones(2)
                env.send(1, ("never", 0), buf)
                buf[0] = 7.0  # lint: disable=Z201 -- seeded bug
            yield env.barrier()

        sim = Simulator(2, GENERIC, leaky, sanitize=True)
        with pytest.raises(PayloadMutationError) as ei:
            sim.run()
        assert "the run ended" in str(ei.value)

    def test_dict_payload_mutation_detected(self):
        def prog(env):
            if env.rank == 0:
                blocks = {0: np.ones(3), 1: np.zeros(3)}
                env.send(1, ("d", 0), blocks)
                blocks[1][2] = 5.0  # lint: disable=Z201 -- seeded bug
            else:
                yield env.recv(("d", 0))
            yield env.barrier()

        with pytest.raises(PayloadMutationError):
            Simulator(2, GENERIC, prog, sanitize=True).run()

    def test_sending_span_named_in_error(self):
        def prog(env):
            if env.rank == 0:
                t0 = env.clock
                buf = np.ones(4)
                env.send(1, ("m", 0), buf)
                env.span("F7", t0)
                buf[0] = -1.0  # lint: disable=Z201 -- seeded bug
            else:
                yield env.recv(("m", 0))
            yield env.barrier()

        with pytest.raises(PayloadMutationError) as ei:
            Simulator(2, GENERIC, prog, sanitize=True).run()
        assert ei.value.span == "F7"
        assert "'F7'" in str(ei.value)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def _seeded(self, tmp_path):
        p = tmp_path / "seeded.py"
        p.write_text(
            "def f(xs):\n"
            "    s = set(xs)\n"
            "    for x in s:\n"
            "        print(x)\n"
        )
        return p

    def test_lint_exit_nonzero_at_warning(self, tmp_path, capsys):
        p = self._seeded(tmp_path)
        assert main(["lint", str(p)]) == 1
        out = capsys.readouterr().out
        assert "D101" in out and "1 finding(s)" in out

    def test_lint_fail_on_never(self, tmp_path):
        p = self._seeded(tmp_path)
        assert main(["lint", str(p), "--fail-on=never"]) == 0

    def test_lint_fail_on_error(self, tmp_path):
        p = self._seeded(tmp_path)  # D101 is a warning
        assert main(["lint", str(p), "--fail-on=error"]) == 0

    def test_lint_json(self, tmp_path, capsys):
        p = self._seeded(tmp_path)
        assert main(["lint", str(p), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["failures"] == 1
        assert doc["findings"][0]["rule"] == "D101"

    def test_lint_select(self, tmp_path, capsys):
        p = self._seeded(tmp_path)
        assert main(["lint", str(p), "--select", "Z201"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_lint_clean_file(self, tmp_path, capsys):
        p = tmp_path / "clean.py"
        p.write_text("def f(xs):\n    return sorted(set(xs))\n")
        assert main(["lint", str(p)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_verify_comm_static_json(self, capsys):
        rc = main(["verify-comm", "--all-parallel-modules", "--static-only",
                   "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["ok"] is True
        assert "oned.py" in doc["static"]

    def test_verify_comm_fail_on_threshold(self, tmp_path, capsys):
        bad = tmp_path / "badmod.py"
        bad.write_text(
            "def prog(env):\n"
            "    env.recv(('x', 0))\n"   # Y01: recv not yielded (error)
            "    yield env.barrier()\n"
        )
        rc = main(["verify-comm", "--module", str(bad), "--static-only"])
        assert rc == 1
        assert "Y01" in capsys.readouterr().out
        rc = main(["verify-comm", "--module", str(bad), "--static-only",
                   "--fail-on=never"])
        assert rc == 0
