"""The GEPP oracle and the SuperLU-like dynamic factorization."""

import numpy as np
import pytest

from repro.baselines import dense_gepp, gepp_solve, superlu_like_factor
from repro.matrices import random_nonsymmetric, dense_matrix
from repro.ordering import prepare_matrix
from repro.sparse import csr_to_dense, coo_to_csr


class TestDenseGEPP:
    def test_solve_matches_numpy(self, rng):
        D = rng.uniform(-1, 1, (25, 25)) + 3 * np.eye(25)
        lu, ipiv = dense_gepp(D)
        b = rng.uniform(-1, 1, 25)
        x = gepp_solve(lu, ipiv, b)
        assert np.linalg.norm(D @ x - b) / np.linalg.norm(b) < 1e-12

    def test_reconstruction(self, rng):
        D = rng.uniform(-1, 1, (10, 10)) + np.eye(10)
        lu, ipiv = dense_gepp(D)
        L = np.tril(lu, -1) + np.eye(10)
        U = np.triu(lu)
        P = np.eye(10)
        for k, t in enumerate(ipiv):
            P[[k, t]] = P[[t, k]]
        assert np.allclose(L @ U, P @ D)

    def test_singular_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            dense_gepp(np.zeros((3, 3)))

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError):
            dense_gepp(np.ones((2, 3)))

    def test_pivots_pick_max_abs(self):
        D = np.array([[1.0, 0.0], [-5.0, 1.0]])
        _, ipiv = dense_gepp(D)
        assert ipiv[0] == 1


class TestSuperLULike:
    @pytest.mark.parametrize("seed", range(4))
    def test_solve_matches_numpy(self, seed):
        A = random_nonsymmetric(50, density=0.1, seed=seed)
        om = prepare_matrix(A)
        dyn = superlu_like_factor(om.A)
        D = csr_to_dense(om.A)
        b = np.cos(np.arange(50))
        x = dyn.solve(b)
        assert np.allclose(x, np.linalg.solve(D, b), rtol=1e-8, atol=1e-10)

    def test_pivot_positions_match_dense_gepp(self):
        A = random_nonsymmetric(30, density=0.12, seed=9)
        om = prepare_matrix(A)
        dyn = superlu_like_factor(om.A)
        D = csr_to_dense(om.A)
        _, ipiv = dense_gepp(D)
        # reconstruct dense GEPP's permutation: original row -> position
        n = 30
        rows = list(range(n))
        for k, t in enumerate(ipiv):
            rows[k], rows[t] = rows[t], rows[k]
        perm_dense = np.empty(n, dtype=int)
        perm_dense[rows] = np.arange(n)
        assert np.array_equal(dyn.perm_r, perm_dense)

    def test_factor_entries_at_least_nnz(self):
        A = random_nonsymmetric(40, density=0.08, seed=3)
        om = prepare_matrix(A)
        dyn = superlu_like_factor(om.A)
        assert dyn.factor_entries >= om.A.nnz * 0.8  # fill-in dominates

    def test_dense_case_full_fill(self):
        A = dense_matrix(15, seed=0)
        dyn = superlu_like_factor(A)
        assert dyn.factor_entries == 225

    def test_flops_positive_and_below_dense_bound(self):
        A = random_nonsymmetric(30, density=0.1, seed=5)
        om = prepare_matrix(A)
        dyn = superlu_like_factor(om.A)
        assert 0 < dyn.flops <= (2.0 / 3.0) * 30**3 * 1.5

    def test_random_pivot_rule_still_solves(self):
        A = random_nonsymmetric(30, density=0.15, seed=7)
        om = prepare_matrix(A)
        dyn = superlu_like_factor(om.A, pivot_rule="random")
        D = csr_to_dense(om.A)
        b = np.ones(30)
        # random pivoting is not backward stable; use a loose check
        x = dyn.solve(b)
        assert np.linalg.norm(D @ x - b) / np.linalg.norm(b) < 1e-4

    def test_unknown_rule_rejected(self):
        A = random_nonsymmetric(10, seed=1)
        with pytest.raises(ValueError, match="pivot rule"):
            superlu_like_factor(A, pivot_rule="bogus")

    def test_structurally_singular_detected(self):
        A = coo_to_csr(3, 3, [0, 1, 2], [0, 0, 0], [1.0, 2.0, 3.0])
        with pytest.raises(np.linalg.LinAlgError):
            superlu_like_factor(A)

    def test_u_row_structures_cover_diagonal(self):
        A = random_nonsymmetric(20, density=0.15, seed=8)
        om = prepare_matrix(A)
        dyn = superlu_like_factor(om.A)
        for k, row in enumerate(dyn.u_row_structures()):
            assert row[0] == k

    def test_symbolic_steps_counted(self):
        A = random_nonsymmetric(30, density=0.1, seed=2)
        om = prepare_matrix(A)
        dyn = superlu_like_factor(om.A)
        assert dyn.symbolic_steps > 0
