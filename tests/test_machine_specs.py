"""MachineSpec cost model: granularity efficiency and calibration edges."""

import dataclasses

import pytest

from repro.machine import GENERIC, MachineSpec, T3D, T3E
from repro.machine.specs import REF_GRAN


class TestEfficiencyCurve:
    def test_reference_granularity_is_unity(self):
        for k in ("dgemm", "dgemv", "blas1"):
            assert T3E.efficiency(k, REF_GRAN) == pytest.approx(1.0)

    def test_none_granularity_is_nominal(self):
        assert T3E.efficiency("dgemm", None) == 1.0

    def test_narrow_blocks_derated(self):
        assert T3E.efficiency("dgemm", 2) < 0.5
        assert T3E.efficiency("dgemm", 2) < T3E.efficiency("dgemm", 8)

    def test_dgemm_most_sensitive(self):
        assert T3E.efficiency("dgemm", 2) < T3E.efficiency("dgemv", 2)

    def test_blas1_insensitive(self):
        assert T3D.efficiency("blas1", 1) == 1.0

    def test_monotone_in_granularity(self):
        effs = [T3E.efficiency("dgemm", g) for g in (1, 2, 4, 8, 16, 25, 100)]
        assert all(a <= b for a, b in zip(effs, effs[1:]))

    def test_wide_blocks_can_exceed_reference(self):
        assert T3E.efficiency("dgemm", 200) > 1.0


class TestKernelSeconds:
    def test_mixed_key_forms(self):
        t = T3D.kernel_seconds({"dgemm": 103e6, ("dgemm", 25): 103e6})
        assert t == pytest.approx(2.0, rel=1e-6)

    def test_gran_key_slower_when_narrow(self):
        t_nominal = T3E.kernel_seconds({("dgemm", None): 1e6})
        t_narrow = T3E.kernel_seconds({("dgemm", 2): 1e6})
        assert t_narrow > t_nominal

    def test_empty(self):
        assert T3E.kernel_seconds({}) == 0.0


class TestNetworkModel:
    def test_zero_bytes_is_latency(self):
        assert GENERIC.message_seconds(0) == GENERIC.latency_s

    def test_replace_preserves_frozen(self):
        s2 = dataclasses.replace(T3E, latency_s=9e-6)
        assert s2.latency_s == 9e-6
        assert T3E.latency_s == 1e-6  # original untouched

    def test_barrier_minimum(self):
        assert T3E.barrier_seconds(1) > 0
        assert T3E.barrier_seconds(2) <= T3E.barrier_seconds(1024)


class TestCustomSpec:
    def test_user_defined_machine(self):
        spec = MachineSpec(
            name="toy",
            dgemm_mflops=10.0,
            dgemv_mflops=5.0,
            blas1_mflops=1.0,
            latency_s=1e-3,
            bandwidth_bps=1e6,
        )
        assert spec.compute_seconds("blas1", 1e6) == pytest.approx(1.0)
        assert spec.message_seconds(1e6) == pytest.approx(1.001)

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            T3E.kernel_rate("dtrsv")
