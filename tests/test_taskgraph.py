"""Task DAG construction: rules, weights, b-levels."""

import pytest

from repro.machine import T3E
from repro.matrices import random_nonsymmetric
from repro.ordering import prepare_matrix
from repro.supernodes import build_block_structure, build_partition
from repro.symbolic import static_symbolic_factorization
from repro.taskgraph import FACTOR, UPDATE, build_task_graph


@pytest.fixture(scope="module")
def tg_and_bstruct():
    A = random_nonsymmetric(60, density=0.08, seed=17)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=6, amalgamation=4)
    bstruct = build_block_structure(sym, part)
    return build_task_graph(bstruct), bstruct


class TestConstruction:
    def test_one_factor_per_block(self, tg_and_bstruct):
        tg, bstruct = tg_and_bstruct
        factors = [t for t in tg.tasks if t[0] == FACTOR]
        assert len(factors) == bstruct.N

    def test_update_iff_u_block(self, tg_and_bstruct):
        tg, bstruct = tg_and_bstruct
        updates = {(t[1], t[2]) for t in tg.tasks if t[0] == UPDATE}
        expect = {
            (k, j) for k in range(bstruct.N) for j in bstruct.u_block_cols(k)
        }
        assert updates == expect

    def test_rule1_factor_feeds_updates(self, tg_and_bstruct):
        tg, _ = tg_and_bstruct
        for t in tg.tasks:
            if t[0] == UPDATE:
                assert (FACTOR, t[1]) in tg.pred[t]

    def test_rule2_last_update_feeds_factor(self, tg_and_bstruct):
        tg, bstruct = tg_and_bstruct
        for j in range(bstruct.N):
            ups = [t for t in tg.tasks if t[0] == UPDATE and t[2] == j]
            if ups:
                last = max(ups, key=lambda t: t[1])
                assert (FACTOR, j) in tg.succ[last]

    def test_rule3_updates_chained(self, tg_and_bstruct):
        tg, bstruct = tg_and_bstruct
        for j in range(bstruct.N):
            ups = sorted(
                (t for t in tg.tasks if t[0] == UPDATE and t[2] == j),
                key=lambda t: t[1],
            )
            for a, b in zip(ups, ups[1:]):
                assert b in tg.succ[a]

    def test_topological_enumeration(self, tg_and_bstruct):
        tg, _ = tg_and_bstruct
        index = {t: i for i, t in enumerate(tg.tasks)}
        for t, succs in tg.succ.items():
            for s in succs:
                assert index[t] < index[s]

    def test_dense_update_count(self):
        """For a dense matrix there are N(N-1)/2 update tasks (Section 4.1)."""
        from repro.matrices import dense_matrix

        A = dense_matrix(40, seed=0)
        sym = static_symbolic_factorization(A)
        part = build_partition(sym, max_size=5, amalgamation=0)
        bstruct = build_block_structure(sym, part)
        tg = build_task_graph(bstruct)
        N = part.N
        updates = [t for t in tg.tasks if t[0] == UPDATE]
        assert len(updates) == N * (N - 1) // 2


class TestWeights:
    def test_positive_flops(self, tg_and_bstruct):
        tg, _ = tg_and_bstruct
        for t in tg.tasks:
            kernel, fl, gran = tg.comp[t]
            assert fl >= 0
            assert gran >= 1
            assert kernel in ("dgemv", "dgemm")

    def test_column_bytes_positive(self, tg_and_bstruct):
        tg, bstruct = tg_and_bstruct
        for k in range(bstruct.N):
            assert tg.col_bytes[k] > 0

    def test_blevel_monotone_along_edges(self, tg_and_bstruct):
        tg, _ = tg_and_bstruct
        bl = tg.b_levels(T3E)
        for t, succs in tg.succ.items():
            for s in succs:
                assert bl[t] >= bl[s]

    def test_critical_path_bounds(self, tg_and_bstruct):
        tg, _ = tg_and_bstruct
        cp = tg.critical_path_seconds(T3E)
        serial = sum(tg.seconds(t, T3E) for t in tg.tasks)
        assert 0 < cp <= serial * 1.5  # cp includes comm, serial does not
