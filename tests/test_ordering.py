"""Transversal, minimum degree and the ordering pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.matrices import random_nonsymmetric, stencil_2d
from repro.ordering import (
    is_structurally_nonsingular,
    maximum_transversal,
    minimum_degree,
    prepare_matrix,
)
from repro.sparse import ata_pattern, coo_to_csr, csr_to_dense


class TestTransversal:
    def test_identity_when_diagonal_full(self):
        A = random_nonsymmetric(25, seed=1)  # zero-free diagonal by default
        perm, matched = maximum_transversal(A)
        assert matched == 25
        assert A.permute(row_perm=perm).has_zero_free_diagonal()

    def test_fixes_cyclic_shift(self):
        # matrix with nonzeros only on the superdiagonal cycle
        n = 6
        rows = list(range(n))
        cols = [(i + 1) % n for i in range(n)]
        A = coo_to_csr(n, n, rows, cols, np.ones(n))
        perm, matched = maximum_transversal(A)
        assert matched == n
        assert A.permute(row_perm=perm).has_zero_free_diagonal()

    def test_structurally_singular_detected(self):
        # column 2 is empty
        A = coo_to_csr(3, 3, [0, 1, 2], [0, 1, 0], [1, 1, 1])
        _, matched = maximum_transversal(A)
        assert matched == 2
        assert not is_structurally_nonsingular(A)

    def test_requires_square(self):
        A = coo_to_csr(2, 3, [0], [0], [1.0])
        with pytest.raises(ValueError, match="square"):
            maximum_transversal(A)

    def test_needs_augmenting_paths(self):
        # bipartite pattern where the cheap pass cannot finish:
        # col0: rows {0,1}; col1: rows {0}; cheap assigns row0->col0 then
        # col1 must steal row0 via augmentation.
        A = coo_to_csr(2, 2, [0, 1, 0], [0, 0, 1], [1, 1, 1])
        perm, matched = maximum_transversal(A)
        assert matched == 2
        assert A.permute(row_perm=perm).has_zero_free_diagonal()

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_matches_scipy_matching_size(self, seed):
        pytest.importorskip("scipy")
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import maximum_bipartite_matching

        rng = np.random.default_rng(seed)
        n = 12
        mask = rng.random((n, n)) < 0.15
        rows, cols = np.nonzero(mask)
        A = coo_to_csr(n, n, rows, cols, np.ones(len(rows)))
        _, matched = maximum_transversal(A)
        S = csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))
        ref = int(np.count_nonzero(maximum_bipartite_matching(S, perm_type="row") >= 0))
        assert matched == ref

    def test_permutation_is_valid(self):
        A = random_nonsymmetric(40, density=0.1, seed=5, zero_free_diagonal=False)
        perm, _ = maximum_transversal(A)
        assert sorted(perm.tolist()) == list(range(40))


class TestMinimumDegree:
    def test_returns_permutation(self):
        G = ata_pattern(random_nonsymmetric(30, seed=2))
        res = minimum_degree(G)
        assert sorted(res.perm.tolist()) == list(range(30))

    def test_reduces_fill_on_grid(self):
        from repro.symbolic import static_symbolic_factorization

        A = stencil_2d(9, 9, seed=0)
        om_natural = prepare_matrix(A, use_mindeg=False)
        om_md = prepare_matrix(A, use_mindeg=True)
        f_nat = static_symbolic_factorization(om_natural.A).factor_entries
        f_md = static_symbolic_factorization(om_md.A).factor_entries
        assert f_md < f_nat

    def test_single_elimination_mode(self):
        G = ata_pattern(random_nonsymmetric(15, seed=3))
        res = minimum_degree(G, multiple=False)
        assert sorted(res.perm.tolist()) == list(range(15))


class TestPipeline:
    def test_output_has_zero_free_diagonal(self):
        A = random_nonsymmetric(50, density=0.08, seed=7, zero_free_diagonal=False)
        om = prepare_matrix(A)
        assert om.A.has_zero_free_diagonal()

    def test_permutation_consistency(self):
        A = random_nonsymmetric(30, density=0.15, seed=9)
        om = prepare_matrix(A)
        D = csr_to_dense(A)
        Dp = csr_to_dense(om.A)
        assert np.array_equal(Dp, D[np.ix_(om.row_perm, om.col_perm)])

    def test_rejects_structurally_singular(self):
        A = coo_to_csr(3, 3, [0, 1, 2], [0, 0, 0], [1, 1, 1])
        with pytest.raises(ValueError, match="singular"):
            prepare_matrix(A)

    def test_rejects_rectangular(self):
        A = coo_to_csr(2, 3, [0, 1], [0, 1], [1, 1])
        with pytest.raises(ValueError, match="square"):
            prepare_matrix(A)
