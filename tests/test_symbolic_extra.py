"""Additional symbolic-layer behaviours: density growth, sharing, bounds."""

import numpy as np
import pytest

from repro.matrices import (
    dense_matrix,
    nearly_dense_row,
    random_nonsymmetric,
    stencil_2d,
)
from repro.ordering import prepare_matrix
from repro.sparse import ata_pattern, coo_to_csr
from repro.symbolic import (
    cholesky_ata_structure,
    elimination_tree,
    static_symbolic_factorization,
    elementwise_ops,
)
from repro.symbolic.cholesky_bound import cholesky_factor_entries


class TestEliminationTree:
    def test_matches_bruteforce_on_random(self):
        """etree parent = min row index below diagonal of the Cholesky
        factor's column — check against the symbolic factor itself."""
        A = random_nonsymmetric(25, density=0.15, seed=3)
        pattern = ata_pattern(A)
        parent = elimination_tree(pattern)
        lcol = cholesky_ata_structure(pattern)
        for j in range(25):
            below = [int(i) for i in lcol[j] if i > j]
            expect = min(below) if below else -1
            assert parent[j] == expect, f"column {j}"

    def test_forest_structure(self):
        A = random_nonsymmetric(30, density=0.1, seed=5)
        parent = elimination_tree(ata_pattern(A))
        # parents always point forward (or are roots)
        for j, p in enumerate(parent):
            assert p == -1 or p > j

    def test_diagonal_matrix_all_roots(self):
        A = coo_to_csr(5, 5, range(5), range(5), np.ones(5))
        parent = elimination_tree(ata_pattern(A))
        assert all(p == -1 for p in parent)


class TestPathologies:
    def test_nearly_dense_row_explodes_static_fill(self):
        """The memplus failure mode: overestimation ratio balloons."""
        from repro.baselines import superlu_like_factor

        A = nearly_dense_row(120, row_fill=0.7, seed=3)
        om = prepare_matrix(A)
        sym = static_symbolic_factorization(om.A)
        dyn = superlu_like_factor(om.A)
        ratio = sym.factor_entries / dyn.factor_entries
        B = random_nonsymmetric(120, density=0.02, seed=3)
        omb = prepare_matrix(B)
        symb = static_symbolic_factorization(omb.A)
        dynb = superlu_like_factor(omb.A)
        ratio_normal = symb.factor_entries / dynb.factor_entries
        assert ratio > ratio_normal

    def test_dense_matrix_ops_match_closed_form(self):
        """On a dense matrix the elementwise op count is the classical
        2/3 n^3 + O(n^2)."""
        n = 30
        A = dense_matrix(n, seed=0)
        sym = static_symbolic_factorization(A)
        ops = elementwise_ops(sym.lcol, sym.urow)
        closed = sum((n - k - 1) + 2.0 * (n - k - 1) ** 2 for k in range(n))
        assert ops == pytest.approx(closed)

    def test_grid_fill_well_below_cholesky_bound(self):
        A = stencil_2d(10, 10, seed=2)
        om = prepare_matrix(A)
        sym = static_symbolic_factorization(om.A)
        chol = cholesky_ata_structure(ata_pattern(om.A))
        assert sym.factor_entries < cholesky_factor_entries(chol)


class TestStructureSharing:
    def test_groups_share_after_union(self):
        """Rows merged at a step share one structure object (the efficiency
        trick) — verify via the equality the paper's Theorem 1 needs."""
        A = random_nonsymmetric(40, density=0.12, seed=11)
        om = prepare_matrix(A)
        sym = static_symbolic_factorization(om.A)
        for k in range(om.n):
            trailing = set(sym.urow[k].tolist())
            # every candidate row's final U structure beyond its own pivot
            # position is consistent with the union property: candidates
            # at step k have urow[r] ⊇ (urow[k] restricted to >= r)
            for r in sym.lcol[k]:
                r = int(r)
                if r == k:
                    continue
                mine = set(sym.urow[r].tolist())
                assert {c for c in trailing if c >= r} <= mine
