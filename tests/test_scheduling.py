"""Graph scheduling, compute-ahead, and Gantt replay."""

import numpy as np
import pytest

from repro.machine import T3E
from repro.matrices import random_nonsymmetric
from repro.ordering import prepare_matrix
from repro.scheduling import (
    compute_ahead_schedule,
    demo_unit_weight_charts,
    graph_schedule,
    simulate_schedule,
)
from repro.supernodes import build_block_structure, build_partition
from repro.symbolic import static_symbolic_factorization
from repro.taskgraph import FACTOR, UPDATE, build_task_graph


@pytest.fixture(scope="module")
def tg():
    A = random_nonsymmetric(70, density=0.07, seed=23)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=5, amalgamation=4)
    bstruct = build_block_structure(sym, part)
    return build_task_graph(bstruct)


def _check_schedule(tg, sched, nprocs):
    # every task exactly once
    seen = [t for lst in sched.proc_tasks for t in lst]
    assert sorted(map(str, seen)) == sorted(map(str, tg.tasks))
    # owner-compute: a task runs on the owner of its column
    for p, lst in enumerate(sched.proc_tasks):
        for t in lst:
            assert int(sched.owner[tg.column_of[t]]) == p
    # per-processor order respects the DAG
    for lst in sched.proc_tasks:
        pos = {t: i for i, t in enumerate(lst)}
        for t in lst:
            for s in tg.succ.get(t, ()):
                if s in pos:
                    assert pos[t] < pos[s]


class TestGraphSchedule:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 8])
    def test_valid(self, tg, nprocs):
        sched = graph_schedule(tg, nprocs, T3E)
        _check_schedule(tg, sched, nprocs)

    def test_uses_multiple_processors(self, tg):
        sched = graph_schedule(tg, 4, T3E)
        used = {p for p in sched.owner.tolist()}
        assert len(used) > 1

    def test_makespan_estimate_positive(self, tg):
        sched = graph_schedule(tg, 4, T3E)
        assert sched.makespan_estimate > 0


class TestComputeAhead:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_valid(self, tg, nprocs):
        sched = compute_ahead_schedule(tg, nprocs)
        _check_schedule(tg, sched, nprocs)

    def test_cyclic_ownership(self, tg):
        sched = compute_ahead_schedule(tg, 3)
        assert np.array_equal(sched.owner, np.arange(tg.N) % 3)

    def test_lookahead_ordering(self, tg):
        """Factor(k+1) must immediately follow Update(k, k+1) on its owner."""
        sched = compute_ahead_schedule(tg, 2)
        has_u = {(t[1], t[2]) for t in tg.tasks if t[0] == UPDATE}
        for k in range(tg.N - 1):
            if (k, k + 1) in has_u:
                lst = sched.proc_tasks[int(sched.owner[k + 1])]
                i = lst.index((UPDATE, k, k + 1))
                assert lst[i + 1] == (FACTOR, k + 1)


class TestGanttReplay:
    def test_replay_consistent(self, tg):
        sched = graph_schedule(tg, 4, T3E)
        chart = simulate_schedule(tg, sched, spec=T3E)
        assert chart.makespan > 0
        # intervals do not overlap within a processor
        for row in chart.rows():
            for (_t1, _s1, e1), (_t2, s2, _e2) in zip(row, row[1:]):
                assert e1 <= s2 + 1e-12

    def test_unit_weight_mode(self, tg):
        sched = compute_ahead_schedule(tg, 2)
        chart = simulate_schedule(tg, sched, unit_comp=2.0, unit_comm=1.0)
        lengths = {round(e - s, 9) for _, _, s, e in chart.intervals}
        assert lengths == {2.0}

    def test_makespan_at_least_critical_path(self, tg):
        sched = graph_schedule(tg, 4, T3E)
        chart = simulate_schedule(tg, sched, spec=T3E)
        assert chart.makespan >= tg.critical_path_seconds(T3E) * 0.999

    def test_graph_schedule_competitive_under_unit_weights(self, tg):
        """The Fig. 11 claim: graph scheduling at least stays close to CA
        under unit weights on arbitrary graphs (the benchmark demonstrates a
        strict win on the curated instance; ETF is a heuristic and can lose
        on some graphs)."""
        ca, gs = demo_unit_weight_charts(tg, nprocs=4)
        assert gs.makespan <= ca.makespan * 1.3

    def test_render_ascii(self, tg):
        sched = compute_ahead_schedule(tg, 2)
        chart = simulate_schedule(tg, sched, unit_comp=2.0, unit_comm=1.0)
        text = chart.render(width=40)
        assert "P0:" in text and "makespan" in text
