"""MFLOPS convention, load balance, and the Eq. (1)-(4) model."""

import pytest

from repro.analysis import (
    achieved_mflops,
    load_balance_factor,
    sequential_time_model,
)
from repro.machine import T3D, T3E


class TestMflops:
    def test_formula(self):
        assert achieved_mflops(2e6, 2.0) == pytest.approx(1.0)

    def test_zero_time(self):
        assert achieved_mflops(1.0, 0.0) == float("inf")


class TestLoadBalance:
    def test_perfect_balance(self):
        assert load_balance_factor([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_imbalance(self):
        assert load_balance_factor([9.0, 3.0]) == pytest.approx(12 / 18)

    def test_empty_or_zero(self):
        assert load_balance_factor([]) == 1.0
        assert load_balance_factor([0.0, 0.0]) == 1.0

    def test_bounds(self):
        lb = load_balance_factor([1.0, 2.0, 7.0])
        assert 0.0 < lb <= 1.0


class TestSequentialModel:
    def test_paper_parameters_t3d(self):
        """With the paper's measured parameters (r ~ 0.65, C~/C ~ 3.98,
        h ~ 0.82), Eq. (4) predicts a T3D ratio just below 2 — consistent
        with the Table 2 band where S* runs at most ~2x SuperLU's time on
        the worst matrices while winning on dense ones."""
        m = sequential_time_model(
            T3D, superlu_flops=1.0, sstar_flops=3.98, dgemm_fraction=0.65, h=0.82
        )
        assert 1.5 < m.time_ratio < 2.1

    def test_paper_parameters_t3e(self):
        # the faster DGEMM on T3E pulls the predicted ratio down
        t3d = sequential_time_model(T3D, 1.0, 3.98, 0.65, h=0.82)
        t3e = sequential_time_model(T3E, 1.0, 3.98, 0.65, h=0.82)
        assert t3e.time_ratio < t3d.time_ratio

    def test_dense_case_t3d(self):
        """Dense: r = 1, C~/C = 1 -> ratio = (w3/w2)/(1+h) ~ 0.45-0.48."""
        m = sequential_time_model(
            T3D, superlu_flops=1.0, sstar_flops=1.0, dgemm_fraction=1.0, h=0.82
        )
        assert m.time_ratio == pytest.approx(0.48, abs=0.08)

    def test_dense_case_t3e(self):
        m = sequential_time_model(
            T3E, superlu_flops=1.0, sstar_flops=1.0, dgemm_fraction=1.0, h=0.82
        )
        assert m.time_ratio == pytest.approx(0.42, abs=0.08)

    def test_more_dgemm_is_faster(self):
        lo = sequential_time_model(T3D, 1.0, 2.0, dgemm_fraction=0.2)
        hi = sequential_time_model(T3D, 1.0, 2.0, dgemm_fraction=0.9)
        assert hi.t_sstar < lo.t_sstar

    def test_flop_ratio_recorded(self):
        m = sequential_time_model(T3D, 2.0, 5.0, 0.5)
        assert m.flop_ratio == pytest.approx(2.5)
