"""The ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.matrices import get_matrix
from repro.sparse import write_matrix_market


@pytest.fixture(scope="module")
def mtx_path(tmp_path_factory):
    p = tmp_path_factory.mktemp("cli") / "m.mtx"
    write_matrix_market(p, get_matrix("jpwh991", "small"))
    return str(p)


class TestGenerate:
    def test_writes_file(self, tmp_path, capsys):
        out = tmp_path / "g.mtx"
        assert main(["generate", "orsreg1", "-o", str(out)]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_unknown_name(self, tmp_path, capsys):
        assert main(["generate", "nosuch", "-o", str(tmp_path / "x.mtx")]) == 2


class TestInfo:
    def test_prints_statistics(self, mtx_path, capsys):
        assert main(["info", mtx_path]) == 0
        out = capsys.readouterr().out
        assert "overestimation ratio" in out
        assert "symmetry" in out

    def test_skip_dynamic(self, mtx_path, capsys):
        assert main(["info", mtx_path, "--skip-dynamic"]) == 0
        assert "overestimation" not in capsys.readouterr().out

    def test_alternative_ordering(self, mtx_path, capsys):
        assert main(["info", mtx_path, "--ordering", "mindeg-aplusat"]) == 0


class TestFactor:
    def test_reports(self, mtx_path, capsys):
        assert main(["factor", mtx_path]) == 0
        out = capsys.readouterr().out
        assert "dgemm fraction" in out
        assert "interchanges" in out

    def test_threshold_flag(self, mtx_path, capsys):
        assert main(["factor", mtx_path, "--threshold", "0.5"]) == 0


class TestSolve:
    def test_random_rhs(self, mtx_path, capsys):
        assert main(["solve", mtx_path]) == 0
        out = capsys.readouterr().out
        assert "relative residual" in out

    def test_rhs_file_and_output(self, mtx_path, tmp_path, capsys):
        n = 220
        rhs = tmp_path / "b.txt"
        np.savetxt(rhs, np.ones(n))
        out = tmp_path / "x.txt"
        assert main(["solve", mtx_path, "--rhs", str(rhs), "-o", str(out)]) == 0
        x = np.loadtxt(out)
        assert x.shape == (n,)

    def test_refinement(self, mtx_path, capsys):
        assert main(["solve", mtx_path, "--refine"]) == 0
        assert "refinement backward errors" in capsys.readouterr().out


class TestSimulate:
    @pytest.mark.parametrize("method", ["1d-rapid", "2d"])
    def test_runs(self, mtx_path, method, capsys):
        assert main(["simulate", mtx_path, "--nprocs", "4", "--method", method]) == 0
        out = capsys.readouterr().out
        assert "modeled parallel time" in out


class TestSuite:
    def test_lists_matrices(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "sherman5" in out and "vavasis3" in out


class TestValidate:
    def test_all_checks_pass(self, mtx_path, capsys):
        assert main(["validate", mtx_path, "--nprocs", "4"]) == 0
        out = capsys.readouterr().out
        assert "checks passed" in out
        assert "FAIL" not in out

    def test_skip_parallel(self, mtx_path, capsys):
        assert main(["validate", mtx_path, "--skip-parallel"]) == 0
        out = capsys.readouterr().out
        assert "parallel agreement" not in out

    def test_structurally_singular_fails(self, tmp_path, capsys):
        p = tmp_path / "sing.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "3 3 3\n1 1 1.0\n2 1 1.0\n3 1 1.0\n"
        )
        assert main(["validate", str(p)]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestServeDemo:
    def test_small_workload(self, capsys):
        assert main(
            [
                "serve-demo",
                "--jobs", "6",
                "--workers", "2",
                "--patterns", "1",
                "--burst", "3",
                "--max-queue", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "completed" in out
        assert "hit rate" in out
        assert "worst |Ax-b|" in out

    def test_multi_rhs_jobs(self, capsys):
        assert main(
            ["serve-demo", "--jobs", "4", "--patterns", "1", "--nrhs", "2"]
        ) == 0
        assert "completed" in capsys.readouterr().out


class TestBenchService:
    def test_reports_amortization(self, capsys):
        assert main(
            ["bench-service", "--name", "jpwh991", "--repeats", "1",
             "--nrhs", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "analyze amortization" in out
        assert "multi-RHS" in out


class TestVerifyComm:
    def test_static_only_all_modules(self, capsys):
        assert main(["verify-comm", "--all-parallel-modules", "--static-only"]) == 0
        out = capsys.readouterr().out
        assert "static comm-lint" in out
        assert "PASS" in out

    def test_full_small_run(self, capsys):
        assert main(
            [
                "verify-comm",
                "--n", "60",
                "--block-size", "6",
                "--codes", "1d-rapid",
                "--replays", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "dynamic trace check" in out
        assert "determinism replay" in out
        assert "PASS: 0 violation(s)" in out

    def test_unknown_code_rejected(self, capsys):
        assert main(["verify-comm", "--codes", "nosuch", "--n", "40"]) == 2
