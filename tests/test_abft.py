"""ABFT checksums against silent data corruption.

Acceptance criteria under test:

* clean ABFT runs (sequential, 1D, 2D) stay **bit-identical** to the
  unprotected factorization — the checksums are carried alongside, never
  folded into the numerics;
* every injected single-block corruption in the test corpus — wire
  payloads on the protected tags (``col`` / ``lcol`` / ``urow`` /
  ``swap``), in-memory block flips, and a mid-sweep compute fault — is
  detected (100%), raising a typed :class:`SilentCorruptionError` with
  block coordinates instead of silently poisoning the factor;
* where the inputs still live, recovery is **localized** (recompute the
  poisoned block column) and the recovered solve is bit-identical to the
  clean one; a corrupted-but-acked wire payload (reliable transport with
  frame checksums off) is caught at consumption, and the ``abft.*`` /
  ``sim.faults.*`` counters agree.
"""

import numpy as np
import pytest

from repro.machine import GENERIC, FaultPlan, ReliableDelivery
from repro.machine.faults import CORRUPT, FaultEvent, MessageFaultRule
from repro.matrices import random_nonsymmetric
from repro.numfact import SilentCorruptionError, sstar_factor
from repro.obs import Tracer
from repro.ordering import prepare_matrix
from repro.parallel import run_1d, run_1d_resilient, run_2d, run_2d_resilient
from repro.supernodes import build_block_structure, build_partition
from repro.symbolic import static_symbolic_factorization

N = 90


@pytest.fixture(scope="module")
def p():
    A = random_nonsymmetric(N, density=0.06, seed=31)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=6, amalgamation=4)
    bstruct = build_block_structure(sym, part)
    seq = sstar_factor(om.A, sym=sym, part=part)
    b = np.arange(float(N))
    return dict(om=om, sym=sym, part=part, bstruct=bstruct, seq=seq,
                b=b, x=seq.solve(b))


def _bitwise_equal(a, b):
    return (
        set(a.blocks) == set(b.blocks)
        and a.pivot_seq == b.pivot_seq
        and all(np.array_equal(a.blocks[k], b.blocks[k]) for k in a.blocks)
    )


# ---------------------------------------------------------------------------
# sequential: clean bit-identity, detection, localized recovery
# ---------------------------------------------------------------------------


class TestSequentialAbft:
    def test_clean_run_bit_identical(self, p):
        lu = sstar_factor(p["om"].A, sym=p["sym"], part=p["part"], abft=True)
        assert _bitwise_equal(lu.matrix, p["seq"].matrix)
        assert np.array_equal(lu.solve(p["b"]), p["x"])
        assert lu.abft is not None
        assert lu.abft.detected == 0 and lu.abft.recovered == 0

    def test_inmemory_corruption_detected_and_recovered(self, p):
        lu = sstar_factor(p["om"].A, sym=p["sym"], part=p["part"], abft=True)
        key = sorted(lu.matrix.blocks)[len(lu.matrix.blocks) // 2]
        lu.matrix.blocks[key][0, 0] += 0.5  # silent bit flip
        x = lu.solve(p["b"])  # solve() verifies, recovers, then solves
        assert np.array_equal(x, p["x"])
        assert lu.abft.detected >= 1 and lu.abft.recovered >= 1

    def test_detection_without_recovery_raises_typed(self, p):
        lu = sstar_factor(p["om"].A, sym=p["sym"], part=p["part"], abft=True)
        key = sorted(lu.matrix.blocks)[0]
        lu.matrix.blocks[key][0, 0] *= 1.25
        with pytest.raises(SilentCorruptionError) as ei:
            lu.verify_abft(recover=False)
        assert ei.value.block == key  # coordinates name the poisoned block

    def test_multi_column_corruption_recovers_bitwise(self, p):
        lu = sstar_factor(p["om"].A, sym=p["sym"], part=p["part"], abft=True)
        keys = sorted(lu.matrix.blocks)
        for key in (keys[1], keys[-1]):
            lu.matrix.blocks[key].flat[0] += 3.0
        n = lu.verify_abft()
        assert n >= 2
        assert _bitwise_equal(lu.matrix, p["seq"].matrix)
        assert np.array_equal(lu.solve(p["b"]), p["x"])

    def test_abft_flop_overhead_is_small(self):
        """<15% modeled factor time on the paper's machine at the paper's
        block sizes.  The carry is O(b^2) per O(b^3) GEMM, so the ratio
        scales as 1/b — asserted at paper-scale blocks (b=25, the dense
        supernodes the S* amalgamation targets); the tiny-block sparse
        fixture above has b=6 and proportionally larger overhead (see
        BENCH_abft_overhead.json for the full sweep)."""
        from repro.machine import T3E
        from repro.matrices import dense_matrix
        from repro.numfact import KernelCounter

        A = dense_matrix(150, seed=1)
        om = prepare_matrix(A)
        sym = static_symbolic_factorization(om.A)
        part = build_partition(sym, max_size=25, amalgamation=4)
        c0, c1 = KernelCounter(), KernelCounter()
        lu0 = sstar_factor(om.A, sym=sym, part=part, counter=c0)
        lu1 = sstar_factor(om.A, sym=sym, part=part, counter=c1, abft=True)
        assert _bitwise_equal(lu1.matrix, lu0.matrix)
        t0 = c0.modeled_seconds(T3E)
        t1 = c1.modeled_seconds(T3E)
        assert t1 / t0 - 1.0 < 0.15


# ---------------------------------------------------------------------------
# parallel: clean bit-identity and the wire-corruption corpus
# ---------------------------------------------------------------------------


class TestParallelAbft:
    @pytest.mark.parametrize("method", ["rapid", "ca"])
    def test_1d_clean_abft_bit_identical(self, p, method):
        res = run_1d(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                     method=method, abft=True)
        assert _bitwise_equal(res.factor, p["seq"].matrix)

    @pytest.mark.parametrize("synchronous", [False, True])
    def test_2d_clean_abft_bit_identical(self, p, synchronous):
        res = run_2d(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                     synchronous=synchronous, abft=True)
        assert _bitwise_equal(res.factor, p["seq"].matrix)

    # the protected payload corpus: every block-payload tag of both codes
    CORPUS = [("1d", "col"), ("2d", "lcol"), ("2d", "urow"), ("2d", "swap")]

    @pytest.mark.parametrize("mode,tag", CORPUS)
    def test_injected_payload_corruption_always_detected(self, p, mode, tag):
        """100% detection: every run that injected a corruption raises."""
        detected_runs = injected_runs = 0
        for seed in range(6):
            plan = FaultPlan(
                rules=[MessageFaultRule(CORRUPT, rate=0.3,
                                        tag_prefix=(tag,))],
                seed=seed)
            tr = Tracer()
            raised = False
            try:
                if mode == "1d":
                    run_1d(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                           method="ca", abft=True,
                           sim_opts={"tracer": tr, "faults": plan})
                else:
                    run_2d(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                           abft=True,
                           sim_opts={"tracer": tr, "faults": plan})
            except SilentCorruptionError:
                raised = True
            injected = tr.metrics.counter("sim.faults.corrupted").value
            if injected:
                injected_runs += 1
                assert raised, (
                    f"{mode}/{tag} seed {seed}: {injected:g} corruptions "
                    f"injected but none detected")
                detected_runs += 1
            else:
                assert not raised
        assert injected_runs >= 3  # the corpus actually exercised the tag
        assert detected_runs == injected_runs

    def test_corrupted_but_acked_payload_caught(self, p):
        """Reliable transport with frame checksums OFF acks a corrupted
        frame as delivered; ABFT must still catch it, and the metrics
        agree: one injected corruption, one detection, no retransmit."""
        base = run_1d(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                      method="ca", sim_opts={"trace": True})
        msg = next(m for m in base.sim.trace.records
                   if isinstance(m.tag, tuple) and m.tag[0] == "col")
        plan = FaultPlan(events=[
            FaultEvent(CORRUPT, msg.src, msg.dest, msg.tag)])
        tr = Tracer()
        with pytest.raises(SilentCorruptionError) as ei:
            run_1d(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                   method="ca", abft=True,
                   sim_opts={"tracer": tr, "faults": plan,
                             "reliable": ReliableDelivery(checksum=False)})
        assert "payload:col" in ei.value.where
        m = tr.metrics
        assert m.counter("sim.faults.corrupted").value == 1
        assert m.counter("abft.detected").value == 1
        assert m.counter("sim.retransmits").value == 0  # acked, not retried

    def test_transport_checksums_mask_corruption(self, p):
        """With frame checksums ON the NIC discards and retries — the
        same plan completes bit-identically and ABFT never fires."""
        plan = FaultPlan(
            rules=[MessageFaultRule(CORRUPT, rate=0.3, tag_prefix=("col",))],
            seed=2)
        tr = Tracer()
        res = run_1d(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                     method="ca", abft=True,
                     sim_opts={"tracer": tr, "faults": plan,
                               "reliable": ReliableDelivery()})
        assert res.sim.fault_stats.corrupted >= 1
        assert res.sim.fault_stats.retransmits >= 1
        assert tr.metrics.counter("abft.detected").value == 0
        assert _bitwise_equal(res.factor, p["seq"].matrix)


# ---------------------------------------------------------------------------
# checkpoint/restart fallback: corrupted round replays from the checkpoint
# ---------------------------------------------------------------------------


class TestResilientAbft:
    @pytest.mark.parametrize("runner", [run_1d_resilient, run_2d_resilient])
    def test_corruption_discards_round_and_recovers(self, p, runner):
        plan = FaultPlan(
            rules=[MessageFaultRule(CORRUPT, rate=0.25)], seed=4)
        tr = Tracer()
        res = runner(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                     faults=plan, reliable=ReliableDelivery(checksum=False),
                     abft=True, sim_opts={"tracer": tr})
        assert _bitwise_equal(res.factor, p["seq"].matrix)
        aborted = [r for r in res.rounds if not r.ok and r.corrupted]
        assert aborted, "no round was discarded for corruption"
        assert tr.metrics.counter("abft.recovered").value == len(aborted)
