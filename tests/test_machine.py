"""The discrete-event SPMD simulator and machine specs."""

import numpy as np
import pytest

from repro.machine import (
    DeadlockError,
    GENERIC,
    Simulator,
    T3D,
    T3E,
)


class TestSpecs:
    def test_paper_calibration(self):
        assert T3D.dgemm_mflops == 103.0 and T3D.dgemv_mflops == 85.0
        assert T3E.dgemm_mflops == 388.0 and T3E.dgemv_mflops == 255.0
        assert T3D.bandwidth_bps == 126e6

    def test_kernel_seconds(self):
        s = T3D.kernel_seconds({"dgemm": 103e6})
        assert s == pytest.approx(1.0)

    def test_message_seconds(self):
        t = T3D.message_seconds(126e6)
        assert t == pytest.approx(1.0 + 2.7e-6)

    def test_barrier_grows_with_procs(self):
        assert T3E.barrier_seconds(64) > T3E.barrier_seconds(4)


def run(nprocs, program, spec=GENERIC):
    return Simulator(nprocs, spec, program).run()


class TestCompute:
    def test_clock_advances(self):
        def prog(env):
            env.compute("dgemm", GENERIC.dgemm_mflops * 1e6)  # 1 second
            return env.clock
            yield  # pragma: no cover - makes it a generator

        res = run(1, prog)
        assert res.total_time == pytest.approx(1.0)
        assert res.rank_busy[0] == pytest.approx(1.0)

    def test_counter_tallied(self):
        def prog(env):
            env.compute("dgemv", 500.0)
            return None
            yield  # pragma: no cover

        res = run(2, prog)
        assert res.total_counter().flops["dgemv"] == 1000.0


class TestMessaging:
    def test_latency_bandwidth_math(self):
        payload = np.zeros(125_000)  # 1 MB

        def prog(env):
            if env.rank == 0:
                env.send(1, "x", payload)
            else:
                data = yield env.recv("x")
                assert len(data) == 125_000
            return env.clock

        res = run(2, prog)
        expect = GENERIC.latency_s + 1_000_000 / GENERIC.bandwidth_bps
        assert res.returns[1] == pytest.approx(expect, rel=1e-9)

    def test_receiver_waits_for_arrival(self):
        def prog(env):
            if env.rank == 0:
                env.compute("blas1", GENERIC.blas1_mflops * 1e6)  # 1 s
                env.send(1, "t", 42)
            else:
                v = yield env.recv("t")
                assert v == 42
            return env.clock

        res = run(2, prog)
        assert res.returns[1] > 1.0  # cannot receive before it was sent

    def test_messages_fifo_by_arrival(self):
        def prog(env):
            if env.rank == 0:
                env.send(1, "q", "first")
                env.compute("blas1", GENERIC.blas1_mflops * 1e5)
                env.send(1, "q", "second")
            else:
                a = yield env.recv("q")
                b = yield env.recv("q")
                assert (a, b) == ("first", "second")

        run(2, prog)

    def test_payload_isolated(self):
        arr = np.ones(4)

        def prog(env):
            if env.rank == 0:
                env.send(1, "a", arr)
                arr[:] = -1  # mutate after send: receiver must not see it
            else:
                got = yield env.recv("a")
                assert np.array_equal(got, np.ones(4))

        run(2, prog)

    def test_self_send(self):
        def prog(env):
            env.send(env.rank, "self", 7)
            v = yield env.recv("self")
            assert v == 7

        run(1, prog)

    def test_multicast_skips_self(self):
        def prog(env):
            if env.rank == 0:
                env.multicast([0, 1, 2], "m", "hi")
            if env.rank != 0:
                v = yield env.recv("m")
                assert v == "hi"
            return env.sent_messages

        res = run(3, prog)
        assert res.returns[0] == 2


class TestBarrier:
    def test_synchronises_clocks(self):
        def prog(env):
            env.compute("blas1", GENERIC.blas1_mflops * 1e6 * (env.rank + 1))
            yield env.barrier()
            return env.clock

        res = run(3, prog)
        assert res.returns[0] == res.returns[1] == res.returns[2]
        assert res.returns[0] > 3.0  # slowest rank dominates


class TestDeadlock:
    def test_detected(self):
        def prog(env):
            yield env.recv("never")

        with pytest.raises(DeadlockError, match="never"):
            run(2, prog)

    def test_partial_deadlock_detected(self):
        def prog(env):
            if env.rank == 0:
                yield env.barrier()
            else:
                yield env.recv("missing")

        with pytest.raises(DeadlockError):
            run(2, prog)


class TestDeterminism:
    def test_repeatable(self):
        def make():
            def prog(env):
                rng = np.random.default_rng(env.rank)
                for i in range(5):
                    env.compute("dgemm", float(rng.integers(1, 1000)))
                    env.send((env.rank + 1) % 3, ("ring", i, env.rank), env.clock)
                    yield env.recv(("ring", i, (env.rank - 1) % 3))
                return env.clock

            return prog

        r1 = run(3, make())
        r2 = run(3, make())
        assert r1.rank_clocks == r2.rank_clocks
        assert r1.total_time == r2.total_time


class TestStats:
    def test_load_balance_factor(self):
        def prog(env):
            env.compute("blas1", 1e6 * (1 if env.rank else 3))
            return None
            yield  # pragma: no cover

        res = run(2, prog)
        lb = res.load_balance_factor()
        assert lb == pytest.approx((3 + 1) / (2 * 3), rel=1e-6)

    def test_spans_recorded(self):
        def prog(env):
            t0 = env.clock
            env.compute("blas1", 1e6)
            env.span("work", t0)
            return None
            yield  # pragma: no cover

        res = run(2, prog)
        assert len(res.spans) == 2
        assert all(s.label == "work" for s in res.spans)
