"""Hypothesis property tests over the end-to-end pipeline."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import SStarSolver
from repro.machine import T3E
from repro.matrices import random_nonsymmetric
from repro.numfact import sstar_factor
from repro.ordering import prepare_matrix
from repro.parallel import run_1d, run_2d
from repro.sparse import csr_matvec, csr_to_dense
from repro.supernodes import build_block_structure, build_partition
from repro.symbolic import static_symbolic_factorization


matrix_params = st.tuples(
    st.integers(12, 48),  # n
    st.integers(0, 10_000),  # seed
    st.sampled_from([0.05, 0.1, 0.2]),  # density
)


@given(matrix_params)
@settings(max_examples=25, deadline=None)
def test_end_to_end_solve(params):
    n, seed, density = params
    A = random_nonsymmetric(n, density=density, seed=seed)
    s = SStarSolver(block_size=6).factor(A)
    b = np.arange(1.0, n + 1.0)
    x = s.solve(b)
    r = np.linalg.norm(csr_matvec(A, x) - b) / np.linalg.norm(b)
    assert r < 1e-7


@given(matrix_params)
@settings(max_examples=12, deadline=None)
def test_parallel_codes_bitwise_equal(params):
    n, seed, density = params
    A = random_nonsymmetric(n, density=density, seed=seed)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=5, amalgamation=3)
    bstruct = build_block_structure(sym, part)
    seq = sstar_factor(om.A, sym=sym, part=part)
    r1 = run_1d(om.A, part, bstruct, 3, T3E, method="rapid")
    r2 = run_2d(om.A, part, bstruct, 4, T3E)
    for key, blk in seq.matrix.blocks.items():
        assert np.array_equal(blk, r1.factor.blocks[key])
        assert np.array_equal(blk, r2.factor.blocks[key])


@given(st.integers(8, 40), st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_static_structure_invariants(n, seed):
    A = random_nonsymmetric(n, density=0.12, seed=seed)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    for k in range(n):
        # diagonal present, entries sorted, within range
        assert sym.lcol[k][0] == k
        assert sym.urow[k][0] == k
        assert np.all(np.diff(sym.lcol[k]) > 0)
        assert np.all(np.diff(sym.urow[k]) > 0)
        assert sym.lcol[k][-1] < n and sym.urow[k][-1] < n


@given(st.integers(6, 30), st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_partition_covers_range(n, seed):
    A = random_nonsymmetric(n, density=0.15, seed=seed)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=4, amalgamation=2)
    assert part.bounds[0] == 0 and part.bounds[-1] == n
    assert np.all(np.diff(part.bounds) >= 1)
    # block_of consistent with bounds
    for b in range(part.N):
        assert np.all(part.block_of[part.positions(b)] == b)


@given(st.integers(10, 40), st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_factor_entries_monotone_in_prediction(n, seed):
    """static >= dynamic factor entries, and Cholesky(AtA) >= static."""
    from repro.baselines import superlu_like_factor
    from repro.sparse import ata_pattern
    from repro.symbolic import cholesky_ata_structure
    from repro.symbolic.cholesky_bound import cholesky_factor_entries

    A = random_nonsymmetric(n, density=0.12, seed=seed)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    dyn = superlu_like_factor(om.A)
    chol = cholesky_ata_structure(ata_pattern(om.A))
    assert sym.factor_entries >= dyn.factor_entries
    assert cholesky_factor_entries(chol) >= sym.factor_entries


@given(st.integers(5, 25), st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_solution_matches_numpy(n, seed):
    A = random_nonsymmetric(n, density=0.25, seed=seed)
    D = csr_to_dense(A)
    if abs(np.linalg.det(D)) < 1e-8:
        return  # skip near-singular draws
    s = SStarSolver(block_size=4).factor(A)
    b = np.ones(n)
    assert np.allclose(s.solve(b), np.linalg.solve(D, b), rtol=1e-5, atol=1e-7)


@given(matrix_params)
@settings(max_examples=10, deadline=None)
def test_packed_backend_agrees(params):
    """Property: the packed backend picks the same pivots and produces a
    machine-precision-equal solution for arbitrary random matrices."""
    from repro.numfact import packed_factor

    n, seed, density = params
    A = random_nonsymmetric(n, density=density, seed=seed)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=5, amalgamation=3)
    dense = sstar_factor(om.A, sym=sym, part=part)
    packed = packed_factor(om.A, sym=sym, part=part)
    assert dense.matrix.pivot_seq == packed.matrix.pivot_seq
    b = np.ones(n)
    assert np.allclose(dense.solve(b), packed.solve(b), rtol=1e-8, atol=1e-11)


@given(matrix_params)
@settings(max_examples=8, deadline=None)
def test_distributed_trisolves_bitwise(params):
    """Property: both distributed triangular solvers are bitwise equal to
    the sequential solver for arbitrary matrices and rhs."""
    from repro.numfact import LUFactorization
    from repro.parallel import run_1d_trisolve, run_2d_trisolve

    n, seed, density = params
    A = random_nonsymmetric(n, density=density, seed=seed)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=5, amalgamation=3)
    bstruct = build_block_structure(sym, part)
    r1 = run_1d(om.A, part, bstruct, 3, T3E, method="rapid")
    lu = LUFactorization(r1.factor, sym, part, bstruct, r1.sim.total_counter())
    rng = np.random.default_rng(seed)
    b = rng.uniform(-1, 1, n)
    ref = lu.solve(b)
    t1 = run_1d_trisolve(lu, r1.schedule.owner, b, 3, T3E)
    assert np.array_equal(t1.x, ref)
    r2 = run_2d(om.A, part, bstruct, 4, T3E)
    lu2 = LUFactorization(r2.factor, sym, part, bstruct, r2.sim.total_counter())
    t2 = run_2d_trisolve(lu2, b, 4, T3E, grid=r2.grid)
    assert np.array_equal(t2.x, lu2.solve(b))


@given(st.integers(10, 40), st.integers(0, 10_000),
       st.sampled_from([1.0, 0.5, 0.1]))
@settings(max_examples=12, deadline=None)
def test_threshold_pivoting_stays_accurate(n, seed, u):
    """Property: threshold pivoting still yields a usable factorization —
    one refinement step reaches near-roundoff backward error."""
    from repro import SStarSolver
    from repro.analysis import iterative_refinement

    A = random_nonsymmetric(n, density=0.15, seed=seed)
    s = SStarSolver(block_size=5, pivot_threshold=u).factor(A)
    b = np.ones(n)
    _, hist = iterative_refinement(A, s.solve, b, max_iters=3)
    assert hist[-1] < 1e-10


@given(st.integers(10, 35), st.integers(0, 10_000))
@settings(max_examples=12, deadline=None)
def test_ordering_variants_all_solve(n, seed):
    """Property: every ordering strategy yields a correct factorization."""
    from repro.sparse import csr_to_dense

    A = random_nonsymmetric(n, density=0.15, seed=seed)
    for ordering in ("mindeg-ata", "mindeg-aplusat", "natural"):
        om = prepare_matrix(A, ordering=ordering)
        lu = sstar_factor(om.A, block_size=5)
        D = csr_to_dense(om.A)
        b = np.arange(1.0, n + 1.0)
        x = lu.solve(b)
        assert np.linalg.norm(D @ x - b) / np.linalg.norm(b) < 1e-7
