"""1D parallel codes: bitwise agreement with sequential, scheduling variants."""

import numpy as np
import pytest

from repro.machine import T3D, T3E
from repro.matrices import random_nonsymmetric
from repro.numfact import LUFactorization, sstar_factor
from repro.ordering import prepare_matrix
from repro.parallel import run_1d
from repro.sparse import csr_to_dense
from repro.supernodes import build_block_structure, build_partition
from repro.symbolic import static_symbolic_factorization


@pytest.fixture(scope="module")
def pipeline():
    A = random_nonsymmetric(90, density=0.06, seed=31)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=6, amalgamation=4)
    bstruct = build_block_structure(sym, part)
    seq = sstar_factor(om.A, sym=sym, part=part)
    return dict(om=om, sym=sym, part=part, bstruct=bstruct, seq=seq,
                dense=csr_to_dense(om.A))


def _assert_bitwise_equal(seq, factor):
    assert set(seq.matrix.blocks) == set(factor.blocks)
    for key, blk in seq.matrix.blocks.items():
        assert np.array_equal(blk, factor.blocks[key]), f"block {key} differs"
    assert seq.matrix.pivot_seq == factor.pivot_seq


class TestBitwiseAgreement:
    @pytest.mark.parametrize("method", ["rapid", "ca"])
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 8])
    def test_matches_sequential(self, pipeline, method, nprocs):
        p = pipeline
        res = run_1d(p["om"].A, p["part"], p["bstruct"], nprocs, T3E, method=method)
        _assert_bitwise_equal(p["seq"], res.factor)

    @pytest.mark.parametrize("method", ["rapid", "ca"])
    def test_solve_works(self, pipeline, method):
        p = pipeline
        res = run_1d(p["om"].A, p["part"], p["bstruct"], 4, T3E, method=method)
        lf = LUFactorization(res.factor, p["sym"], p["part"], p["bstruct"],
                             res.sim.total_counter())
        b = np.arange(90.0)
        x = lf.solve(b)
        r = np.linalg.norm(p["dense"] @ x - b) / np.linalg.norm(b)
        assert r < 1e-10


class TestCommunication:
    def test_messages_flow(self, pipeline):
        p = pipeline
        res = run_1d(p["om"].A, p["part"], p["bstruct"], 4, T3E, method="rapid")
        assert res.sim.messages > 0
        assert res.sim.bytes_sent > 0

    def test_single_proc_no_messages(self, pipeline):
        p = pipeline
        res = run_1d(p["om"].A, p["part"], p["bstruct"], 1, T3E, method="ca")
        assert res.sim.messages == 0

    def test_ca_broadcasts_more_than_rapid(self, pipeline):
        p = pipeline
        ca = run_1d(p["om"].A, p["part"], p["bstruct"], 4, T3E, method="ca")
        ra = run_1d(p["om"].A, p["part"], p["bstruct"], 4, T3E, method="rapid")
        assert ca.sim.messages >= ra.sim.messages

    def test_buffer_high_water_positive(self, pipeline):
        p = pipeline
        res = run_1d(p["om"].A, p["part"], p["bstruct"], 4, T3E, method="rapid")
        assert max(res.buffer_high_water) > 0


class TestTiming:
    def test_parallel_time_positive_and_bounded(self, pipeline):
        p = pipeline
        res = run_1d(p["om"].A, p["part"], p["bstruct"], 4, T3E, method="rapid")
        serial_time = p["seq"].counter.modeled_seconds(T3E)
        assert 0 < res.parallel_seconds
        # cannot be slower than serial + all communication, loosely bounded
        assert res.parallel_seconds < serial_time * 3 + 1.0

    def test_speedup_with_more_processors(self, pipeline):
        p = pipeline
        t2 = run_1d(p["om"].A, p["part"], p["bstruct"], 2, T3E, "rapid").parallel_seconds
        t8 = run_1d(p["om"].A, p["part"], p["bstruct"], 8, T3E, "rapid").parallel_seconds
        assert t8 < t2

    def test_t3e_faster_than_t3d(self, pipeline):
        p = pipeline
        td = run_1d(p["om"].A, p["part"], p["bstruct"], 4, T3D, "rapid").parallel_seconds
        te = run_1d(p["om"].A, p["part"], p["bstruct"], 4, T3E, "rapid").parallel_seconds
        assert te < td

    def test_unknown_method_rejected(self, pipeline):
        p = pipeline
        with pytest.raises(ValueError, match="method"):
            run_1d(p["om"].A, p["part"], p["bstruct"], 2, T3E, method="bogus")
