"""Parallelism profiling of the task DAG."""

import json


from repro.machine import T3E
from repro.matrices import dense_matrix, random_nonsymmetric
from repro.ordering import prepare_matrix
from repro.supernodes import build_block_structure, build_partition
from repro.symbolic import static_symbolic_factorization
from repro.taskgraph import build_task_graph, parallelism_profile


def _tg(n=70, seed=3, block=6):
    A = random_nonsymmetric(n, density=0.08, seed=seed)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=block, amalgamation=4)
    return build_task_graph(build_block_structure(sym, part))


class TestProfile:
    def test_basic_invariants(self):
        tg = _tg()
        p = parallelism_profile(tg, T3E)
        assert p.ntasks == len(tg.tasks)
        assert 0 < p.critical_path_seconds <= p.total_seconds
        assert p.average_parallelism >= 1.0
        assert 1 <= p.depth <= p.ntasks
        assert 1 <= p.max_width <= p.ntasks

    def test_sparse_has_more_parallelism_than_dense_chain(self):
        """A sparse DAG's average parallelism exceeds the dense matrix's
        heavily chained one at equal block granularity."""
        tg_sparse = _tg(n=80, seed=5, block=4)
        A = dense_matrix(80, seed=5)
        sym = static_symbolic_factorization(A)
        part = build_partition(sym, max_size=4, amalgamation=0)
        tg_dense = build_task_graph(build_block_structure(sym, part))
        ps = parallelism_profile(tg_sparse, T3E)
        pd = parallelism_profile(tg_dense, T3E)
        assert ps.average_parallelism > 1.0
        assert pd.depth >= tg_dense.N  # the dense pipeline chains every stage

    def test_mixed_granularities(self):
        """The paper's 'mixed granularities': task durations spread widely."""
        p = parallelism_profile(_tg(n=90, seed=7), T3E)
        assert p.granularity_spread > 2.0


class TestChromeTrace:
    def test_export(self, tmp_path):
        from repro.analysis import export_chrome_trace
        from repro.machine import T3E as spec
        from repro.parallel import run_2d
        from repro.matrices import random_nonsymmetric
        from repro.ordering import prepare_matrix
        from repro.supernodes import build_block_structure, build_partition
        from repro.symbolic import static_symbolic_factorization

        A = random_nonsymmetric(50, density=0.1, seed=8)
        om = prepare_matrix(A)
        sym = static_symbolic_factorization(om.A)
        part = build_partition(sym, max_size=5, amalgamation=2)
        bstruct = build_block_structure(sym, part)
        res = run_2d(om.A, part, bstruct, 4, spec)
        out = tmp_path / "trace.json"
        export_chrome_trace(res.sim.spans, out)
        data = json.loads(out.read_text())
        assert len(data["traceEvents"]) == len(res.sim.spans)
        assert all(e["ph"] == "X" for e in data["traceEvents"])
