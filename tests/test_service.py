"""The serving layer: structure cache, numeric refactorization, multi-RHS
batching and the SolveService job-queue front end."""

import numpy as np
import pytest

import repro.ordering
import repro.supernodes
import repro.symbolic
from repro.api import SStarSolver
from repro.machine import DeliveryError, FaultPlan, ReliableDelivery
from repro.matrices import get_matrix, random_nonsymmetric
from repro.service import (
    AnalysisCache,
    ServiceOverloadError,
    SolveService,
    analyze,
    pattern_key,
    values_key,
)
from repro.sparse import csr_matvec


def perturbed(A, seed=0, rel=0.05):
    """Same pattern, jittered values, fresh arrays."""
    rng = np.random.default_rng(seed)
    return A.with_values(A.data * (1.0 + rel * rng.uniform(-1.0, 1.0, A.nnz)))


def factors_bitwise_equal(lu1, lu2):
    m1, m2 = lu1.matrix, lu2.matrix
    return (
        set(m1.blocks) == set(m2.blocks)
        and m1.pivot_seq == m2.pivot_seq
        and all(np.array_equal(m1.blocks[k], m2.blocks[k]) for k in m1.blocks)
    )


@pytest.fixture(scope="module")
def A():
    return get_matrix("jpwh991", "small")


class TestPatternKey:
    def test_values_do_not_matter(self, A):
        assert pattern_key(A) == pattern_key(perturbed(A, seed=3))

    def test_structure_does_matter(self, A):
        B = random_nonsymmetric(A.nrows, density=0.03, seed=1)
        assert pattern_key(A) != pattern_key(B)

    def test_values_key_distinguishes_values(self, A):
        A2 = perturbed(A, seed=3)
        assert values_key(A) != values_key(A2)
        assert values_key(A2) == values_key(perturbed(A, seed=3))


class TestAnalysisCache:
    def test_hit_miss_accounting(self, A):
        cache = AnalysisCache()
        art, _ = analyze(A)
        assert cache.get("k") is None
        cache.put("k", art)
        assert cache.get("k") is art
        s = cache.stats
        assert (s.hits, s.misses, s.entries) == (1, 1, 1)
        assert s.hit_rate == 0.5
        assert s.bytes > 0

    def test_lru_eviction_by_entries(self, A):
        cache = AnalysisCache(max_entries=2)
        art, _ = analyze(A)
        cache.put("a", art)
        cache.put("b", art)
        cache.get("a")  # refresh a: b becomes LRU
        cache.put("c", art)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_eviction_by_bytes(self, A):
        art, _ = analyze(A)
        cache = AnalysisCache(max_entries=10, max_bytes=int(art.nbytes * 1.5))
        cache.put("a", art)
        cache.put("b", art)
        assert len(cache) == 1 and cache.stats.evictions == 1

    def test_last_entry_never_evicted_by_bytes(self, A):
        art, _ = analyze(A)
        cache = AnalysisCache(max_entries=10, max_bytes=1)
        cache.put("a", art)
        assert "a" in cache  # a byte bound smaller than any entry keeps one

    def test_invalidate(self, A):
        cache = AnalysisCache()
        art, _ = analyze(A)
        cache.put("k", art)
        assert cache.invalidate("k") and not cache.invalidate("k")
        assert cache.stats.invalidations == 1

    def test_artifacts_reorder_matches_prepare_matrix(self, A):
        art, om = analyze(A)
        A2 = perturbed(A, seed=9)
        om2 = art.order(A2)
        ref = repro.ordering.prepare_matrix(A2)
        assert np.array_equal(om2.row_perm, ref.row_perm)
        assert np.array_equal(om2.col_perm, ref.col_perm)
        assert np.array_equal(om2.A.indptr, ref.A.indptr)
        assert np.array_equal(om2.A.indices, ref.A.indices)
        assert np.array_equal(om2.A.data, ref.A.data)


class TestRefactor:
    def test_skips_analyze_phase_entirely(self, A, monkeypatch):
        """Call-count proof: a cache-hit refactor never reaches the
        transversal, ordering, symbolic or partition stages."""
        calls = {"prepare": 0, "symbolic": 0, "partition": 0}
        real_prepare = repro.ordering.prepare_matrix
        real_symbolic = repro.symbolic.static_symbolic_factorization
        real_partition = repro.supernodes.build_partition

        def count(name, fn):
            def wrapper(*a, **k):
                calls[name] += 1
                return fn(*a, **k)
            return wrapper

        monkeypatch.setattr(
            repro.ordering, "prepare_matrix", count("prepare", real_prepare)
        )
        monkeypatch.setattr(
            repro.symbolic, "static_symbolic_factorization",
            count("symbolic", real_symbolic),
        )
        monkeypatch.setattr(
            repro.supernodes, "build_partition",
            count("partition", real_partition),
        )

        cache = AnalysisCache()
        SStarSolver(analysis_cache=cache).factor(A)
        assert calls == {"prepare": 1, "symbolic": 1, "partition": 1}
        SStarSolver(analysis_cache=cache).refactor(perturbed(A, seed=1))
        assert calls == {"prepare": 1, "symbolic": 1, "partition": 1}

    def test_bit_identical_to_cold_factor(self, A):
        cache = AnalysisCache()
        SStarSolver(analysis_cache=cache).factor(A)
        A2 = perturbed(A, seed=2)
        warm = SStarSolver(analysis_cache=cache).refactor(A2)
        cold = SStarSolver().factor(A2)
        assert warm.report.analysis_reused
        assert not cold.report.analysis_reused
        assert factors_bitwise_equal(warm.factorization, cold.factorization)
        b = np.sin(np.arange(A.nrows, dtype=np.float64))
        assert np.array_equal(warm.solve(b), cold.solve(b))

    def test_refactor_without_cache_reuses_own_analysis(self, A):
        solver = SStarSolver()
        solver.factor(A)
        solver.refactor(perturbed(A, seed=4))
        assert solver.report.analysis_reused

    def test_refactor_unknown_pattern_falls_back_to_full_analysis(self, A):
        cache = AnalysisCache()
        solver = SStarSolver(analysis_cache=cache).refactor(A)
        assert not solver.report.analysis_reused
        assert len(cache) == 1  # ...and populates the cache
        assert SStarSolver(analysis_cache=cache).refactor(
            perturbed(A, seed=5)
        ).report.analysis_reused

    def test_pattern_change_is_not_reused(self, A):
        solver = SStarSolver()
        solver.factor(A)
        B = random_nonsymmetric(60, density=0.1, seed=8)
        solver.refactor(B)
        assert not solver.report.analysis_reused
        b = np.ones(60)
        x = solver.solve(b)
        assert np.linalg.norm(csr_matvec(B, x) - b) < 1e-8

    def test_block_params_part_of_cache_key(self, A):
        cache = AnalysisCache()
        SStarSolver(analysis_cache=cache, block_size=25).factor(A)
        s = SStarSolver(analysis_cache=cache, block_size=10).refactor(A)
        assert not s.report.analysis_reused
        assert len(cache) == 2

    def test_growth_signal_invalidates_cache(self, A):
        # growth_limit=0 makes any monitored factorization look broken
        cache = AnalysisCache()
        SStarSolver(analysis_cache=cache).factor(A)
        assert len(cache) == 1
        SStarSolver(analysis_cache=cache, growth_limit=0.0).refactor(
            perturbed(A, seed=6)
        )
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

    def test_perturbation_invalidates_cache(self):
        # column 0's only entry is tiny, so even partial pivoting must
        # take it; under perturb=True that perturbs and invalidates
        D = np.array(
            [[1e-30, 1.0, 0.0],
             [0.0, 2.0, 1.0],
             [0.0, 0.0, 3.0]]
        )
        cache = AnalysisCache()
        solver = SStarSolver(perturb=True, analysis_cache=cache)
        solver.factor(D)
        assert solver.report.perturbed_pivots > 0
        assert len(cache) == 0

    def test_parallel_refactor_matches_cold(self, A):
        cache = AnalysisCache()
        opts = dict(method="1d-ca", nprocs=4)
        SStarSolver(analysis_cache=cache, **opts).factor(A)
        A2 = perturbed(A, seed=7)
        warm = SStarSolver(analysis_cache=cache, **opts).refactor(A2)
        cold = SStarSolver(**opts).factor(A2)
        assert warm.report.analysis_reused
        assert factors_bitwise_equal(warm.factorization, cold.factorization)


class TestMultiRHSSolve:
    def test_shapes_accepted_uniformly(self, A):
        solver = SStarSolver().factor(A)
        n = A.nrows
        b = np.cos(np.arange(n, dtype=np.float64))
        x1 = solver.solve(b)
        x2 = solver.solve(b[:, None])
        B = np.column_stack([b, 2.0 * b, b - 1.0])
        X = solver.solve(B)
        assert x1.shape == (n,) and x2.shape == (n, 1) and X.shape == (n, 3)
        assert np.array_equal(x1, x2[:, 0])
        for j in range(3):
            assert np.allclose(X[:, j], solver.solve(B[:, j]))

    def test_block_solve_residuals(self, A):
        solver = SStarSolver().factor(A)
        rng = np.random.default_rng(11)
        B = rng.uniform(-1, 1, (A.nrows, 5))
        X = solver.solve(B)
        for j in range(5):
            r = csr_matvec(A, X[:, j]) - B[:, j]
            assert np.linalg.norm(r) / np.linalg.norm(B[:, j]) < 1e-10

    def test_bad_shape_reports_received_shape(self, A):
        solver = SStarSolver().factor(A)
        with pytest.raises(ValueError, match=r"got \(3,\)"):
            solver.solve(np.ones(3))
        with pytest.raises(ValueError, match="rhs"):
            solver.solve(np.ones((2, 2, 2)))

    def test_refined_block_solve(self):
        D = np.array(
            [[1e-30, 1.0, 0.0],
             [0.0, 1.0, 1.0],
             [1.0, 0.0, 1e-30]]
        )
        solver = SStarSolver(perturb=True, refine="always", refine_tol=1e-8)
        solver.factor(D)
        B = np.array([[1.0, 2.0], [0.5, -1.0], [2.0, 0.0]])
        X = solver.solve(B)
        assert X.shape == (3, 2)
        assert np.max(np.abs(D @ X - B)) < 1e-6
        assert len(solver.refine_history) == 2  # one history per column


class TestSolveService:
    def _workload(self, A, jobs=6, seed=0, nrhs=1):
        rng = np.random.default_rng(seed)
        out = []
        for i in range(jobs):
            Ai = perturbed(A, seed=100 + i // 2)  # pairs share values
            b = (rng.uniform(-1, 1, A.nrows) if nrhs == 1
                 else rng.uniform(-1, 1, (A.nrows, nrhs)))
            out.append((Ai, b))
        return out

    def test_submit_poll_result(self, A):
        svc = SolveService(workers=2, max_queue=8)
        jid = svc.submit(A, np.ones(A.nrows))
        assert svc.poll(jid) == "pending"
        x = svc.result(jid)
        assert svc.poll(jid) == "done"
        assert np.linalg.norm(csr_matvec(A, x) - np.ones(A.nrows)) < 1e-8

    def test_results_match_direct_solver(self, A):
        svc = SolveService(workers=3, max_queue=16)
        work = self._workload(A, jobs=6)
        ids = [svc.submit(Ai, b) for Ai, b in work]
        svc.drain()
        for jid, (Ai, b) in zip(ids, work):
            ref = SStarSolver().factor(Ai).solve(b)
            assert np.allclose(svc.job(jid).x, ref, atol=1e-12)

    def test_cache_amortizes_across_jobs(self, A):
        svc = SolveService(workers=2, max_queue=16, max_batch=1)
        for Ai, b in self._workload(A, jobs=6):
            svc.submit(Ai, b)
        svc.drain()
        m = svc.metrics()
        # one miss for the first job, hits for the other five
        assert m.cache_misses == 1 and m.cache_hits == 5
        assert m.cache_hit_rate == pytest.approx(5 / 6)

    def test_backpressure_raises_not_deadlocks(self, A):
        svc = SolveService(workers=1, max_queue=2)
        svc.submit(A, np.ones(A.nrows))
        svc.submit(A, np.ones(A.nrows))
        with pytest.raises(ServiceOverloadError) as ei:
            svc.submit(A, np.ones(A.nrows))
        assert ei.value.queue_depth == 2 and ei.value.max_queue == 2
        svc.drain()  # queue drains; admission reopens
        jid = svc.submit(A, np.ones(A.nrows))
        svc.result(jid)
        assert svc.metrics().jobs_rejected == 1

    def test_adjacent_same_system_jobs_batch(self, A):
        svc = SolveService(workers=1, max_queue=16, max_batch=4)
        A1 = perturbed(A, seed=50)
        b = np.arange(A.nrows, dtype=np.float64)
        ids = [svc.submit(A1, b + i) for i in range(4)]
        svc.drain()
        m = svc.metrics()
        assert m.batches == 1 and m.batched_jobs == 4
        for i, jid in enumerate(ids):
            job = svc.job(jid)
            assert job.batch_size == 4
            assert np.linalg.norm(csr_matvec(A1, job.x) - (b + i)) < 1e-8

    def test_batch_respects_column_budget_and_values(self, A):
        svc = SolveService(workers=1, max_queue=16, max_batch=2)
        A1, A2 = perturbed(A, seed=51), perturbed(A, seed=52)
        b = np.ones(A.nrows)
        for Ai in (A1, A1, A1, A2):
            svc.submit(Ai, b)
        svc.drain()
        m = svc.metrics()
        # max_batch=2 splits the three A1 jobs 2+1; A2 runs alone
        assert m.batches == 3
        assert m.batched_jobs == 2

    def test_deterministic_metrics_and_results(self, A):
        def run():
            svc = SolveService(workers=2, max_queue=16, inter_arrival=1e-4)
            ids = [svc.submit(Ai, b) for Ai, b in self._workload(A, jobs=6)]
            svc.drain()
            return (
                [svc.job(j).x.tobytes() for j in ids],
                svc.metrics().as_dict(),
            )

        xs1, m1 = run()
        xs2, m2 = run()
        assert xs1 == xs2
        assert m1 == m2

    def test_retry_on_delivery_error_then_success(self, A):
        opts = dict(
            method="1d-ca", nprocs=4,
            faults=FaultPlan.drops(1.0, seed=3),
            reliable=ReliableDelivery(max_attempts=2),
        )
        svc = SolveService(workers=1, max_queue=4, max_retries=1,
                           solver_opts=opts)
        jid = svc.submit(A, np.ones(A.nrows))
        x = svc.result(jid)  # first attempt dies, clean-network retry lands
        assert np.linalg.norm(csr_matvec(A, x) - np.ones(A.nrows)) < 1e-8
        m = svc.metrics()
        assert m.retries == 1 and m.jobs_failed == 0
        assert svc.job(jid).attempts == 2

    def test_retries_exhausted_marks_failed(self, A):
        opts = dict(
            method="1d-ca", nprocs=4,
            faults=FaultPlan.drops(1.0, seed=3),
            reliable=ReliableDelivery(max_attempts=2),
        )
        svc = SolveService(workers=1, max_queue=4, max_retries=0,
                           solver_opts=opts)
        jid = svc.submit(A, np.ones(A.nrows))
        with pytest.raises(DeliveryError):
            svc.result(jid)
        assert svc.poll(jid) == "failed"
        m = svc.metrics()
        assert m.jobs_failed == 1 and m.retries == 0

    def test_parallel_jobs_report_virtual_latency(self, A):
        svc = SolveService(workers=2, max_queue=8,
                           solver_opts=dict(method="2d", nprocs=4))
        ids = [svc.submit(perturbed(A, seed=60 + i), np.ones(A.nrows))
               for i in range(2)]
        svc.drain()
        m = svc.metrics()
        assert m.jobs_completed == 2
        assert 0.0 < m.latency_p50 <= m.latency_p95
        assert m.throughput_jobs_per_s > 0.0
        for jid in ids:
            assert svc.job(jid).finish > svc.job(jid).start
