"""Smoke tests: every example script runs end to end."""

import runpy
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name, argv=()):
    old = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old


def test_quickstart(capsys):
    _run("quickstart.py")
    assert "relative residual" in capsys.readouterr().out


def test_reservoir_simulation(capsys):
    _run("reservoir_simulation.py")
    assert "pattern reused" in capsys.readouterr().out


def test_circuit_dc_analysis(capsys):
    _run("circuit_dc_analysis.py")
    assert "bitwise identical" in capsys.readouterr().out


def test_scaling_study(capsys):
    _run("scaling_study.py", ["orsreg1", "small"])
    out = capsys.readouterr().out
    assert "spdup1D" in out


def test_paper_walkthrough(capsys):
    _run("paper_walkthrough.py")
    out = capsys.readouterr().out
    assert "Theorem 1 payoff" in out
    assert "residual" in out


def test_production_workflow(capsys):
    _run("production_workflow.py")
    out = capsys.readouterr().out
    assert "condition estimate" in out
    assert "packed solve" in out
