"""Supernode detection, 2D partition, amalgamation, Theorem 1 metadata."""

import numpy as np

from repro.matrices import dense_matrix, random_nonsymmetric
from repro.supernodes import (
    BlockPartition,
    build_block_structure,
    build_partition,
    find_supernodes,
)
from repro.supernodes.amalgamate import amalgamate_supernodes, amalgamation_padding
from repro.symbolic import static_symbolic_factorization


def _sym(n=40, density=0.1, seed=0):
    from repro.ordering import prepare_matrix

    A = random_nonsymmetric(n, density=density, seed=seed)
    om = prepare_matrix(A)
    return om, static_symbolic_factorization(om.A)


class TestFindSupernodes:
    def test_boundaries_valid(self):
        _, sym = _sym()
        b = find_supernodes(sym)
        assert b[0] == 0 and b[-1] == sym.n
        assert all(x < y for x, y in zip(b, b[1:]))

    def test_nested_structure_within_supernode(self):
        _, sym = _sym(seed=3)
        b = find_supernodes(sym)
        for s, e in zip(b[:-1], b[1:]):
            for k in range(s + 1, e):
                prev = sym.lcol[k - 1]
                assert np.array_equal(prev[1:], sym.lcol[k])

    def test_max_size_respected(self):
        A = dense_matrix(30)
        sym = static_symbolic_factorization(A)
        b = find_supernodes(sym, max_size=7)
        widths = np.diff(b)
        assert widths.max() <= 7

    def test_dense_matrix_one_big_supernode_split(self):
        A = dense_matrix(20)
        sym = static_symbolic_factorization(A)
        b = find_supernodes(sym, max_size=25)
        assert b == [0, 20]


class TestBlockPartition:
    def test_block_of_mapping(self):
        p = BlockPartition(np.array([0, 3, 5, 9]))
        assert p.N == 3
        assert p.block_of.tolist() == [0, 0, 0, 1, 1, 2, 2, 2, 2]
        assert p.start(1) == 3
        assert p.size(2) == 4
        assert p.positions(1).tolist() == [3, 4]
        assert p.sizes().tolist() == [3, 2, 4]


class TestAmalgamation:
    def test_coarsens_boundaries(self):
        _, sym = _sym(n=60, seed=5)
        exact = find_supernodes(sym, max_size=25)
        relaxed = amalgamate_supernodes(sym, exact, factor=6, max_size=25)
        assert len(relaxed) <= len(exact)
        assert set(relaxed) <= set(exact)  # only removes boundaries

    def test_factor_zero_keeps_exact(self):
        _, sym = _sym(n=50, seed=6)
        exact = find_supernodes(sym, max_size=25)
        same = amalgamate_supernodes(sym, exact, factor=0, max_size=25)
        # factor=0 may still merge identical-structure runs; boundaries must
        # remain a subset either way
        assert set(same) <= set(exact)

    def test_padding_counted(self):
        _, sym = _sym(n=50, seed=7)
        exact = find_supernodes(sym, max_size=25)
        relaxed = amalgamate_supernodes(sym, exact, factor=8, max_size=25)
        assert amalgamation_padding(sym, exact) == 0
        assert amalgamation_padding(sym, relaxed) >= 0

    def test_numerics_unchanged_by_amalgamation(self):
        from repro.numfact import sstar_factor

        om, sym = _sym(n=50, seed=8)
        b = np.ones(50)
        lu0 = sstar_factor(om.A, sym=sym, amalgamation=0)
        lu6 = sstar_factor(om.A, sym=sym, amalgamation=6)
        assert np.allclose(lu0.solve(b), lu6.solve(b), rtol=1e-10)


class TestBlockStructure:
    def test_every_static_entry_covered(self):
        _, sym = _sym(n=45, seed=9)
        part = build_partition(sym, max_size=6, amalgamation=4)
        bs = build_block_structure(sym, part)
        block_of = part.block_of
        for k in range(sym.n):
            J = int(block_of[k])
            for r in sym.lcol[k]:
                I = int(block_of[r])
                assert bs.has_block(I, J), f"L entry ({r},{k}) uncovered"
            I = J
            for c in sym.urow[k]:
                Jc = int(block_of[c])
                assert bs.has_block(I, Jc), f"U entry ({k},{c}) uncovered"

    def test_theorem1_dense_subcolumns(self):
        """Without amalgamation, every U-block subcolumn flagged dense must
        be present in *every* row's structure of that block (Theorem 1)."""
        _, sym = _sym(n=45, seed=10)
        part = build_partition(sym, max_size=25, amalgamation=0)
        bs = build_block_structure(sym, part)
        for (I, J), cols in bs.udense_cols.items():
            for k in part.positions(I):
                uset = set(sym.urow[k].tolist())
                for c in cols:
                    assert int(c) in uset, (
                        f"block ({I},{J}): subcolumn {c} missing from row {k}"
                    )

    def test_corollary2_nested_u_blocks(self):
        """Corollary 1/2: if U_{i,j} and U_{i',j} are nonzero with i < i'
        and L_{i',i} nonzero, the dense subcolumns of U_{i,j} appear in
        U_{i',j}... (stated for i<i'<j with the lower coupling)."""
        _, sym = _sym(n=45, seed=11)
        part = build_partition(sym, max_size=25, amalgamation=0)
        bs = build_block_structure(sym, part)
        for (I, J), cols in bs.udense_cols.items():
            for (I2, J2), cols2 in bs.udense_cols.items():
                if J2 == J and I < I2 and bs.has_l(I2, I):
                    # subcolumns dense in the earlier block must be dense in
                    # the later one
                    missing = set(cols.tolist()) - set(cols2.tolist())
                    assert not missing, f"Corollary violated at ({I},{I2},{J})"

    def test_density_report_keys(self):
        _, sym = _sym(n=40, seed=12)
        part = build_partition(sym, max_size=8, amalgamation=4)
        bs = build_block_structure(sym, part)
        rep = bs.density_report()
        assert rep["u_blocks"] >= 0
        assert 0.0 <= rep["fully_dense_fraction"] <= 1.0

    def test_entry_counts(self):
        _, sym = _sym(n=30, seed=13)
        part = build_partition(sym, max_size=5, amalgamation=0)
        bs = build_block_structure(sym, part)
        for (I, J) in bs.nonzero_blocks():
            assert bs.block_entry_count(I, J) > 0
        assert bs.block_entry_count(0, part.N - 1) >= 0


class TestSupernodeStats:
    def test_paper_width_regime(self, contexts):
        """The paper: average supernode width is ~1.5-2 columns before
        amalgamation; our reduced analogues land in the same small-width
        regime (most supernodes are singletons)."""
        from repro.supernodes import supernode_stats

        for name in ["orsreg1", "goodwin", "lns3937", "saylr4"]:
            ctx = contexts(name)
            st = supernode_stats(ctx["sym"])
            assert 1.2 <= st["mean_width"] <= 3.5, (name, st)
            assert st["singletons"] > st["count"] / 2, name

    def test_dense_matrix_wide_supernodes(self):
        from repro.matrices import dense_matrix
        from repro.supernodes import supernode_stats
        from repro.symbolic import static_symbolic_factorization

        sym = static_symbolic_factorization(dense_matrix(50, seed=0))
        st = supernode_stats(sym, max_size=25)
        assert st["mean_width"] == 25.0
        assert st["singletons"] == 0

    def test_counts_consistent(self, contexts):
        from repro.supernodes import supernode_stats, find_supernodes

        ctx = contexts("sherman5")
        st = supernode_stats(ctx["sym"])
        bounds = find_supernodes(ctx["sym"], max_size=25)
        assert st["count"] == len(bounds) - 1
