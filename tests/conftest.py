"""Shared fixtures and helpers for the test suite.

The memoised pipeline cache and the suite list live in
:mod:`repro.api.fixtures`, shared with ``benchmarks/conftest.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.fixtures import MemoCache, prepare_pipeline, SMALL_SUITE  # noqa: F401
from repro.matrices import random_nonsymmetric
from repro.ordering import prepare_matrix
from repro.verify.pytest_support import trace_checked_simulations

#: simulator-driven test modules whose runs are protocol-checked for free
TRACE_CHECKED_MODULES = {
    "tests.test_parallel_1d",
    "tests.test_parallel_2d",
    "tests.test_trisolve",
    "tests.test_service",
    "tests.test_resilience",
    "tests.test_obs",
    "test_parallel_1d",
    "test_parallel_2d",
    "test_trisolve",
    "test_service",
    "test_resilience",
}


@pytest.fixture(scope="module", autouse=True)
def _comm_trace_check(request):
    """Trace-check every simulation in the parallel-code test modules: tag
    collisions, leaked messages, causality violations and write-after-send
    payload mutations (``sanitize=True``) fail the test."""
    if getattr(request.module, "__name__", "") not in TRACE_CHECKED_MODULES:
        yield
        return
    with trace_checked_simulations():
        yield


@pytest.fixture(scope="session")
def contexts():
    """Cache of fully prepared pipelines keyed by (name, block, amalg)."""
    return MemoCache(prepare_pipeline).get


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def random_ordered(n, density=0.06, seed=0):
    """A random ordered (transversal + mindeg) matrix for quick tests."""
    A = random_nonsymmetric(n, density=density, seed=seed)
    return prepare_matrix(A)


def residual(D, x, b):
    return np.linalg.norm(D @ x - b) / max(np.linalg.norm(b), 1e-30)
