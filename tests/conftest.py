"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrices import random_nonsymmetric, get_matrix
from repro.ordering import prepare_matrix
from repro.sparse import csr_to_dense
from repro.supernodes import build_partition, build_block_structure
from repro.symbolic import static_symbolic_factorization

#: small suite matrices that cover every generator family
SMALL_SUITE = ["sherman5", "lnsp3937", "jpwh991", "orsreg1", "goodwin", "vavasis3"]


@pytest.fixture(scope="session")
def contexts():
    """Cache of fully prepared pipelines keyed by (name, block, amalg)."""
    cache = {}

    def get(name, block_size=25, amalgamation=4, scale="small"):
        key = (name, block_size, amalgamation, scale)
        if key not in cache:
            A = get_matrix(name, scale)
            om = prepare_matrix(A)
            sym = static_symbolic_factorization(om.A)
            part = build_partition(sym, max_size=block_size, amalgamation=amalgamation)
            bstruct = build_block_structure(sym, part)
            cache[key] = dict(
                A=A, om=om, sym=sym, part=part, bstruct=bstruct,
                dense=csr_to_dense(om.A),
            )
        return cache[key]

    return get


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def random_ordered(n, density=0.06, seed=0):
    """A random ordered (transversal + mindeg) matrix for quick tests."""
    A = random_nonsymmetric(n, density=density, seed=seed)
    return prepare_matrix(A)


def residual(D, x, b):
    return np.linalg.norm(D @ x - b) / max(np.linalg.norm(b), 1e-30)
