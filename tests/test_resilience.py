"""Fault injection, reliable delivery and checkpoint/restart.

The acceptance-criteria tests of the resilience layer: under a seeded
``FaultPlan`` dropping >=5% of messages the 1D CA and 2D async codes must
complete with the retry transport on and produce **bit-identical** factors
to the fault-free run; the same plan with retries off must raise a *typed*
delivery error (never ``DeadlockError``); a mid-factorization rank crash
must recover via checkpoint/restart with a residual within 10x of the
fault-free run, and the recovered traces must pass ``repro verify-comm``'s
checks (retransmits recognized, no leaks).
"""

import numpy as np
import pytest

from repro.machine import (
    GENERIC,
    CrashFault,
    DeadlockError,
    DeliveryError,
    FaultPlan,
    MessageFaultRule,
    MessageLostError,
    RankCrashedError,
    ReliableDelivery,
    Simulator,
    TIMEOUT,
)
from repro.machine.faults import CORRUPT, DELAY, DROP, DUPLICATE
from repro.matrices import random_nonsymmetric
from repro.numfact import (
    LUFactorization,
    NumericalError,
    PivotMonitor,
    SingularMatrixError,
    sstar_factor,
)
from repro.ordering import prepare_matrix
from repro.parallel import (
    run_1d,
    run_1d_resilient,
    run_2d,
    run_2d_resilient,
)
from repro.sparse import csr_matvec
from repro.supernodes import build_block_structure, build_partition
from repro.symbolic import static_symbolic_factorization
from repro.verify import check_run


N = 90


@pytest.fixture(scope="module")
def pipeline():
    A = random_nonsymmetric(N, density=0.06, seed=31)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=6, amalgamation=4)
    bstruct = build_block_structure(sym, part)
    seq = sstar_factor(om.A, sym=sym, part=part)
    return dict(om=om, sym=sym, part=part, bstruct=bstruct, seq=seq)


def _bitwise_equal(a, b):
    if set(a.blocks) != set(b.blocks) or a.pivot_seq != b.pivot_seq:
        return False
    return all(np.array_equal(a.blocks[k], b.blocks[k]) for k in a.blocks)


def _residual(p, factor, counter=None):
    lf = LUFactorization(factor, p["sym"], p["part"], p["bstruct"], counter)
    b = np.arange(float(N))
    x = lf.solve(b)
    r = csr_matvec(p["om"].A, x) - b
    return np.linalg.norm(r) / (np.linalg.norm(b))


# ---------------------------------------------------------------------------
# FaultPlan: determinism and serialization
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_decisions_are_deterministic_and_order_free(self):
        plan = FaultPlan.drops(0.3, seed=9)
        msgs = [(s, d, ("col", k)) for s in range(3) for d in range(3)
                for k in range(10) if s != d]
        first = [plan.message_fault(*m) is not None for m in msgs]
        second = [plan.message_fault(*m) is not None
                  for m in reversed(msgs)][::-1]
        assert first == second
        assert 0 < sum(first) < len(first)  # rate is neither 0 nor 1

    def test_attempts_get_fresh_coin_flips(self):
        plan = FaultPlan.drops(0.5, seed=2)
        outcomes = {plan.message_fault(0, 1, ("x",), attempt=a) is not None
                    for a in range(16)}
        assert outcomes == {True, False}

    def test_rule_predicates(self):
        rule = MessageFaultRule(DROP, src=0, dest=2, tag_prefix=("col",))
        assert rule.matches(0, 2, ("col", 5))
        assert not rule.matches(1, 2, ("col", 5))
        assert not rule.matches(0, 1, ("col", 5))
        assert not rule.matches(0, 2, ("lcol", 5))

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            [MessageFaultRule(DELAY, rate=0.25, src=1, tag_prefix=("urow",),
                              delay_s=1e-4)],
            [CrashFault(2, 0.5)],
            seed=77,
        )
        path = tmp_path / "plan.json"
        plan.to_json(str(path))
        back = FaultPlan.from_json(str(path))
        assert back.to_dict() == plan.to_dict()
        # decisions survive the round trip
        for m in [(1, 0, ("urow", 3, 0)), (1, 2, ("urow", 9, 1))]:
            assert (plan.message_fault(*m) is None) == (
                back.message_fault(*m) is None)
        assert FaultPlan.from_json(plan.to_json()).to_dict() == plan.to_dict()

    def test_after_crash_renumbers_ranks(self):
        plan = FaultPlan(
            [MessageFaultRule(DROP, rate=0.5, src=3, dest=1)],
            [CrashFault(1, 0.2), CrashFault(3, 0.6)],
            seed=1,
        )
        shrunk = plan.after_crash(1, elapsed=0.25)
        # rules touching the dead rank are gone; rank 3 became rank 2
        assert shrunk.rules == []
        assert shrunk.crashes == [CrashFault(2, pytest.approx(0.35))]

    def test_one_crash_per_rank(self):
        with pytest.raises(ValueError):
            FaultPlan(crashes=[CrashFault(0, 0.1), CrashFault(0, 0.2)])

    def test_bad_rule_rejected(self):
        with pytest.raises(ValueError):
            MessageFaultRule("explode")
        with pytest.raises(ValueError):
            MessageFaultRule(DROP, rate=1.5)


# ---------------------------------------------------------------------------
# reliable delivery on the factorization codes (acceptance criteria)
# ---------------------------------------------------------------------------


DROP_PLAN = FaultPlan.drops(0.08, seed=42)  # >= 5% of messages


class TestReliableDelivery:
    def test_1d_ca_drops_with_retry_bit_identical(self, pipeline):
        from repro.obs import Tracer

        p = pipeline
        clean = run_1d(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                       method="ca")
        tracer = Tracer()
        faulty = run_1d(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                        method="ca",
                        sim_opts={"faults": DROP_PLAN, "reliable": True,
                                  "tracer": tracer})
        assert faulty.sim.fault_stats.dropped >= 1
        assert faulty.sim.fault_stats.retransmits >= 1
        assert _bitwise_equal(clean.factor, faulty.factor)
        # retries cost virtual time: the faulty run cannot be faster
        assert faulty.sim.total_time >= clean.sim.total_time
        # the metrics registry mirrors the transport's fault accounting
        m = tracer.metrics
        assert m.value("sim.retransmits") == faulty.sim.fault_stats.retransmits
        assert m.value("sim.faults.dropped") == faulty.sim.fault_stats.dropped

    def test_2d_async_drops_with_retry_bit_identical(self, pipeline):
        p = pipeline
        clean = run_2d(p["om"].A, p["part"], p["bstruct"], 4, GENERIC)
        faulty = run_2d(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                        sim_opts={"faults": DROP_PLAN, "reliable": True})
        assert faulty.sim.fault_stats.retransmits >= 1
        assert _bitwise_equal(clean.factor, faulty.factor)

    def test_drops_without_retry_raise_typed_error(self, pipeline):
        p = pipeline
        with pytest.raises(MessageLostError) as ei:
            run_1d(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                   method="ca", sim_opts={"faults": DROP_PLAN})
        # typed delivery failure, NOT a deadlock; and it names the message
        assert not isinstance(ei.value, DeadlockError)
        assert isinstance(ei.value, DeliveryError)
        assert ei.value.dest is not None and ei.value.tag is not None

    def test_retry_exhaustion_is_typed(self):
        def prog(env):
            if env.rank == 0:
                env.send(1, ("x",), 1.0)
            else:
                yield env.recv(("x",))

        with pytest.raises(DeliveryError) as ei:
            Simulator(2, GENERIC, prog,
                      faults=FaultPlan.drops(1.0),
                      reliable=ReliableDelivery(max_attempts=3)).run()
        assert ei.value.attempts == 3

    def test_corruption_detected_and_retransmitted(self, pipeline):
        p = pipeline
        clean = run_1d(p["om"].A, p["part"], p["bstruct"], 3, GENERIC,
                       method="ca")
        plan = FaultPlan([MessageFaultRule(CORRUPT, rate=0.1)], seed=5)
        faulty = run_1d(p["om"].A, p["part"], p["bstruct"], 3, GENERIC,
                        method="ca",
                        sim_opts={"faults": plan, "reliable": True})
        assert faulty.sim.fault_stats.corrupted >= 1
        # checksum rejects the corrupted copies; numerics are untouched
        assert _bitwise_equal(clean.factor, faulty.factor)

    def test_duplicates_and_delays_are_harmless(self, pipeline):
        p = pipeline
        clean = run_1d(p["om"].A, p["part"], p["bstruct"], 3, GENERIC,
                       method="ca")
        plan = FaultPlan(
            [MessageFaultRule(DUPLICATE, rate=0.2),
             MessageFaultRule(DELAY, rate=0.2, delay_s=5e-6)],
            seed=11,
        )
        faulty = run_1d(p["om"].A, p["part"], p["bstruct"], 3, GENERIC,
                        method="ca", sim_opts={"faults": plan, "trace": True})
        stats = faulty.sim.fault_stats
        assert stats.duplicated + stats.delayed >= 1
        assert _bitwise_equal(clean.factor, faulty.factor)
        # and the trace checker accepts the duplicate copies
        assert check_run(faulty.sim, spec=GENERIC).ok

    def test_faulty_trace_passes_protocol_checks(self, pipeline):
        p = pipeline
        res = run_1d(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                     method="ca",
                     sim_opts={"faults": DROP_PLAN, "reliable": True,
                               "trace": True})
        report = check_run(res.sim, spec=GENERIC)
        assert report.ok, [str(v) for v in report.violations]

    def test_faulty_run_replays_bit_identically(self, pipeline):
        p = pipeline
        runs = []
        for order in ([0, 1, 2, 3], [3, 1, 0, 2]):
            res = run_1d(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                         method="ca",
                         sim_opts={"faults": DROP_PLAN, "reliable": True,
                                   "host_order": order})
            runs.append(res)
        assert _bitwise_equal(runs[0].factor, runs[1].factor)
        assert runs[0].sim.rank_clocks == runs[1].sim.rank_clocks
        assert runs[0].sim.fault_stats.dropped == runs[1].sim.fault_stats.dropped


# ---------------------------------------------------------------------------
# recv timeouts and deadlock diagnostics (satellite)
# ---------------------------------------------------------------------------


class TestTimeouts:
    def test_timeout_returns_sentinel_not_deadlock(self):
        def prog(env):
            got = yield env.recv(("never",), timeout=1e-3)
            return got

        res = Simulator(2, GENERIC, prog).run()
        assert res.returns == [TIMEOUT, TIMEOUT]
        assert not TIMEOUT  # falsy sentinel

    def test_timeout_still_receives_early_message(self):
        def prog(env):
            if env.rank == 0:
                env.send(1, ("x",), 42)
                return None
            got = yield env.recv(("x",), timeout=1.0)
            return got

        res = Simulator(2, GENERIC, prog).run()
        assert res.returns[1] == 42

    def test_deadlock_diagnostics_survive(self):
        """The no-timeout path still raises DeadlockError with the per-rank
        awaited tag and the undelivered-mailbox contents."""

        def prog(env):
            if env.rank == 0:
                env.send(1, ("unexpected", 9), 1.0)
                yield env.recv(("also-never",))
            else:
                yield env.recv(("never",))

        with pytest.raises(DeadlockError) as ei:
            Simulator(2, GENERIC, prog).run()
        e = ei.value
        assert (0, ("also-never",)) in e.blocked
        assert (1, ("never",)) in e.blocked
        inbox = e.pending.get(1, [])
        assert any(tag == ("unexpected", 9) for tag, _, _ in inbox)
        assert "undelivered" in str(e)

    def test_mixed_timeout_and_blocking_recv(self):
        """A rank with a timeout never converts the others' genuine deadlock
        into a timeout: it times out, they deadlock."""

        def prog(env):
            if env.rank == 0:
                got = yield env.recv(("maybe",), timeout=1e-4)
                return got
            yield env.recv(("never",))

        with pytest.raises(DeadlockError):
            Simulator(2, GENERIC, prog).run()


# ---------------------------------------------------------------------------
# rank crashes and checkpoint/restart (acceptance criteria)
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_crash_raises_typed_error_with_heartbeat(self):
        def prog(env):
            if env.rank == 0:
                env.send(1, ("x",), 1.0)
                yield env.recv(("reply",))  # never comes: rank 1 is dead
            else:
                got = yield env.recv(("x",))
                env.send(0, ("reply",), got)

        crash_t = 1e-6
        with pytest.raises(RankCrashedError) as ei:
            Simulator(2, GENERIC, prog,
                      faults=FaultPlan().with_crash(1, crash_t)).run()
        e = ei.value
        assert e.ranks == [1]
        assert e.detected_at >= crash_t
        assert (0, ("reply",)) in e.blocked

    def test_barrier_with_dead_rank_raises(self):
        def prog(env):
            env.compute("blas1", 1e6)
            yield env.barrier()

        with pytest.raises(RankCrashedError) as ei:
            Simulator(3, GENERIC, prog,
                      faults=FaultPlan().with_crash(2, 0.0)).run()
        assert ei.value.ranks == [2]
        assert any(what == "barrier" for _, what in ei.value.blocked)

    def _crash_plan(self, pipeline, frac=0.4, rank=3, nprocs=4):
        p = pipeline
        base = run_1d(p["om"].A, p["part"], p["bstruct"], nprocs, GENERIC,
                      method="ca")
        return base, FaultPlan().with_crash(rank, frac * base.sim.total_time)

    def test_1d_checkpoint_restart_recovers(self, pipeline):
        p = pipeline
        base, plan = self._crash_plan(pipeline)
        res = run_1d_resilient(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                               method="ca", ckpt_interval=3, faults=plan,
                               sim_opts={"trace": True})
        assert res.nprocs_final == 3
        failed = [r for r in res.rounds if not r.ok]
        assert len(failed) == 1 and failed[0].crashed == (3,)
        # recovery replays the same arithmetic: bit-identical, so trivially
        # within the 10x-residual acceptance bound
        assert _bitwise_equal(base.factor, res.factor)
        r_clean = _residual(p, base.factor)
        r_rec = _residual(p, res.factor)
        assert r_rec <= 10.0 * max(r_clean, 1e-300)
        # detection + redo time is accounted for
        assert res.total_time > base.sim.total_time

    def test_recovered_round_traces_pass_verify(self, pipeline):
        p = pipeline
        base, plan = self._crash_plan(pipeline)
        plan = FaultPlan(DROP_PLAN.rules, plan.crashes, seed=DROP_PLAN.seed)
        res = run_1d_resilient(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                               method="ca", ckpt_interval=3, faults=plan,
                               reliable=True, sim_opts={"trace": True})
        assert _bitwise_equal(base.factor, res.factor)
        assert res.results  # committed rounds carry their SimResults
        for sim in res.results:
            report = check_run(sim, spec=GENERIC)
            assert report.ok, [str(v) for v in report.violations]

    def test_2d_checkpoint_restart_recovers(self, pipeline):
        p = pipeline
        base = run_2d(p["om"].A, p["part"], p["bstruct"], 4, GENERIC)
        plan = FaultPlan().with_crash(2, 0.4 * base.sim.total_time)
        res = run_2d_resilient(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                               ckpt_interval=3, faults=plan)
        assert res.nprocs_final == 3
        assert any(not r.ok for r in res.rounds)
        assert _bitwise_equal(base.factor, res.factor)
        r_clean = _residual(p, base.factor)
        r_rec = _residual(p, res.factor)
        assert r_rec <= 10.0 * max(r_clean, 1e-300)

    def test_fault_free_resilient_matches_plain_run(self, pipeline):
        p = pipeline
        base = run_1d(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                      method="ca")
        res = run_1d_resilient(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                               method="ca", ckpt_interval=4)
        assert all(r.ok for r in res.rounds)
        assert _bitwise_equal(base.factor, res.factor)


# ---------------------------------------------------------------------------
# numerical robustness (satellite + tentpole part 4)
# ---------------------------------------------------------------------------


def _singular_dense(n=12):
    """Structurally nonsingular, numerically singular: two equal rows."""
    rng = np.random.default_rng(8)
    A = rng.standard_normal((n, n))
    A[np.abs(A) < 0.4] = 0.0
    np.fill_diagonal(A, 2.0)
    A[n - 2] = A[n - 3]  # exact linear dependence
    return A


class TestNumericalRobustness:
    def test_singular_matrix_raises_typed_error(self):
        from repro.api import SStarSolver

        with pytest.raises(SingularMatrixError) as ei:
            SStarSolver().factor(_singular_dense())
        assert ei.value.pivot_index is not None
        assert 0 <= ei.value.pivot_index < 12

    def test_overflowing_pivot_growth_is_caught(self):
        # a huge column doubles every elimination step: the factorization
        # overflows to inf/NaN, which must surface as a typed error rather
        # than a NaN-filled factor
        from repro.api import SStarSolver

        n = 16
        rng = np.random.default_rng(4)
        A = rng.standard_normal((n, n))
        np.fill_diagonal(A, 3.0)
        A[:, n - 1] = 1e308
        A[n - 1, n - 1] = 1e308
        try:
            with np.errstate(over="ignore", invalid="ignore"):
                solver = SStarSolver().factor(A)
        except SingularMatrixError as e:
            assert e.pivot_index is not None
            return
        # if it factored, no NaN may hide inside
        for blk in solver.factorization.matrix.blocks.values():
            assert np.all(np.isfinite(blk))

    def test_monitor_perturbs_and_records(self):
        mon = PivotMonitor(anorm=1.0)
        v = mon.consider(3, 1e-12)
        assert v == mon.threshold
        assert len(mon.perturbations) == 1
        rec = mon.perturbations[0]
        assert rec.column == 3 and rec.old == 1e-12 and rec.new == v
        assert mon.consider(4, -1e-12) == -mon.threshold
        assert mon.consider(5, 0.5) == 0.5
        assert mon.growth_factor == pytest.approx(0.5)

    def test_monitor_disabled_keeps_values(self):
        mon = PivotMonitor(anorm=1.0, perturb=False)
        assert mon.consider(0, 1e-12) == 1e-12
        assert mon.perturbations == []

    def test_perturbed_factorization_completes(self):
        from repro.api import SStarSolver

        solver = SStarSolver(perturb=True).factor(_singular_dense())
        assert solver.report.perturbed_pivots >= 1
        assert solver.report.growth_factor is not None
        for blk in solver.factorization.matrix.blocks.values():
            assert np.all(np.isfinite(blk))

    def test_refinement_failure_is_typed(self):
        # a tolerance below the eps floor of the backward error cannot be
        # met: the refinement must stall and raise, not return a solution
        # that silently misses the requested accuracy
        from repro.api import SStarSolver

        A = random_nonsymmetric(40, density=0.1, seed=6)
        solver = SStarSolver(refine="always", refine_tol=1e-30).factor(A)
        with pytest.raises(NumericalError) as ei:
            solver.solve(np.ones(40))
        assert ei.value.backward_error is not None
        assert 0.0 < ei.value.backward_error < 1e-10
        assert ei.value.iterations >= 1

    def test_perturbed_singular_solve_refines(self):
        # the companion case: a perturbed-singular factor *with* an
        # attainable tolerance auto-escalates to refinement and succeeds
        from repro.api import SStarSolver

        solver = SStarSolver(perturb=True, refine_tol=1e-6).factor(
            _singular_dense())
        x = solver.solve(np.ones(12))
        assert np.all(np.isfinite(x))
        assert solver.refine_history is not None
        assert solver.refine_history[-1] <= 1e-6

    def test_refine_never_returns_unrefined_solution(self):
        from repro.api import SStarSolver

        solver = SStarSolver(perturb=True, refine="never").factor(
            _singular_dense())
        x = solver.solve(np.ones(12))
        assert x.shape == (12,)

    def test_healthy_matrix_unaffected_by_monitoring(self, pipeline):
        from repro.api import SStarSolver

        p = pipeline
        A = random_nonsymmetric(N, density=0.06, seed=31)
        s1 = SStarSolver().factor(A)
        s2 = SStarSolver(perturb=True, refine="always").factor(A)
        assert s2.report.perturbed_pivots == 0
        b = np.arange(float(N))
        x1, x2 = s1.solve(b), s2.solve(b)
        assert np.linalg.norm(x1 - x2) <= 1e-8 * max(np.linalg.norm(x1), 1.0)

    def test_parallel_run_with_perturbation(self):
        """The 2D code's diagonal-owner perturbation writes through so the
        factor stays consistent across ranks."""
        from repro.api import SStarSolver

        A = _singular_dense(24)
        solver = SStarSolver(nprocs=4, method="2d", perturb=True,
                             refine="never").factor(A)
        assert solver.report.perturbed_pivots >= 1
        for blk in solver.factorization.matrix.blocks.values():
            assert np.all(np.isfinite(blk))


# ---------------------------------------------------------------------------
# solver-level fault routing
# ---------------------------------------------------------------------------


class TestSolverFaultRouting:
    def test_solver_faulty_reliable_solve(self):
        from repro.api import SStarSolver

        A = random_nonsymmetric(60, density=0.08, seed=3)
        clean = SStarSolver(nprocs=4, method="1d-ca").factor(A)
        faulty = SStarSolver(nprocs=4, method="1d-ca",
                             faults=FaultPlan.drops(0.08, seed=42),
                             reliable=True).factor(A)
        b = np.arange(60.0)
        assert np.array_equal(clean.solve(b), faulty.solve(b))

    def test_solver_crash_plan_routes_to_resilient(self):
        from repro.api import SStarSolver

        A = random_nonsymmetric(60, density=0.08, seed=3)
        base = SStarSolver(nprocs=4, method="1d-ca").factor(A)
        crash_t = 0.4 * base.report.parallel_seconds
        solver = SStarSolver(nprocs=4, method="1d-ca",
                             faults=FaultPlan().with_crash(3, crash_t),
                             ckpt_interval=3).factor(A)
        assert solver.resilient_result is not None
        assert solver.report.restarts == 1
        b = np.arange(60.0)
        assert np.array_equal(base.solve(b), solver.solve(b))

    def test_sequential_faults_rejected(self):
        from repro.api import SStarSolver

        with pytest.raises(ValueError):
            SStarSolver(faults=FaultPlan.drops(0.1)).factor(
                _singular_dense())
